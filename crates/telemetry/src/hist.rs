//! Fixed 64-bucket log2 histograms.
//!
//! Bucket 0 holds exactly the value 0; bucket `b ≥ 1` holds the range
//! `[2^(b-1), 2^b - 1]` (the top bucket is open-ended). Recording a value
//! is therefore one `leading_zeros` and one indexed add — cheap enough
//! for the per-packet path.

use crate::MetricCell;

/// Number of histogram buckets (covers the full `u64` range).
pub const BUCKETS: usize = 64;

/// The bucket a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `(low, high)` range of values a bucket holds.
pub fn bucket_range(b: usize) -> (u64, u64) {
    assert!(b < BUCKETS, "bucket {b} out of range");
    match b {
        0 => (0, 0),
        63 => (1u64 << 62, u64::MAX),
        _ => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// A log2 histogram over generic cells (plain or atomic).
pub struct Hist64<C> {
    buckets: [C; BUCKETS],
    sum: C,
}

impl<C: MetricCell> Default for Hist64<C> {
    fn default() -> Self {
        Hist64 {
            buckets: std::array::from_fn(|_| C::default()),
            sum: C::default(),
        }
    }
}

impl<C: MetricCell> Hist64<C> {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].add(1);
        self.sum.add(v);
    }

    /// Copy the current state out as plain data.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].get()),
            sum: self.sum.get(),
        }
    }
}

/// Plain-data histogram state (what exporters and tests consume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (for means).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The lower bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), i.e. a conservative percentile estimate at
    /// power-of-two resolution. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_range(b).0;
            }
        }
        bucket_range(BUCKETS - 1).0
    }

    /// Element-wise accumulate another histogram into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(2), (2, 3));
        assert_eq!(bucket_range(63).1, u64::MAX);
    }

    proptest! {
        /// Satellite: value → bucket → range round-trip. Every value lands
        /// in a bucket whose range contains it, and both range endpoints
        /// map back to that same bucket.
        #[test]
        fn bucket_round_trip(v in any::<u64>()) {
            let b = bucket_of(v);
            let (lo, hi) = bucket_range(b);
            prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {b} range [{lo},{hi}]");
            prop_assert_eq!(bucket_of(lo), b);
            prop_assert_eq!(bucket_of(hi), b);
        }

        #[test]
        fn buckets_partition_the_u64_line(b in 0usize..BUCKETS) {
            // Adjacent buckets tile the line with no gap or overlap.
            let (lo, hi) = bucket_range(b);
            prop_assert!(lo <= hi);
            if b + 1 < BUCKETS {
                let (next_lo, _) = bucket_range(b + 1);
                prop_assert_eq!(hi + 1, next_lo);
            }
        }
    }

    #[test]
    fn quantiles_and_mean() {
        let h: Hist64<std::cell::Cell<u64>> = Hist64::default();
        for v in [1u64, 1, 1, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 1003);
        // p50 falls in bucket 1 (value 1); p99 in the bucket of 1000.
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(0.99), bucket_range(bucket_of(1000)).0);
        assert!((s.mean() - 250.75).abs() < 1e-9);
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }
}
