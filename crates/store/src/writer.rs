//! The archive writer: buffers each stream's reassembled bytes as the
//! dispatch path delivers them, seals the stream into checksummed
//! segment frames + an index record at termination, rotates segments at
//! a size threshold, and enforces a disk budget with priority-aware
//! retention (PPL on disk).

use crate::format::{
    encode_stream_body, encode_tombstone_body, file_header, frame_header, frame_record,
    parse_segment_file_name, scan_index, scan_segment, segment_path, Extent, IndexEntry,
    IndexRecord, FILE_HEADER_LEN, FRAME_HEADER_LEN, IDX_MAGIC, INDEX_FILE, SEG_MAGIC,
};
use crate::StoreError;
use scap::{Event, EventKind, EventSink, StreamSnapshot, StreamUid};
use scap_faults::{FaultPlan, StoreFault, StoreInjector};
use scap_flight::{FlightEvent, FlightKind, FlightLayer, FlightRecorder};
use scap_telemetry::pulse::cost;
use scap_telemetry::{
    cycles_to_ns, Metric, PlainRegistry, Pulse, PulseSnapshot, PulseStage, Snapshot, SpanTimer,
    Stage,
};
use scap_wire::Direction;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Archive configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Archive directory (created if missing).
    pub dir: PathBuf,
    /// Segment rotation threshold in file bytes.
    pub segment_bytes: u64,
    /// Disk budget over archived payload bytes; `None` = unlimited.
    /// When exceeded, retention tombstones the lowest-priority /
    /// most-truncated / oldest streams first.
    pub disk_budget: Option<u64>,
}

impl StoreConfig {
    /// Defaults: 64 MiB segments, no budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: 64 << 20,
            disk_budget: None,
        }
    }

    /// Set the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max((FILE_HEADER_LEN + FRAME_HEADER_LEN) as u64);
        self
    }

    /// Set the payload-byte disk budget.
    pub fn disk_budget(mut self, bytes: u64) -> Self {
        self.disk_budget = Some(bytes);
        self
    }

    /// Derive a tenant-scoped config: archive under `<dir>/<tenant>`
    /// with `share` permille of this config's disk budget (an unlimited
    /// budget stays unlimited — shares only divide a finite pool). This
    /// is how a multi-tenant daemon turns one archive budget into
    /// isolated per-tenant retention: each tenant's writer prunes only
    /// its own streams, so one tenant filling its share never evicts
    /// another tenant's data.
    pub fn tenant_share(&self, tenant: &str, share: u32) -> Self {
        StoreConfig {
            dir: self.dir.join(tenant),
            segment_bytes: self.segment_bytes,
            disk_budget: self
                .disk_budget
                .map(|b| b * u64::from(share.min(1000)) / 1000),
        }
    }
}

/// Per-priority retention accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityStats {
    /// Streams sealed at this priority.
    pub archived: u64,
    /// Streams pruned from this priority by retention.
    pub pruned: u64,
    /// Payload bytes currently live at this priority.
    pub live_bytes: u64,
}

/// Writer-side archive statistics (all monotonic except `live` fields).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Streams sealed into the archive.
    pub streams_archived: u64,
    /// Payload bytes appended to segments.
    pub bytes_archived: u64,
    /// Segment files created (initial + rotations + compaction).
    pub segments_created: u64,
    /// Streams tombstoned by the disk-budget retention policy.
    pub streams_pruned: u64,
    /// Payload bytes those tombstoned streams held.
    pub bytes_pruned: u64,
    /// Segment-file bytes reclaimed by compaction.
    pub bytes_reclaimed: u64,
    /// Torn-tail bytes truncated during open-time recovery.
    pub torn_tail_bytes_recovered: u64,
    /// Seal attempts that failed (injected faults, I/O errors, writes
    /// after an injected death).
    pub write_errors: u64,
    /// Breakdown by stream priority.
    pub by_priority: BTreeMap<u8, PriorityStats>,
}

impl StoreStats {
    /// Fraction of archived streams at `priority` that retention later
    /// discarded (0.0 when nothing was archived there).
    pub fn discard_ratio(&self, priority: u8) -> f64 {
        match self.by_priority.get(&priority) {
            Some(p) if p.archived > 0 => p.pruned as f64 / p.archived as f64,
            _ => 0.0,
        }
    }
}

/// A stream still in flight: its latest snapshot and the reassembled
/// bytes delivered so far, per direction.
struct Pending {
    data: [Vec<u8>; 2],
}

/// The archive writer. Single-owner and synchronous; wrap it in
/// [`SharedStoreWriter`] to attach it to the threaded live driver.
pub struct StoreWriter {
    cfg: StoreConfig,
    seg: Option<BufWriter<File>>,
    seg_id: u64,
    seg_len: u64,
    next_seg_id: u64,
    idx: BufWriter<File>,
    pending: HashMap<StreamUid, Pending>,
    records: BTreeMap<StreamUid, IndexRecord>,
    live_bytes: u64,
    tombstones: u64,
    injector: Option<StoreInjector>,
    dead: bool,
    stats: StoreStats,
    tele: PlainRegistry,
    /// Last stream timestamp seen at seal time; stamps segment-rotation
    /// flight events, which have no snapshot of their own.
    last_ts_ns: u64,
    flight: FlightRecorder,
    /// Store-seal latency recorder (the `StoreSeal` pulse stage): the
    /// deterministic append+commit cost model over sealed bytes.
    pulse: Pulse,
}

impl StoreWriter {
    /// Open (or create) the archive at `cfg.dir`, running torn-tail
    /// recovery: both the sidecar index and every segment file are
    /// scanned back to their last valid entry and truncated there, so a
    /// crashed predecessor costs at most its uncommitted tail.
    pub fn open(cfg: StoreConfig) -> Result<StoreWriter, StoreError> {
        std::fs::create_dir_all(&cfg.dir)?;
        let tele = PlainRegistry::new(1);
        let mut stats = StoreStats::default();

        // Recover the index: truncate a torn tail, then replay entries
        // (tombstones remove their stream) into the in-memory map.
        let idx_path = cfg.dir.join(INDEX_FILE);
        let mut records: BTreeMap<StreamUid, IndexRecord> = BTreeMap::new();
        let mut tombstones = 0u64;
        if idx_path.exists() {
            let scan = scan_index(&idx_path)?;
            if scan.torn_bytes > 0 {
                let f = OpenOptions::new().write(true).open(&idx_path)?;
                f.set_len(scan.valid_len.max(FILE_HEADER_LEN as u64))?;
                stats.torn_tail_bytes_recovered += scan.torn_bytes;
            }
            for e in scan.entries {
                match e {
                    IndexEntry::Stream(r) => {
                        records.insert(r.uid, *r);
                    }
                    IndexEntry::Tombstone(uid) => {
                        records.remove(&uid);
                        tombstones += 1;
                    }
                }
            }
        }

        // Recover the segments: truncate each torn tail and remember
        // every valid frame so committed records can be cross-checked.
        let mut next_seg_id = 0u64;
        let mut frames: HashMap<(u64, u64), (StreamUid, u8, u64)> = HashMap::new();
        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                names.push((id, entry.path()));
            }
        }
        names.sort();
        for (id, path) in names {
            let scan = scan_segment(&path)?;
            if scan.torn_bytes > 0 {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
                stats.torn_tail_bytes_recovered += scan.torn_bytes;
            }
            for fr in scan.frames {
                frames.insert((id, fr.offset), (fr.uid, fr.dir, fr.len));
            }
            next_seg_id = next_seg_id.max(id + 1);
        }
        // Belt and braces: the flush ordering means a committed record's
        // frames are always on disk, but drop any record whose extents
        // no longer resolve rather than serve corrupt data.
        records.retain(|uid, r| {
            r.extents.iter().enumerate().all(|(di, e)| {
                e.len == 0 || frames.get(&(e.segment, e.offset)) == Some(&(*uid, di as u8, e.len))
            })
        });

        tele.add(
            0,
            Metric::StoreTornBytesRecovered,
            stats.torn_tail_bytes_recovered,
        );

        // Open the index for appending (writing the header if new).
        let fresh = !idx_path.exists();
        let mut idx = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&idx_path)?,
        );
        if fresh {
            idx.write_all(&file_header(IDX_MAGIC, 0))?;
            idx.flush()?;
        }

        let live_bytes = records.values().map(IndexRecord::stored_bytes).sum();
        for r in records.values() {
            let p = stats.by_priority.entry(r.priority).or_default();
            p.live_bytes += r.stored_bytes();
        }
        Ok(StoreWriter {
            cfg,
            seg: None,
            seg_id: 0,
            seg_len: 0,
            next_seg_id,
            idx,
            pending: HashMap::new(),
            records,
            live_bytes,
            tombstones,
            injector: None,
            dead: false,
            stats,
            tele,
            last_ts_ns: 0,
            flight: FlightRecorder::new(1, scap_flight::DEFAULT_RING_CAP),
            pulse: Pulse::default(),
        })
    }

    /// Arm the writer with a fault plan's archive injector (torn appends
    /// and mid-write kills).
    pub fn attach_faults(&mut self, plan: &FaultPlan) {
        self.injector = Some(plan.store_injector());
    }

    /// Archive statistics so far.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Payload bytes currently live (committed minus pruned).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Streams currently committed and live in the index.
    pub fn live_streams(&self) -> usize {
        self.records.len()
    }

    /// Snapshot of the writer's telemetry registry (store counters plus
    /// the `store` seal-span histogram).
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.tele.snapshot()
    }

    /// The writer's flight recorder: archive-layer events (segments
    /// created, streams sealed) with stream provenance.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Observe a stream creation.
    pub fn stream_created(&mut self, s: &StreamSnapshot) {
        self.pending.entry(s.uid).or_insert_with(|| Pending {
            data: [Vec::new(), Vec::new()],
        });
    }

    /// Observe a data delivery: `data` starts at stream `offset` in
    /// direction `dir`. Chunks arrive in order; an offset below the
    /// buffered length (chunk overlap) overwrites, a gap (sequence holes
    /// skipped in fast mode) is zero-filled.
    pub fn stream_data(&mut self, s: &StreamSnapshot, dir: Direction, data: &[u8], offset: u64) {
        let p = self.pending.entry(s.uid).or_insert_with(|| Pending {
            data: [Vec::new(), Vec::new()],
        });
        let buf = &mut p.data[dir.index()];
        let off = offset as usize;
        let end = off + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[off..end].copy_from_slice(data);
    }

    /// Observe a stream termination: seal its buffered bytes into
    /// segment frames and commit the index record. Payload frames are
    /// flushed *before* the record, so a crash in between leaves only
    /// orphan frames, never a record pointing at missing data.
    pub fn stream_terminated(&mut self, s: &StreamSnapshot) -> Result<(), StoreError> {
        let r = self.seal(s);
        if r.is_err() {
            self.stats.write_errors += 1;
        }
        r
    }

    /// Feed one dispatch-path event (synchronous kernel drives).
    pub fn observe(&mut self, ev: &Event) -> Result<(), StoreError> {
        match &ev.kind {
            EventKind::Created => {
                self.stream_created(&ev.stream);
                Ok(())
            }
            EventKind::Data { dir, chunk, .. } => {
                self.stream_data(&ev.stream, *dir, chunk.bytes(), chunk.start_offset);
                Ok(())
            }
            EventKind::Terminated => self.stream_terminated(&ev.stream),
        }
    }

    fn seal(&mut self, s: &StreamSnapshot) -> Result<(), StoreError> {
        if self.dead {
            return Err(StoreError::Dead);
        }
        self.last_ts_ns = s.last_ts_ns;
        let span = SpanTimer::start();
        let data = self
            .pending
            .remove(&s.uid)
            .map(|p| p.data)
            .unwrap_or_default();
        let mut extents = [Extent::default(); 2];
        for (di, payload) in data.iter().enumerate() {
            if payload.is_empty() {
                continue;
            }
            extents[di] = self.append_frame(s.uid, di, payload)?;
        }
        if let Some(f) = self.seg.as_mut() {
            f.flush()?;
        }
        let rec = IndexRecord::from_snapshot(s, extents);
        self.idx
            .write_all(&frame_record(&encode_stream_body(&rec)))?;
        self.idx.flush()?;

        let stored = rec.stored_bytes();
        self.live_bytes += stored;
        self.stats.streams_archived += 1;
        self.stats.bytes_archived += stored;
        let p = self.stats.by_priority.entry(rec.priority).or_default();
        p.archived += 1;
        p.live_bytes += stored;
        self.tele.inc(0, Metric::StoreStreamsArchived);
        self.flight.emit(
            0,
            FlightEvent::new(
                FlightKind::StoreStreamArchived,
                FlightLayer::Store,
                s.last_ts_ns,
            )
            .with_uid(s.uid)
            .with_vals(stored, 0),
        );
        self.records.insert(rec.uid, rec);
        self.enforce_budget()?;
        span.finish(&self.tele, 0, Stage::Store);
        // Pulse: seal span from the deterministic cost model (the wall
        // span above is not seed-stable; this one is).
        let seal_ns = cycles_to_ns(cost::store_seal_cycles(stored));
        if self.pulse.record_uid(
            PulseStage::StoreSeal,
            seal_ns,
            s.uid,
            self.flight.total_recorded(),
        ) {
            self.flight.emit(
                0,
                FlightEvent::new(FlightKind::PulseExemplar, FlightLayer::Store, s.last_ts_ns)
                    .with_uid(s.uid)
                    .with_vals(PulseStage::StoreSeal.idx() as u64, seal_ns),
            );
        }
        Ok(())
    }

    /// Export the writer's pulse plane (store-seal spans).
    pub fn pulse_snapshot(&self) -> PulseSnapshot {
        self.pulse.snapshot()
    }

    fn open_segment(&mut self) -> Result<(), StoreError> {
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        let mut f = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(segment_path(&self.cfg.dir, id))?,
        );
        f.write_all(&file_header(SEG_MAGIC, id))?;
        self.seg = Some(f);
        self.seg_id = id;
        self.seg_len = FILE_HEADER_LEN as u64;
        self.stats.segments_created += 1;
        self.tele.inc(0, Metric::StoreSegmentsCreated);
        self.flight.emit(
            0,
            FlightEvent::new(
                FlightKind::StoreSegmentCreated,
                FlightLayer::Store,
                self.last_ts_ns,
            )
            .with_vals(id, 0),
        );
        Ok(())
    }

    fn append_frame(
        &mut self,
        uid: StreamUid,
        dir_idx: usize,
        payload: &[u8],
    ) -> Result<Extent, StoreError> {
        if self.seg.is_some() && self.seg_len >= self.cfg.segment_bytes {
            let mut f = self.seg.take().unwrap();
            f.flush()?;
        }
        if self.seg.is_none() {
            self.open_segment()?;
        }
        let dir = if dir_idx == 0 {
            Direction::Forward
        } else {
            Direction::Reverse
        };
        let header = frame_header(uid, dir, payload);
        let fault = self
            .injector
            .as_mut()
            .map_or(StoreFault::None, StoreInjector::on_append);
        let offset = self.seg_len;
        let f = self.seg.as_mut().expect("segment open");
        match fault {
            StoreFault::TornAppend => {
                // The writer dies mid-append: only a prefix of the frame
                // reaches disk. Recovery must cut exactly this tail.
                f.write_all(&header)?;
                f.write_all(&payload[..payload.len() / 2])?;
                f.flush()?;
                self.dead = true;
                Err(StoreError::Injected(StoreFault::TornAppend))
            }
            StoreFault::Kill => {
                // The frame lands intact but the writer dies before the
                // index record: recovery sees a valid orphan frame.
                f.write_all(&header)?;
                f.write_all(payload)?;
                f.flush()?;
                self.dead = true;
                Err(StoreError::Injected(StoreFault::Kill))
            }
            StoreFault::None => {
                f.write_all(&header)?;
                f.write_all(payload)?;
                self.seg_len += (FRAME_HEADER_LEN + payload.len()) as u64;
                self.tele
                    .add(0, Metric::StoreBytesWritten, payload.len() as u64);
                Ok(Extent {
                    segment: self.seg_id,
                    offset,
                    len: payload.len() as u64,
                })
            }
        }
    }

    /// Tombstone lowest-priority / most-truncated / oldest streams until
    /// the live payload fits the budget — the PPL ordering on disk.
    fn enforce_budget(&mut self) -> Result<(), StoreError> {
        let Some(budget) = self.cfg.disk_budget else {
            return Ok(());
        };
        while self.live_bytes > budget {
            let victim = self
                .records
                .values()
                .min_by_key(|r| {
                    (
                        r.priority,
                        u8::from(!r.cutoff_exceeded),
                        r.first_ts_ns,
                        r.uid,
                    )
                })
                .map(|r| r.uid);
            let Some(uid) = victim else { break };
            let rec = self.records.remove(&uid).expect("victim exists");
            self.idx
                .write_all(&frame_record(&encode_tombstone_body(uid)))?;
            self.idx.flush()?;
            self.tombstones += 1;
            let bytes = rec.stored_bytes();
            self.live_bytes -= bytes;
            self.stats.streams_pruned += 1;
            self.stats.bytes_pruned += bytes;
            let p = self.stats.by_priority.entry(rec.priority).or_default();
            p.pruned += 1;
            p.live_bytes -= bytes;
            self.tele.inc(0, Metric::StoreStreamsPruned);
        }
        Ok(())
    }

    /// Rewrite the archive without its dead weight: live payloads move
    /// into fresh segments (ids stay monotonic), a new tombstone-free
    /// index replaces the old one atomically (write-to-temp + rename),
    /// and the old segment files are deleted. No-op on a writer killed
    /// by an injected fault.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        if self.dead {
            return Err(StoreError::Dead);
        }
        // Read every live payload back before touching anything.
        let mut payloads: Vec<(StreamUid, [Vec<u8>; 2])> = Vec::with_capacity(self.records.len());
        for r in self.records.values() {
            let mut both = [Vec::new(), Vec::new()];
            for (di, e) in r.extents.iter().enumerate() {
                if e.len > 0 {
                    both[di] = crate::format::read_extent(&self.cfg.dir, r.uid, di as u8, e)?;
                }
            }
            payloads.push((r.uid, both));
        }
        let old_segments: Vec<PathBuf> = {
            let mut v = Vec::new();
            for entry in std::fs::read_dir(&self.cfg.dir)? {
                let entry = entry?;
                if entry
                    .file_name()
                    .to_str()
                    .and_then(parse_segment_file_name)
                    .is_some()
                {
                    v.push(entry.path());
                }
            }
            v.sort();
            v
        };
        let old_bytes: u64 = old_segments
            .iter()
            .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();

        // Rewrite payloads into fresh segments.
        if let Some(mut f) = self.seg.take() {
            f.flush()?;
        }
        let mut new_bytes = 0u64;
        for (uid, both) in payloads {
            let mut extents = [Extent::default(); 2];
            for (di, payload) in both.iter().enumerate() {
                if payload.is_empty() {
                    continue;
                }
                extents[di] = self.append_frame(uid, di, payload)?;
                new_bytes += (FRAME_HEADER_LEN + payload.len()) as u64;
            }
            if let Some(r) = self.records.get_mut(&uid) {
                r.extents = extents;
            }
        }
        if let Some(mut f) = self.seg.take() {
            f.flush()?;
        }

        // Atomically swap in a tombstone-free index.
        let tmp = self.cfg.dir.join("index.scapidx.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(&file_header(IDX_MAGIC, 0))?;
            for r in self.records.values() {
                w.write_all(&frame_record(&encode_stream_body(r)))?;
            }
            w.flush()?;
        }
        let idx_path = self.cfg.dir.join(INDEX_FILE);
        self.idx.flush()?;
        std::fs::rename(&tmp, &idx_path)?;
        self.idx = BufWriter::new(OpenOptions::new().append(true).open(&idx_path)?);
        self.tombstones = 0;

        for p in old_segments {
            std::fs::remove_file(p)?;
        }
        let reclaimed = old_bytes.saturating_sub(new_bytes);
        self.stats.bytes_reclaimed += reclaimed;
        self.tele.add(0, Metric::StoreBytesReclaimed, reclaimed);
        Ok(())
    }

    /// Compact away any retention tombstones and flush both files.
    /// Returns the final statistics. Streams that never saw a
    /// termination event stay unsealed — the kernel's own `finish()`
    /// terminates every stream at capture end, so pending entries here
    /// mean an abnormal shutdown and there is no final snapshot to
    /// commit for them.
    pub fn finish(&mut self) -> Result<StoreStats, StoreError> {
        if self.tombstones > 0 {
            self.compact()?;
        }
        if let Some(f) = self.seg.as_mut() {
            f.flush()?;
        }
        self.idx.flush()?;
        Ok(self.stats.clone())
    }
}

/// A cloneable, thread-safe handle to a [`StoreWriter`], implementing
/// [`EventSink`] so it can ride the live driver's dispatch path
/// (`Scap::attach_sink`). Sink callbacks swallow errors — an injected
/// fault or I/O failure kills the archive, not the capture — and count
/// them in [`StoreStats::write_errors`].
#[derive(Clone)]
pub struct SharedStoreWriter(Arc<Mutex<StoreWriter>>);

impl SharedStoreWriter {
    /// Wrap a writer for sharing with capture worker threads.
    pub fn new(w: StoreWriter) -> Self {
        SharedStoreWriter(Arc::new(Mutex::new(w)))
    }

    /// Run `f` against the underlying writer.
    pub fn with<R>(&self, f: impl FnOnce(&mut StoreWriter) -> R) -> R {
        let mut g = self.0.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut g)
    }

    /// Seal, compact, flush; returns the final statistics.
    pub fn finish(&self) -> Result<StoreStats, StoreError> {
        self.with(StoreWriter::finish)
    }

    /// Current archive statistics.
    pub fn stats(&self) -> StoreStats {
        self.with(|w| w.stats().clone())
    }
}

impl EventSink for SharedStoreWriter {
    fn on_created(&self, s: &StreamSnapshot) {
        self.with(|w| w.stream_created(s));
    }
    fn on_data(&self, s: &StreamSnapshot, dir: Direction, data: &[u8], offset: u64) {
        self.with(|w| w.stream_data(s, dir, data, offset));
    }
    fn on_terminated(&self, s: &StreamSnapshot) {
        self.with(|w| {
            let _ = w.stream_terminated(s);
        });
    }
}
