//! scaptop — a `top`-style live dashboard over a Scap capture.
//!
//! Drives the kernel synchronously over a pcap file (or a synthetic
//! campus trace) and redraws a terminal dashboard every `--interval`
//! packets: per-queue rates, overload-governor level, arena occupancy,
//! the flight recorder's drop breakdown by layer and reason, and the
//! top-K streams by delivered bytes.
//!
//! On a TTY each frame repaints in place (ANSI clear); when stdout is a
//! pipe the frames print sequentially, which is what the CI smoke run
//! consumes. All numbers are keyed on the trace's virtual clock, so the
//! same trace and seed render byte-identical frames; `--delay-ms` adds
//! wall-clock pacing between frames for watching live.
//!
//! ```text
//! scaptop trace.pcap                    # dashboard over a pcap
//! scaptop trace.pcap "tcp and port 80"  # with a BPF filter
//! scaptop --gen 8                       # synthetic 8 MB campus trace
//! scaptop --gen 8 --interval 2000 --topk 5 --cutoff 16384 --delay-ms 100
//! ```

use scap::telemetry::{Gauge, Metric, Snapshot};
use scap::{EventKind, ScapConfig, ScapKernel};
use scap_flight::{attribution, FlightKind};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::pcap::PcapReader;
use scap_trace::Packet;
use std::collections::HashMap;
use std::io::{IsTerminal, Write};

fn die(msg: &str) -> ! {
    eprintln!("scaptop: {msg}");
    std::process::exit(2);
}

/// Per-queue counters remembered from the previous frame, for rates.
#[derive(Clone, Copy, Default)]
struct QueuePrev {
    pkts: u64,
    bytes: u64,
}

struct Dashboard {
    interval: u64,
    topk: usize,
    delay_ms: u64,
    ansi: bool,
    prev_ts_ns: u64,
    prev_queues: Vec<QueuePrev>,
    /// uid -> (flow key, delivered bytes), fed by Data events.
    streams: HashMap<u64, (String, u64)>,
}

impl Dashboard {
    fn render(&mut self, kernel: &ScapKernel, fed: usize, total: usize, now_ns: u64) {
        let snap: Snapshot = kernel.telemetry_snapshot();
        let mut out = String::new();
        if self.ansi {
            out.push_str("\x1b[2J\x1b[H");
        }
        let dt = (now_ns.saturating_sub(self.prev_ts_ns)) as f64 / 1e9;
        out.push_str(&format!(
            "scaptop — {fed}/{total} packets | trace time {:.3} s | wire {} pkts / {} B | {} streams tracked\n\n",
            now_ns as f64 / 1e9,
            snap.total(Metric::WirePackets),
            snap.total(Metric::WireBytes),
            snap.gauge(0, Gauge::TrackedStreams),
        ));

        // Per-queue delivered rates over the last frame window (virtual
        // time). Delivered counters are sharded per core/queue; wire
        // counters live on shard 0 and show up in the header instead.
        out.push_str(
            "queue delivered      bytes    pkt/s (window)  Mbit/s (window)  streams  backlog\n",
        );
        let nq = kernel.ncores();
        self.prev_queues.resize(nq, QueuePrev::default());
        for q in 0..nq {
            let pkts = snap.counter(q, Metric::DeliveredPackets);
            let bytes = snap.counter(q, Metric::DeliveredBytes);
            let prev = self.prev_queues[q];
            let (dp, db) = (pkts - prev.pkts, bytes - prev.bytes);
            let (rate_p, rate_b) = if dt > 0.0 {
                (dp as f64 / dt, db as f64 * 8.0 / dt / 1e6)
            } else {
                (0.0, 0.0)
            };
            out.push_str(&format!(
                "  q{q:<3} {pkts:>9} {bytes:>10} {rate_p:>15.0} {rate_b:>16.2} {streams:>8} {backlog:>8}\n",
                streams = kernel.tracked_streams(q),
                backlog = kernel.event_backlog(q),
            ));
            self.prev_queues[q] = QueuePrev { pkts, bytes };
        }
        self.prev_ts_ns = now_ns;

        // Gauges: governor, arena, backlog, ring fill.
        let arena = snap.gauge(0, Gauge::ArenaUsedPermille);
        let ring = snap.gauge(0, Gauge::RingFillPermille);
        out.push_str(&format!(
            "\ngovernor level {}   arena {} [{}]   ring fill {}   event backlog {}   fdir filters {}\n",
            snap.gauge(0, Gauge::GovernorLevel),
            permille(arena),
            bar(arena),
            permille(ring),
            snap.gauge(0, Gauge::EventBacklog),
            snap.gauge(0, Gauge::FdirFilters),
        ));

        // Drop breakdown straight from the flight recorder.
        let events = kernel.flight().events();
        out.push_str("\nloss attribution (flight recorder)\n");
        let rows = attribution(&events);
        if rows.is_empty() {
            out.push_str("  no losses recorded\n");
        }
        for r in rows.iter().take(6) {
            out.push_str(&format!(
                "  {:<8} {:<12} {:<16} {:>8} events {:>10} pkts {:>12} bytes\n",
                r.kind.name(),
                r.layer.name(),
                r.reason.name(),
                r.events,
                r.pkts,
                r.bytes,
            ));
        }
        let overwritten: u64 = kernel.flight().total_dropped();
        if overwritten > 0 {
            out.push_str(&format!(
                "  (+{overwritten} journal events overwritten by ring wrap)\n"
            ));
        }

        // Top-K streams by delivered bytes.
        out.push_str(&format!("\ntop {} streams by delivered bytes\n", self.topk));
        let mut top: Vec<(&u64, &(String, u64))> = self.streams.iter().collect();
        top.sort_by_key(|(uid, (_, b))| (std::cmp::Reverse(*b), **uid));
        for (uid, (key, bytes)) in top.into_iter().take(self.topk) {
            out.push_str(&format!("  uid {uid:<6} {key:<48} {bytes:>12}\n"));
        }

        let mut w = std::io::stdout().lock();
        let _ = w.write_all(out.as_bytes());
        if !self.ansi {
            let _ = w.write_all(b"----\n");
        }
        let _ = w.flush();
        if self.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
        }
    }
}

fn permille(v: u64) -> String {
    format!("{}.{}%", v / 10, v % 10)
}

fn bar(permille: u64) -> String {
    let filled = (permille.min(1000) / 100) as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(10 - filled))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: scaptop [file.pcap] [filter] [--gen MB] [--interval PKTS] \
             [--topk N] [--cutoff BYTES] [--delay-ms MS] [--seed N]"
        );
        std::process::exit(0);
    }

    let mut gen_mb: Option<u64> = None;
    let mut interval: u64 = 1000;
    let mut topk: usize = 10;
    let mut cutoff: Option<u64> = None;
    let mut delay_ms: u64 = 0;
    let mut seed: u64 = 42;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    let numarg = |args: &[String], i: usize, name: &str| -> u64 {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{name} needs a number")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--gen" => {
                i += 1;
                gen_mb = Some(numarg(&args, i, "--gen"));
            }
            "--interval" => {
                i += 1;
                interval = numarg(&args, i, "--interval").max(1);
            }
            "--topk" => {
                i += 1;
                topk = numarg(&args, i, "--topk") as usize;
            }
            "--cutoff" => {
                i += 1;
                cutoff = Some(numarg(&args, i, "--cutoff"));
            }
            "--delay-ms" => {
                i += 1;
                delay_ms = numarg(&args, i, "--delay-ms");
            }
            "--seed" => {
                i += 1;
                seed = numarg(&args, i, "--seed");
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }

    let packets: Vec<Packet> = match (gen_mb, positional.first()) {
        (Some(mb), _) => CampusMix::new(CampusMixConfig::sized(seed, mb << 20)).collect_all(),
        (None, Some(path)) => {
            let f = std::fs::File::open(path)
                .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
            PcapReader::new(f)
                .unwrap_or_else(|e| die(&format!("not a pcap file: {e}")))
                .read_all()
                .unwrap_or_else(|e| die(&format!("read error: {e}")))
        }
        (None, None) => die("no pcap file given (or use --gen MB)"),
    };
    let filter_expr = if gen_mb.is_some() {
        positional.first().map(|s| s.as_str()).unwrap_or("")
    } else {
        positional.get(1).map(|s| s.as_str()).unwrap_or("")
    };

    let mut config = ScapConfig {
        use_fdir: true,
        ..ScapConfig::default()
    };
    if !filter_expr.is_empty() {
        config.filter = Some(
            scap_filter::Filter::new(filter_expr)
                .unwrap_or_else(|e| die(&format!("bad filter expression: {e}"))),
        );
    }
    if let Some(c) = cutoff {
        config.cutoff.default = Some(c);
    }
    let mut kernel = ScapKernel::new(config);

    let mut dash = Dashboard {
        interval,
        topk,
        delay_ms,
        ansi: std::io::stdout().is_terminal(),
        prev_ts_ns: 0,
        prev_queues: Vec::new(),
        streams: HashMap::new(),
    };

    let total = packets.len();
    let mut now = 0u64;
    for (i, pkt) in packets.iter().enumerate() {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    let e = dash
                        .streams
                        .entry(ev.stream.uid)
                        .or_insert_with(|| (ev.stream.key.to_string(), 0));
                    e.1 += chunk.len as u64;
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        if ((i + 1) as u64).is_multiple_of(dash.interval) {
            dash.render(&kernel, i + 1, total, now);
        }
    }
    kernel.finish(now.saturating_add(1));
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                let e = dash
                    .streams
                    .entry(ev.stream.uid)
                    .or_insert_with(|| (ev.stream.key.to_string(), 0));
                e.1 += chunk.len as u64;
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }
    dash.render(&kernel, total, total, now.saturating_add(1));

    let s = kernel.stats();
    let events = kernel.flight().events();
    println!(
        "\ncapture complete: {} packets | {} streams | {} payload bytes | {}",
        s.stack.wire_packets,
        s.stack.streams_reported,
        s.stack.delivered_bytes,
        scap_flight::top_reasons_line(&events, 3),
    );
    // Sanity line the smoke gate greps: restarts vs journal must agree.
    let restart_events = events
        .iter()
        .filter(|e| e.kind == FlightKind::Restarted)
        .count() as u64;
    if restart_events != s.resilience.restarts {
        eprintln!(
            "scaptop: restart counter {} disagrees with journal {}",
            s.resilience.restarts, restart_events
        );
        std::process::exit(1);
    }
}
