//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *deterministic subset* of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! * [`Rng::random`] for `f64`, `bool`, and the unsigned integers
//! * [`Rng::random_range`] over half-open and inclusive integer ranges
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and stable across platforms, which is all the workspace needs
//! (every consumer seeds explicitly and expects reproducible streams).
//! It intentionally does **not** promise value-stream compatibility with
//! upstream `rand`; seeds were never portable across rand versions either.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their whole domain
/// (the `StandardUniform` distribution of rand 0.9).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformSampled: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(mod_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                low.wrapping_add(mod_u128(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformSampled for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Widely-applicable modulo reduction; spans are tiny relative to 2^64 in
/// practice, so simple rejection keeps the distribution exactly uniform.
fn mod_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection sampling over a 64-bit draw (spans here always fit u64).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span64) as u128;
        }
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSampled> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], like upstream rand).
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard uniform distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from an integer (or f64) range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.random_range(0..=5usize);
            assert!(w <= 5);
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
