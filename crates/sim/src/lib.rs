#![warn(missing_docs)]

//! # scap-sim
//!
//! The performance-simulation substrate that stands in for the paper's
//! 10GbE testbed (two Xeon machines, a hardware traffic generator, and
//! CPU performance counters).
//!
//! The capture stacks in this workspace are *real* implementations — real
//! flow tables, real TCP reassembly, real pattern matching. What cannot
//! be real on one developer machine is the load: 6 Gbit/s of replayed
//! traffic against fixed CPU capacity. This crate supplies that as a
//! **discrete-time fluid simulation**:
//!
//! * time advances in fixed ticks (default 1 ms of simulated time);
//! * each simulated core has a cycle budget per tick ([`CoreBudgets`]);
//!   software-interrupt (kernel) work has priority — it preempts user
//!   work on the same core, exactly as softirqs do;
//! * every operation the real code performs is reported as a
//!   [`Work`] receipt (bytes copied at each boundary, hash probes,
//!   events, filter updates, pattern-matched bytes) and converted to
//!   cycles by a single calibrated [`CostModel`] shared by *all* stacks —
//!   Scap gains nothing the baselines are not also granted;
//! * queues between the stages are finite, so when a stage falls behind,
//!   packets drop — the paper's overload mechanism — and because the
//!   real stack code never sees dropped packets, stream-level damage
//!   (lost streams, broken reassembly, missed matches) emerges naturally
//!   rather than being modelled.
//!
//! [`cache`] adds a set-associative LRU cache model used to reproduce the
//! locality experiment (Fig. 7): stacks trace their memory touches
//! (shared ring vs. per-stream buffers) and the model counts misses.

pub mod budgets;
pub mod cache;
pub mod cost;
pub mod engine;

pub use budgets::CoreBudgets;
pub use cache::CacheSim;
pub use cost::{CostModel, Work};
pub use engine::{CaptureStack, Engine, EngineConfig, EngineReport, StackStats};
