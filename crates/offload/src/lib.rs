#![warn(missing_docs)]

//! # scap-offload
//!
//! A programmable per-flow offload engine: the modern generalization of
//! the 82599's fixed 8 K-entry Flow Director table into a million-entry
//! flow table with per-flow *actions*, following "Advancements in
//! Traffic Processing Using Programmable Hardware Flow Offload" (Deri
//! et al.).
//!
//! Where an FDIR drop filter needs four perfect-match entries per stream
//! (two flag patterns × two directions) and can only drop or steer, one
//! offload rule matches the *bidirectional* flow (canonical key, the
//! same symmetric hash RSS uses) and carries one of four actions:
//!
//! * [`OffloadAction::Drop`] — subzero-copy cutoff: matching data
//!   packets never cost a softirq (today's FDIR behaviour, 4× denser).
//! * [`OffloadAction::Bypass`] — shunt past the kernel straight to
//!   delivery accounting (flows the application wants counted, not
//!   reassembled).
//! * [`OffloadAction::Mark`] — tag the flow with a priority/class the
//!   kernel's PPL consumes at stream creation.
//! * [`OffloadAction::Sample`] — deterministic 1-in-N per-flow
//!   sampling: every N-th packet reaches the host, the rest are
//!   dropped in hardware.
//!
//! Like the real hardware, drop-class actions **punt TCP control
//! packets** (SYN/FIN/RST) to the host so the kernel still observes
//! connection setup and teardown — the property Scap's FIN/RST-based
//! flow-size estimation depends on (§5.5 of the paper).
//!
//! The table itself is the open-addressed cache-line-packed layout of
//! the kernel flow table (ctrl-tag groups, parallel hash array), but
//! **fixed-capacity**: hardware tables do not rehash. Pressure is
//! handled by tiered, priority-aware clock eviction
//! ([`OffloadTable::evict_tiered`]), and evicted rules fold their
//! per-rule hit/byte counters into table-wide aggregates so offload
//! accounting never loses a frame.

mod table;

pub use table::{OffloadStats, OffloadTable, GROUP};

use scap_wire::FlowKey;

/// Default rule capacity: a million flows, the scale modern smart-NIC
/// flow tables actually offer (vs. FDIR's 8 K).
pub const DEFAULT_OFFLOAD_CAPACITY: usize = 1 << 20;

/// Per-flow action a rule programs into the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadAction {
    /// Deliver nothing to the kernel; account matching frames as
    /// *delivered* (the flow is complete from the application's point
    /// of view — e.g. it only wants volume counters).
    Bypass,
    /// Drop matching data packets in hardware (subzero-copy cutoff).
    Drop,
    /// Let packets through but tag the flow with a priority/class the
    /// PPL consumes when the stream is created.
    Mark(u8),
    /// Deterministic per-flow sampling: keep every N-th matching
    /// packet, drop the rest in hardware. `Sample(1)` keeps everything.
    Sample(u32),
}

impl OffloadAction {
    /// True for actions that can drop frames at the NIC (and therefore
    /// punt TCP control packets to the host).
    pub fn can_drop(&self) -> bool {
        !matches!(self, OffloadAction::Mark(_))
    }

    /// Stable wire encoding of the action discriminant (checkpoints).
    pub fn discriminant(&self) -> u8 {
        match self {
            OffloadAction::Bypass => 0,
            OffloadAction::Drop => 1,
            OffloadAction::Mark(_) => 2,
            OffloadAction::Sample(_) => 3,
        }
    }
}

/// One installed offload rule: a bidirectional flow plus its action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadRule {
    /// The flow the rule matches; stored canonicalized, so it matches
    /// both directions of the connection.
    pub key: FlowKey,
    /// What the NIC does with matching frames.
    pub action: OffloadAction,
    /// Eviction tier: under table pressure, low-priority rules go
    /// first ([`OffloadTable::evict_tiered`]).
    pub priority: u8,
}

impl OffloadRule {
    /// A rule with the key canonicalized (both directions match).
    pub fn new(key: FlowKey, action: OffloadAction, priority: u8) -> Self {
        OffloadRule {
            key: key.canonical().0,
            action,
            priority,
        }
    }
}

/// What the offload stage decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadVerdict {
    /// Account as delivered at the NIC; the kernel never sees it.
    Bypass,
    /// Drop in hardware (subzero copy).
    Drop,
    /// Deliver normally, tagged with this priority/class.
    Mark(u8),
    /// Sampled flow, and this packet is one of the kept 1-in-N.
    SampleKeep,
    /// Sampled flow, and this packet is dropped in hardware.
    SampleDrop,
}

/// Errors from rule-table operations (mirrors `FdirError`, so the
/// kernel's install/retry path composes over both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadError {
    /// The table is at rule capacity; the caller must evict first.
    TableFull,
    /// A rule for this flow already exists.
    Duplicate,
    /// No rule installed for this flow.
    NotFound,
    /// The programming interface transiently failed; retry later.
    Busy,
}

impl core::fmt::Display for OffloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OffloadError::TableFull => write!(f, "offload table full"),
            OffloadError::Duplicate => write!(f, "offload rule already installed"),
            OffloadError::NotFound => write!(f, "offload rule not installed"),
            OffloadError::Busy => write!(f, "offload programming transiently failed"),
        }
    }
}

impl std::error::Error for OffloadError {}
