//! AST → classic-BPF compiler.
//!
//! Generates short-circuit control-flow code the way tcpdump's optimizer
//! lays it out: every subexpression is compiled against a *true label* and
//! a *false label*; jumps are emitted symbolically and resolved to relative
//! offsets in a final pass. All jumps are forward, so the verifier's
//! termination argument holds by construction.

use crate::ast::{v4_mask, Expr, Primitive, ProtoKind, Qual};
use crate::bytecode::{BpfProgram, Instr};
use crate::FilterError;

// Frame-layout offsets (Ethernet II, no VLAN).
const OFF_ETHERTYPE: u32 = 12;
const OFF_IP4: u32 = 14;
const OFF_IP4_FRAG: u32 = OFF_IP4 + 6;
const OFF_IP4_PROTO: u32 = OFF_IP4 + 9;
const OFF_IP4_SRC: u32 = OFF_IP4 + 12;
const OFF_IP4_DST: u32 = OFF_IP4 + 16;
const OFF_IP6_NEXT: u32 = OFF_IP4 + 6;
const OFF_IP6_SPORT: u32 = OFF_IP4 + 40;
const OFF_IP6_DPORT: u32 = OFF_IP4 + 42;

const ETH_IP4: u32 = 0x0800;
const ETH_IP6: u32 = 0x86DD;

type Label = usize;

#[derive(Debug, Clone, Copy)]
enum JmpKind {
    Eq,
    Gt,
    Ge,
    Set,
}

#[derive(Debug, Clone, Copy)]
enum LInstr {
    Ins(Instr),
    Jmp(JmpKind, u32, Label, Label),
    Ja(Label),
}

#[derive(Default)]
struct Gen {
    code: Vec<LInstr>,
    labels: Vec<Option<usize>>,
}

impl Gen {
    fn fresh(&mut self) -> Label {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.code.len());
    }

    fn ins(&mut self, i: Instr) {
        self.code.push(LInstr::Ins(i));
    }

    fn jmp(&mut self, kind: JmpKind, k: u32, jt: Label, jf: Label) {
        self.code.push(LInstr::Jmp(kind, k, jt, jf));
    }

    fn ja(&mut self, l: Label) {
        self.code.push(LInstr::Ja(l));
    }

    fn resolve(self) -> Result<Vec<Instr>, FilterError> {
        let lookup = |l: Label, at: usize| -> Result<u32, FilterError> {
            let target = self.labels[l].ok_or_else(|| {
                FilterError::Verify(format!("unbound label {l} at instruction {at}"))
            })?;
            if target <= at {
                return Err(FilterError::Verify(format!(
                    "backward jump to {target} from {at}"
                )));
            }
            Ok((target - at - 1) as u32)
        };
        let mut out = Vec::with_capacity(self.code.len());
        for (i, li) in self.code.iter().enumerate() {
            out.push(match *li {
                LInstr::Ins(ins) => ins,
                LInstr::Ja(l) => Instr::Ja(lookup(l, i)?),
                LInstr::Jmp(kind, k, jt, jf) => {
                    let (t, f) = (lookup(jt, i)?, lookup(jf, i)?);
                    match kind {
                        JmpKind::Eq => Instr::Jeq(k, t, f),
                        JmpKind::Gt => Instr::Jgt(k, t, f),
                        JmpKind::Ge => Instr::Jge(k, t, f),
                        JmpKind::Set => Instr::Jset(k, t, f),
                    }
                }
            });
        }
        Ok(out)
    }
}

/// Compile an expression to a verified BPF program that returns 1 on match
/// and 0 otherwise.
pub fn compile(expr: &Expr) -> Result<BpfProgram, FilterError> {
    let mut g = Gen::default();
    let tt = g.fresh();
    let ff = g.fresh();
    gen_expr(&mut g, expr, tt, ff);
    g.bind(tt);
    g.ins(Instr::RetK(1));
    g.bind(ff);
    g.ins(Instr::RetK(0));
    let code = g.resolve()?;
    BpfProgram::new(code).map_err(|e| FilterError::Verify(e.to_string()))
}

fn gen_expr(g: &mut Gen, e: &Expr, tt: Label, ff: Label) {
    match e {
        Expr::Prim(p) => gen_prim(g, p, tt, ff),
        Expr::Not(inner) => gen_expr(g, inner, ff, tt),
        Expr::And(a, b) => {
            let mid = g.fresh();
            gen_expr(g, a, mid, ff);
            g.bind(mid);
            gen_expr(g, b, tt, ff);
        }
        Expr::Or(a, b) => {
            let mid = g.fresh();
            gen_expr(g, a, tt, mid);
            g.bind(mid);
            gen_expr(g, b, tt, ff);
        }
    }
}

fn gen_prim(g: &mut Gen, p: &Primitive, tt: Label, ff: Label) {
    match *p {
        Primitive::True => g.ja(tt),
        Primitive::Greater(n) => {
            g.ins(Instr::LdLen);
            g.jmp(JmpKind::Ge, n, tt, ff);
        }
        Primitive::Less(n) => {
            // len <= n  ⇔  !(len > n)
            g.ins(Instr::LdLen);
            g.jmp(JmpKind::Gt, n, ff, tt);
        }
        Primitive::Proto(ProtoKind::Ip) => {
            g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
            g.jmp(JmpKind::Eq, ETH_IP4, tt, ff);
        }
        Primitive::Proto(ProtoKind::Ip6) => {
            g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
            g.jmp(JmpKind::Eq, ETH_IP6, tt, ff);
        }
        Primitive::Proto(ProtoKind::Icmp) => {
            g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
            let v4 = g.fresh();
            g.jmp(JmpKind::Eq, ETH_IP4, v4, ff);
            g.bind(v4);
            g.ins(Instr::LdAbsB(OFF_IP4_PROTO));
            g.jmp(JmpKind::Eq, 1, tt, ff);
        }
        Primitive::Proto(ProtoKind::Tcp) => gen_l4_proto(g, 6, tt, ff),
        Primitive::Proto(ProtoKind::Udp) => gen_l4_proto(g, 17, tt, ff),
        Primitive::Host(q, addr) => gen_addr(g, q, u32::from_be_bytes(addr), u32::MAX, tt, ff),
        Primitive::Net(q, addr, prefix) => {
            let mask = v4_mask(prefix);
            gen_addr(g, q, u32::from_be_bytes(addr) & mask, mask, tt, ff)
        }
        Primitive::Port(q, port) => gen_port(g, q, u32::from(port), u32::from(port), tt, ff),
        Primitive::PortRange(q, lo, hi) => gen_port(g, q, u32::from(lo), u32::from(hi), tt, ff),
    }
}

/// Protocol test matching both IPv4 and IPv6 carriers.
fn gen_l4_proto(g: &mut Gen, proto: u32, tt: Label, ff: Label) {
    let try6 = g.fresh();
    let v4 = g.fresh();
    g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
    g.jmp(JmpKind::Eq, ETH_IP4, v4, try6);
    g.bind(v4);
    g.ins(Instr::LdAbsB(OFF_IP4_PROTO));
    g.jmp(JmpKind::Eq, proto, tt, ff);
    g.bind(try6);
    let v6 = g.fresh();
    g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
    g.jmp(JmpKind::Eq, ETH_IP6, v6, ff);
    g.bind(v6);
    g.ins(Instr::LdAbsB(OFF_IP6_NEXT));
    g.jmp(JmpKind::Eq, proto, tt, ff);
}

/// IPv4 address test (hosts are nets with a /32 mask).
fn gen_addr(g: &mut Gen, q: Qual, value: u32, mask: u32, tt: Label, ff: Label) {
    let v4 = g.fresh();
    g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
    g.jmp(JmpKind::Eq, ETH_IP4, v4, ff);
    g.bind(v4);
    let one = |g: &mut Gen, off: u32, t: Label, f: Label| {
        g.ins(Instr::LdAbsW(off));
        if mask != u32::MAX {
            g.ins(Instr::AluAnd(mask));
        }
        g.jmp(JmpKind::Eq, value, t, f);
    };
    match q {
        Qual::Src => one(g, OFF_IP4_SRC, tt, ff),
        Qual::Dst => one(g, OFF_IP4_DST, tt, ff),
        Qual::Either => {
            let try_dst = g.fresh();
            one(g, OFF_IP4_SRC, tt, try_dst);
            g.bind(try_dst);
            one(g, OFF_IP4_DST, tt, ff);
        }
    }
}

/// Transport port test with fragment suppression, for IPv4 and IPv6.
fn gen_port(g: &mut Gen, q: Qual, lo: u32, hi: u32, tt: Label, ff: Label) {
    // Range check on the value already in A.
    let range = |g: &mut Gen, t: Label, f: Label| {
        if lo == hi {
            g.jmp(JmpKind::Eq, lo, t, f);
        } else {
            let upper = g.fresh();
            g.jmp(JmpKind::Ge, lo, upper, f);
            g.bind(upper);
            // A <= hi  ⇔  !(A > hi)
            g.jmp(JmpKind::Gt, hi, f, t);
        }
    };

    let try6 = g.fresh();
    let v4 = g.fresh();
    g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
    g.jmp(JmpKind::Eq, ETH_IP4, v4, try6);

    // IPv4 path: proto must carry ports, packet must not be a later
    // fragment (ports live only in the first fragment), header length is
    // variable (ldx msh idiom).
    g.bind(v4);
    let proto_ok = g.fresh();
    let proto_ok2 = g.fresh();
    g.ins(Instr::LdAbsB(OFF_IP4_PROTO));
    g.jmp(JmpKind::Eq, 6, proto_ok, proto_ok2);
    g.bind(proto_ok2);
    g.jmp(JmpKind::Eq, 17, proto_ok, ff);
    g.bind(proto_ok);
    let not_frag = g.fresh();
    g.ins(Instr::LdAbsH(OFF_IP4_FRAG));
    g.jmp(JmpKind::Set, 0x1FFF, ff, not_frag);
    g.bind(not_frag);
    g.ins(Instr::LdxMsh(OFF_IP4));
    match q {
        Qual::Src => {
            g.ins(Instr::LdIndH(OFF_IP4));
            range(g, tt, ff);
        }
        Qual::Dst => {
            g.ins(Instr::LdIndH(OFF_IP4 + 2));
            range(g, tt, ff);
        }
        Qual::Either => {
            let try_dst = g.fresh();
            g.ins(Instr::LdIndH(OFF_IP4));
            range(g, tt, try_dst);
            g.bind(try_dst);
            g.ins(Instr::LdIndH(OFF_IP4 + 2));
            range(g, tt, ff);
        }
    }

    // IPv6 path: fixed 40-byte header, no extension-header walking (the
    // workloads in this workspace emit plain TCP/UDP-in-IPv6).
    g.bind(try6);
    let v6 = g.fresh();
    g.ins(Instr::LdAbsH(OFF_ETHERTYPE));
    g.jmp(JmpKind::Eq, ETH_IP6, v6, ff);
    g.bind(v6);
    let p_ok = g.fresh();
    let p_ok2 = g.fresh();
    g.ins(Instr::LdAbsB(OFF_IP6_NEXT));
    g.jmp(JmpKind::Eq, 6, p_ok, p_ok2);
    g.bind(p_ok2);
    g.jmp(JmpKind::Eq, 17, p_ok, ff);
    g.bind(p_ok);
    match q {
        Qual::Src => {
            g.ins(Instr::LdAbsH(OFF_IP6_SPORT));
            range(g, tt, ff);
        }
        Qual::Dst => {
            g.ins(Instr::LdAbsH(OFF_IP6_DPORT));
            range(g, tt, ff);
        }
        Qual::Either => {
            let try_dst = g.fresh();
            g.ins(Instr::LdAbsH(OFF_IP6_SPORT));
            range(g, tt, try_dst);
            g.bind(try_dst);
            g.ins(Instr::LdAbsH(OFF_IP6_DPORT));
            range(g, tt, ff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use scap_wire::{PacketBuilder, TcpFlags};

    fn run(filter: &str, frame: &[u8]) -> bool {
        let prog = compile(&parse(filter).unwrap()).unwrap();
        prog.run(frame) != 0
    }

    fn tcp_frame(src: [u8; 4], dst: [u8; 4], sp: u16, dp: u16) -> Vec<u8> {
        PacketBuilder::tcp_v4(src, dst, sp, dp, 1, 1, TcpFlags::ACK, b"data")
    }

    #[test]
    fn proto_tests() {
        let t = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 1000, 80);
        let u = PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 53, 53, b"x");
        assert!(run("tcp", &t));
        assert!(!run("udp", &t));
        assert!(run("udp", &u));
        assert!(run("ip", &t));
        assert!(!run("ip6", &t));
    }

    #[test]
    fn tcp_over_ipv6_matches() {
        let f = PacketBuilder::tcp_v6([1u8; 16], [2u8; 16], 1000, 80, 1, 1, TcpFlags::ACK, b"x");
        assert!(run("tcp", &f));
        assert!(run("ip6", &f));
        assert!(run("port 80", &f));
        assert!(run("src port 1000", &f));
        assert!(!run("port 81", &f));
        assert!(!run("ip", &f));
    }

    #[test]
    fn host_and_net() {
        let f = tcp_frame([10, 1, 2, 3], [192, 168, 0, 1], 5, 6);
        assert!(run("host 10.1.2.3", &f));
        assert!(run("host 192.168.0.1", &f));
        assert!(!run("host 10.1.2.4", &f));
        assert!(run("src host 10.1.2.3", &f));
        assert!(!run("dst host 10.1.2.3", &f));
        assert!(run("net 10.0.0.0/8", &f));
        assert!(run("dst net 192.168.0.0/16", &f));
        assert!(!run("src net 192.168.0.0/16", &f));
        assert!(run("net 0.0.0.0/0", &f));
    }

    #[test]
    fn ports_and_ranges() {
        let f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 40000, 443);
        assert!(run("port 443", &f));
        assert!(run("src port 40000", &f));
        assert!(!run("dst port 40000", &f));
        assert!(run("portrange 400-500", &f));
        assert!(run("portrange 40000-40000", &f));
        assert!(!run("portrange 444-500", &f));
        assert!(run("dst portrange 443-443", &f));
    }

    #[test]
    fn boolean_combinations() {
        let f = tcp_frame([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        assert!(run("tcp and port 80", &f));
        assert!(run("tcp or udp", &f));
        assert!(!run("tcp and port 81", &f));
        assert!(run("not udp", &f));
        assert!(run("tcp and (port 80 or port 443)", &f));
        assert!(run("not (udp or icmp)", &f));
    }

    #[test]
    fn length_primitives() {
        let f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 1, 2); // 54 + 4 bytes
        assert!(run("greater 58", &f));
        assert!(!run("greater 59", &f));
        assert!(run("less 58", &f));
        assert!(!run("less 57", &f));
    }

    #[test]
    fn port_filter_ignores_fragments() {
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 1000, 80);
        // Make it a later fragment: set fragment offset bits.
        f[14 + 6] = 0x00;
        f[14 + 7] = 0x10;
        assert!(!run("port 80", &f));
        // The pure protocol test still matches.
        assert!(run("tcp", &f));
    }

    #[test]
    fn non_ip_never_matches_l3_primitives() {
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(!run("tcp", &arp));
        assert!(!run("host 1.2.3.4", &arp));
        assert!(!run("port 80", &arp));
        assert!(run("not tcp", &arp));
    }

    #[test]
    fn truncated_frames_do_not_match() {
        let f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 1000, 80);
        assert!(!run("port 80", &f[..20]));
    }
}
