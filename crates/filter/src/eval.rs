//! Direct AST evaluation.
//!
//! Two evaluators:
//!
//! * [`matches_parsed`] evaluates against a decoded packet — semantically
//!   identical to the compiled BPF program, and used as the differential-
//!   testing oracle for the compiler;
//! * [`matches_key`] evaluates against a bare [`FlowKey`], for contexts
//!   where only the flow identity exists (per-class stream cutoffs applied
//!   when a stream is created). Length primitives cannot be decided from a
//!   key and evaluate to `false`.

use crate::ast::{v4_mask, Expr, Primitive, ProtoKind, Qual};
use scap_wire::{ip_proto, EtherType, FlowKey, IpAddrBytes, ParsedPacket, Transport};

/// Evaluate an expression against a decoded packet.
pub fn matches_parsed(e: &Expr, p: &ParsedPacket<'_>) -> bool {
    match e {
        Expr::Prim(prim) => prim_matches_parsed(prim, p),
        Expr::Not(inner) => !matches_parsed(inner, p),
        Expr::And(a, b) => matches_parsed(a, p) && matches_parsed(b, p),
        Expr::Or(a, b) => matches_parsed(a, p) || matches_parsed(b, p),
    }
}

/// Evaluate an expression against a flow key.
pub fn matches_key(e: &Expr, key: &FlowKey) -> bool {
    match e {
        Expr::Prim(prim) => prim_matches_key(prim, key),
        Expr::Not(inner) => !matches_key(inner, key),
        Expr::And(a, b) => matches_key(a, key) && matches_key(b, key),
        Expr::Or(a, b) => matches_key(a, key) || matches_key(b, key),
    }
}

fn v4_of(addr: IpAddrBytes) -> Option<u32> {
    match addr {
        IpAddrBytes::V4(a) => Some(u32::from_be_bytes(a)),
        IpAddrBytes::V6(_) => None,
    }
}

fn prim_matches_parsed(prim: &Primitive, p: &ParsedPacket<'_>) -> bool {
    match *prim {
        Primitive::True => true,
        Primitive::Greater(n) => p.frame.len() as u32 >= n,
        Primitive::Less(n) => p.frame.len() as u32 <= n,
        Primitive::Proto(ProtoKind::Ip) => p.ethertype == EtherType::Ipv4,
        Primitive::Proto(ProtoKind::Ip6) => p.ethertype == EtherType::Ipv6,
        Primitive::Proto(ProtoKind::Tcp) => p.ip_proto == Some(ip_proto::TCP),
        Primitive::Proto(ProtoKind::Udp) => p.ip_proto == Some(ip_proto::UDP),
        Primitive::Proto(ProtoKind::Icmp) => {
            p.ethertype == EtherType::Ipv4 && p.ip_proto == Some(ip_proto::ICMP)
        }
        Primitive::Host(..)
        | Primitive::Net(..)
        | Primitive::Port(..)
        | Primitive::PortRange(..) => {
            match &p.key {
                Some(key) => prim_matches_key(prim, key),
                // Address primitives on packets without a flow key (non-IP,
                // or IP without ports): hosts/nets could still match the IP
                // header, but the workloads only filter keyed traffic; the
                // compiled program agrees because it requires IPv4 + proto.
                None => false,
            }
        }
    }
}

fn prim_matches_key(prim: &Primitive, key: &FlowKey) -> bool {
    match *prim {
        Primitive::True => true,
        // Frame lengths are unknowable from a key.
        Primitive::Greater(_) | Primitive::Less(_) => false,
        Primitive::Proto(ProtoKind::Ip) => matches!(key.src(), IpAddrBytes::V4(_)),
        Primitive::Proto(ProtoKind::Ip6) => matches!(key.src(), IpAddrBytes::V6(_)),
        Primitive::Proto(ProtoKind::Tcp) => key.transport() == Transport::Tcp,
        Primitive::Proto(ProtoKind::Udp) => key.transport() == Transport::Udp,
        Primitive::Proto(ProtoKind::Icmp) => {
            key.transport() == Transport::Other(ip_proto::ICMP)
                && matches!(key.src(), IpAddrBytes::V4(_))
        }
        Primitive::Host(q, addr) => {
            let want = u32::from_be_bytes(addr);
            test_qual(q, v4_of(key.src()), v4_of(key.dst()), |a| a == want)
        }
        Primitive::Net(q, addr, prefix) => {
            let mask = v4_mask(prefix);
            let want = u32::from_be_bytes(addr) & mask;
            test_qual(q, v4_of(key.src()), v4_of(key.dst()), |a| a & mask == want)
        }
        Primitive::Port(q, port) => {
            if !has_ports(key) {
                return false;
            }
            test_qual(
                q,
                Some(u32::from(key.src_port())),
                Some(u32::from(key.dst_port())),
                |p| p == u32::from(port),
            )
        }
        Primitive::PortRange(q, lo, hi) => {
            if !has_ports(key) {
                return false;
            }
            test_qual(
                q,
                Some(u32::from(key.src_port())),
                Some(u32::from(key.dst_port())),
                |p| p >= u32::from(lo) && p <= u32::from(hi),
            )
        }
    }
}

fn has_ports(key: &FlowKey) -> bool {
    matches!(key.transport(), Transport::Tcp | Transport::Udp)
}

fn test_qual<T: Copy>(q: Qual, src: Option<T>, dst: Option<T>, pred: impl Fn(T) -> bool) -> bool {
    let t = |v: Option<T>| v.map(&pred).unwrap_or(false);
    match q {
        Qual::Src => t(src),
        Qual::Dst => t(dst),
        Qual::Either => t(src) || t(dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parse;
    use proptest::prelude::*;
    use scap_wire::{parse_frame, PacketBuilder, TcpFlags};

    /// All the filters the differential test exercises.
    const FILTERS: &[&str] = &[
        "",
        "tcp",
        "udp",
        "ip",
        "ip6",
        "icmp",
        "port 80",
        "src port 80",
        "dst port 80",
        "portrange 100-1000",
        "host 10.0.0.1",
        "src host 10.0.0.1",
        "dst net 10.0.0.0/8",
        "net 192.168.0.0/16",
        "tcp and port 80",
        "tcp or udp",
        "not tcp",
        "tcp and (src port 80 or dst port 80)",
        "udp and not dst net 10.0.0.0/24",
        "greater 100",
        "less 100",
    ];

    proptest! {
        /// The compiled BPF program and the AST evaluator agree on every
        /// generated packet, for every filter in the corpus.
        #[test]
        fn compiler_agrees_with_evaluator(
            src: [u8; 4], dst: [u8; 4], sp: u16, dp: u16,
            use_udp: bool, payload_len in 0usize..64
        ) {
            let payload = vec![0xABu8; payload_len];
            let frame = if use_udp {
                PacketBuilder::udp_v4(src, dst, sp, dp, &payload)
            } else {
                PacketBuilder::tcp_v4(src, dst, sp, dp, 1, 1, TcpFlags::ACK, &payload)
            };
            let parsed = parse_frame(&frame).unwrap();
            for f in FILTERS {
                let ast = parse(f).unwrap();
                let prog = compile(&ast).unwrap();
                let compiled = prog.run(&frame) != 0;
                let direct = matches_parsed(&ast, &parsed);
                prop_assert_eq!(compiled, direct, "filter {:?} disagrees", f);
            }
        }

        /// Key-based matching agrees with packet-based matching for
        /// key-decidable filters (no length primitives).
        #[test]
        fn key_matching_agrees_on_keyed_filters(
            src: [u8;4], dst: [u8;4], sp: u16, dp: u16, use_udp: bool
        ) {
            let frame = if use_udp {
                PacketBuilder::udp_v4(src, dst, sp, dp, b"x")
            } else {
                PacketBuilder::tcp_v4(src, dst, sp, dp, 1, 1, TcpFlags::ACK, b"x")
            };
            let parsed = parse_frame(&frame).unwrap();
            let key = parsed.key.unwrap();
            for f in FILTERS.iter().filter(|f| !f.contains("greater") && !f.contains("less")) {
                let ast = parse(f).unwrap();
                prop_assert_eq!(
                    matches_parsed(&ast, &parsed),
                    matches_key(&ast, &key),
                    "filter {:?} disagrees between packet and key", f
                );
            }
        }
    }

    #[test]
    fn key_matching_is_directional() {
        let frame = PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [20, 0, 0, 2],
            999,
            80,
            1,
            1,
            TcpFlags::ACK,
            b"",
        );
        let key = parse_frame(&frame).unwrap().key.unwrap();
        let rev = key.reversed();
        let ast = parse("src host 10.0.0.1").unwrap();
        assert!(matches_key(&ast, &key));
        assert!(!matches_key(&ast, &rev));
        let ast2 = parse("host 10.0.0.1").unwrap();
        assert!(matches_key(&ast2, &key));
        assert!(matches_key(&ast2, &rev));
    }

    #[test]
    fn length_prims_are_false_on_keys() {
        let frame =
            PacketBuilder::tcp_v4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 1, 1, TcpFlags::ACK, b"");
        let key = parse_frame(&frame).unwrap().key.unwrap();
        assert!(!matches_key(&parse("greater 0").unwrap(), &key));
        assert!(!matches_key(&parse("less 100000").unwrap(), &key));
    }
}
