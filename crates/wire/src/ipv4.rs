//! IPv4 packet view and header emission.

use crate::checksum;
use crate::{Result, WireError};

/// A read-only view over an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv4Packet<'a> {
    /// Minimum (option-less) IPv4 header length.
    pub const MIN_HEADER_LEN: usize = 20;

    /// Wrap `buf`, validating version, header length and total length.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < Self::MIN_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = Ipv4Packet { buf };
        if p.version() != 4 {
            return Err(WireError::BadVersion);
        }
        let hl = p.header_len();
        if hl < Self::MIN_HEADER_LEN {
            return Err(WireError::BadHeaderLen);
        }
        if hl > buf.len() {
            return Err(WireError::Truncated);
        }
        if (p.total_len() as usize) < hl {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// IP version field (always 4 after `new_checked`).
    pub fn version(&self) -> u8 {
        self.buf[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[0] & 0x0F) * 4
    }

    /// Differentiated services / TOS byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.buf[1]
    }

    /// Total length of header plus payload.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buf[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buf[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        u16::from_be_bytes([self.buf[6] & 0x1F, self.buf[7]])
    }

    /// True when the packet is a fragment (offset ≠ 0 or MF set).
    pub fn is_fragment(&self) -> bool {
        self.more_frags() || self.frag_offset() != 0
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Upper-layer protocol number.
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> [u8; 4] {
        [self.buf[12], self.buf[13], self.buf[14], self.buf[15]]
    }

    /// Destination address.
    pub fn dst_addr(&self) -> [u8; 4] {
        [self.buf[16], self.buf[17], self.buf[18], self.buf[19]]
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> Result<()> {
        if checksum::checksum(&self.buf[..self.header_len()]) == 0 {
            Ok(())
        } else {
            Err(WireError::BadChecksum)
        }
    }

    /// The L4 payload, bounded by `total_len`.
    pub fn payload(&self) -> &'a [u8] {
        let end = (self.total_len() as usize).min(self.buf.len());
        &self.buf[self.header_len()..end]
    }
}

/// Field bundle for emitting an IPv4 header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Header {
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// Upper-layer protocol number.
    pub protocol: u8,
    /// Payload (L4) length in bytes.
    pub payload_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
}

/// Emit a 20-byte option-less IPv4 header with a correct checksum.
pub fn emit_header(buf: &mut [u8], h: &Ipv4Header) {
    buf[0] = 0x45; // version 4, IHL 5
    buf[1] = 0;
    let total = 20 + h.payload_len;
    buf[2..4].copy_from_slice(&total.to_be_bytes());
    buf[4..6].copy_from_slice(&h.ident.to_be_bytes());
    buf[6] = 0x40; // DF set, as modern stacks do
    buf[7] = 0;
    buf[8] = h.ttl;
    buf[9] = h.protocol;
    buf[10] = 0;
    buf[11] = 0;
    buf[12..16].copy_from_slice(&h.src);
    buf[16..20].copy_from_slice(&h.dst);
    let c = checksum::checksum(&buf[..20]);
    buf[10..12].copy_from_slice(&c.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 20];
        emit_header(
            &mut buf,
            &Ipv4Header {
                src: [10, 1, 2, 3],
                dst: [10, 4, 5, 6],
                protocol: 6,
                payload_len: 100,
                ttl: 64,
                ident: 0x4242,
            },
        );
        buf
    }

    #[test]
    fn emit_and_parse_roundtrip() {
        let buf = sample();
        let p = Ipv4Packet::new_checked(&buf).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 120);
        assert_eq!(p.protocol(), 6);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.ident(), 0x4242);
        assert_eq!(p.src_addr(), [10, 1, 2, 3]);
        assert_eq!(p.dst_addr(), [10, 4, 5, 6]);
        assert!(p.dont_frag());
        assert!(!p.is_fragment());
        p.verify_checksum().unwrap();
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = sample();
        buf[15] ^= 0xFF;
        let p = Ipv4Packet::new_checked(&buf).unwrap();
        assert_eq!(p.verify_checksum(), Err(WireError::BadChecksum));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::new_checked(&buf), Err(WireError::BadVersion));
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut buf = sample();
        buf[0] = 0x44; // IHL 4 -> 16 bytes < minimum
        assert_eq!(Ipv4Packet::new_checked(&buf), Err(WireError::BadHeaderLen));
    }

    #[test]
    fn total_len_smaller_than_header_rejected() {
        let mut buf = sample();
        buf[2] = 0;
        buf[3] = 10;
        assert_eq!(Ipv4Packet::new_checked(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn fragment_flags_decoded() {
        let mut buf = sample();
        buf[6] = 0x20; // MF
        buf[7] = 0x10; // offset 16 (in 8-byte units)
        let p = Ipv4Packet::new_checked(&buf).unwrap();
        assert!(p.more_frags());
        assert!(p.is_fragment());
        assert_eq!(p.frag_offset(), 16);
    }
}
