//! The live threaded driver and the user-facing API of Table 1.
//!
//! [`Scap`] mirrors the paper's C API in builder form:
//!
//! | paper                         | here                                   |
//! |-------------------------------|----------------------------------------|
//! | `scap_create`                 | [`Scap::builder`] → [`ScapBuilder::try_build`] |
//! | `scap_set_filter`             | [`ScapBuilder::filter`]                |
//! | `scap_set_cutoff`             | [`ScapBuilder::cutoff`]                |
//! | `scap_add_cutoff_direction`   | [`ScapBuilder::cutoff_direction`]      |
//! | `scap_add_cutoff_class`       | [`ScapBuilder::cutoff_class`]          |
//! | `scap_set_worker_threads`     | [`ScapBuilder::worker_threads`]        |
//! | `scap_set_parameter`          | dedicated builder methods              |
//! | `scap_dispatch_creation`      | [`Scap::dispatch_creation`]            |
//! | `scap_dispatch_data`          | [`Scap::dispatch_data`]                |
//! | `scap_dispatch_termination`   | [`Scap::dispatch_termination`]         |
//! | `scap_start_capture`          | [`Scap::start_capture`]                |
//! | `scap_discard_stream`         | [`StreamCtx::discard_stream`]          |
//! | `scap_set_stream_cutoff`      | [`StreamCtx::set_stream_cutoff`]       |
//! | `scap_set_stream_priority`    | [`StreamCtx::set_stream_priority`]     |
//! | `scap_set_stream_parameter`   | [`StreamCtx::set_stream_cutoff`] et al.|
//! | `scap_keep_stream_chunk`      | [`StreamCtx::keep_chunk`]              |
//! | `scap_next_stream_packet`     | [`StreamCtx::packets`]                 |
//! | `scap_get_stats`              | returned by [`Scap::start_capture`], [`Scap::stats`] |
//! | `scap_close`                  | `drop`                                 |
//!
//! The driver spawns one worker thread per configured worker (pinned
//! one-to-one to the kernel event queues they cover), runs the kernel
//! data path on the calling thread, and routes control operations and
//! chunk returns back to the kernel — the PF_SCAP socket and shared
//! memory of §5, as channels.
//!
//! ## Fault tolerance
//!
//! A capture must outlive its workers. Each worker publishes a heartbeat
//! (events completed) and the uid of the stream it is currently
//! dispatching; a watchdog on the kernel thread notices dead workers
//! (their thread finished while the event channel was still open) and
//! wedged workers (heartbeat stalled with work outstanding). Dead workers
//! are respawned on the same shared event queue, wedged ones get a fresh
//! sibling on that queue, and the affected stream is flagged with
//! [`StreamErrors::WORKER_FAILURE`]. [`Scap::start_capture`] therefore
//! never panics because a callback did; the damage report is available
//! from [`Scap::last_capture_error`].

use crate::checkpoint::{self, CheckpointError};
use crate::config::{ConfigDelta, ConfigError, ScapConfig};
use crate::event::{Event, EventKind, PacketRecord, StreamSnapshot};
use crate::kernel::{ControlOp, ScapKernel, ScapStats};
use scap_faults::{FaultPlan, FrameFaultStats, WorkerFault, WorkerFaultKind};
use scap_filter::{Filter, FilterError};
use scap_flight::{FlightEvent, FlightKind, FlightLayer};
use scap_flow::StreamErrors;
use scap_reassembly::{OverlapPolicy, ReassemblyMode};
use scap_telemetry::{AtomicRegistry, Metric, Sampler, Snapshot, SpanTimer, Stage};
use scap_trace::Packet;
use scap_wire::Direction;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Callback type: runs on worker threads.
pub type Handler = Arc<dyn Fn(&StreamCtx<'_>) + Send + Sync>;

/// A passive observer attached to the dispatch path with
/// [`Scap::attach_sink`]: it sees every stream creation, data delivery,
/// and termination *before* the application's own handlers run, on the
/// worker thread that dispatches the event. Sinks are infrastructure —
/// archives (`scap-store`), mirrors, probes — so they get the raw
/// snapshot + bytes rather than the interactive [`StreamCtx`] control
/// surface, and all methods default to no-ops.
pub trait EventSink: Send + Sync {
    /// A new stream was admitted (`scap_dispatch_creation`).
    fn on_created(&self, _stream: &StreamSnapshot) {}
    /// A reassembled chunk was delivered: `data` starts at stream
    /// `offset` within direction `dir`.
    fn on_data(&self, _stream: &StreamSnapshot, _dir: Direction, _data: &[u8], _offset: u64) {}
    /// The stream terminated; the snapshot carries the final counters.
    fn on_terminated(&self, _stream: &StreamSnapshot) {}
}

/// How long a worker's heartbeat may sit still (with work outstanding)
/// before the watchdog declares it wedged.
const STALL_GRACE: Duration = Duration::from_millis(30);
/// Upper bound on waiting for workers to drain after the trace ends.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);
/// How many trailing flight-recorder events the crash black box keeps.
const BLACK_BOX_TAIL: usize = 256;

/// The view handed to callbacks: a consistent stream snapshot, the
/// delivered data (for data events), and the control surface.
pub struct StreamCtx<'a> {
    /// Consistent descriptor snapshot (`sd`).
    pub stream: &'a StreamSnapshot,
    /// Data direction, for data events.
    pub dir: Option<Direction>,
    /// Reassembled chunk bytes (`sd->data`), for data events.
    pub data: Option<&'a [u8]>,
    /// Stream offset of `data[0]` within its direction.
    pub data_offset: u64,
    /// Per-packet records (when `need_packets` was configured).
    pub packet_records: &'a [PacketRecord],
    ctl: &'a Sender<ControlOp>,
}

impl StreamCtx<'_> {
    /// `scap_discard_stream`: stop collecting data for this stream.
    pub fn discard_stream(&self) {
        let _ = self.ctl.send(ControlOp::Discard(self.stream.uid));
    }

    /// `scap_set_stream_cutoff`.
    pub fn set_stream_cutoff(&self, cutoff: u64) {
        let _ = self
            .ctl
            .send(ControlOp::SetCutoff(self.stream.uid, None, Some(cutoff)));
    }

    /// Per-direction stream cutoff.
    pub fn set_stream_cutoff_direction(&self, dir: Direction, cutoff: u64) {
        let _ = self.ctl.send(ControlOp::SetCutoff(
            self.stream.uid,
            Some(dir),
            Some(cutoff),
        ));
    }

    /// `scap_set_stream_priority`.
    pub fn set_stream_priority(&self, priority: u8) {
        let _ = self
            .ctl
            .send(ControlOp::SetPriority(self.stream.uid, priority));
    }

    /// `scap_set_stream_parameter` for chunk geometry: change this
    /// stream's chunk size and overlap from the next chunk on.
    pub fn set_chunk_geometry(&self, chunk_size: u32, overlap: u32) {
        let _ = self.ctl.send(ControlOp::SetChunkGeometry(
            self.stream.uid,
            chunk_size,
            overlap,
        ));
    }

    /// `scap_keep_stream_chunk`: merge this chunk into the next one.
    ///
    /// Best-effort in the threaded driver: the request races the kernel's
    /// own chunk production, so a chunk that completes before the request
    /// arrives is delivered unmerged (the same asynchrony the real
    /// socket-based call has).
    pub fn keep_chunk(&self) {
        if let Some(d) = self.dir {
            let _ = self.ctl.send(ControlOp::KeepChunk(self.stream.uid, d));
        }
    }

    /// `scap_next_stream_packet`: iterate the chunk's packets in capture
    /// order, yielding each record and its payload slice within the chunk.
    pub fn packets(&self) -> impl Iterator<Item = (PacketRecord, Option<&[u8]>)> {
        let data = self.data;
        let base = self.data_offset;
        self.packet_records.iter().map(move |pr| {
            let slice = match (data, pr.chunk_off) {
                (Some(d), off) if off != u32::MAX => {
                    let start = (off as u64).saturating_sub(base) as usize;
                    let end = (start + pr.payload_len as usize).min(d.len());
                    (start < end).then(|| &d[start..end])
                }
                _ => None,
            };
            (*pr, slice)
        })
    }
}

/// Builder for a capture socket (`scap_create` + configuration calls).
pub struct ScapBuilder {
    cfg: ScapConfig,
    filter_err: Option<FilterError>,
    stats_interval: Option<u64>,
    resume_path: Option<PathBuf>,
    ckpt_every: Option<(u64, PathBuf)>,
}

impl ScapBuilder {
    /// Stream-memory budget (`memory_size`).
    pub fn memory(mut self, bytes: usize) -> Self {
        self.cfg.memory_bytes = bytes;
        self
    }

    /// TCP reassembly mode.
    pub fn reassembly_mode(mut self, mode: ReassemblyMode) -> Self {
        self.cfg.reassembly_mode = mode;
        self
    }

    /// Target-based overlap policy.
    pub fn overlap_policy(mut self, policy: OverlapPolicy) -> Self {
        self.cfg.overlap_policy = policy;
        self
    }

    /// Deliver per-packet records with each chunk (`need_pkts`).
    pub fn need_packets(mut self, yes: bool) -> Self {
        self.cfg.need_pkts = yes;
        self
    }

    /// `scap_set_filter`: BPF filter expression.
    pub fn filter(mut self, expr: &str) -> Self {
        match Filter::new(expr) {
            Ok(f) => self.cfg.filter = Some(f),
            Err(e) => self.filter_err = Some(e),
        }
        self
    }

    /// `scap_set_cutoff`: default per-stream cutoff in bytes.
    pub fn cutoff(mut self, bytes: u64) -> Self {
        self.cfg.cutoff.default = Some(bytes);
        self
    }

    /// `scap_add_cutoff_direction`.
    pub fn cutoff_direction(mut self, dir: Direction, bytes: u64) -> Self {
        self.cfg.cutoff.per_direction[dir.index()] = Some(bytes);
        self
    }

    /// `scap_add_cutoff_class`: cutoff for streams matching a filter.
    pub fn cutoff_class(mut self, expr: &str, bytes: u64) -> Self {
        match Filter::new(expr) {
            Ok(f) => self.cfg.cutoff.classes.push((f, bytes)),
            Err(e) => self.filter_err = Some(e),
        }
        self
    }

    /// Assign a PPL priority to streams matching a filter.
    pub fn priority_class(mut self, expr: &str, priority: u8) -> Self {
        match Filter::new(expr) {
            Ok(f) => {
                self.cfg.priorities.classes.push((f, priority));
                self.cfg.ppl.num_priorities = self.cfg.ppl.num_priorities.max(priority + 1);
            }
            Err(e) => self.filter_err = Some(e),
        }
        self
    }

    /// `scap_set_worker_threads`.
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.cfg.worker_threads = n.max(1);
        self
    }

    /// Kernel cores / NIC queues.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.cores = n.max(1);
        self
    }

    /// Chunk size parameter.
    pub fn chunk_size(mut self, bytes: usize) -> Self {
        self.cfg.chunk_size = bytes.max(1);
        self
    }

    /// Inter-chunk overlap parameter.
    pub fn overlap(mut self, bytes: usize) -> Self {
        self.cfg.overlap = bytes;
        self
    }

    /// Flush timeout parameter.
    pub fn flush_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.flush_timeout_ns = ns;
        self
    }

    /// Inactivity timeout parameter.
    pub fn inactivity_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.inactivity_timeout_ns = ns;
        self
    }

    /// PPL base threshold (fraction of memory in use).
    pub fn base_threshold(mut self, frac: f64) -> Self {
        self.cfg.ppl.base_threshold = frac.clamp(0.0, 1.0);
        self
    }

    /// PPL overload cutoff (stream offset beyond which bytes are shed
    /// under pressure).
    pub fn overload_cutoff(mut self, bytes: u64) -> Self {
        self.cfg.ppl.overload_cutoff = Some(bytes);
        self
    }

    /// Enable NIC flow-director filters (subzero copy).
    pub fn use_fdir(mut self, yes: bool) -> Self {
        self.cfg.use_fdir = yes;
        self
    }

    /// Enable the programmable per-flow offload stage: cutoff drop rules
    /// move from FDIR's four-filters-per-stream table into a
    /// million-entry action table evaluated before the memory budget,
    /// and applications can install `Mark`/`Sample`/`Bypass` rules.
    pub fn offload(mut self, yes: bool) -> Self {
        self.cfg.use_offload = yes;
        self
    }

    /// Rule capacity of the offload table (clamped to ≥ 1; only
    /// meaningful with [`ScapBuilder::offload`] enabled).
    pub fn offload_capacity(mut self, rules: usize) -> Self {
        self.cfg.offload_capacity = rules.max(1);
        self
    }

    /// Select the dispatch path: the emulated per-packet classic path
    /// or the poll-mode kernel-bypass fast path (`--fastpath`). The
    /// delivered streams are byte-identical either way; only the cost
    /// structure differs.
    pub fn dispatch(mut self, mode: crate::DispatchMode) -> Self {
        self.cfg.dispatch = mode;
        self
    }

    /// Enable the poll-mode kernel-bypass fast path (shorthand for
    /// [`ScapBuilder::dispatch`] with [`crate::DispatchMode::Fastpath`]).
    pub fn fastpath(self, yes: bool) -> Self {
        self.dispatch(if yes {
            crate::DispatchMode::Fastpath
        } else {
            crate::DispatchMode::Classic
        })
    }

    /// Frames pulled per burst on the fast path (clamped to ≥ 1).
    pub fn fastpath_burst(mut self, frames: usize) -> Self {
        self.cfg.fastpath_burst = frames.max(1);
        self
    }

    /// Attach a deterministic fault-injection plan (tests, chaos
    /// experiments).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Watchdog circuit-breaker policy: `threshold` worker failures
    /// (panics + stalls) inside `window_ns` of trace time park the slot
    /// instead of respawning it forever.
    pub fn watchdog_breaker(mut self, threshold: u32, window_ns: u64) -> Self {
        self.cfg.watchdog_breaker_threshold = threshold.max(1);
        self.cfg.watchdog_breaker_window_ns = window_ns.max(1);
        self
    }

    /// Invoke the stats hook (see [`Scap::dispatch_stats`]) with a merged
    /// telemetry snapshot every `packets` packets during capture. Zero
    /// disables periodic emission (the default).
    pub fn stats_interval(mut self, packets: u64) -> Self {
        self.stats_interval = (packets > 0).then_some(packets);
        self
    }

    /// Gauge-sampling interval for the telemetry time-series, in
    /// nanoseconds of trace time between rows.
    pub fn telemetry_sample_interval_ns(mut self, ns: u64) -> Self {
        self.cfg.telemetry_sample_interval_ns = ns.max(1);
        self
    }

    /// Warm restart: restore the capture from a checkpoint file written
    /// by [`Scap::checkpoint`] or a `checkpoint_every` interval. The
    /// checkpointed configuration replaces every builder knob except the
    /// fault plan and stats interval; stream uids, committed offsets and
    /// installed FDIR filters carry over, and resumed streams are marked
    /// with [`StreamErrors::RESUMED`].
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_path = Some(path.into());
        self
    }

    /// Write a crash-consistent checkpoint to `path` every `packets`
    /// packets during capture (atomically: tmp file + rename, so a crash
    /// mid-write never corrupts the previous checkpoint). Zero disables.
    pub fn checkpoint_every(mut self, packets: u64, path: impl Into<PathBuf>) -> Self {
        self.ckpt_every = (packets > 0).then(|| (packets, path.into()));
        self
    }

    /// Finalize, surfacing filter-compilation and checkpoint-restore
    /// errors. (The panicking `build()` of 0.1 is gone; this is the only
    /// way to construct a [`Scap`].)
    pub fn try_build(mut self) -> Result<Scap, BuildError> {
        if let Some(e) = self.filter_err.take() {
            return Err(BuildError::Filter(e));
        }
        self.cfg.ppl.num_priorities = self
            .cfg
            .ppl
            .num_priorities
            .max(self.cfg.priorities.levels());
        let (cfg, kernel) = match self.resume_path.take() {
            Some(path) => {
                let img = checkpoint::read_image(&path)?;
                let k = ScapKernel::from_image(img, self.cfg.faults.clone())?;
                (k.config().clone(), Some(k))
            }
            None => (self.cfg, None),
        };
        Ok(Scap {
            cfg: Some(cfg),
            kernel,
            ckpt_every: self.ckpt_every,
            ckpt_seq: 0,
            died_at: None,
            last_ts_ns: 0,
            on_create: None,
            on_data: None,
            on_termination: None,
            on_stats: None,
            sinks: Vec::new(),
            stats_interval: self.stats_interval,
            last_stats: None,
            last_error: None,
            last_telemetry: None,
            last_series: None,
        })
    }
}

/// Why a capture socket could not be constructed.
#[derive(Debug)]
pub enum BuildError {
    /// The BPF-subset filter expression failed to compile.
    Filter(FilterError),
    /// A `resume_from` checkpoint could not be read or restored.
    Checkpoint(CheckpointError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Filter(e) => write!(f, "invalid filter expression: {e}"),
            BuildError::Checkpoint(e) => write!(f, "checkpoint restore failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Filter(e) => Some(e),
            BuildError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<FilterError> for BuildError {
    fn from(e: FilterError) -> Self {
        BuildError::Filter(e)
    }
}

impl From<CheckpointError> for BuildError {
    fn from(e: CheckpointError) -> Self {
        BuildError::Checkpoint(e)
    }
}

/// Per-worker outcome of a capture, reported in [`CaptureError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStatus {
    /// Worker index (event queues are sharded `core % workers`).
    pub worker: usize,
    /// Times this worker's thread died (panicked) mid-capture.
    pub panics: u64,
    /// Times the watchdog declared this worker wedged.
    pub stalls: u64,
    /// Replacement/sibling threads the watchdog spawned for it.
    pub restarts: u64,
}

impl WorkerStatus {
    /// True when the worker ran to completion without incident.
    pub fn is_clean(&self) -> bool {
        self.panics == 0 && self.stalls == 0
    }
}

/// Worker failures survived during a capture. The capture itself
/// completed and its statistics are valid; this reports the damage
/// (panicked/stalled workers, each recovered by the watchdog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureError {
    /// Status of every worker slot, clean ones included.
    pub workers: Vec<WorkerStatus>,
}

impl CaptureError {
    /// Total worker panics across the capture.
    pub fn panics(&self) -> u64 {
        self.workers.iter().map(|w| w.panics).sum()
    }

    /// Total stalls detected across the capture.
    pub fn stalls(&self) -> u64 {
        self.workers.iter().map(|w| w.stalls).sum()
    }
}

impl core::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "capture survived {} worker panic(s) and {} stall(s) across {} worker(s)",
            self.panics(),
            self.stalls(),
            self.workers.len()
        )
    }
}

impl std::error::Error for CaptureError {}

/// Materialize a packet stream with a fault plan's wire-level mangling
/// applied — corruption, truncation, duplication, adjacent-swap
/// reordering and timestamp anomalies — returning the mangled packets
/// and the injector's counters. The live driver and the chaos experiment
/// share this boundary.
pub fn mangle_packets(
    plan: &FaultPlan,
    packets: impl IntoIterator<Item = Packet>,
) -> (Vec<Packet>, FrameFaultStats) {
    let mut inj = plan.frame_injector();
    let mut out: Vec<Packet> = Vec::new();
    let mut pending_swap: Option<usize> = None;
    for pkt in packets {
        let mut ts = pkt.ts_ns;
        let mut frame = pkt.frame.to_vec();
        let d = inj.apply(&mut ts, &mut frame);
        let mangled = Packet::new(ts, frame);
        let idx = out.len();
        out.push(mangled.clone());
        if let Some(prev) = pending_swap.take() {
            out.swap(prev, idx);
        } else if d.swap_with_next {
            pending_swap = Some(idx);
        }
        if d.duplicate {
            out.push(mangled);
        }
    }
    (out, inj.stats())
}

/// A capture socket.
pub struct Scap {
    cfg: Option<ScapConfig>,
    /// Kernel state: pre-built when resuming from a checkpoint, and
    /// retained after a capture so it can be checkpointed or inspected.
    kernel: Option<ScapKernel>,
    ckpt_every: Option<(u64, PathBuf)>,
    ckpt_seq: u64,
    died_at: Option<u64>,
    last_ts_ns: u64,
    on_create: Option<Handler>,
    on_data: Option<Handler>,
    on_termination: Option<Handler>,
    on_stats: Option<StatsHandler>,
    sinks: Vec<Arc<dyn EventSink>>,
    stats_interval: Option<u64>,
    last_stats: Option<ScapStats>,
    last_error: Option<CaptureError>,
    last_telemetry: Option<Snapshot>,
    last_series: Option<Sampler>,
}

/// Periodic-stats callback type: runs on the kernel thread.
pub type StatsHandler = Arc<dyn Fn(&Snapshot) + Send + Sync>;

/// One worker slot's bookkeeping on the kernel thread.
struct WorkerSlot {
    /// Event sender; `None` once the capture is shutting down.
    tx: Option<Sender<Event>>,
    /// The queue, shared with the worker and any replacements.
    rx: Arc<Mutex<Receiver<Event>>>,
    /// Events completed by threads on this queue.
    heartbeat: Arc<AtomicU64>,
    /// Uid of the stream currently being dispatched (0 = idle).
    current_uid: Arc<AtomicU64>,
    /// Events sent into this queue.
    sent: u64,
    /// Events known lost to panics (held mid-dispatch by a dead thread).
    lost: u64,
    last_beat: u64,
    last_beat_at: Instant,
    stall_flagged: bool,
    panics: u64,
    stalls: u64,
    restarts: u64,
    /// Respawn circuit breaker: too many panics/stalls inside the
    /// configured window parks the slot instead of thrashing forever.
    breaker: scap_shard::CircuitBreaker,
    /// Parked by the breaker: no further respawns; queued events are
    /// accounted as lost and new events are recycled at fan-out.
    parked: bool,
}

/// Spawn a worker thread on a shared event queue. The lock is held only
/// for the `recv`, never across a callback, so a panicking callback
/// cannot poison the queue for its replacement.
#[allow(clippy::too_many_arguments)]
fn spawn_worker<'scope>(
    s: &'scope std::thread::Scope<'scope, '_>,
    rx: Arc<Mutex<Receiver<Event>>>,
    handlers: WorkerHandlers,
    ctl: Sender<ControlOp>,
    rel: Sender<Event>,
    heartbeat: Arc<AtomicU64>,
    current_uid: Arc<AtomicU64>,
    faults: Vec<WorkerFault>,
    tele: Arc<AtomicRegistry>,
    shard: usize,
) -> std::thread::ScopedJoinHandle<'scope, ()> {
    s.spawn(move || {
        let mut events_seen = 0u64;
        loop {
            // The guard is a temporary: it is released as soon as recv()
            // returns, never held across a callback.
            let msg = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
            let Ok(ev) = msg else {
                break; // channel closed and drained
            };
            events_seen += 1;
            current_uid.store(ev.stream.uid, Ordering::SeqCst);
            for f in &faults {
                if f.after_events == events_seen {
                    match f.kind {
                        WorkerFaultKind::Stall(ns) => {
                            std::thread::sleep(Duration::from_nanos(ns));
                        }
                        WorkerFaultKind::Panic => {
                            panic!("injected worker fault");
                        }
                    }
                }
            }
            let span = SpanTimer::start();
            handlers.dispatch(&ev, &ctl);
            span.finish(&tele, shard, Stage::Worker);
            tele.inc(shard, Metric::WorkerEventsHandled);
            if matches!(ev.kind, EventKind::Data { .. }) {
                let _ = rel.send(ev);
            }
            heartbeat.fetch_add(1, Ordering::SeqCst);
            current_uid.store(0, Ordering::SeqCst);
        }
    })
}

/// Park a worker slot whose circuit breaker tripped: close its queue,
/// account every outstanding event as lost (so shutdown drain
/// terminates), and surface the trip in `ResilienceStats` and the
/// flight journal.
fn park_slot(kernel: &mut ScapKernel, slot: &mut WorkerSlot, i: usize, now: u64) {
    slot.parked = true;
    slot.tx = None;
    let beat = slot.heartbeat.load(Ordering::SeqCst);
    slot.lost = slot.sent.saturating_sub(beat);
    let fails = u64::from(slot.breaker.failures_in_window());
    kernel.resilience_mut().watchdog_breaker_trips += 1;
    kernel.flight_mut().emit(
        0,
        FlightEvent::new(FlightKind::BreakerTripped, FlightLayer::Worker, now)
            .with_vals(i as u64, fails),
    );
}

/// One watchdog pass: respawn dead workers, sibling wedged ones, flag the
/// streams they were holding.
#[allow(clippy::too_many_arguments)]
fn watchdog<'scope>(
    s: &'scope std::thread::Scope<'scope, '_>,
    kernel: &mut ScapKernel,
    slots: &mut [WorkerSlot],
    handles: &mut [Option<std::thread::ScopedJoinHandle<'scope, ()>>],
    extra: &mut Vec<std::thread::ScopedJoinHandle<'scope, ()>>,
    handlers: &WorkerHandlers,
    ctl: &Sender<ControlOp>,
    rel: &Sender<Event>,
    tele: &Arc<AtomicRegistry>,
    now: u64,
) {
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.parked {
            continue;
        }
        // A finished thread while its channel is still open means the
        // thread died: a clean exit only happens after channel close.
        let died = slot.tx.is_some() && handles[i].as_ref().is_some_and(|h| h.is_finished());
        if died {
            if let Some(h) = handles[i].take() {
                if h.join().is_err() {
                    slot.panics += 1;
                    slot.lost += 1; // the event it was dispatching is gone
                    kernel.resilience_mut().worker_panics += 1;
                    let uid = slot.current_uid.swap(0, Ordering::SeqCst);
                    kernel.flight_mut().emit(
                        0,
                        FlightEvent::new(FlightKind::WorkerPanic, FlightLayer::Worker, now)
                            .with_uid(uid)
                            .with_vals(i as u64, 0),
                    );
                    if uid != 0 {
                        kernel.flag_stream_error(uid, StreamErrors::WORKER_FAILURE);
                    }
                }
            }
            // M failures inside the window: stop respawning, park the
            // slot, and account its outstanding events as lost so
            // shutdown drain terminates.
            if slot.breaker.record_failure(now) {
                park_slot(kernel, slot, i, now);
                continue;
            }
            // Respawn on the same shared queue; the replacement picks up
            // exactly where the dead worker left off. Scheduled faults
            // are not re-armed for replacements.
            handles[i] = Some(spawn_worker(
                s,
                slot.rx.clone(),
                handlers.clone(),
                ctl.clone(),
                rel.clone(),
                slot.heartbeat.clone(),
                slot.current_uid.clone(),
                Vec::new(),
                tele.clone(),
                i,
            ));
            slot.restarts += 1;
            kernel.resilience_mut().worker_restarts += 1;
            kernel.flight_mut().emit(
                0,
                FlightEvent::new(FlightKind::WorkerRestart, FlightLayer::Worker, now)
                    .with_vals(i as u64, 0),
            );
            slot.last_beat = slot.heartbeat.load(Ordering::SeqCst);
            slot.last_beat_at = Instant::now();
            slot.stall_flagged = false;
            continue;
        }

        let beat = slot.heartbeat.load(Ordering::SeqCst);
        if beat != slot.last_beat {
            slot.last_beat = beat;
            slot.last_beat_at = Instant::now();
            slot.stall_flagged = false;
            continue;
        }
        // Heartbeat flat: wedged if there is (or was) work it should be
        // making progress on.
        let busy = slot.current_uid.load(Ordering::SeqCst) != 0
            || slot.sent > beat.saturating_add(slot.lost);
        if busy && !slot.stall_flagged && slot.last_beat_at.elapsed() >= STALL_GRACE {
            slot.stall_flagged = true;
            slot.stalls += 1;
            kernel.resilience_mut().worker_stalls_detected += 1;
            let uid = slot.current_uid.load(Ordering::SeqCst);
            kernel.flight_mut().emit(
                0,
                FlightEvent::new(FlightKind::WorkerStall, FlightLayer::Worker, now)
                    .with_uid(uid)
                    .with_vals(i as u64, 0),
            );
            if uid != 0 {
                kernel.flag_stream_error(uid, StreamErrors::WORKER_FAILURE);
            }
            // Same breaker policy for the sibling path: a slot that
            // keeps wedging stops getting fresh threads thrown at it.
            if slot.breaker.record_failure(now) {
                park_slot(kernel, slot, i, now);
                continue;
            }
            // Threads cannot be killed; leave the wedged worker alone and
            // put a fresh sibling on the same queue so the backlog moves.
            extra.push(spawn_worker(
                s,
                slot.rx.clone(),
                handlers.clone(),
                ctl.clone(),
                rel.clone(),
                slot.heartbeat.clone(),
                Arc::new(AtomicU64::new(0)),
                Vec::new(),
                tele.clone(),
                i,
            ));
            slot.restarts += 1;
            kernel.resilience_mut().worker_restarts += 1;
            kernel.flight_mut().emit(
                0,
                FlightEvent::new(FlightKind::WorkerRestart, FlightLayer::Worker, now)
                    .with_vals(i as u64, 0),
            );
        }
    }
}

impl Scap {
    /// Start configuring a capture (`scap_create`).
    pub fn builder() -> ScapBuilder {
        ScapBuilder {
            cfg: ScapConfig::default(),
            filter_err: None,
            stats_interval: None,
            resume_path: None,
            ckpt_every: None,
        }
    }

    /// `scap_dispatch_creation`.
    pub fn dispatch_creation<F: Fn(&StreamCtx<'_>) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_create = Some(Arc::new(f));
    }

    /// `scap_dispatch_data`.
    pub fn dispatch_data<F: Fn(&StreamCtx<'_>) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_data = Some(Arc::new(f));
    }

    /// `scap_dispatch_termination`.
    pub fn dispatch_termination<F: Fn(&StreamCtx<'_>) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_termination = Some(Arc::new(f));
    }

    /// Attach a passive [`EventSink`] observing the full dispatch path
    /// (creation, data, termination) alongside the application handlers.
    /// Multiple sinks run in attachment order, before the handlers.
    pub fn attach_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Install the periodic-stats hook: called on the kernel thread with
    /// a merged telemetry snapshot every
    /// [`ScapBuilder::stats_interval`] packets during capture.
    pub fn dispatch_stats<F: Fn(&Snapshot) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_stats = Some(Arc::new(f));
    }

    /// Merged telemetry snapshot (kernel + NIC + arena + workers) from
    /// the most recent capture; counters use wall-clock-nanosecond stage
    /// histograms under this driver.
    pub fn telemetry_snapshot(&self) -> Option<&Snapshot> {
        self.last_telemetry.as_ref()
    }

    /// Gauge time-series sampled during the most recent capture, keyed
    /// on trace timestamps.
    pub fn telemetry_series(&self) -> Option<&Sampler> {
        self.last_series.as_ref()
    }

    /// `scap_get_stats` for the most recent capture.
    pub fn stats(&self) -> Option<ScapStats> {
        self.last_stats
    }

    /// Worker failures survived during the most recent capture (`None`
    /// when every worker ran clean).
    pub fn last_capture_error(&self) -> Option<&CaptureError> {
        self.last_error.as_ref()
    }

    /// `scap_start_capture`: run the capture over a packet source with
    /// the configured worker threads; returns the final statistics.
    ///
    /// The packet source stands in for the monitored interface: a pcap
    /// file reader, a synthetic generator, or any packet iterator. A
    /// second call on the same socket returns the previous statistics
    /// (the capture is already consumed).
    pub fn start_capture(&mut self, packets: impl IntoIterator<Item = Packet>) -> ScapStats {
        let Some(cfg) = self.cfg.take() else {
            return self.last_stats.unwrap_or_default();
        };
        let nworkers = cfg.worker_threads.max(1);
        let ncores = cfg.cores.max(1);
        let dispatch = cfg.dispatch;
        let worker_faults: Vec<WorkerFault> = cfg
            .faults
            .as_ref()
            .map(|p| p.workers.clone())
            .unwrap_or_default();

        // Wire-level fault mangling happens at the trace boundary, before
        // the NIC ever sees a frame.
        let mut frame_stats = None;
        let packets: Vec<Packet> = match cfg.faults.as_ref() {
            Some(plan) => {
                let (v, s) = mangle_packets(plan, packets);
                frame_stats = Some(s);
                v
            }
            None => packets.into_iter().collect(),
        };

        // Warm restart: reuse the kernel restored by `resume_from` (stream
        // uids, committed offsets and FDIR filters carry over) instead of
        // building a cold one.
        let mut kernel = match self.kernel.take() {
            Some(k) => k,
            None => ScapKernel::new(cfg),
        };
        if let Some(s) = frame_stats {
            kernel.note_frame_faults(s);
        }
        let kill_at = kernel
            .config()
            .faults
            .as_ref()
            .and_then(|p| p.kill_at_packet);
        let ckpt = self.ckpt_every.clone();
        let mut ckpt_seq = self.ckpt_seq;

        let handlers = WorkerHandlers {
            on_create: self.on_create.clone(),
            on_data: self.on_data.clone(),
            on_termination: self.on_termination.clone(),
            sinks: self.sinks.clone(),
        };

        // PF_SCAP-socket stand-ins.
        let (ctl_tx, ctl_rx) = channel::<ControlOp>();
        let (rel_tx, rel_rx) = channel::<Event>();

        // Worker-side telemetry is shared across threads, so it uses the
        // atomic backend (one shard per worker slot); the kernel-side
        // registries stay plain because only this thread drives them.
        let worker_tele = Arc::new(AtomicRegistry::new(nworkers));
        let on_stats = self.on_stats.clone();
        let stats_every = self.stats_interval;

        let breaker_threshold = kernel.config().watchdog_breaker_threshold;
        let breaker_window_ns = kernel.config().watchdog_breaker_window_ns;
        let scope_out = std::thread::scope(|s| {
            let mut slots: Vec<WorkerSlot> = Vec::with_capacity(nworkers);
            let mut handles: Vec<Option<std::thread::ScopedJoinHandle<'_, ()>>> =
                Vec::with_capacity(nworkers);
            let mut extra: Vec<std::thread::ScopedJoinHandle<'_, ()>> = Vec::new();
            for w in 0..nworkers {
                let (tx, rx) = channel::<Event>();
                let rx = Arc::new(Mutex::new(rx));
                let heartbeat = Arc::new(AtomicU64::new(0));
                let current_uid = Arc::new(AtomicU64::new(0));
                let faults: Vec<WorkerFault> = worker_faults
                    .iter()
                    .copied()
                    .filter(|f| f.worker == w)
                    .collect();
                handles.push(Some(spawn_worker(
                    s,
                    rx.clone(),
                    handlers.clone(),
                    ctl_tx.clone(),
                    rel_tx.clone(),
                    heartbeat.clone(),
                    current_uid.clone(),
                    faults,
                    worker_tele.clone(),
                    w,
                )));
                slots.push(WorkerSlot {
                    tx: Some(tx),
                    rx,
                    heartbeat,
                    current_uid,
                    sent: 0,
                    lost: 0,
                    last_beat: 0,
                    last_beat_at: Instant::now(),
                    stall_flagged: false,
                    panics: 0,
                    stalls: 0,
                    restarts: 0,
                    breaker: scap_shard::CircuitBreaker::new(breaker_threshold, breaker_window_ns),
                    parked: false,
                });
            }

            let mut now = 0u64;
            let mut since_watchdog = 0u32;
            let mut npkts = 0u64;
            let mut killed: Option<u64> = None;
            for pkt in &packets {
                now = pkt.ts_ns;
                let span = SpanTimer::start();
                kernel.nic_receive(pkt);
                span.finish(kernel.telemetry(), 0, Stage::Nic);
                for core in 0..ncores {
                    let span = SpanTimer::start();
                    match dispatch {
                        crate::DispatchMode::Classic => {
                            while kernel.kernel_poll(core, now).is_some() {}
                        }
                        crate::DispatchMode::Fastpath => {
                            while kernel.poll_burst(core, now).is_some() {}
                        }
                    }
                    kernel.kernel_timers(core, now);
                    span.finish(
                        kernel.telemetry(),
                        core,
                        match dispatch {
                            crate::DispatchMode::Classic => Stage::Kernel,
                            crate::DispatchMode::Fastpath => Stage::Fastpath,
                        },
                    );
                    let span = SpanTimer::start();
                    let mut fanned_out = false;
                    while let Some(ev) = kernel.next_event(core) {
                        fanned_out = true;
                        // Delivery span on the trace clock: ingress of
                        // the producing packet to worker hand-off.
                        kernel.note_delivery(&ev, now);
                        let slot = &mut slots[core % nworkers];
                        slot.sent += 1;
                        if let Some(tx) = slot.tx.as_ref() {
                            let _ = tx.send(ev);
                        } else {
                            // Parked slot: the event cannot be handled;
                            // count the loss and recycle its chunk.
                            slot.lost += 1;
                            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                                kernel.release_data(ev.stream.uid, dir, chunk);
                            }
                        }
                    }
                    if fanned_out {
                        span.finish(kernel.telemetry(), core, Stage::EventQueue);
                    }
                }
                while let Ok(op) = ctl_rx.try_recv() {
                    kernel.control(op);
                }
                let span = SpanTimer::start();
                let mut released = false;
                while let Ok(ev) = rel_rx.try_recv() {
                    released = true;
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
                if released {
                    span.finish(kernel.telemetry(), 0, Stage::Memory);
                }
                npkts += 1;
                // Crash-consistent periodic checkpoints (§4 two-instance
                // trick): snapshot between packets, atomically, without
                // stopping dispatch.
                if let Some((every, path)) = ckpt.as_ref() {
                    if npkts.is_multiple_of(*every) {
                        ckpt_seq += 1;
                        let bytes = kernel.checkpoint_bytes(now, ckpt_seq);
                        let _ = checkpoint::write_atomic(path, &bytes);
                    }
                }
                // Injected crash: abandon the capture mid-flight without
                // flushing or terminating anything, as a real process
                // death would. Recovery goes through `resume_from`.
                if kill_at == Some(npkts) {
                    killed = Some(npkts);
                    // Black-box dump: persist the flight journal's tail
                    // next to the checkpoint before "dying", so the
                    // post-mortem (`scapstore verify`) can explain what
                    // the capture was doing when it was killed.
                    if let Some((_, path)) = ckpt.as_ref() {
                        let mut bb = path.clone().into_os_string();
                        bb.push(".flight");
                        let _ = std::fs::write(bb, kernel.flight().encode_tail(BLACK_BOX_TAIL));
                    }
                    break;
                }
                if let (Some(every), Some(hook)) = (stats_every, on_stats.as_ref()) {
                    if npkts.is_multiple_of(every) {
                        let mut snap = kernel.telemetry_snapshot();
                        snap.merge(&worker_tele.snapshot());
                        hook(&snap);
                    }
                }
                since_watchdog += 1;
                if since_watchdog >= 256 {
                    since_watchdog = 0;
                    let beats: u64 = slots
                        .iter()
                        .map(|sl| sl.heartbeat.load(Ordering::SeqCst))
                        .sum();
                    kernel.set_worker_heartbeats(beats);
                    watchdog(
                        s,
                        &mut kernel,
                        &mut slots,
                        &mut handles,
                        &mut extra,
                        &handlers,
                        &ctl_tx,
                        &rel_tx,
                        &worker_tele,
                        now,
                    );
                }
            }

            if killed.is_none() {
                kernel.finish(now.saturating_add(1));
                for core in 0..ncores {
                    while let Some(ev) = kernel.next_event(core) {
                        kernel.note_delivery(&ev, now.saturating_add(1));
                        let slot = &mut slots[core % nworkers];
                        slot.sent += 1;
                        if let Some(tx) = slot.tx.as_ref() {
                            let _ = tx.send(ev);
                        } else {
                            slot.lost += 1;
                            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                                kernel.release_data(ev.stream.uid, dir, chunk);
                            }
                        }
                    }
                }

                // Wait for the workers to drain their queues, still
                // watching for deaths and stalls (a wedged worker would
                // otherwise hold the shutdown hostage). A killed capture
                // skips this: the process is "dead", we only join threads.
                let deadline = Instant::now() + DRAIN_DEADLINE;
                loop {
                    let done: u64 = slots
                        .iter()
                        .map(|sl| sl.heartbeat.load(Ordering::SeqCst) + sl.lost)
                        .sum();
                    let sent: u64 = slots.iter().map(|sl| sl.sent).sum();
                    if done >= sent || Instant::now() > deadline {
                        break;
                    }
                    watchdog(
                        s,
                        &mut kernel,
                        &mut slots,
                        &mut handles,
                        &mut extra,
                        &handlers,
                        &ctl_tx,
                        &rel_tx,
                        &worker_tele,
                        now,
                    );
                    while let Ok(op) = ctl_rx.try_recv() {
                        kernel.control(op);
                    }
                    while let Ok(ev) = rel_rx.try_recv() {
                        if let EventKind::Data { dir, chunk, .. } = ev.kind {
                            kernel.release_data(ev.stream.uid, dir, chunk);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }

            // Close event channels; workers drain the remainder and exit.
            for slot in slots.iter_mut() {
                slot.tx = None;
            }
            for (i, h) in handles.iter_mut().enumerate() {
                if let Some(h) = h.take() {
                    if h.join().is_err() {
                        // Died after the last watchdog pass.
                        slots[i].panics += 1;
                        kernel.resilience_mut().worker_panics += 1;
                        let uid = slots[i].current_uid.swap(0, Ordering::SeqCst);
                        kernel.flight_mut().emit(
                            0,
                            FlightEvent::new(FlightKind::WorkerPanic, FlightLayer::Worker, now)
                                .with_uid(uid)
                                .with_vals(i as u64, 0),
                        );
                        if uid != 0 {
                            kernel.flag_stream_error(uid, StreamErrors::WORKER_FAILURE);
                        }
                    }
                }
            }
            for h in extra {
                let _ = h.join();
            }

            // Final releases and control ops.
            while let Ok(op) = ctl_rx.try_recv() {
                kernel.control(op);
            }
            while let Ok(ev) = rel_rx.try_recv() {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }

            let statuses: Vec<WorkerStatus> = slots
                .iter()
                .enumerate()
                .map(|(i, sl)| WorkerStatus {
                    worker: i,
                    panics: sl.panics,
                    stalls: sl.stalls,
                    restarts: sl.restarts,
                })
                .collect();
            let beats: u64 = slots
                .iter()
                .map(|sl| sl.heartbeat.load(Ordering::SeqCst))
                .sum();
            kernel.set_worker_heartbeats(beats);
            // Hoist the telemetry out before the worker registries drop
            // with the scope; the kernel itself survives the capture so
            // it can be checkpointed or hot-reconfigured afterwards.
            let mut telemetry = kernel.telemetry_snapshot();
            telemetry.merge(&worker_tele.snapshot());
            let series = kernel.telemetry_series().clone();
            (kernel, statuses, telemetry, series, now, killed)
        });
        let (kernel, statuses, telemetry, series, end_ts, killed) = scope_out;

        let stats = kernel.stats();
        self.kernel = Some(kernel);
        self.died_at = killed;
        self.last_ts_ns = end_ts;
        self.ckpt_seq = ckpt_seq;
        self.last_error = if statuses.iter().all(WorkerStatus::is_clean) {
            None
        } else {
            Some(CaptureError { workers: statuses })
        };
        // Worker failures also leave a black box next to the checkpoint:
        // the capture survived, but the journal tail records each panic
        // and stall with the stream it was holding.
        if self.last_error.is_some() {
            if let (Some((_, path)), Some(k)) = (self.ckpt_every.as_ref(), self.kernel.as_ref()) {
                let mut bb = path.clone().into_os_string();
                bb.push(".flight");
                let _ = std::fs::write(bb, k.flight().encode_tail(BLACK_BOX_TAIL));
            }
        }
        self.last_stats = Some(stats);
        self.last_telemetry = Some(telemetry);
        self.last_series = Some(series);
        stats
    }

    /// Write a crash-consistent checkpoint of the capture state to
    /// `path` (atomically: tmp file + rename). Works on a socket that
    /// has finished (or been killed mid-) capture, and on a freshly
    /// resumed socket before its next capture.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let ts = self.last_ts_ns;
        let Some(kernel) = self.kernel.as_mut() else {
            return Err(CheckpointError::Corrupt(
                "no capture state to checkpoint (run or resume a capture first)".into(),
            ));
        };
        self.ckpt_seq += 1;
        let bytes = kernel.checkpoint_bytes(ts, self.ckpt_seq);
        checkpoint::write_atomic(path.as_ref(), &bytes)
    }

    /// Hot-reconfiguration: validate and apply a configuration delta to
    /// the capture.
    ///
    /// Validation ([`ConfigDelta::validate`]) rejects a delta that
    /// narrows the default cutoff while wider per-direction or
    /// per-class overrides stay installed — applying it would silently
    /// leave the overridden streams delivering beyond the new default.
    /// On `Err` the configuration is untouched.
    ///
    /// Before the first capture an accepted delta rewrites the pending
    /// configuration; on a socket with live kernel state (resumed, or
    /// between captures) it routes through the kernel's control path,
    /// so widened cutoffs re-open streams exactly like per-stream
    /// `ControlOp::SetCutoff` does — clearing `cutoff_exceeded` and
    /// uninstalling stale NIC drop filters.
    pub fn try_apply_config(&mut self, delta: ConfigDelta) -> Result<(), ConfigError> {
        let installed = self
            .kernel
            .as_ref()
            .map(|k| k.config())
            .or(self.cfg.as_ref());
        if let Some(cfg) = installed {
            delta.validate(cfg)?;
        }
        self.apply_unchecked(delta);
        Ok(())
    }

    fn apply_unchecked(&mut self, delta: ConfigDelta) {
        if let Some(kernel) = self.kernel.as_mut() {
            kernel.apply_config(delta);
            if let Some(cfg) = self.cfg.as_mut() {
                *cfg = kernel.config().clone();
            }
        } else if let Some(cfg) = self.cfg.as_mut() {
            let _ = delta.apply_to(cfg);
        }
    }

    /// The packet index at which an injected crash (`kill_at_packet`)
    /// abandoned the most recent capture, if it did.
    pub fn died_at(&self) -> Option<u64> {
        self.died_at
    }

    /// The encoded flight journal of the most recent capture (`None`
    /// before any capture has run). Decode with
    /// [`scap_flight::decode_journal`].
    pub fn flight_journal(&self) -> Option<Vec<u8>> {
        self.kernel.as_ref().map(|k| k.flight().encode())
    }
}

#[derive(Clone)]
struct WorkerHandlers {
    on_create: Option<Handler>,
    on_data: Option<Handler>,
    on_termination: Option<Handler>,
    sinks: Vec<Arc<dyn EventSink>>,
}

impl WorkerHandlers {
    fn dispatch(&self, ev: &Event, ctl: &Sender<ControlOp>) {
        let mut ctx = StreamCtx {
            stream: &ev.stream,
            dir: None,
            data: None,
            data_offset: 0,
            packet_records: &[],
            ctl,
        };
        let handler = match &ev.kind {
            EventKind::Created => {
                for s in &self.sinks {
                    s.on_created(&ev.stream);
                }
                &self.on_create
            }
            EventKind::Data {
                dir,
                chunk,
                packets,
            } => {
                ctx.dir = Some(*dir);
                ctx.data = Some(chunk.bytes());
                ctx.data_offset = chunk.start_offset;
                ctx.packet_records = packets.as_slice();
                for s in &self.sinks {
                    s.on_data(&ev.stream, *dir, chunk.bytes(), chunk.start_offset);
                }
                &self.on_data
            }
            EventKind::Terminated => {
                for s in &self.sinks {
                    s.on_terminated(&ev.stream);
                }
                &self.on_termination
            }
        };
        if let Some(h) = handler {
            h(&ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn trace() -> Vec<Packet> {
        CampusMix::new(CampusMixConfig::sized(21, 2 << 20)).collect_all()
    }

    #[test]
    fn live_capture_delivers_all_event_kinds() {
        let created = Arc::new(AtomicU64::new(0));
        let data_bytes = Arc::new(AtomicU64::new(0));
        let terminated = Arc::new(AtomicU64::new(0));

        let mut scap = Scap::builder().worker_threads(2).try_build().unwrap();
        {
            let c = created.clone();
            scap.dispatch_creation(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
            let d = data_bytes.clone();
            scap.dispatch_data(move |ctx| {
                d.fetch_add(ctx.data.map_or(0, |b| b.len() as u64), Ordering::Relaxed);
            });
            let t = terminated.clone();
            scap.dispatch_termination(move |_| {
                t.fetch_add(1, Ordering::Relaxed);
            });
        }
        let stats = scap.start_capture(trace());
        assert_eq!(created.load(Ordering::Relaxed), stats.stack.streams_created);
        assert_eq!(
            terminated.load(Ordering::Relaxed),
            stats.stack.streams_reported
        );
        assert!(data_bytes.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.stack.dropped_packets, 0);
        assert!(scap.stats().is_some());
        assert!(scap.last_capture_error().is_none());
    }

    #[test]
    fn zero_cutoff_suppresses_data_events() {
        let data_events = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().cutoff(0).try_build().unwrap();
        let d = data_events.clone();
        scap.dispatch_data(move |_| {
            d.fetch_add(1, Ordering::Relaxed);
        });
        let stats = scap.start_capture(trace());
        assert_eq!(data_events.load(Ordering::Relaxed), 0);
        assert!(stats.stack.streams_reported > 0);
    }

    #[test]
    fn discard_stream_from_callback_stops_data() {
        let seen = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().chunk_size(1024).try_build().unwrap();
        let s = seen.clone();
        scap.dispatch_data(move |ctx| {
            s.fetch_add(ctx.data.map_or(0, |b| b.len() as u64), Ordering::Relaxed);
            ctx.discard_stream();
        });
        let stats = scap.start_capture(trace());
        // Discards must have kicked in: far less data delivered than
        // exists on the wire.
        let delivered = seen.load(Ordering::Relaxed);
        assert!(delivered > 0);
        assert!(stats.stack.discarded_packets > 0);
    }

    #[test]
    fn try_apply_config_rejects_conflicting_narrowing() {
        let mut scap = Scap::builder()
            .cutoff(1_000)
            .cutoff_class("port 80", 50_000)
            .try_build()
            .unwrap();
        // Narrowing the default below the installed class override is
        // rejected and leaves the configuration untouched.
        let err = scap
            .try_apply_config(ConfigDelta {
                cutoff_default: Some(Some(10)),
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::CutoffConflict {
                new_default: Some(10),
                widest_override: Some(50_000),
            }
        );
        // Widening generalizes the policy — the class override is
        // cleared — after which the same narrowing is accepted.
        scap.try_apply_config(ConfigDelta {
            cutoff_default: Some(Some(100_000)),
            ..Default::default()
        })
        .unwrap();
        scap.try_apply_config(ConfigDelta {
            cutoff_default: Some(Some(10)),
            ..Default::default()
        })
        .unwrap();
        let stats = scap.start_capture(trace());
        assert!(stats.stack.streams_reported > 0);
    }

    #[test]
    fn filter_restricts_capture() {
        let mut scap = Scap::builder()
            .filter("udp and port 53")
            .try_build()
            .unwrap();
        let stats = scap.start_capture(trace());
        assert!(stats.stack.streams_created > 0);
        assert!(stats.stack.discarded_packets > stats.stack.streams_created);
    }

    #[test]
    fn invalid_filter_is_an_error() {
        assert!(Scap::builder().filter("tcp and and").try_build().is_err());
    }

    #[test]
    fn packet_records_iterate_with_payloads() {
        let pkt_count = Arc::new(AtomicU64::new(0));
        let payload_bytes = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().need_packets(true).try_build().unwrap();
        let pc = pkt_count.clone();
        let pb = payload_bytes.clone();
        scap.dispatch_data(move |ctx| {
            for (rec, slice) in ctx.packets() {
                pc.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = slice {
                    pb.fetch_add(s.len() as u64, Ordering::Relaxed);
                }
                assert!(rec.wire_len > 0);
            }
        });
        scap.start_capture(trace());
        assert!(pkt_count.load(Ordering::Relaxed) > 0);
        assert!(payload_bytes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn second_capture_on_consumed_socket_returns_previous_stats() {
        let mut scap = Scap::builder().try_build().unwrap();
        let first = scap.start_capture(trace());
        let second = scap.start_capture(trace());
        assert_eq!(first.stack.wire_packets, second.stack.wire_packets);
    }

    #[test]
    fn telemetry_snapshot_conserves_packets_and_times_workers() {
        let mut scap = Scap::builder().worker_threads(2).try_build().unwrap();
        scap.dispatch_data(|_| {});
        let stats = scap.start_capture(trace());
        let snap = scap.telemetry_snapshot().expect("telemetry captured");
        assert_eq!(snap.total(Metric::WirePackets), stats.stack.wire_packets);
        assert_eq!(
            snap.total(Metric::WirePackets),
            snap.total(Metric::DeliveredPackets)
                + snap.total(Metric::DroppedPackets)
                + snap.total(Metric::DiscardedPackets)
        );
        // Worker spans are wall-clock and must cover every handled event.
        assert_eq!(
            snap.stage(Stage::Worker).count(),
            snap.total(Metric::WorkerEventsHandled)
        );
        assert!(snap.total(Metric::WorkerEventsHandled) > 0);
        assert!(snap.stage(Stage::Nic).count() >= stats.stack.wire_packets);
        assert!(scap.telemetry_series().is_some());
    }

    #[test]
    fn stats_interval_fires_the_stats_hook() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().stats_interval(500).try_build().unwrap();
        let c = calls.clone();
        scap.dispatch_stats(move |snap| {
            assert!(snap.total(Metric::WirePackets) > 0);
            c.fetch_add(1, Ordering::Relaxed);
        });
        scap.start_capture(trace());
        assert!(calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn attached_sink_observes_every_event_kind() {
        #[derive(Default)]
        struct Counting {
            created: AtomicU64,
            data_bytes: AtomicU64,
            terminated: AtomicU64,
        }
        impl EventSink for Counting {
            fn on_created(&self, _s: &StreamSnapshot) {
                self.created.fetch_add(1, Ordering::Relaxed);
            }
            fn on_data(&self, _s: &StreamSnapshot, _dir: Direction, data: &[u8], _off: u64) {
                self.data_bytes
                    .fetch_add(data.len() as u64, Ordering::Relaxed);
            }
            fn on_terminated(&self, _s: &StreamSnapshot) {
                self.terminated.fetch_add(1, Ordering::Relaxed);
            }
        }

        let sink = Arc::new(Counting::default());
        let mut scap = Scap::builder().worker_threads(2).try_build().unwrap();
        scap.attach_sink(sink.clone());
        let stats = scap.start_capture(trace());
        assert_eq!(
            sink.created.load(Ordering::Relaxed),
            stats.stack.streams_created
        );
        assert_eq!(
            sink.terminated.load(Ordering::Relaxed),
            stats.stack.streams_reported
        );
        assert!(sink.data_bytes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn panicking_callback_does_not_kill_the_capture() {
        let mut scap = Scap::builder().worker_threads(2).try_build().unwrap();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        scap.dispatch_data(move |_| {
            if f.fetch_add(1, Ordering::Relaxed) == 3 {
                panic!("application bug");
            }
        });
        let stats = scap.start_capture(trace());
        assert!(stats.stack.streams_created > 0);
        let err = scap.last_capture_error().expect("panic must be reported");
        assert!(err.panics() >= 1, "{err}");
        assert!(stats.resilience.worker_panics >= 1);
        assert!(stats.resilience.worker_restarts >= 1);
        assert_eq!(
            stats.resilience.watchdog_breaker_trips, 0,
            "a single panic must stay far below the default breaker threshold"
        );
    }

    #[test]
    fn watchdog_breaker_parks_a_flapping_worker_slot() {
        // Threshold 1: the very first failure trips the breaker, so the
        // watchdog must park the slot instead of respawning — and the
        // capture must still drain and complete.
        let mut scap = Scap::builder()
            .worker_threads(2)
            .watchdog_breaker(1, 10_000_000_000)
            .try_build()
            .unwrap();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        scap.dispatch_data(move |_| {
            if f.fetch_add(1, Ordering::Relaxed) == 3 {
                panic!("application bug");
            }
        });
        let stats = scap.start_capture(trace());
        assert!(stats.stack.streams_created > 0);
        assert!(stats.resilience.worker_panics >= 1);
        assert!(
            stats.resilience.watchdog_breaker_trips >= 1,
            "threshold-1 breaker must trip on the first failure: {:?}",
            stats.resilience
        );
        // The trip is journaled with the slot index and failure count.
        let journal = scap.flight_journal().expect("journal after capture");
        let journal = scap_flight::decode_journal(&journal).expect("journal decodes");
        let trips: Vec<_> = journal
            .events
            .iter()
            .filter(|e| e.kind == FlightKind::BreakerTripped)
            .collect();
        assert!(!trips.is_empty(), "breaker trip must reach the journal");
        assert_eq!(trips[0].layer, FlightLayer::Worker);
    }
}
