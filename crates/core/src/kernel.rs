//! The Scap kernel module, emulated: per-core flow tracking, in-kernel
//! TCP/UDP stream reassembly into arena chunks, event creation, cutoffs,
//! PPL, inactivity expiration, and dynamic NIC filter management (§4–§5
//! of the paper).
//!
//! The type is driver-agnostic: the simulation driver pulls packets
//! through it under cycle budgets and collects the returned [`Work`]
//! receipts; the live threaded driver calls the same methods and ignores
//! the receipts. All algorithmic behaviour (what gets tracked, copied,
//! discarded, dropped, reported) lives here, once.

use crate::checkpoint::{
    self, AsmImage, CheckpointError, CheckpointGlobals, CheckpointImage, KStateImage, StreamImage,
};
use crate::config::{ConfigDelta, ScapConfig};
use crate::event::{Event, EventKind, PacketRecord, StreamSnapshot, StreamUid};
use crate::governor::OverloadGovernor;
use scap_fastpath::{hash_key, BurstStats, HashedKey};
use scap_faults::{ArenaInjector, FaultPlan, FrameFaultStats, RingInjector};
use scap_flight::{DropReason, FlightEvent, FlightKind, FlightLayer, FlightRecorder};
use scap_flow::{FlowTable, FlowTableConfig, StreamErrors, StreamId, StreamRecord, StreamStatus};
use scap_memory::{Arena, ChunkAssembler, ChunkBuf, PplVerdict};
use scap_nic::{FdirError, FdirFilter, Nic, NicVerdict, OffloadAction, OffloadError, OffloadRule};
use scap_reassembly::{CloseKind, ReasmConfig, ReasmFlags, TcpConn};
use scap_sim::{CacheSim, StackStats, Work};
use scap_telemetry::pulse::cost;
use scap_telemetry::{
    cycles_to_ns, Gauge, Metric, PlainRegistry, Pulse, PulseSnapshot, PulseStage, Sampler,
    Snapshot, Stage,
};
use scap_trace::Packet;
use scap_wire::{parse_frame, Direction, FlowKey, ParsedPacket, TcpFlags, TcpMeta, Transport};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Approximate header bytes the kernel touches per packet.
const HDR_TOUCH_BYTES: u64 = 64;
/// Streams expired per timer pass (bounds softirq latency).
const EXPIRE_BATCH: usize = 256;
/// Initial FDIR filter timeout; doubles on each reinstall (§5.5).
const FDIR_INITIAL_TIMEOUT_NS: u64 = 2_000_000_000;
/// Delay before the first retry of a transiently failed FDIR install;
/// doubles per attempt (exponential backoff with deterministic jitter).
const FDIR_RETRY_BASE_NS: u64 = 50_000;
/// Hard ceiling on any single FDIR retry delay, jitter included: the
/// backoff curve flattens here instead of growing without bound.
const FDIR_RETRY_CAP_NS: u64 = 5_000_000;
/// Install attempts (beyond the first) before falling back to software
/// cutoff enforcement for good.
const FDIR_RETRY_MAX_ATTEMPTS: u32 = 5;
/// Entries the offload table's clock hand examines per eviction (bounds
/// the worst-case install latency at million-rule scale).
const OFFLOAD_EVICT_SCAN: usize = 64;

/// Per-stream kernel-side state (parallel to the flow record).
struct StreamKState {
    uid: StreamUid,
    conn: Option<TcpConn>,
    asm: [Option<ChunkAssembler>; 2],
    pkt_records: [Vec<PacketRecord>; 2],
    flush_armed: [bool; 2],
    fdir_installed: bool,
    fdir_timeout_ns: u64,
    /// A transiently failed install is parked on the retry queue.
    fdir_retry_pending: bool,
    /// Retries exhausted: the cutoff is enforced in software only.
    fdir_software_fallback: bool,
    /// A `Drop` rule for this stream is live in the NIC offload table.
    offload_installed: bool,
    /// Chunks held back by `scap_keep_stream_chunk` for merging.
    kept: [Option<ChunkBuf>; 2],
}

impl StreamKState {
    fn new(uid: StreamUid) -> Self {
        StreamKState {
            uid,
            conn: None,
            asm: [None, None],
            pkt_records: [Vec::new(), Vec::new()],
            flush_armed: [false, false],
            fdir_installed: false,
            fdir_timeout_ns: FDIR_INITIAL_TIMEOUT_NS,
            fdir_retry_pending: false,
            fdir_software_fallback: false,
            offload_installed: false,
            kept: [None, None],
        }
    }
}

/// A transiently failed FDIR install awaiting its next attempt.
#[derive(Debug, Clone, Copy)]
struct FdirRetry {
    core: usize,
    id: StreamId,
    uid: StreamUid,
    attempts: u32,
    next_try_ns: u64,
}

/// Per-stream control operations (the `scap_set_stream_*` family and
/// `scap_discard_stream` / `scap_keep_stream_chunk` of Table 1),
/// addressed by the capture-wide stream uid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Stop collecting data for this stream (`scap_discard_stream`).
    Discard(StreamUid),
    /// Change the stream's cutoff; `None` direction applies to both.
    SetCutoff(StreamUid, Option<Direction>, Option<u64>),
    /// Change the stream's priority (`scap_set_stream_priority`).
    SetPriority(StreamUid, u8),
    /// Merge the stream's last chunk into the next one
    /// (`scap_keep_stream_chunk`); takes effect when the delivered chunk
    /// is returned via [`ScapKernel::release_data`].
    KeepChunk(StreamUid, Direction),
    /// Change the stream's chunk size and overlap
    /// (`scap_set_stream_parameter`); applies from the next chunk.
    SetChunkGeometry(StreamUid, u32, u32),
}

/// One core's kernel instance.
struct CoreState {
    flows: FlowTable,
    kstates: HashMap<StreamId, StreamKState>,
    events: VecDeque<Event>,
    /// (deadline, stream, dir, chunk offset when armed) flush timers.
    flush_timers: VecDeque<(u64, StreamId, Direction, u64)>,
}

/// Aggregate capture statistics (`scap_get_stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScapStats {
    /// Engine-comparable statistics.
    pub stack: StackStats,
    /// Chunks delivered.
    pub chunks: u64,
    /// Streams expired by inactivity.
    pub expired_streams: u64,
    /// FDIR install/remove operations performed.
    pub fdir_ops: u64,
    /// Offload-table install/remove/evict operations performed.
    pub offload_ops: u64,
    /// Events dropped because a queue overflowed.
    pub events_dropped: u64,
    /// Streams steered to a colder core by dynamic load balancing (§2.4).
    pub rebalanced_streams: u64,
    /// Wire packets per priority level (indices above the configured
    /// level count collapse into the top slot).
    pub wire_by_priority: [u64; 4],
    /// Overload-dropped packets per priority level (the Fig. 9 metric).
    pub dropped_by_priority: [u64; 4],
    /// Fault/recovery counters (injection, retries, governor, watchdog).
    pub resilience: ResilienceStats,
}

/// Counters for every fault handled and every degradation the pipeline
/// took to survive it. All zero in a fault-free, unloaded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// FDIR installs rejected transiently by the hardware.
    pub fdir_transient_failures: u64,
    /// Install retry attempts made from the backoff queue.
    pub fdir_retries: u64,
    /// Retries that eventually installed the filters.
    pub fdir_retry_successes: u64,
    /// Streams whose retries were exhausted: their cutoff is enforced in
    /// software (kernel discard path) instead of at the NIC.
    pub fdir_fallback_software: u64,
    /// Installs that succeeded but took an injected latency spike.
    pub fdir_slow_installs: u64,
    /// Distinct RX descriptor-ring stall windows endured.
    pub ring_stall_windows: u64,
    /// Distinct arena pressure spikes endured.
    pub arena_spikes: u64,
    /// Frames corrupted at the trace boundary.
    pub frames_corrupted: u64,
    /// Frames truncated at the trace boundary.
    pub frames_truncated: u64,
    /// Frames duplicated at the trace boundary.
    pub frames_duplicated: u64,
    /// Timestamp anomalies (skew/repeat) injected.
    pub ts_anomalies: u64,
    /// Frames reordered at the trace boundary.
    pub frames_reordered: u64,
    /// Governor level at the time the stats were read.
    pub governor_level: u8,
    /// Highest governor level reached.
    pub governor_max_level: u8,
    /// Governor level changes (up or down).
    pub governor_transitions: u64,
    /// Packets discarded only because the governor tightened a cutoff
    /// below its configured value.
    pub governor_cutoff_clamps: u64,
    /// Low-priority streams whose pending data the governor evicted.
    pub evicted_streams: u64,
    /// Worker threads that died mid-capture (live driver watchdog).
    pub worker_panics: u64,
    /// Worker stalls detected by the heartbeat watchdog.
    pub worker_stalls_detected: u64,
    /// Replacement workers spawned by the watchdog.
    pub worker_restarts: u64,
    /// Warm restarts this capture lineage has been through (carried
    /// forward through every checkpoint and incremented on restore).
    pub restarts: u64,
    /// Checkpoints written by this instance (periodic and final).
    pub checkpoints_written: u64,
    /// Live streams restored from the checkpoint at the last restart.
    pub resumed_streams: u64,
    /// Estimated recovery latency of the last restore, in virtual
    /// cycles (deterministic cost model, not wall time).
    pub recovery_virtual_cycles: u64,
    /// Total bytes skipped across all streams in warm-restart blackout
    /// windows (the sum of per-stream `resume_gap_bytes`).
    pub resume_gap_bytes: u64,
    /// Worker slots parked by the watchdog's circuit breaker (too many
    /// panics/stalls inside the breaker window — respawning stopped).
    pub watchdog_breaker_trips: u64,
}

/// The emulated kernel module.
pub struct ScapKernel {
    cfg: ScapConfig,
    nic: Nic<Packet>,
    cores: Vec<CoreState>,
    arena: Arena,
    /// FDIR filter deadlines: (deadline, uid) → (core, id, key).
    fdir_expiries: BTreeMap<(u64, StreamUid), (usize, StreamId, FlowKey)>,
    /// Host-side shadow of stream-owned offload `Drop` rules: canonical
    /// key → owning stream, so a hardware eviction can clear the owner's
    /// `offload_installed` flag (the table itself knows only keys).
    offload_owners: HashMap<FlowKey, (usize, StreamId, StreamUid)>,
    /// Capture-wide uid → (core, id) for control operations.
    uid_index: HashMap<StreamUid, (usize, StreamId)>,
    /// Keep-chunk requests awaiting the chunk's return.
    pending_keep: std::collections::HashSet<(StreamUid, u8)>,
    uid_counter: u64,
    stats: ScapStats,
    /// Optional cache model (Fig. 7 locality experiment).
    cache: Option<CacheSim>,
    /// Synthetic DMA-buffer cursor for frame-header touches.
    dma_cursor: u64,
    /// Overload governor (escalating degradation under pressure).
    governor: OverloadGovernor,
    /// Transiently failed FDIR installs awaiting retry (backoff queue).
    fdir_retry: VecDeque<FdirRetry>,
    /// RX ring stall injection (None without a fault plan).
    ring_faults: Option<RingInjector>,
    /// Arena pressure-spike injection (None without a fault plan).
    arena_faults: Option<ArenaInjector>,
    /// `finish()` drains rings unconditionally, stall windows included.
    drain_mode: bool,
    /// Per-core telemetry counters (shard = core; the NIC-admission path
    /// records into shard 0 because no core is involved yet).
    tele: PlainRegistry,
    /// Bounded gauge time-series, sampled on core 0's timer pass and
    /// keyed on the caller's clock (virtual/trace time), so a seeded
    /// run produces a byte-identical series.
    sampler: Sampler,
    /// Always-on flight recorder: per-core ring journals of typed events
    /// with drop provenance. Every stack-level loss recorded by the
    /// accounting funnel below also lands here, so event sums reconcile
    /// with the telemetry counters by construction.
    flight: FlightRecorder,
    /// Last worker-heartbeat count reported by the driver (gauge input;
    /// 0 under the sim driver until the stack reports deliveries).
    worker_heartbeats: u64,
    /// Set by [`ScapKernel::from_image`]: the first clock observed after
    /// a warm restart re-stamps every restored flow's activity so the
    /// blackout never counts as inactivity (the process was down, the
    /// streams were not idle).
    resume_epoch_pending: bool,
    /// The multi-tenant attachment table (`scapd`), carried opaquely so
    /// tenant attachments survive checkpoint/restore with the capture.
    /// Empty for single-tenant captures.
    tenant_table: Vec<checkpoint::TenantImage>,
    /// Poll-mode burst-fill statistics (fast path only).
    fp_stats: BurstStats,
    /// Flow-table lookups performed (denominator of the mean
    /// probe-length gauge; `Metric::KernelHashProbes` is the numerator).
    flow_lookups: u64,
    /// The latency pulse plane (scap-pulse): one histogram per
    /// [`PulseStage`] plus tail-sampled exemplars. Clock-difference
    /// stages (dispatch, delivery) measure on the trace clock;
    /// processing stages record the deterministic virtual costs from
    /// [`scap_telemetry::pulse::cost`], so seeded runs are reproducible.
    pulse: Pulse,
}

impl ScapKernel {
    /// Build the kernel side from a configuration.
    pub fn new(cfg: ScapConfig) -> Self {
        let ncores = cfg.cores.max(1);
        let cores = (0..ncores)
            .map(|i| CoreState {
                flows: FlowTable::new(FlowTableConfig::default(), 0x5CA9_0000 + i as u64),
                kstates: HashMap::new(),
                events: VecDeque::new(),
                flush_timers: VecDeque::new(),
            })
            .collect();
        let mut nic = Nic::new(ncores, cfg.rx_ring_slots);
        if cfg.use_offload {
            // The million-entry table is only allocated when the offload
            // stage is on; disabled captures keep the power-on stub.
            nic.set_offload_capacity(cfg.offload_capacity);
        }
        let mut ring_faults = None;
        let mut arena_faults = None;
        let mut flight_cap = cfg.flight_ring_cap;
        if let Some(plan) = &cfg.faults {
            nic.fdir_mut().set_fault_injector(plan.fdir_injector());
            nic.offload_mut().set_fault_injector(plan.fdir_injector());
            ring_faults = Some(plan.ring_injector());
            arena_faults = Some(plan.arena_injector(cfg.memory_bytes as u64));
            flight_cap = plan.flight.effective_cap(flight_cap);
        }
        ScapKernel {
            nic,
            arena: Arena::new(cfg.memory_bytes),
            cores,
            fdir_expiries: BTreeMap::new(),
            offload_owners: HashMap::new(),
            uid_index: HashMap::new(),
            pending_keep: std::collections::HashSet::new(),
            uid_counter: 0,
            stats: ScapStats::default(),
            cache: None,
            dma_cursor: 0,
            governor: OverloadGovernor::new(cfg.governor),
            fdir_retry: VecDeque::new(),
            ring_faults,
            arena_faults,
            drain_mode: false,
            tele: PlainRegistry::new(ncores),
            sampler: Sampler::new(cfg.telemetry_sample_interval_ns, cfg.telemetry_series_cap),
            flight: FlightRecorder::new(ncores, flight_cap),
            worker_heartbeats: 0,
            resume_epoch_pending: false,
            tenant_table: Vec::new(),
            fp_stats: BurstStats::default(),
            flow_lookups: 0,
            pulse: Pulse::new(cfg.pulse_exemplar_permille, cfg.pulse_exemplar_cap),
            cfg,
        }
    }

    /// First clock observation after a restore: excuse the blackout from
    /// every restored flow's idle clock. Without this, a blackout longer
    /// than the inactivity timeout would reap every resumed stream before
    /// its first post-restart packet, splitting each into a second uid.
    fn excuse_blackout(&mut self, now: u64) {
        if !self.resume_epoch_pending {
            return;
        }
        self.resume_epoch_pending = false;
        for core in 0..self.cores.len() {
            let ids: Vec<StreamId> = self.cores[core].flows.iter().map(|r| r.id).collect();
            for id in ids {
                self.cores[core].flows.touch(id, now);
            }
        }
    }

    /// Attach a cache model. The kernel then traces its memory touches —
    /// DMA'd frame headers, flow records, per-stream chunk writes — and
    /// [`ScapKernel::user_touch_chunk`] traces the worker's reads.
    pub fn set_cache(&mut self, cache: CacheSim) {
        self.cache = Some(cache);
    }

    /// Total cache misses recorded (0 when no cache model is attached).
    pub fn cache_misses(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.misses)
    }

    /// Synthetic per-stream chunk-region address (128 MB stride per
    /// stream, one half per direction — the "stream-specific memory
    /// regions" of the paper, laid out for the cache model).
    fn chunk_region_addr(uid: StreamUid, dir: Direction, offset: u64) -> u64 {
        0x100_0000_0000
            + uid * 0x800_0000
            + (dir.index() as u64) * 0x400_0000
            + (offset % 0x400_0000)
    }

    /// Record the worker reading a delivered chunk; returns misses.
    pub fn user_touch_chunk(&mut self, chunk: &ChunkBuf) -> u64 {
        match self.cache.as_mut() {
            Some(c) if chunk.sim_addr != 0 => c.access(chunk.sim_addr, chunk.len),
            _ => 0,
        }
    }

    /// Apply a per-stream control operation (`scap_set_stream_*`).
    /// Operations on already-terminated streams are silently ignored,
    /// matching the racy-but-safe semantics of the real socket calls.
    pub fn control(&mut self, op: ControlOp) {
        match op {
            ControlOp::Discard(uid) => {
                if let Some(&(core, id)) = self.uid_index.get(&uid) {
                    if let Some(rec) = self.cores[core].flows.get_mut(id) {
                        rec.discarded = true;
                    }
                }
            }
            ControlOp::SetCutoff(uid, dir, value) => {
                if let Some(&(core, id)) = self.uid_index.get(&uid) {
                    if let Some(rec) = self.cores[core].flows.get_mut(id) {
                        match dir {
                            Some(d) => rec.cutoff[d.index()] = value,
                            None => rec.cutoff = [value, value],
                        }
                    }
                    // A widened cutoff may re-open a stream whose old,
                    // narrower cutoff had tripped.
                    self.reopen_if_within_cutoff(core, id, uid);
                }
            }
            ControlOp::SetPriority(uid, prio) => {
                if let Some(&(core, id)) = self.uid_index.get(&uid) {
                    if let Some(rec) = self.cores[core].flows.get_mut(id) {
                        rec.priority = prio;
                    }
                }
            }
            ControlOp::KeepChunk(uid, dir) => {
                self.pending_keep.insert((uid, dir.index() as u8));
            }
            ControlOp::SetChunkGeometry(uid, chunk_size, overlap) => {
                let chunk_size = chunk_size.max(1);
                let overlap = overlap.min(chunk_size - 1);
                if let Some(&(core, id)) = self.uid_index.get(&uid) {
                    if let Some(rec) = self.cores[core].flows.get_mut(id) {
                        rec.chunk_size = chunk_size;
                        rec.overlap = overlap;
                    }
                    if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
                        for asm in ks.asm.iter_mut().flatten() {
                            asm.set_geometry(chunk_size as usize, overlap as usize);
                        }
                    }
                }
            }
        }
    }

    /// After a cutoff change: if the stream had tripped its (narrower)
    /// cutoff but every direction is now within the new one, re-open it —
    /// clear the exceeded flag, pull the NIC drop filters, and reset the
    /// stream's FDIR bookkeeping so data collection resumes. Shared by
    /// [`ControlOp::SetCutoff`] and the hot-reload path, which both go
    /// through [`ScapKernel::control`].
    fn reopen_if_within_cutoff(&mut self, core: usize, id: StreamId, uid: StreamUid) {
        let Some((cutoff, key, exceeded)) = self.cores[core]
            .flows
            .get(id)
            .map(|r| (r.cutoff, r.key, r.cutoff_exceeded))
        else {
            return;
        };
        if !exceeded {
            return;
        }
        let Some(ks) = self.cores[core].kstates.get(&id) else {
            return; // tombstone: nothing to re-open
        };
        let still_beyond = (0..2).any(|d| {
            let off = ks.asm[d].as_ref().map_or(0, |a| a.stream_offset());
            cutoff[d].is_some_and(|c| off >= c)
        });
        if still_beyond {
            return;
        }
        let had_filters = ks.fdir_installed;
        let had_offload = ks.offload_installed;
        if let Some(rec) = self.cores[core].flows.get_mut(id) {
            rec.cutoff_exceeded = false;
        }
        let mut work = Work::default();
        if had_filters {
            self.remove_fdir_filters(key, &mut work);
            self.fdir_expiries.retain(|&(_, euid), _| euid != uid);
        }
        if had_offload {
            self.remove_offload_rule(key, &mut work);
        }
        if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
            ks.fdir_installed = false;
            ks.fdir_timeout_ns = FDIR_INITIAL_TIMEOUT_NS;
            ks.fdir_retry_pending = false;
            ks.fdir_software_fallback = false;
            ks.offload_installed = false;
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScapConfig {
        &self.cfg
    }

    /// Number of cores / RX queues.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// Aggregate statistics (NIC counters merged in).
    pub fn stats(&self) -> ScapStats {
        let mut s = self.stats;
        let n = self.nic.stats();
        s.stack.nic_filtered_packets =
            n.fdir_dropped_frames + n.offload_dropped_frames + n.offload_sampled_frames;
        s.stack.dropped_packets += n.ring_dropped_frames;
        s.stack.dropped_bytes += n.ring_dropped_bytes;
        s.resilience.fdir_transient_failures = self.nic.fdir().transient_failures;
        s.resilience.fdir_slow_installs = self.nic.fdir().slow_installs;
        if let Some(inj) = &self.ring_faults {
            s.resilience.ring_stall_windows = inj.windows_seen();
        }
        if let Some(inj) = &self.arena_faults {
            s.resilience.arena_spikes = inj.spikes_seen();
        }
        let g = self.governor.stats();
        s.resilience.governor_level = self.governor.level();
        s.resilience.governor_max_level = g.max_level;
        s.resilience.governor_transitions = g.transitions;
        s
    }

    /// Stack-level delivered accounting. `ScapStats` and the telemetry
    /// registry move in lockstep through these three helpers, so the
    /// conservation identity `wire = delivered + dropped + discarded`
    /// can be cross-checked against either source.
    #[inline]
    fn acct_delivered(&mut self, core: usize, pkts: u64, bytes: u64) {
        self.stats.stack.delivered_packets += pkts;
        self.stats.stack.delivered_bytes += bytes;
        self.tele.add(core, Metric::DeliveredPackets, pkts);
        self.tele.add(core, Metric::DeliveredBytes, bytes);
    }

    /// Stack-level dropped accounting (overload losses). Every loss also
    /// lands in the flight journal with `{layer, reason, uid}` provenance
    /// — counters and events cannot diverge because they share this one
    /// funnel.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn acct_dropped(
        &mut self,
        core: usize,
        now: u64,
        uid: StreamUid,
        layer: FlightLayer,
        reason: DropReason,
        pkts: u64,
        bytes: u64,
    ) {
        self.stats.stack.dropped_packets += pkts;
        self.stats.stack.dropped_bytes += bytes;
        self.tele.add(core, Metric::DroppedPackets, pkts);
        self.tele.add(core, Metric::DroppedBytes, bytes);
        self.flight.emit(
            core,
            FlightEvent::new(FlightKind::Drop, layer, now)
                .with_reason(reason)
                .with_uid(uid)
                .with_vals(pkts, bytes),
        );
    }

    /// Stack-level discarded accounting (deliberate early discards);
    /// same funnel discipline as [`ScapKernel::acct_dropped`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn acct_discarded(
        &mut self,
        core: usize,
        now: u64,
        uid: StreamUid,
        layer: FlightLayer,
        reason: DropReason,
        pkts: u64,
        bytes: u64,
    ) {
        self.stats.stack.discarded_packets += pkts;
        self.stats.stack.discarded_bytes += bytes;
        self.tele.add(core, Metric::DiscardedPackets, pkts);
        self.tele.add(core, Metric::DiscardedBytes, bytes);
        self.flight.emit(
            core,
            FlightEvent::new(FlightKind::Discard, layer, now)
                .with_reason(reason)
                .with_uid(uid)
                .with_vals(pkts, bytes),
        );
    }

    /// The always-on flight recorder (read side: journal export, drop
    /// attribution, black-box dumps).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Export the pulse plane: per-stage latency histograms plus the
    /// tail exemplars, re-filtered against the final quantile estimates.
    pub fn pulse_snapshot(&self) -> PulseSnapshot {
        self.pulse.snapshot()
    }

    /// Mutable access to the pulse plane (drivers append spans the
    /// kernel cannot see, e.g. store-seal latency in single-process
    /// harnesses).
    pub fn pulse_mut(&mut self) -> &mut Pulse {
        &mut self.pulse
    }

    /// Record end-to-end delivery latency for one event: the delta from
    /// the producing packet's NIC-ingress timestamp to `now_ns`, the
    /// moment a worker actually received the event. Exemplar-eligible —
    /// the stream uid and the flight-journal cursor ride along so tail
    /// deliveries can be reconstructed with `scapcat --trace <uid>`.
    pub fn note_delivery(&mut self, ev: &Event, now_ns: u64) {
        let delay = now_ns.saturating_sub(ev.ingress_ns);
        let cursor = self.flight.total_recorded();
        if self
            .pulse
            .record_uid(PulseStage::Delivery, delay, ev.stream.uid, cursor)
        {
            // Journal the outlier so the exported exemplar's uid always
            // resolves in the journal its cursor points into. Delivery
            // happens on the worker side of the queue; core 0 hosts the
            // capture-wide ring, matching NIC-layer attribution.
            self.flight.emit(
                0,
                FlightEvent::new(FlightKind::PulseExemplar, FlightLayer::Worker, now_ns)
                    .with_uid(ev.stream.uid)
                    .with_vals(PulseStage::Delivery.idx() as u64, delay),
            );
        }
    }

    /// Mutable flight-recorder access for drivers: the live watchdog
    /// records worker panic/stall/restart events through this.
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// The kernel's own telemetry registry (one shard per core).
    pub fn telemetry(&self) -> &PlainRegistry {
        &self.tele
    }

    /// The gauge time-series sampled so far.
    pub fn telemetry_series(&self) -> &Sampler {
        &self.sampler
    }

    /// Report the drivers' worker heartbeat count (events delivered to
    /// application callbacks); surfaces as the `worker_heartbeats` gauge.
    pub fn set_worker_heartbeats(&mut self, n: u64) {
        self.worker_heartbeats = n;
    }

    /// Capture-wide telemetry: the kernel's per-core registry merged
    /// with the NIC's per-queue registry and the arena's. Mirrors
    /// [`ScapKernel::stats`]: ring-overflowed frames are already counted
    /// as `dropped_packets` by the NIC layer, so the conservation
    /// identity holds on the merged snapshot.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut s = self.tele.snapshot();
        s.merge(&self.nic.telemetry().snapshot());
        s.merge(&self.arena.telemetry().snapshot());
        s
    }

    /// Current gauge values, in [`Gauge::ALL`] order.
    fn sample_gauges(&self) -> [u64; Gauge::COUNT] {
        let mut fill = 0.0f64;
        let mut backlog = 0usize;
        let mut streams = 0usize;
        let mut flow_load = 0u64;
        let mut flow_probes = 0u64;
        for c in 0..self.cores.len() {
            fill = fill.max(self.nic.queue(c).fill_level());
            backlog += self.cores[c].events.len();
            streams += self.cores[c].flows.len();
            flow_load = flow_load.max(self.cores[c].flows.load_permille());
            flow_probes += self.cores[c].flows.probes;
        }
        let mut g = [0u64; Gauge::COUNT];
        g[Gauge::RingFillPermille.idx()] = (fill * 1000.0) as u64;
        g[Gauge::ArenaUsedPermille.idx()] = (self.arena.used_fraction() * 1000.0) as u64;
        g[Gauge::EventBacklog.idx()] = backlog as u64;
        g[Gauge::GovernorLevel.idx()] = u64::from(self.governor.level());
        g[Gauge::FdirFilters.idx()] = self.nic.fdir().len() as u64;
        g[Gauge::TrackedStreams.idx()] = streams as u64;
        g[Gauge::WorkerHeartbeats.idx()] = self.worker_heartbeats;
        g[Gauge::FlowLoadPermille.idx()] = flow_load;
        g[Gauge::FlowProbeCentigroups.idx()] = flow_probes * 100 / self.flow_lookups.max(1);
        g[Gauge::FastpathFillPermille.idx()] = self.fp_stats.fill_permille();
        g[Gauge::OffloadRules.idx()] = self.nic.offload().len() as u64;
        g[Gauge::OffloadLoadPermille.idx()] = self.nic.offload().load_permille();
        g
    }

    /// Poll-mode burst-fill statistics (zeroed unless the fast path ran).
    pub fn fastpath_stats(&self) -> BurstStats {
        self.fp_stats
    }

    /// Merge frame-level fault counters observed by the driver at the
    /// trace boundary (the kernel never sees those frames pre-mangling).
    pub fn note_frame_faults(&mut self, f: FrameFaultStats) {
        let r = &mut self.stats.resilience;
        r.frames_corrupted = f.corrupted;
        r.frames_truncated = f.truncated;
        r.frames_duplicated = f.duplicated;
        r.ts_anomalies = f.ts_anomalies;
        r.frames_reordered = f.reordered;
    }

    /// Mutable access to the resilience counters (the live driver's
    /// watchdog reports worker panics/stalls/restarts through this).
    pub fn resilience_mut(&mut self) -> &mut ResilienceStats {
        &mut self.stats.resilience
    }

    /// Set an error flag on a live stream (the live driver's watchdog
    /// marks streams whose worker died mid-dispatch). No-op if the stream
    /// already terminated.
    pub fn flag_stream_error(&mut self, uid: StreamUid, err: StreamErrors) {
        if let Some(&(core, id)) = self.uid_index.get(&uid) {
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.errors.set(err);
            }
        }
    }

    /// Raw NIC counters (diagnostics).
    pub fn nic_stats(&self) -> scap_nic::NicStats {
        self.nic.stats()
    }

    /// Current arena fill fraction (diagnostics).
    pub fn memory_used_fraction(&self) -> f64 {
        self.arena.used_fraction()
    }

    /// Peak arena fill fraction over the capture (diagnostics).
    pub fn memory_peak_fraction(&self) -> f64 {
        if self.cfg.memory_bytes == 0 {
            1.0
        } else {
            self.arena.peak_used as f64 / self.cfg.memory_bytes as f64
        }
    }

    /// Arena allocation failures (diagnostics).
    pub fn arena_failures(&self) -> u64 {
        self.arena.failures
    }

    /// Live FDIR filter count (diagnostics).
    pub fn fdir_filters(&self) -> usize {
        self.nic.fdir().len()
    }

    /// Live offload-rule count (diagnostics).
    pub fn offload_rules(&self) -> usize {
        self.nic.offload().len()
    }

    /// Offload-table counters: hits, per-action frames/bytes, evictions
    /// (diagnostics; the eviction fold keeps these conservation-exact).
    pub fn offload_stats(&self) -> scap_nic::OffloadStats {
        self.nic.offload().stats()
    }

    /// Offload-table fill, in permille of its rule capacity.
    pub fn offload_load_permille(&self) -> u64 {
        self.nic.offload().load_permille()
    }

    /// Install an application-supplied offload rule (`Mark`, `Sample`,
    /// `Bypass`, or a manual `Drop`) directly into the NIC table.
    pub fn offload_install(&mut self, rule: OffloadRule) -> Result<(), scap_nic::OffloadError> {
        self.stats.offload_ops += 1;
        self.nic.offload_install(rule)
    }

    /// Remove an application-supplied offload rule by flow key.
    pub fn offload_uninstall(
        &mut self,
        key: &FlowKey,
    ) -> Result<OffloadRule, scap_nic::OffloadError> {
        self.stats.offload_ops += 1;
        let r = self.nic.offload_uninstall(key);
        if r.is_ok() {
            self.offload_owners.remove(&key.canonical().0);
        }
        r
    }

    /// Pending events on a core's queue.
    pub fn event_backlog(&self, core: usize) -> usize {
        self.cores[core].events.len()
    }

    /// Streams currently tracked on a core.
    pub fn tracked_streams(&self, core: usize) -> usize {
        self.cores[core].flows.len()
    }

    /// Iterate live records on a core (tests and diagnostics).
    pub fn streams_on_core(&self, core: usize) -> impl Iterator<Item = &StreamRecord> {
        self.cores[core].flows.iter()
    }

    /// NIC admission (hardware path, not CPU-budgeted): RSS/FDIR decide
    /// the fate and queue. Returns the verdict for telemetry.
    pub fn nic_receive(&mut self, pkt: &Packet) -> NicVerdict {
        self.excuse_blackout(pkt.ts_ns);
        self.stats.stack.wire_packets += 1;
        self.stats.stack.wire_bytes += pkt.len() as u64;
        self.tele.inc(0, Metric::WirePackets);
        self.tele.add(0, Metric::WireBytes, pkt.len() as u64);
        let parsed = match parse_frame(&pkt.frame) {
            Ok(p) => p,
            Err(_) => {
                self.acct_discarded(
                    0,
                    pkt.ts_ns,
                    0,
                    FlightLayer::Nic,
                    DropReason::ParseError,
                    1,
                    0,
                );
                return NicVerdict::DroppedByFilter;
            }
        };
        // Dynamic load balancing (§2.4): a brand-new stream whose RSS
        // target core is overloaded gets steered — both directions — to
        // the least-loaded core before it is ever tracked.
        if self.cfg.use_fdir_balancing {
            if let (Some(key), Some(meta)) = (parsed.key, parsed.tcp) {
                if meta.flags.is_syn_only() {
                    self.maybe_rebalance(&key);
                }
            }
        }
        let verdict = self.nic.receive(&parsed, pkt.clone());
        // Pulse: deterministic admission cost, plus the offload-stage
        // consult when that stage is enabled.
        self.pulse.record(
            PulseStage::NicVerdict,
            cycles_to_ns(cost::nic_verdict_cycles(pkt.len() as u64)),
        );
        if self.cfg.use_offload {
            let hit = matches!(
                verdict,
                NicVerdict::DroppedByOffload
                    | NicVerdict::SampledByOffload
                    | NicVerdict::BypassedByOffload
            );
            self.pulse
                .record(PulseStage::Offload, cycles_to_ns(cost::offload_cycles(hit)));
        }
        match verdict {
            NicVerdict::DroppedByFilter => {
                // Subzero copy: never reaches main memory.
                self.acct_discarded(
                    0,
                    pkt.ts_ns,
                    0,
                    FlightLayer::Nic,
                    DropReason::FdirFilter,
                    1,
                    pkt.len() as u64,
                );
            }
            NicVerdict::DroppedByOffload => {
                // Programmable offload stage: a per-flow `Drop` rule cut
                // the frame off before the memory budget (subzero copy).
                self.acct_discarded(
                    0,
                    pkt.ts_ns,
                    0,
                    FlightLayer::Offload,
                    DropReason::OffloadDrop,
                    1,
                    pkt.len() as u64,
                );
            }
            NicVerdict::SampledByOffload => {
                // Deterministic 1-in-N sampling: the non-kept frames are
                // deliberate discards, same funnel as cutoff losses.
                self.acct_discarded(
                    0,
                    pkt.ts_ns,
                    0,
                    FlightLayer::Offload,
                    DropReason::OffloadSample,
                    1,
                    pkt.len() as u64,
                );
            }
            NicVerdict::BypassedByOffload => {
                // Shunted past the kernel straight to delivery accounting:
                // the stack never touches the frame but conservation still
                // must balance, so it counts as delivered here.
                self.acct_delivered(0, 1, pkt.len() as u64);
            }
            NicVerdict::DroppedRingFull(_) => {
                // The NIC layer mirrors this loss into its own registry
                // (merged in `telemetry_snapshot`), so only the flight
                // event is recorded here — no kernel-side counter bump.
                self.flight.emit(
                    0,
                    FlightEvent::new(FlightKind::Drop, FlightLayer::Nic, pkt.ts_ns)
                        .with_reason(DropReason::RingFull)
                        .with_vals(1, pkt.len() as u64),
                );
            }
            _ => {}
        }
        verdict
    }

    /// Steer a new stream away from an overloaded core (§2.4).
    fn maybe_rebalance(&mut self, key: &FlowKey) {
        let target = self.nic.rss_queue(key);
        let counts: Vec<usize> = (0..self.cores.len())
            .map(|c| self.cores[c].flows.len())
            .collect();
        let total: usize = counts.iter().sum();
        if total < self.cores.len() * 8 {
            return; // too few streams for imbalance to mean anything
        }
        let avg = total as f64 / self.cores.len() as f64;
        if (counts[target] as f64) <= avg * self.cfg.balance_threshold {
            return;
        }
        // Invariant: `cores` is never empty (ncores is clamped to >= 1).
        let Some(coldest) = counts
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
        else {
            return;
        };
        if coldest == target || self.nic.fdir().free() < 2 {
            return;
        }
        // Steer both directions so the whole connection lands on one
        // core (the same property the symmetric RSS seed provides).
        let _ = self
            .nic
            .fdir_install(scap_nic::FdirFilter::steer(*key, coldest));
        let _ = self
            .nic
            .fdir_install(scap_nic::FdirFilter::steer(key.reversed(), coldest));
        self.stats.fdir_ops += 2;
        self.stats.rebalanced_streams += 1;
    }

    /// Process one packet from a core's RX ring. Returns the work done,
    /// or `None` when the ring was empty.
    pub fn kernel_poll(&mut self, core: usize, now: u64) -> Option<Work> {
        // An injected descriptor-ring stall: the DMA engine is wedged, so
        // polls see an empty ring. Frames keep arriving and overflow the
        // ring at the NIC; `finish()` drains regardless.
        if !self.drain_mode {
            if let Some(inj) = self.ring_faults.as_mut() {
                if inj.stalled(now) {
                    return None;
                }
            }
        }
        let pkt = self.nic.queue_mut(core).pop()?;
        let mut work = Work {
            k_packets: 1,
            k_bytes_touched: HDR_TOUCH_BYTES.min(pkt.len() as u64),
            ..Default::default()
        };
        self.process_packet(core, &pkt, now, &mut work);
        Some(work)
    }

    /// Poll-mode fast path: pull up to `fastpath_burst` packets from a
    /// core's RX ring and run the burst through the batched pipeline —
    /// parse all → hash all → flow lookup → reassembly/cutoff →
    /// delivery. Returns the burst's work receipt, or `None` when the
    /// ring was empty.
    ///
    /// Delivered streams are byte-identical to per-packet
    /// [`ScapKernel::kernel_poll`] dispatch: both funnel into the same
    /// per-packet processing and accounting, so the conservation
    /// identity and flight reconciliation hold unchanged. What differs
    /// is the cost structure: the ring pull is paid once per burst
    /// (`fp_bursts`), each packet is charged the amortized batched rate
    /// (`fp_packets`) instead of the softirq entry, and payload reaches
    /// the arena chunks by reference (no kernel copy charge).
    pub fn poll_burst(&mut self, core: usize, now: u64) -> Option<Work> {
        if !self.drain_mode {
            if let Some(inj) = self.ring_faults.as_mut() {
                if inj.stalled(now) {
                    return None;
                }
            }
        }
        let burst = self.cfg.fastpath_burst.max(1);
        let mut pkts: Vec<Packet> = Vec::with_capacity(burst);
        scap_fastpath::pull_burst(self.nic.queue_mut(core), burst, &mut pkts);
        self.fp_stats.record(pkts.len(), burst);
        if pkts.is_empty() {
            return None;
        }
        // Stage 1: parse the whole burst (header lines only).
        let parsed: Vec<Option<ParsedPacket<'_>>> =
            pkts.iter().map(|p| parse_frame(&p.frame).ok()).collect();
        // Stage 2: canonicalize + hash every key against this core's
        // table seed in one arithmetic-only sweep.
        let seed = self.cores[core].flows.seed();
        let mut hashed: Vec<Option<HashedKey>> = Vec::with_capacity(pkts.len());
        scap_fastpath::hash_burst(
            seed,
            parsed.iter().map(|p| p.as_ref().and_then(|p| p.key)),
            &mut hashed,
        );
        // Stages 3–5: prehashed flow lookup, reassembly/cutoff, delivery
        // — the same per-packet funnel the classic path uses.
        let mut work = Work {
            fp_bursts: 1,
            fp_packets: pkts.len() as u64,
            ..Default::default()
        };
        self.tele.inc(core, Metric::FastpathBursts);
        self.tele
            .add(core, Metric::FastpathPackets, pkts.len() as u64);
        for i in 0..pkts.len() {
            work.k_bytes_touched += HDR_TOUCH_BYTES.min(pkts[i].len() as u64);
            match parsed[i].as_ref() {
                None => {
                    self.acct_discarded(
                        core,
                        now,
                        0,
                        FlightLayer::Kernel,
                        DropReason::ParseError,
                        1,
                        0,
                    );
                }
                Some(p) => {
                    self.process_parsed(core, &pkts[i], p, hashed[i].as_ref(), now, &mut work)
                }
            }
        }
        // Zero-copy delivery: chunk payload is handed over by reference
        // into the arena, so the per-byte kernel copy charge of the
        // emulated path does not apply here.
        work.k_bytes_copied = 0;
        Some(work)
    }

    fn next_uid(&mut self) -> StreamUid {
        self.uid_counter += 1;
        self.uid_counter
    }

    /// Memory-pressure input to the PPL verdict: arena occupancy plus the
    /// governor's per-level watermark tightening.
    fn ppl_pressure(&self) -> f64 {
        (self.arena.used_fraction() + self.governor.ppl_boost()).min(1.0)
    }

    fn snapshot_rec(rec: &StreamRecord, uid: StreamUid) -> StreamSnapshot {
        StreamSnapshot {
            uid,
            key: rec.key,
            first_dir: rec.first_dir,
            status: rec.status,
            errors: rec.errors,
            priority: rec.priority,
            cutoff_exceeded: rec.cutoff_exceeded,
            dirs: rec.dirs,
            first_ts_ns: rec.first_ts_ns,
            last_ts_ns: rec.last_ts_ns,
            chunks: rec.chunks,
            processing_time_ns: rec.processing_time_ns,
            resume_gap_bytes: rec.resume_gap_bytes,
        }
    }

    fn snapshot(&self, core: usize, id: StreamId) -> Option<StreamSnapshot> {
        let rec = self.cores[core].flows.get(id)?;
        let uid = self.cores[core]
            .kstates
            .get(&id)
            .map(|k| k.uid)
            .unwrap_or(0);
        Some(Self::snapshot_rec(rec, uid))
    }

    fn enqueue_event(&mut self, core: usize, mut ev: Event, now: u64, work: &mut Work) {
        if self.cores[core].events.len() >= self.cfg.event_queue_cap {
            self.stats.events_dropped += 1;
            self.tele.inc(core, Metric::KernelEventsDropped);
            let (uid, ts) = (ev.stream.uid, ev.stream.last_ts_ns);
            if let EventKind::Data { chunk, .. } = ev.kind {
                self.acct_dropped(
                    core,
                    ts,
                    uid,
                    FlightLayer::EventQueue,
                    DropReason::EventQueueFull,
                    0,
                    chunk.len as u64,
                );
                self.arena.release(chunk);
            }
            return;
        }
        work.k_events += 1;
        self.tele.inc(core, Metric::KernelEventsEnqueued);
        if matches!(ev.kind, EventKind::Data { .. }) {
            self.stats.chunks += 1;
            self.tele.inc(core, Metric::KernelChunksPlaced);
        }
        // Pulse: dispatch latency — NIC ingress of the producing packet
        // to event-queue admission (ring residency + kernel processing).
        ev.enqueued_ns = now;
        let cursor = self.flight.total_recorded();
        let delay = now.saturating_sub(ev.ingress_ns);
        if self
            .pulse
            .record_uid(PulseStage::KernelDispatch, delay, ev.stream.uid, cursor)
        {
            self.flight.emit(
                core,
                FlightEvent::new(FlightKind::PulseExemplar, FlightLayer::EventQueue, now)
                    .with_uid(ev.stream.uid)
                    .with_vals(PulseStage::KernelDispatch.idx() as u64, delay),
            );
        }
        self.cores[core].events.push_back(ev);
    }

    fn process_packet(&mut self, core: usize, pkt: &Packet, now: u64, work: &mut Work) {
        let Ok(parsed) = parse_frame(&pkt.frame) else {
            self.acct_discarded(
                core,
                now,
                0,
                FlightLayer::Kernel,
                DropReason::ParseError,
                1,
                0,
            );
            return;
        };
        self.process_parsed(core, pkt, &parsed, None, now, work);
    }

    /// Per-packet processing past the parse stage, shared by both
    /// dispatch paths. `prehashed` carries the canonical key, direction
    /// and table hash when the batched hash stage already computed them;
    /// the classic path passes `None` and pays for them inline. Either
    /// way the flow-table probe, stream machinery, and accounting are
    /// identical, which is what makes the two paths byte-equivalent.
    fn process_parsed(
        &mut self,
        core: usize,
        pkt: &Packet,
        parsed: &ParsedPacket<'_>,
        prehashed: Option<&HashedKey>,
        now: u64,
        work: &mut Work,
    ) {
        // Socket-wide BPF filter: discard early, in the kernel.
        if let Some(f) = &self.cfg.filter {
            if !f.matches_frame(&pkt.frame) {
                self.acct_discarded(
                    core,
                    now,
                    0,
                    FlightLayer::Kernel,
                    DropReason::BpfFilter,
                    1,
                    pkt.len() as u64,
                );
                return;
            }
        }

        let Some(key) = parsed.key else {
            self.acct_discarded(
                core,
                now,
                0,
                FlightLayer::Kernel,
                DropReason::NoFlowKey,
                1,
                0,
            );
            return;
        };

        // Flow lookup / creation. The open-addressed probe runs on the
        // canonical key and its symmetric hash; the batched path hands
        // those in precomputed, the classic path derives them here.
        let hk = match prehashed {
            Some(hk) => *hk,
            None => hash_key(self.cores[core].flows.seed(), &key),
        };
        let probes_before = self.cores[core].flows.probes;
        self.flow_lookups += 1;
        let lookup = match self.cores[core]
            .flows
            .lookup_or_insert_prehashed(&hk.canon, hk.dir, hk.hash, now)
        {
            Ok(l) => l,
            Err(_) => {
                // Flow table at its configured cap (a flood can get here):
                // the stream is lost but the capture survives.
                self.acct_dropped(
                    core,
                    now,
                    0,
                    FlightLayer::Kernel,
                    DropReason::FlowTableFull,
                    1,
                    pkt.len() as u64,
                );
                self.stats.stack.streams_lost += 1;
                return;
            }
        };
        let probes = (self.cores[core].flows.probes - probes_before).max(1);
        self.pulse.record(
            PulseStage::FlowTable,
            cycles_to_ns(cost::flow_table_cycles(probes)),
        );
        work.k_hash_probes += probes;
        self.tele.add(core, Metric::KernelHashProbes, probes);
        let id = lookup.id;
        let dir = lookup.direction;

        let probe_group = self.cores[core].flows.probe_group(hk.hash) as u64;
        if let Some(c) = self.cache.as_mut() {
            // Freshly DMA'd frame: the header lines are cold.
            self.dma_cursor = (self.dma_cursor + 2048) % (512 << 20);
            work.k_cache_misses += c.access(0x6000_0000 + self.dma_cursor, 64);
            // The open-addressed index: each probe step reads one ctrl
            // group (16 tag bytes, four groups per 64-byte line).
            let ctrl_base = 0x98_0000_0000 + ((core as u64) << 28);
            for p in 0..probes {
                work.k_cache_misses += c.access(
                    ctrl_base + (probe_group + p) * scap_flow::table::GROUP as u64,
                    scap_flow::table::GROUP,
                );
            }
            // The flow record.
            let rec_addr = 0xA0_0000_0000 + ((core as u64) << 28) + (id.slot() as u64) * 256;
            work.k_cache_misses += c.access(rec_addr, 128);
        }

        // TIME_WAIT tombstone: a stream that already terminated keeps its
        // table slot until the inactivity timeout so stray teardown ACKs
        // and late retransmissions do not spawn ghost streams. Tombstones
        // are exactly the records without kernel-side state.
        if !lookup.created && !self.cores[core].kstates.contains_key(&id) {
            self.acct_discarded(
                core,
                now,
                0,
                FlightLayer::Kernel,
                DropReason::TimeWait,
                1,
                pkt.len() as u64,
            );
            self.cores[core].flows.touch(id, now);
            return;
        }

        if lookup.created {
            let uid = self.next_uid();
            let cutoffs = self.cfg.cutoff.effective(&key);
            // A `Mark` rule in the NIC offload table overrides the
            // configured priority policy: the tag rides the descriptor
            // and the PPL consumes it from stream creation on.
            let priority = self
                .nic
                .offload()
                .mark_for(&key)
                .unwrap_or_else(|| self.cfg.priorities.for_key(&key));
            // Invariant: `lookup.created` implies the slot is live.
            debug_assert!(self.cores[core].flows.get(id).is_some());
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.cutoff = cutoffs;
                rec.priority = priority;
                rec.chunk_size = self.cfg.chunk_size as u32;
                rec.overlap = self.cfg.overlap as u32;
            }
            self.cores[core].kstates.insert(id, StreamKState::new(uid));
            self.uid_index.insert(uid, (core, id));
            self.stats.stack.streams_created += 1;
            self.flight.emit(
                core,
                FlightEvent::new(FlightKind::StreamCreated, FlightLayer::Kernel, now).with_uid(uid),
            );
            if let Some(snap) = self.snapshot(core, id) {
                self.enqueue_event(
                    core,
                    Event {
                        stream: snap,
                        kind: EventKind::Created,
                        core,
                        ingress_ns: pkt.ts_ns,
                        enqueued_ns: 0,
                    },
                    now,
                    work,
                );
            }
        }

        // Wire accounting.
        if let Some(rec) = self.cores[core].flows.get_mut(id) {
            rec.dirs[dir.index()].total_pkts += 1;
            rec.dirs[dir.index()].total_bytes += pkt.len() as u64;
        }
        self.cores[core].flows.touch(id, now);

        match key.transport() {
            Transport::Tcp => self.process_tcp(core, id, dir, pkt, parsed, now, work),
            Transport::Udp => self.process_udp(core, id, dir, pkt, parsed, now, work),
            Transport::Other(_) => {
                // Tracked for statistics only; processing is complete.
                self.acct_delivered(core, 1, 0);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_tcp(
        &mut self,
        core: usize,
        id: StreamId,
        dir: Direction,
        pkt: &Packet,
        parsed: &ParsedPacket<'_>,
        now: u64,
        work: &mut Work,
    ) {
        let uid = self.cores[core].kstates.get(&id).map_or(0, |k| k.uid);
        let Some(meta) = parsed.tcp else {
            // Transport said TCP but the header would not parse: nothing
            // to reassemble.
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::NoTcpHeader,
                1,
                pkt.len() as u64,
            );
            return;
        };
        let payload = parsed.payload();

        // Invariant: process_packet only dispatches live, tracked streams.
        debug_assert!(self.cores[core].flows.get(id).is_some());
        let Some((priority, cutoff, discarded_flag, cutoff_exceeded)) =
            self.cores[core].flows.get(id).map(|rec| {
                (
                    rec.priority,
                    rec.cutoff[dir.index()],
                    rec.discarded,
                    rec.cutoff_exceeded,
                )
            })
        else {
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::Internal,
                1,
                pkt.len() as u64,
            );
            return;
        };

        // Governor levels 2+ tighten every cutoff to a dynamic cap.
        let effective_cutoff = match (cutoff, self.governor.cutoff_cap()) {
            (Some(c), Some(cap)) => Some(c.min(cap)),
            (None, Some(cap)) => Some(cap),
            (c, None) => c,
        };

        let is_control = meta
            .flags
            .intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST);

        debug_assert!(self.cores[core].kstates.contains_key(&id));
        let Some(asm_offset) = self.cores[core].kstates.get(&id).map(|ks| {
            ks.asm[dir.index()]
                .as_ref()
                .map(|a| a.stream_offset())
                .unwrap_or(0)
        }) else {
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::Internal,
                1,
                pkt.len() as u64,
            );
            return;
        };

        // Zero cutoff (flow-stats-only applications, §3.3.1) and
        // exceeded cutoffs: discard data before any reassembly work.
        let beyond_cutoff = effective_cutoff.is_some_and(|c| asm_offset >= c);
        let beyond_configured = cutoff.is_some_and(|c| asm_offset >= c);
        if (beyond_cutoff || discarded_flag) && !is_control && !payload.is_empty() {
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.dirs[dir.index()].discarded_pkts += 1;
                rec.dirs[dir.index()].discarded_bytes += pkt.len() as u64;
                rec.cutoff_exceeded = rec.cutoff_exceeded || beyond_cutoff;
            }
            let reason = if discarded_flag && !beyond_cutoff {
                DropReason::AppDiscard
            } else if beyond_cutoff && !beyond_configured && !discarded_flag {
                DropReason::GovernorClamp
            } else {
                DropReason::Cutoff
            };
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                reason,
                1,
                pkt.len() as u64,
            );
            if beyond_cutoff && !cutoff_exceeded {
                self.flight.emit(
                    core,
                    FlightEvent::new(FlightKind::CutoffHit, FlightLayer::Kernel, now)
                        .with_reason(reason)
                        .with_uid(uid)
                        .with_vals(asm_offset, 0),
                );
            }
            if beyond_cutoff && !beyond_configured && !discarded_flag {
                self.stats.resilience.governor_cutoff_clamps += 1;
            }
            // (Re-)install NIC drop filters: the programmable offload
            // stage first (one bidirectional rule, no timeout), falling
            // back to classic FDIR — first time normally, again with a
            // doubled timeout when an expired filter let a data packet
            // back through (§5.5).
            let offloaded = self.cfg.use_offload && self.install_offload(core, id, now, work);
            if !offloaded && self.cfg.use_fdir {
                let reinstall = cutoff_exceeded;
                self.install_fdir(core, id, now, reinstall, work);
            }
            return;
        }

        self.stats.wire_by_priority[priority.min(3) as usize] += 1;

        // Prioritized packet loss: decided before memory is spent. The
        // governor's watermark tightening rides on the pressure input.
        if !payload.is_empty()
            && self.cfg.ppl.verdict_recorded(
                self.ppl_pressure(),
                priority,
                asm_offset,
                &self.tele,
                core,
            ) != PplVerdict::Accept
        {
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.dirs[dir.index()].dropped_pkts += 1;
                rec.dirs[dir.index()].dropped_bytes += pkt.len() as u64;
            }
            self.acct_dropped(
                core,
                now,
                uid,
                FlightLayer::Memory,
                DropReason::Ppl,
                1,
                pkt.len() as u64,
            );
            self.stats.dropped_by_priority[priority.min(3) as usize] += 1;
            return;
        }

        // Borrow dance: lift the connection and assembler out of the
        // kstate so the delivery sink can borrow the arena freely.
        let Some(mut ks) = self.cores[core].kstates.remove(&id) else {
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::Internal,
                1,
                pkt.len() as u64,
            );
            return;
        };
        let mut conn = ks.conn.take().unwrap_or_else(|| {
            TcpConn::new(
                ReasmConfig::for_mode(self.cfg.reassembly_mode)
                    .with_policy(self.cfg.overlap_policy),
            )
        });
        let (stream_chunk, stream_overlap) = match self.cores[core].flows.get(id) {
            Some(rec) => (rec.chunk_size.max(1) as usize, rec.overlap as usize),
            None => (self.cfg.chunk_size.max(1), self.cfg.overlap),
        };
        let mut asm = ks.asm[dir.index()].take().unwrap_or_else(|| {
            ChunkAssembler::new(stream_chunk, stream_overlap.min(stream_chunk - 1))
        });

        let copied_before = asm.bytes_copied;
        let mut completed: Vec<ChunkBuf> = Vec::new();
        let mut oom = false;
        let mut first_delivery: Option<u64> = None;
        let cutoff_cap = effective_cutoff.unwrap_or(u64::MAX);
        let outcome = {
            let arena = &mut self.arena;
            let asm_ref = &mut asm;
            let mut sink = |off: u64, data: &[u8]| {
                first_delivery.get_or_insert(off);
                if off >= cutoff_cap {
                    return;
                }
                let allowed = ((cutoff_cap - off) as usize).min(data.len());
                if asm_ref
                    .append(arena, &data[..allowed], &mut completed)
                    .is_err()
                {
                    oom = true;
                }
            };
            conn.on_segment(dir, &meta, payload, &mut sink)
        };

        let copied = asm.bytes_copied - copied_before;
        work.k_bytes_copied += copied;
        self.tele.add(core, Metric::KernelBytesCopied, copied);
        if copied > 0 {
            if let Some(c) = self.cache.as_mut() {
                let base = Self::chunk_region_addr(
                    ks.uid,
                    dir,
                    asm.stream_offset().saturating_sub(copied),
                );
                work.k_cache_misses += c.access(base, copied as usize);
            }
        }

        if self.cfg.need_pkts && !payload.is_empty() {
            ks.pkt_records[dir.index()].push(PacketRecord {
                ts_ns: pkt.ts_ns,
                wire_len: pkt.len() as u32,
                payload_len: payload.len() as u32,
                chunk_off: first_delivery
                    .map(|o| o.min(u64::from(u32::MAX)) as u32)
                    .unwrap_or(u32::MAX),
            });
        }

        // Accounting and error mapping. Every packet that reached this
        // point takes exactly one stack-level exit — dropped (OOM),
        // discarded (pure duplicate), or delivered — so the conservation
        // identity `wire = delivered + dropped + discarded` holds.
        let captured = outcome.data.delivered > 0 || outcome.data.buffered > 0;
        let dup_only = !captured && outcome.data.duplicate > 0;
        if let Some(rec) = self.cores[core].flows.get_mut(id) {
            let d = &mut rec.dirs[dir.index()];
            if captured {
                d.captured_pkts += 1;
                d.captured_bytes +=
                    (outcome.data.delivered + outcome.data.buffered).min(payload.len() as u64);
            }
            if oom {
                d.dropped_pkts += 1;
                d.dropped_bytes += pkt.len() as u64;
            } else if dup_only {
                d.discarded_pkts += 1;
                d.discarded_bytes += outcome.data.duplicate;
            }
            // First segment after a warm restart: the hole it skipped is
            // the blackout window, annotated on the record (bounded by
            // the traffic between the checkpoint and the crash).
            if outcome.data.resume_gap > 0 {
                rec.resume_gap_bytes += outcome.data.resume_gap;
                self.stats.resilience.resume_gap_bytes += outcome.data.resume_gap;
            }
            let f = conn.flags();
            for (rf, sf) in [
                (
                    ReasmFlags::INCOMPLETE_HANDSHAKE,
                    StreamErrors::INCOMPLETE_HANDSHAKE,
                ),
                (ReasmFlags::SEQUENCE_GAP, StreamErrors::SEQUENCE_GAP),
                (
                    ReasmFlags::INCONSISTENT_OVERLAP,
                    StreamErrors::INCONSISTENT_OVERLAP,
                ),
                (ReasmFlags::INVALID_SEQUENCE, StreamErrors::INVALID_SEQUENCE),
            ] {
                if f.contains(rf) {
                    rec.errors.set(sf);
                }
            }
        }
        if oom {
            self.acct_dropped(
                core,
                now,
                uid,
                FlightLayer::Memory,
                DropReason::ArenaOom,
                1,
                pkt.len() as u64,
            );
            self.stats.dropped_by_priority[priority.min(3) as usize] += 1;
        } else if dup_only {
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::Duplicate,
                1,
                outcome.data.duplicate,
            );
        } else {
            self.acct_delivered(core, 1, 0);
        }
        self.acct_delivered(core, 0, copied);

        // Newly exceeded cutoff: flush the final partial chunk now and
        // install NIC filters so the tail never reaches memory.
        let now_beyond = effective_cutoff.is_some_and(|c| asm.stream_offset() >= c);
        let mut install_filters = false;
        if now_beyond && !cutoff_exceeded {
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.cutoff_exceeded = true;
            }
            let reason = if beyond_configured || cutoff.is_some_and(|c| asm.stream_offset() >= c) {
                DropReason::Cutoff
            } else {
                DropReason::GovernorClamp
            };
            self.flight.emit(
                core,
                FlightEvent::new(FlightKind::CutoffHit, FlightLayer::Kernel, now)
                    .with_reason(reason)
                    .with_uid(uid)
                    .with_vals(asm.stream_offset(), 0),
            );
            if let Some(tail) = asm.flush() {
                if tail.len > 0 {
                    completed.push(tail);
                } else {
                    self.arena.release(tail);
                }
            }
            install_filters = self.cfg.use_fdir || self.cfg.use_offload;
        }

        // Flush-timer arming for the partial chunk.
        if asm.has_pending() && !ks.flush_armed[dir.index()] {
            ks.flush_armed[dir.index()] = true;
            self.cores[core].flush_timers.push_back((
                now + self.cfg.flush_timeout_ns,
                id,
                dir,
                asm.stream_offset(),
            ));
        }

        let closed = outcome.closed_now;
        let packets = std::mem::take(&mut ks.pkt_records[dir.index()]);
        ks.conn = Some(conn);
        ks.asm[dir.index()] = Some(asm);
        if !completed.is_empty() {
            ks.flush_armed[dir.index()] = false;
        }
        self.cores[core].kstates.insert(id, ks);

        self.emit_data_events(core, id, dir, completed, packets, pkt.ts_ns, now, work);

        if install_filters {
            let offloaded = self.cfg.use_offload && self.install_offload(core, id, now, work);
            if !offloaded && self.cfg.use_fdir {
                self.install_fdir(core, id, now, false, work);
            }
        }

        if let Some(kind) = closed {
            let status = match kind {
                CloseKind::Fin => StreamStatus::ClosedFin,
                CloseKind::Rst => StreamStatus::ClosedRst,
            };
            self.estimate_fdir_sizes(core, id, &meta, dir);
            self.terminate_stream(core, id, status, now, true, work);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_udp(
        &mut self,
        core: usize,
        id: StreamId,
        dir: Direction,
        pkt: &Packet,
        parsed: &ParsedPacket<'_>,
        now: u64,
        work: &mut Work,
    ) {
        let payload = parsed.payload();
        if payload.is_empty() {
            // Nothing to capture; the packet is fully processed.
            self.acct_delivered(core, 1, 0);
            return;
        }
        // Invariant: process_packet only dispatches live, tracked streams.
        debug_assert!(self.cores[core].flows.get(id).is_some());
        let uid = self.cores[core].kstates.get(&id).map_or(0, |k| k.uid);
        let Some((priority, cutoff, discarded_flag, cutoff_exceeded, stream_chunk, stream_overlap)) =
            self.cores[core].flows.get(id).map(|rec| {
                (
                    rec.priority,
                    rec.cutoff[dir.index()],
                    rec.discarded,
                    rec.cutoff_exceeded,
                    rec.chunk_size.max(1) as usize,
                    rec.overlap as usize,
                )
            })
        else {
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::Internal,
                1,
                pkt.len() as u64,
            );
            return;
        };
        let effective_cutoff = match (cutoff, self.governor.cutoff_cap()) {
            (Some(c), Some(cap)) => Some(c.min(cap)),
            (None, Some(cap)) => Some(cap),
            (c, None) => c,
        };
        let Some(mut ks) = self.cores[core].kstates.remove(&id) else {
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                DropReason::Internal,
                1,
                pkt.len() as u64,
            );
            return;
        };
        let mut asm = ks.asm[dir.index()].take().unwrap_or_else(|| {
            ChunkAssembler::new(stream_chunk, stream_overlap.min(stream_chunk - 1))
        });
        let offset = asm.stream_offset();

        let beyond_configured = cutoff.is_some_and(|c| offset >= c);
        let beyond_effective = effective_cutoff.is_some_and(|c| offset >= c);
        let beyond = beyond_effective || discarded_flag;
        if beyond {
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.dirs[dir.index()].discarded_pkts += 1;
                rec.dirs[dir.index()].discarded_bytes += pkt.len() as u64;
                rec.cutoff_exceeded = true;
            }
            let reason = if discarded_flag && !beyond_effective {
                DropReason::AppDiscard
            } else if beyond_effective && !beyond_configured && !discarded_flag {
                DropReason::GovernorClamp
            } else {
                DropReason::Cutoff
            };
            self.acct_discarded(
                core,
                now,
                uid,
                FlightLayer::Kernel,
                reason,
                1,
                pkt.len() as u64,
            );
            if beyond_effective && !cutoff_exceeded {
                self.flight.emit(
                    core,
                    FlightEvent::new(FlightKind::CutoffHit, FlightLayer::Kernel, now)
                        .with_reason(reason)
                        .with_uid(uid)
                        .with_vals(offset, 0),
                );
            }
            if beyond_effective && !beyond_configured && !discarded_flag {
                self.stats.resilience.governor_cutoff_clamps += 1;
            }
            ks.asm[dir.index()] = Some(asm);
            self.cores[core].kstates.insert(id, ks);
            return;
        }
        if self
            .cfg
            .ppl
            .verdict_recorded(self.ppl_pressure(), priority, offset, &self.tele, core)
            != PplVerdict::Accept
        {
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.dirs[dir.index()].dropped_pkts += 1;
                rec.dirs[dir.index()].dropped_bytes += pkt.len() as u64;
            }
            self.acct_dropped(
                core,
                now,
                uid,
                FlightLayer::Memory,
                DropReason::Ppl,
                1,
                pkt.len() as u64,
            );
            ks.asm[dir.index()] = Some(asm);
            self.cores[core].kstates.insert(id, ks);
            return;
        }

        let cap = effective_cutoff.unwrap_or(u64::MAX);
        let allowed = ((cap - offset) as usize).min(payload.len());
        let mut completed = Vec::new();
        let oom = asm
            .append(&mut self.arena, &payload[..allowed], &mut completed)
            .is_err();
        work.k_bytes_copied += allowed as u64;
        self.tele
            .add(core, Metric::KernelBytesCopied, allowed as u64);
        if allowed > 0 {
            if let Some(c) = self.cache.as_mut() {
                let base = Self::chunk_region_addr(ks.uid, dir, offset);
                work.k_cache_misses += c.access(base, allowed);
            }
        }

        if self.cfg.need_pkts {
            ks.pkt_records[dir.index()].push(PacketRecord {
                ts_ns: pkt.ts_ns,
                wire_len: pkt.len() as u32,
                payload_len: payload.len() as u32,
                chunk_off: offset.min(u64::from(u32::MAX)) as u32,
            });
        }
        // One stack-level exit per packet (conservation identity).
        if let Some(rec) = self.cores[core].flows.get_mut(id) {
            let d = &mut rec.dirs[dir.index()];
            d.captured_pkts += 1;
            d.captured_bytes += allowed as u64;
            if oom {
                d.dropped_pkts += 1;
                d.dropped_bytes += pkt.len() as u64;
            }
        }
        if oom {
            self.acct_dropped(
                core,
                now,
                uid,
                FlightLayer::Memory,
                DropReason::ArenaOom,
                1,
                pkt.len() as u64,
            );
        } else {
            self.acct_delivered(core, 1, 0);
        }
        self.acct_delivered(core, 0, allowed as u64);

        if asm.has_pending() && !ks.flush_armed[dir.index()] {
            ks.flush_armed[dir.index()] = true;
            self.cores[core].flush_timers.push_back((
                now + self.cfg.flush_timeout_ns,
                id,
                dir,
                asm.stream_offset(),
            ));
        }
        let packets = std::mem::take(&mut ks.pkt_records[dir.index()]);
        ks.asm[dir.index()] = Some(asm);
        if !completed.is_empty() {
            ks.flush_armed[dir.index()] = false;
        }
        self.cores[core].kstates.insert(id, ks);
        self.emit_data_events(core, id, dir, completed, packets, pkt.ts_ns, now, work);
    }

    /// Emit data events for completed chunks of a live stream.
    /// `ingress_ns` is the NIC-ingress timestamp of the packet that
    /// completed the chunk (the flush tick for timer-driven flushes);
    /// `now` is the processing clock at emission.
    #[allow(clippy::too_many_arguments)]
    fn emit_data_events(
        &mut self,
        core: usize,
        id: StreamId,
        dir: Direction,
        completed: Vec<ChunkBuf>,
        packets: Vec<PacketRecord>,
        ingress_ns: u64,
        now: u64,
        work: &mut Work,
    ) {
        if completed.is_empty() {
            // Nothing emitted: retain packet records for the next chunk.
            if !packets.is_empty() {
                if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
                    let mut packets = packets;
                    packets.append(&mut ks.pkt_records[dir.index()]);
                    ks.pkt_records[dir.index()] = packets;
                }
            }
            return;
        }
        let uid = self.cores[core]
            .kstates
            .get(&id)
            .map(|k| k.uid)
            .unwrap_or(0);
        let mut packets = Some(packets);
        for chunk in completed {
            // `scap_keep_stream_chunk`: a held-back previous chunk is
            // merged in front of this one (§3.2).
            let mut chunk = match self.cores[core]
                .kstates
                .get_mut(&id)
                .and_then(|ks| ks.kept[dir.index()].take())
            {
                Some(kept) => self.merge_chunks(core, kept, chunk, work),
                None => chunk,
            };
            if self.cache.is_some() {
                chunk.sim_addr = Self::chunk_region_addr(uid, dir, chunk.start_offset);
            }
            if let Some(rec) = self.cores[core].flows.get_mut(id) {
                rec.chunks += 1;
            }
            let Some(snap) = self.snapshot(core, id) else {
                // Record vanished mid-delivery: reclaim the chunk.
                self.arena.release(chunk);
                continue;
            };
            let ev = Event {
                stream: snap,
                kind: EventKind::Data {
                    dir,
                    chunk,
                    packets: packets.take().unwrap_or_default(),
                },
                core,
                ingress_ns,
                enqueued_ns: 0,
            };
            self.enqueue_event(core, ev, now, work);
        }
    }

    /// Concatenate a kept chunk with its successor into one larger chunk.
    fn merge_chunks(
        &mut self,
        core: usize,
        kept: ChunkBuf,
        next: ChunkBuf,
        work: &mut Work,
    ) -> ChunkBuf {
        let total = kept.len + next.len;
        match self.arena.alloc(total.max(1), kept.start_offset) {
            Ok(mut merged) => {
                merged.data[..kept.len].copy_from_slice(kept.bytes());
                merged.data[kept.len..total].copy_from_slice(next.bytes());
                merged.len = total;
                merged.had_error = kept.had_error || next.had_error;
                work.k_bytes_copied += total as u64;
                self.tele.add(core, Metric::KernelBytesCopied, total as u64);
                self.arena.release(kept);
                self.arena.release(next);
                merged
            }
            Err(_) => {
                // No memory to merge: deliver the newer chunk unmerged.
                self.arena.release(kept);
                next
            }
        }
    }

    /// Return a consumed data chunk, honouring any pending keep-chunk
    /// request for the stream (live-mode workers and the sim stack both
    /// route chunk returns through here).
    pub fn release_data(&mut self, uid: StreamUid, dir: Direction, chunk: ChunkBuf) {
        if self.pending_keep.remove(&(uid, dir.index() as u8)) {
            if let Some(&(core, id)) = self.uid_index.get(&uid) {
                if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
                    if let Some(old) = ks.kept[dir.index()].replace(chunk) {
                        self.arena.release(old);
                    }
                    return;
                }
            }
            // Stream already gone; fall through to plain release.
        }
        self.arena.release(chunk);
    }

    /// Install a per-flow `Drop` rule in the programmable offload table
    /// for a stream past its cutoff. One canonical-key rule covers both
    /// directions (vs. FDIR's four perfect-match filters) and has no
    /// timeout — it stays until the stream terminates or its cutoff is
    /// widened. Control packets (SYN/FIN/RST) keep punting to the host,
    /// so FIN/RST size estimation and termination still work. Returns
    /// `true` when the rule is live; on a transient hardware failure the
    /// caller composes with the classic FDIR install/retry path instead.
    fn install_offload(&mut self, core: usize, id: StreamId, now: u64, work: &mut Work) -> bool {
        let Some(rec) = self.cores[core].flows.get(id) else {
            return false;
        };
        let key = rec.key;
        let priority = rec.priority;
        let uid = match self.cores[core].kstates.get(&id) {
            Some(ks) if ks.offload_installed => return true, // already shunting
            Some(ks) => ks.uid,
            None => return false,
        };
        // Make room under table pressure: the clock hand displaces the
        // coldest lowest-priority rule, folding its hit counters into
        // the aggregates so accounting never loses a frame.
        if self.nic.offload().free() == 0 {
            work.k_fdir_ops += 1;
            self.stats.offload_ops += 1;
            if let Some(evicted) = self.nic.offload_evict(OFFLOAD_EVICT_SCAN) {
                let ekey = evicted.key.canonical().0;
                if let Some((ecore, eid, _euid)) = self.offload_owners.remove(&ekey) {
                    if let Some(eks) = self.cores[ecore].kstates.get_mut(&eid) {
                        eks.offload_installed = false;
                    }
                }
                self.flight.emit(
                    core,
                    FlightEvent::new(FlightKind::OffloadEvicted, FlightLayer::Offload, now)
                        .with_uid(uid)
                        .with_vals(u64::from(evicted.priority), 0),
                );
            }
        }
        let rule = OffloadRule::new(key, OffloadAction::Drop, priority);
        work.k_fdir_ops += 1;
        self.stats.offload_ops += 1;
        match self.nic.offload_install(rule) {
            Ok(()) | Err(OffloadError::Duplicate) => {}
            Err(_) => return false, // Busy/TableFull: fall back to FDIR
        }
        if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
            ks.offload_installed = true;
        }
        self.offload_owners.insert(rule.key, (core, id, uid));
        self.flight.emit(
            core,
            FlightEvent::new(FlightKind::OffloadInstalled, FlightLayer::Offload, now)
                .with_uid(uid)
                .with_vals(u64::from(rule.action.discriminant()), 1),
        );
        true
    }

    /// Remove a stream's offload rule (the canonical key covers both
    /// directions). The table folds the rule's per-entry counters into
    /// its aggregates, so no hit is ever lost to a remove.
    fn remove_offload_rule(&mut self, key: FlowKey, work: &mut Work) {
        if self.nic.offload_uninstall(&key).is_ok() {
            work.k_fdir_ops += 1;
            self.stats.offload_ops += 1;
        }
        self.offload_owners.remove(&key.canonical().0);
    }

    /// Install the paper's two FDIR drop filters for both directions of a
    /// stream past its cutoff; `reinstall` doubles the timeout.
    fn install_fdir(
        &mut self,
        core: usize,
        id: StreamId,
        now: u64,
        reinstall: bool,
        work: &mut Work,
    ) {
        let Some(rec) = self.cores[core].flows.get(id) else {
            return;
        };
        if rec.key.transport() != Transport::Tcp {
            return;
        }
        let key = rec.key;
        let uid;
        let timeout;
        {
            let Some(ks) = self.cores[core].kstates.get_mut(&id) else {
                return;
            };
            if ks.fdir_installed || ks.fdir_retry_pending || ks.fdir_software_fallback {
                return;
            }
            if reinstall {
                ks.fdir_timeout_ns = ks.fdir_timeout_ns.saturating_mul(2);
            }
            uid = ks.uid;
            timeout = ks.fdir_timeout_ns;
        }

        // Make room (4 filters: two flag patterns × two directions) by
        // evicting the filters with the nearest deadline — short timeout
        // means not a long-lived stream (§5.5).
        while self.nic.fdir().free() < 4 {
            let Some((&(deadline, euid), &(ecore, eid, ekey))) = self.fdir_expiries.iter().next()
            else {
                return;
            };
            let _ = deadline;
            self.remove_fdir_filters(ekey, work);
            if let Some(ks) = self.cores[ecore].kstates.get_mut(&eid) {
                ks.fdir_installed = false;
            }
            self.fdir_expiries.remove(&(deadline, euid));
            self.flight.emit(
                ecore,
                FlightEvent::new(FlightKind::FdirEvicted, FlightLayer::Fdir, now).with_uid(euid),
            );
        }

        if self.try_install_fdir_filters(key, work) {
            if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
                ks.fdir_installed = true;
            }
            self.fdir_expiries
                .insert((now + timeout, uid), (core, id, key));
            self.flight.emit(
                core,
                FlightEvent::new(FlightKind::FdirInstalled, FlightLayer::Fdir, now)
                    .with_uid(uid)
                    .with_vals(timeout, 0),
            );
        } else {
            self.enqueue_fdir_retry(core, id, uid, 0, now);
        }
    }

    /// Program the paper's four drop filters for a stream. On a transient
    /// hardware failure the filters already added are rolled back with
    /// targeted removes (steering filters on the same tuple survive) and
    /// `false` is returned so the caller can schedule a retry.
    fn try_install_fdir_filters(&mut self, key: FlowKey, work: &mut Work) -> bool {
        let mut added: Vec<FdirFilter> = Vec::new();
        for dkey in [key, key.reversed()] {
            for flags in [TcpFlags::ACK, TcpFlags::ACK | TcpFlags::PSH] {
                let filter = FdirFilter::drop_tcp_flags(dkey, flags);
                work.k_fdir_ops += 1;
                self.stats.fdir_ops += 1;
                match self.nic.fdir_install(filter) {
                    Ok(()) => added.push(filter),
                    Err(FdirError::Busy) => {
                        for f in &added {
                            let _ = self.nic.fdir_uninstall(&f.key, f.flex);
                            work.k_fdir_ops += 1;
                            self.stats.fdir_ops += 1;
                        }
                        return false;
                    }
                    Err(_) => {}
                }
            }
        }
        true
    }

    /// Park a transiently failed install on the backoff queue.
    fn enqueue_fdir_retry(
        &mut self,
        core: usize,
        id: StreamId,
        uid: StreamUid,
        attempts: u32,
        now: u64,
    ) {
        if let Some(ks) = self.cores[core].kstates.get_mut(&id) {
            ks.fdir_retry_pending = true;
        }
        // Exponential backoff, capped, with deterministic jitter: up to
        // 25% of the raw delay, derived from the stream uid and attempt
        // number, so retriers that failed together de-synchronize
        // instead of hammering the hardware in lockstep — while a
        // seeded run stays byte-identical.
        let retry_seed = self.cfg.faults.as_ref().map_or(0, |f| f.seed);
        let delay = scap_shard::Backoff::new(FDIR_RETRY_BASE_NS, FDIR_RETRY_CAP_NS, retry_seed)
            .delay_ns(attempts, uid);
        self.tele.add(core, Metric::FdirRetriesQueued, 1);
        self.tele.add(core, Metric::FdirRetryBackoffNs, delay);
        self.flight.emit(
            core,
            FlightEvent::new(FlightKind::FdirRetryQueued, FlightLayer::Fdir, now)
                .with_uid(uid)
                .with_vals(u64::from(attempts), delay),
        );
        self.fdir_retry.push_back(FdirRetry {
            core,
            id,
            uid,
            attempts,
            next_try_ns: now.saturating_add(delay),
        });
    }

    /// Retry transiently failed FDIR installs whose backoff has elapsed.
    /// Deadlines are not monotonic across the queue (fresh failures and
    /// old backoffs interleave), so the whole queue is examined each pass
    /// and not-yet-due entries are requeued.
    fn drain_fdir_retries(&mut self, now: u64, work: &mut Work) {
        if self.fdir_retry.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.fdir_retry);
        for r in pending {
            // The stream may have terminated (and its uid been recycled
            // into a different slot) while the retry was parked.
            if self.uid_index.get(&r.uid) != Some(&(r.core, r.id)) {
                continue;
            }
            if r.next_try_ns > now {
                self.fdir_retry.push_back(r);
                continue;
            }
            self.stats.resilience.fdir_retries += 1;
            work.k_timer_ops += 1;
            if self.try_install_fdir_filters_for_retry(r, now, work) {
                self.stats.resilience.fdir_retry_successes += 1;
            }
        }
    }

    /// One retry attempt: install, or re-park with doubled backoff, or —
    /// once the attempt budget is spent — fall back to software cutoff
    /// enforcement for the stream's remaining lifetime.
    fn try_install_fdir_filters_for_retry(
        &mut self,
        r: FdirRetry,
        now: u64,
        work: &mut Work,
    ) -> bool {
        let Some(rec) = self.cores[r.core].flows.get(r.id) else {
            return false;
        };
        let key = rec.key;
        let timeout = self.cores[r.core]
            .kstates
            .get(&r.id)
            .map_or(FDIR_INITIAL_TIMEOUT_NS, |ks| ks.fdir_timeout_ns);
        if self.nic.fdir().free() >= 4 && self.try_install_fdir_filters(key, work) {
            if let Some(ks) = self.cores[r.core].kstates.get_mut(&r.id) {
                ks.fdir_retry_pending = false;
                ks.fdir_installed = true;
            }
            self.fdir_expiries
                .insert((now + timeout, r.uid), (r.core, r.id, key));
            self.flight.emit(
                r.core,
                FlightEvent::new(FlightKind::FdirRetryOk, FlightLayer::Fdir, now)
                    .with_uid(r.uid)
                    .with_vals(u64::from(r.attempts + 1), 0),
            );
            return true;
        }
        if r.attempts + 1 >= FDIR_RETRY_MAX_ATTEMPTS {
            // Give up on the hardware: the kernel discard path already
            // enforces the cutoff; it just costs a DMA + header touch.
            if let Some(ks) = self.cores[r.core].kstates.get_mut(&r.id) {
                ks.fdir_retry_pending = false;
                ks.fdir_software_fallback = true;
            }
            self.stats.resilience.fdir_fallback_software += 1;
            self.flight.emit(
                r.core,
                FlightEvent::new(FlightKind::FdirFallback, FlightLayer::Fdir, now)
                    .with_uid(r.uid)
                    .with_vals(u64::from(r.attempts + 1), 0),
            );
        } else {
            self.enqueue_fdir_retry(r.core, r.id, r.uid, r.attempts + 1, now);
        }
        false
    }

    /// Governor level 3: reclaim the pending arena memory of the
    /// lowest-priority streams and stop collecting their data. The streams
    /// stay in the table with `discarded` set, so their statistics keep
    /// accumulating (§3.3.1 semantics) while their memory is freed.
    /// Candidates are ordered by uid so eviction is deterministic.
    fn evict_low_priority(&mut self, quota: usize, now: u64, work: &mut Work) {
        let mut candidates: Vec<(StreamUid, usize, StreamId)> = Vec::new();
        for (c, core) in self.cores.iter().enumerate() {
            for rec in core.flows.iter() {
                if rec.priority != 0 || rec.discarded {
                    continue;
                }
                if let Some(ks) = core.kstates.get(&rec.id) {
                    candidates.push((ks.uid, c, rec.id));
                }
            }
        }
        candidates.sort_unstable_by_key(|&(uid, ..)| uid);
        for (uid, c, id) in candidates.into_iter().take(quota) {
            if let Some(rec) = self.cores[c].flows.get_mut(id) {
                rec.discarded = true;
            }
            let mut freed: Vec<ChunkBuf> = Vec::new();
            if let Some(ks) = self.cores[c].kstates.get_mut(&id) {
                for d in [0usize, 1] {
                    if let Some(kept) = ks.kept[d].take() {
                        freed.push(kept);
                    }
                    if let Some(asm) = ks.asm[d].as_mut() {
                        if let Some(tail) = asm.flush() {
                            freed.push(tail);
                        }
                    }
                    ks.flush_armed[d] = false;
                }
            }
            for chunk in freed {
                self.acct_dropped(
                    c,
                    now,
                    uid,
                    FlightLayer::Memory,
                    DropReason::PriorityEvict,
                    0,
                    chunk.len as u64,
                );
                self.arena.release(chunk);
            }
            self.flight.emit(
                c,
                FlightEvent::new(FlightKind::StreamEvicted, FlightLayer::Governor, now)
                    .with_reason(DropReason::PriorityEvict)
                    .with_uid(uid),
            );
            self.stats.resilience.evicted_streams += 1;
            work.k_timer_ops += 1;
        }
    }

    /// Remove a stream's NIC filters by key (both directions).
    fn remove_fdir_filters(&mut self, key: FlowKey, work: &mut Work) {
        let removed = self.nic.fdir_uninstall_all_for(&key)
            + self.nic.fdir_uninstall_all_for(&key.reversed());
        if removed > 0 {
            work.k_fdir_ops += 1;
            self.stats.fdir_ops += 1;
        }
    }

    /// On FIN/RST of an FDIR-filtered stream, estimate per-direction
    /// totals from sequence numbers (per-filter NIC counters don't exist,
    /// §5.5).
    fn estimate_fdir_sizes(&mut self, core: usize, id: StreamId, meta: &TcpMeta, dir: Direction) {
        let Some(ks) = self.cores[core].kstates.get(&id) else {
            return;
        };
        if !ks.fdir_installed {
            return;
        }
        let Some(conn) = ks.conn.as_ref() else { return };
        let fwd_est = conn.dir(dir).rel_offset_of(meta.seq);
        let rev_est = conn.dir(dir.flip()).rel_offset_of(meta.ack);
        if let Some(rec) = self.cores[core].flows.get_mut(id) {
            if let Some(e) = fwd_est {
                let d = &mut rec.dirs[dir.index()];
                d.total_bytes = d.total_bytes.max(e);
            }
            if let Some(e) = rev_est {
                let d = &mut rec.dirs[dir.flip().index()];
                d.total_bytes = d.total_bytes.max(e);
            }
        }
    }

    /// Terminate an in-table stream: remove it, flush everything, emit
    /// final events. With `timewait`, a tombstone record stays in the
    /// table so late packets of the 5-tuple are absorbed silently.
    fn terminate_stream(
        &mut self,
        core: usize,
        id: StreamId,
        status: StreamStatus,
        now: u64,
        timewait: bool,
        work: &mut Work,
    ) {
        let Some(mut rec) = self.cores[core].flows.remove(id) else {
            return;
        };
        let ks = self.cores[core].kstates.remove(&id);
        if ks.is_none() {
            // Already-reported tombstone: drop silently.
            return;
        }
        rec.status = status;
        let key = rec.key;
        let last_ts = rec.last_ts_ns;
        self.cores[core]
            .flush_timers
            .retain(|(_, tid, _, _)| *tid != id);
        self.finish_removed_stream(core, rec, ks, now, work);
        if timewait {
            // A full table just means no tombstone: late packets of the
            // 5-tuple will create a fresh (noise) stream instead.
            if let Ok(lookup) = self.cores[core].flows.lookup_or_insert(&key, last_ts) {
                if let Some(t) = self.cores[core].flows.get_mut(lookup.id) {
                    t.status = status;
                }
            }
        }
    }

    /// Flush and report a stream whose record is already out of the table.
    fn finish_removed_stream(
        &mut self,
        core: usize,
        mut rec: StreamRecord,
        ks: Option<StreamKState>,
        now: u64,
        work: &mut Work,
    ) {
        let uid = ks.as_ref().map(|k| k.uid).unwrap_or(0);
        self.uid_index.remove(&uid);
        self.pending_keep.remove(&(uid, 0));
        self.pending_keep.remove(&(uid, 1));
        if let Some(mut ks) = ks {
            for d in [0usize, 1] {
                if let Some(kept) = ks.kept[d].take() {
                    self.arena.release(kept);
                }
            }
            for d in [Direction::Forward, Direction::Reverse] {
                let mut completed: Vec<ChunkBuf> = Vec::new();
                let mut asm = ks.asm[d.index()].take();
                if let Some(conn) = ks.conn.as_mut() {
                    // Drain buffered out-of-order data.
                    let arena = &mut self.arena;
                    let chunk_size = self.cfg.chunk_size;
                    let overlap = self.cfg.overlap;
                    let mut copied = 0u64;
                    let a = asm.get_or_insert_with(|| ChunkAssembler::new(chunk_size, overlap));
                    conn.dir_mut(d).flush(&mut |_, data: &[u8]| {
                        copied += data.len() as u64;
                        let _ = a.append(arena, data, &mut completed);
                    });
                    work.k_bytes_copied += copied;
                    self.tele.add(core, Metric::KernelBytesCopied, copied);
                    self.acct_delivered(core, 0, copied);
                }
                if let Some(mut a) = asm {
                    if let Some(tail) = a.flush() {
                        if tail.len > 0 {
                            completed.push(tail);
                        } else {
                            self.arena.release(tail);
                        }
                    }
                }
                let packets = std::mem::take(&mut ks.pkt_records[d.index()]);
                let mut packets = Some(packets);
                for mut chunk in completed {
                    if self.cache.is_some() {
                        chunk.sim_addr = Self::chunk_region_addr(uid, d, chunk.start_offset);
                    }
                    rec.chunks += 1;
                    let snap = Self::snapshot_rec(&rec, uid);
                    self.enqueue_event(
                        core,
                        Event {
                            stream: snap,
                            kind: EventKind::Data {
                                dir: d,
                                chunk,
                                packets: packets.take().unwrap_or_default(),
                            },
                            core,
                            ingress_ns: now,
                            enqueued_ns: 0,
                        },
                        now,
                        work,
                    );
                }
            }
            if ks.fdir_installed || self.cfg.use_fdir_balancing {
                let key = rec.key;
                self.remove_fdir_filters(key, work);
                self.fdir_expiries.retain(|_, (_, _, k)| *k != key);
            }
            if ks.offload_installed {
                self.remove_offload_rule(rec.key, work);
            }
        }
        let snap = Self::snapshot_rec(&rec, uid);
        let (total_bytes, total_pkts) = snap.dirs.iter().fold((0u64, 0u64), |(b, p), d| {
            (b + d.total_bytes, p + d.total_pkts)
        });
        self.flight.emit(
            core,
            FlightEvent::new(
                FlightKind::StreamTerminated,
                FlightLayer::Kernel,
                rec.last_ts_ns,
            )
            .with_uid(uid)
            .with_vals(total_bytes, total_pkts),
        );
        self.enqueue_event(
            core,
            Event {
                stream: snap,
                kind: EventKind::Terminated,
                core,
                ingress_ns: now,
                enqueued_ns: 0,
            },
            now,
            work,
        );
        self.stats.stack.streams_reported += 1;
    }

    /// Periodic kernel timers for one core: flush timeouts, inactivity
    /// expiration, and (on core 0) FDIR filter timeouts.
    pub fn kernel_timers(&mut self, core: usize, now: u64) -> Work {
        self.excuse_blackout(now);
        let mut work = Work::default();

        // Flush timeouts.
        loop {
            let due = match self.cores[core].flush_timers.front() {
                Some((deadline, ..)) if *deadline <= now => {
                    self.cores[core].flush_timers.pop_front()
                }
                _ => None,
            };
            let Some((_, id, dir, armed_offset)) = due else {
                break;
            };
            work.k_timer_ops += 1;
            let Some(ks) = self.cores[core].kstates.get_mut(&id) else {
                continue;
            };
            ks.flush_armed[dir.index()] = false;
            let Some(asm) = ks.asm[dir.index()].as_mut() else {
                continue;
            };
            if !asm.has_pending() || asm.stream_offset() < armed_offset {
                continue;
            }
            if let Some(tail) = asm.flush() {
                if tail.len > 0 {
                    let packets = std::mem::take(&mut ks.pkt_records[dir.index()]);
                    self.emit_data_events(core, id, dir, vec![tail], packets, now, now, &mut work);
                } else {
                    self.arena.release(tail);
                }
            }
        }

        // Inactivity expiration.
        let expired = self.cores[core].flows.expire_inactive(
            now,
            self.cfg.inactivity_timeout_ns,
            EXPIRE_BATCH,
        );
        for rec in expired {
            work.k_timer_ops += 1;
            let id = rec.id;
            let ks = self.cores[core].kstates.remove(&id);
            let Some(ks) = ks else {
                // TIME_WAIT tombstone aging out: already reported.
                continue;
            };
            self.flight.emit(
                core,
                FlightEvent::new(FlightKind::StreamExpired, FlightLayer::Kernel, now)
                    .with_uid(ks.uid),
            );
            self.stats.expired_streams += 1;
            self.cores[core]
                .flush_timers
                .retain(|(_, tid, _, _)| *tid != id);
            self.finish_removed_stream(core, rec, Some(ks), now, &mut work);
        }

        // Capture-wide resilience machinery runs on core 0, which owns
        // the single hardware table and the (single) governor instance.
        if core == 0 {
            // Injected arena pressure spikes squeeze the budget.
            if let Some(inj) = self.arena_faults.as_mut() {
                let reserved = inj.reserved_at(now);
                self.arena.set_reserved(reserved as usize);
            }
            // Governor: pressure is the worst of arena occupancy, RX-ring
            // fill and event-queue backlog across all cores.
            let mut pressure = self.arena.used_fraction();
            for c in 0..self.cores.len() {
                pressure = pressure.max(self.nic.queue(c).fill_level());
                pressure = pressure.max(
                    self.cores[c].events.len() as f64 / self.cfg.event_queue_cap.max(1) as f64,
                );
            }
            let level_before = self.governor.level();
            self.governor.tick(now, pressure);
            if self.governor.level() != level_before {
                self.tele.inc(0, Metric::GovernorTransitions);
                self.flight.emit(
                    0,
                    FlightEvent::new(FlightKind::GovernorChange, FlightLayer::Governor, now)
                        .with_vals(u64::from(level_before), u64::from(self.governor.level())),
                );
            }
            let quota = self.governor.evict_quota();
            if quota > 0 {
                self.evict_low_priority(quota, now, &mut work);
            }
            self.drain_fdir_retries(now, &mut work);
            // Gauge refresh + bounded time-series sampling, keyed on the
            // caller's clock (deterministic per seed under simulation).
            let gauges = self.sample_gauges();
            for g in Gauge::ALL {
                self.tele.gauge_set(0, g, gauges[g.idx()]);
            }
            if self.sampler.due(now) {
                self.sampler.record(now, gauges);
            }
        }

        // FDIR filter timeouts (single hardware table; core 0 owns it).
        if core == 0 {
            // Not a while-let: the loop must end the borrow of
            // `fdir_expiries` before mutating it and the kstates.
            #[allow(clippy::while_let_loop)]
            loop {
                let Some((&(deadline, uid), &(ecore, eid, ekey))) =
                    self.fdir_expiries.iter().next()
                else {
                    break;
                };
                if deadline > now {
                    break;
                }
                self.fdir_expiries.remove(&(deadline, uid));
                self.remove_fdir_filters(ekey, &mut work);
                if let Some(ks) = self.cores[ecore].kstates.get_mut(&eid) {
                    ks.fdir_installed = false;
                }
                self.flight.emit(
                    ecore,
                    FlightEvent::new(FlightKind::FdirExpired, FlightLayer::Fdir, now).with_uid(uid),
                );
                work.k_timer_ops += 1;
            }
        }
        work
    }

    /// Pop the next event from a core's queue (user side).
    pub fn next_event(&mut self, core: usize) -> Option<Event> {
        self.cores[core].events.pop_front()
    }

    /// Return a consumed data chunk's memory to the arena.
    pub fn release_chunk(&mut self, chunk: ChunkBuf) {
        self.arena.release(chunk);
    }

    /// End of capture: drain ring backlogs and terminate every remaining
    /// stream so final events and statistics are complete.
    pub fn finish(&mut self, now: u64) {
        self.drain_mode = true;
        for core in 0..self.cores.len() {
            while self.kernel_poll(core, now).is_some() {}
            let ids: Vec<StreamId> = self.cores[core].flows.iter().map(|r| r.id).collect();
            let mut work = Work::default();
            for id in ids {
                self.terminate_stream(core, id, StreamStatus::ClosedTimeout, now, false, &mut work);
            }
        }
    }

    // -----------------------------------------------------------------
    // Warm restart: checkpoint / restore / hot-reload
    // -----------------------------------------------------------------

    /// Install the multi-tenant attachment table carried in checkpoints.
    /// The kernel treats it as opaque payload: `scapd` keeps it current
    /// as tenants attach/detach so every checkpoint written through the
    /// normal path is crash-consistent with the tenant registry.
    pub fn set_tenant_table(&mut self, tenants: Vec<checkpoint::TenantImage>) {
        self.tenant_table = tenants;
    }

    /// The tenant table restored from a checkpoint (empty when the
    /// capture is single-tenant).
    pub fn tenant_table(&self) -> &[checkpoint::TenantImage] {
        &self.tenant_table
    }

    /// Snapshot the full kernel state into checkpoint-file bytes. The
    /// capture keeps running — this is the §4 two-instance trick applied
    /// to one instance: the snapshot is taken between packets, so it is
    /// always consistent. The caller persists the bytes with
    /// [`checkpoint::write_atomic`].
    pub fn checkpoint_bytes(&mut self, now_ns: u64, seq: u64) -> Vec<u8> {
        let globals = CheckpointGlobals {
            ts_ns: now_ns,
            uid_counter: self.uid_counter,
            governor_level: self.governor.level(),
            restarts: self.stats.resilience.restarts,
        };
        let mut streams = Vec::new();
        for (c, core) in self.cores.iter().enumerate() {
            for rec in core.flows.iter() {
                let ks = core.kstates.get(&rec.id);
                let kstate = ks.map(|ks| KStateImage {
                    fdir_installed: ks.fdir_installed,
                    fdir_timeout_ns: ks.fdir_timeout_ns,
                    fdir_software_fallback: ks.fdir_software_fallback,
                    conn: ks.conn.as_ref().map(|conn| conn.export_state()),
                    asm: [0usize, 1].map(|d| {
                        ks.asm[d].as_ref().map(|a| AsmImage {
                            committed: a.stream_offset(),
                            pending: a.pending_bytes().to_vec(),
                        })
                    }),
                });
                streams.push(StreamImage {
                    core: c as u32,
                    uid: ks.map_or(0, |k| k.uid),
                    key: rec.key,
                    first_dir: rec.first_dir,
                    first_ts_ns: rec.first_ts_ns,
                    last_ts_ns: rec.last_ts_ns,
                    status: rec.status,
                    errors: rec.errors.0,
                    priority: rec.priority,
                    cutoff: rec.cutoff,
                    cutoff_exceeded: rec.cutoff_exceeded,
                    discarded: rec.discarded,
                    dirs: rec.dirs,
                    chunk_size: rec.chunk_size,
                    overlap: rec.overlap,
                    reassembly_policy: rec.reassembly_policy,
                    processing_time_ns: rec.processing_time_ns,
                    chunks: rec.chunks,
                    resume_gap_bytes: rec.resume_gap_bytes,
                    kstate,
                });
            }
        }
        let fdir = self.nic.fdir().filters();
        let offload = self.nic.offload().rules();
        self.stats.resilience.checkpoints_written += 1;
        let bytes = checkpoint::encode_image(
            seq,
            &self.cfg,
            &globals,
            &streams,
            &fdir,
            &offload,
            &self.tenant_table,
        );
        // Pulse: checkpoint span from the deterministic encode+sync
        // model over the image size.
        self.pulse.record(
            PulseStage::Checkpoint,
            cycles_to_ns(cost::checkpoint_cycles(bytes.len() as u64)),
        );
        self.flight.emit(
            0,
            FlightEvent::new(
                FlightKind::CheckpointWritten,
                FlightLayer::Checkpoint,
                now_ns,
            )
            .with_vals(seq, bytes.len() as u64),
        );
        bytes
    }

    /// Rebuild a kernel mid-capture from a decoded checkpoint (warm
    /// restart). Stream uids stay stable, every direction re-anchors at
    /// its committed offset, NIC drop filters are re-installed, and each
    /// restored live stream is marked [`StreamErrors::RESUMED`]. `faults`
    /// re-attaches a fault plan — plans are deliberately not part of the
    /// checkpoint, so the restarted instance chooses its own.
    pub fn from_image(
        img: CheckpointImage,
        faults: Option<FaultPlan>,
    ) -> Result<ScapKernel, CheckpointError> {
        let recovery = checkpoint::recovery_cycles(&img);
        let mut cfg = img.config.clone();
        cfg.faults = faults;
        let mut k = ScapKernel::new(cfg);
        k.uid_counter = img.globals.uid_counter;
        // Re-anchor the governor's hysteresis clock at the checkpoint
        // timestamp: the first post-restart tick sees transient pressure
        // (refilling arena, replayed backlog) and must not re-escalate.
        k.governor
            .restore_level(img.globals.governor_level, img.globals.ts_ns);
        k.tenant_table = img.tenants.clone();
        let reasm_cfg =
            ReasmConfig::for_mode(k.cfg.reassembly_mode).with_policy(k.cfg.overlap_policy);
        let mut resumed = 0u64;
        for s in &img.streams {
            let core = s.core as usize;
            let id = k.cores[core]
                .flows
                .lookup_or_insert(&s.key, s.first_ts_ns)
                .map_err(|_| {
                    CheckpointError::Corrupt(format!(
                        "flow table full restoring stream uid {}",
                        s.uid
                    ))
                })?
                .id;
            if let Some(rec) = k.cores[core].flows.get_mut(id) {
                rec.first_dir = s.first_dir;
                rec.first_ts_ns = s.first_ts_ns;
                rec.last_ts_ns = s.last_ts_ns;
                rec.status = s.status;
                rec.errors = StreamErrors(s.errors);
                rec.priority = s.priority;
                rec.cutoff = s.cutoff;
                rec.cutoff_exceeded = s.cutoff_exceeded;
                rec.discarded = s.discarded;
                rec.dirs = s.dirs;
                rec.chunk_size = s.chunk_size;
                rec.overlap = s.overlap;
                rec.reassembly_policy = s.reassembly_policy;
                rec.processing_time_ns = s.processing_time_ns;
                rec.chunks = s.chunks;
                rec.resume_gap_bytes = s.resume_gap_bytes;
            }
            k.cores[core].flows.touch(id, s.last_ts_ns);
            let Some(ksi) = &s.kstate else {
                // TIME_WAIT tombstone: the record alone absorbs stray
                // late packets, exactly as before the restart.
                continue;
            };
            resumed += 1;
            let mut ks = StreamKState::new(s.uid);
            ks.fdir_installed = ksi.fdir_installed;
            ks.fdir_timeout_ns = ksi.fdir_timeout_ns;
            ks.fdir_software_fallback = ksi.fdir_software_fallback;
            ks.conn = ksi.conn.as_ref().map(|ck| TcpConn::restore(reasm_cfg, ck));
            let chunk_size = if s.chunk_size == 0 {
                k.cfg.chunk_size.max(1)
            } else {
                s.chunk_size as usize
            };
            let overlap = (s.overlap as usize).min(chunk_size - 1);
            for d in [0usize, 1] {
                let Some(a) = &ksi.asm[d] else { continue };
                if a.pending.len() > chunk_size {
                    return Err(CheckpointError::Corrupt(format!(
                        "stream uid {}: pending chunk larger than chunk size",
                        s.uid
                    )));
                }
                let asm = ChunkAssembler::resume(
                    &mut k.arena,
                    chunk_size,
                    overlap,
                    a.committed,
                    &a.pending,
                )
                .map_err(|_| {
                    CheckpointError::Corrupt(format!(
                        "arena exhausted restoring pending chunk of stream uid {}",
                        s.uid
                    ))
                })?;
                ks.asm[d] = Some(asm);
            }
            if ks.fdir_installed {
                k.fdir_expiries.insert(
                    (img.globals.ts_ns + ks.fdir_timeout_ns, s.uid),
                    (core, id, s.key),
                );
            }
            k.cores[core].kstates.insert(id, ks);
            k.uid_index.insert(s.uid, (core, id));
            if let Some(rec) = k.cores[core].flows.get_mut(id) {
                rec.errors.set(StreamErrors::RESUMED);
            }
            k.flight.emit(
                core,
                FlightEvent::new(
                    FlightKind::StreamResumed,
                    FlightLayer::Checkpoint,
                    img.globals.ts_ns,
                )
                .with_uid(s.uid),
            );
        }
        for f in img.fdir {
            if k.nic.fdir_install(f).is_ok() {
                k.stats.fdir_ops += 1;
            }
        }
        for r in img.offload {
            if k.nic.offload_install(r).is_ok() {
                k.stats.offload_ops += 1;
            }
        }
        // Re-derive stream ownership of `Drop` rules: the flag is a pure
        // function of (restored rules × restored streams), so it does
        // not travel in the per-stream kstate record.
        for s in &img.streams {
            if s.kstate.is_none() {
                continue;
            }
            if matches!(
                k.nic.offload().action_for(&s.key),
                Some(OffloadAction::Drop)
            ) {
                if let Some(&(core, id)) = k.uid_index.get(&s.uid) {
                    if let Some(ks) = k.cores[core].kstates.get_mut(&id) {
                        ks.offload_installed = true;
                    }
                    k.offload_owners
                        .insert(s.key.canonical().0, (core, id, s.uid));
                }
            }
        }
        k.resume_epoch_pending = true;
        k.stats.resilience.restarts = img.globals.restarts + 1;
        k.stats.resilience.resumed_streams = resumed;
        k.stats.resilience.recovery_virtual_cycles = recovery;
        k.tele.record_stage(0, Stage::Restart, recovery);
        k.flight.emit(
            0,
            FlightEvent::new(
                FlightKind::Restarted,
                FlightLayer::Checkpoint,
                img.globals.ts_ns,
            )
            .with_vals(k.stats.resilience.restarts, resumed),
        );
        Ok(k)
    }

    /// Hot-reload a configuration delta onto the running kernel without
    /// stopping dispatch. Cutoff and priority changes propagate to every
    /// live stream through the same [`ControlOp`] path applications use;
    /// a *widened* cutoff re-opens streams whose old, narrower cutoff
    /// had tripped (clearing their NIC drop filters), exactly like
    /// `union_config` generalizes cutoffs for shared captures. Filter
    /// changes take effect on the next packet.
    pub fn try_apply_config(&mut self, delta: ConfigDelta) -> Result<(), crate::ConfigError> {
        delta.validate(&self.cfg)?;
        self.apply_config(delta);
        Ok(())
    }

    /// [`ScapKernel::try_apply_config`] without the validation step —
    /// callers must have validated the delta against the installed
    /// configuration themselves (e.g. via [`ConfigDelta::validate`]).
    pub fn apply_config(&mut self, delta: ConfigDelta) {
        let cutoff_changed = delta.cutoff_default.is_some() || delta.cutoff_classes.is_some();
        let priorities_changed = delta.priorities.is_some();
        // `apply_to` owns the widening rule (generalize vs narrow); the
        // per-stream re-open below is driven by each stream's own state.
        let _widened = delta.apply_to(&mut self.cfg);
        if !cutoff_changed && !priorities_changed {
            return;
        }
        let mut uids: Vec<StreamUid> = self.uid_index.keys().copied().collect();
        uids.sort_unstable();
        for uid in uids {
            let Some(&(core, id)) = self.uid_index.get(&uid) else {
                continue;
            };
            let Some(key) = self.cores[core].flows.get(id).map(|r| r.key) else {
                continue;
            };
            if cutoff_changed {
                let cutoffs = self.cfg.cutoff.effective(&key);
                for d in [Direction::Forward, Direction::Reverse] {
                    self.control(ControlOp::SetCutoff(uid, Some(d), cutoffs[d.index()]));
                }
            }
            if priorities_changed {
                let prio = self.cfg.priorities.for_key(&key);
                self.control(ControlOp::SetPriority(uid, prio));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use scap_wire::PacketBuilder;

    fn kernel(cfg: ScapConfig) -> ScapKernel {
        ScapKernel::new(cfg)
    }

    fn drive(k: &mut ScapKernel, pkts: &[Packet]) {
        for (i, p) in pkts.iter().enumerate() {
            k.nic_receive(p);
            for c in 0..k.ncores() {
                while k.kernel_poll(c, p.ts_ns).is_some() {}
            }
            if i % 64 == 0 {
                for c in 0..k.ncores() {
                    k.kernel_timers(c, p.ts_ns);
                }
            }
        }
    }

    fn collect_events(k: &mut ScapKernel) -> Vec<Event> {
        let mut out = Vec::new();
        for c in 0..k.ncores() {
            while let Some(ev) = k.next_event(c) {
                out.push(ev);
            }
        }
        out
    }

    /// A simple two-direction TCP session as raw packets.
    fn http_session(payload_c: &[u8], payload_s: &[u8]) -> Vec<Packet> {
        let c = [10, 0, 0, 1];
        let s = [93, 184, 216, 34];
        let (cp, sp) = (43210, 80);
        let (ic, is) = (1000u32, 5000u32);
        let mut t = 0u64;
        let mut nt = || {
            t += 1_000_000;
            t
        };
        let mut pkts = vec![
            Packet::new(
                nt(),
                PacketBuilder::tcp_v4(c, s, cp, sp, ic, 0, TcpFlags::SYN, b""),
            ),
            Packet::new(
                nt(),
                PacketBuilder::tcp_v4(s, c, sp, cp, is, ic + 1, TcpFlags::SYN | TcpFlags::ACK, b""),
            ),
            Packet::new(
                nt(),
                PacketBuilder::tcp_v4(c, s, cp, sp, ic + 1, is + 1, TcpFlags::ACK, b""),
            ),
        ];
        let mut seq = ic + 1;
        for chunk in payload_c.chunks(1000) {
            pkts.push(Packet::new(
                nt(),
                PacketBuilder::tcp_v4(
                    c,
                    s,
                    cp,
                    sp,
                    seq,
                    is + 1,
                    TcpFlags::ACK | TcpFlags::PSH,
                    chunk,
                ),
            ));
            seq += chunk.len() as u32;
        }
        let mut sseq = is + 1;
        for chunk in payload_s.chunks(1000) {
            pkts.push(Packet::new(
                nt(),
                PacketBuilder::tcp_v4(s, c, sp, cp, sseq, seq, TcpFlags::ACK, chunk),
            ));
            sseq += chunk.len() as u32;
        }
        pkts.push(Packet::new(
            nt(),
            PacketBuilder::tcp_v4(s, c, sp, cp, sseq, seq, TcpFlags::FIN | TcpFlags::ACK, b""),
        ));
        pkts.push(Packet::new(
            nt(),
            PacketBuilder::tcp_v4(
                c,
                s,
                cp,
                sp,
                seq,
                sseq + 1,
                TcpFlags::FIN | TcpFlags::ACK,
                b"",
            ),
        ));
        pkts
    }

    #[test]
    fn session_produces_create_data_terminate() {
        let mut k = kernel(ScapConfig {
            chunk_size: 4096,
            ..Default::default()
        });
        let req = vec![b'Q'; 2000];
        let resp = vec![b'R'; 6000];
        drive(&mut k, &http_session(&req, &resp));
        let events = collect_events(&mut k);

        let created = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Created))
            .count();
        let terminated = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Terminated))
            .count();
        assert_eq!(created, 1);
        assert_eq!(terminated, 1);

        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        for e in &events {
            if let EventKind::Data { dir, chunk, .. } = &e.kind {
                match dir {
                    Direction::Forward => fwd.extend_from_slice(chunk.bytes()),
                    Direction::Reverse => rev.extend_from_slice(chunk.bytes()),
                }
            }
        }
        let (a, b) = if fwd.len() == 2000 {
            (fwd, rev)
        } else {
            (rev, fwd)
        };
        assert_eq!(a, req);
        assert_eq!(b, resp);

        let st = k.stats();
        assert_eq!(st.stack.streams_created, 1);
        assert_eq!(st.stack.streams_reported, 1);
        assert_eq!(st.stack.dropped_packets, 0);
    }

    #[test]
    fn cutoff_discards_tail_and_reports_flag() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(1000),
                ..Default::default()
            },
            chunk_size: 4096,
            ..Default::default()
        });
        let resp = vec![b'R'; 20_000];
        drive(&mut k, &http_session(b"Q", &resp));
        let events = collect_events(&mut k);
        let mut data_bytes = 0usize;
        let mut cutoff_seen = false;
        for e in &events {
            if let EventKind::Data { chunk, .. } = &e.kind {
                data_bytes += chunk.len;
            }
            if e.stream.cutoff_exceeded {
                cutoff_seen = true;
            }
        }
        assert!(data_bytes <= 2100, "data {data_bytes}");
        assert!(cutoff_seen);
        let st = k.stats();
        assert!(st.stack.discarded_packets > 10);
        let term = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Terminated))
            .unwrap();
        assert!(term.stream.total_bytes() > 20_000);
    }

    #[test]
    fn zero_cutoff_keeps_statistics_without_data() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(0),
                ..Default::default()
            },
            ..Default::default()
        });
        drive(&mut k, &http_session(&vec![b'Q'; 3000], &vec![b'R'; 9000]));
        let events = collect_events(&mut k);
        let data: usize = events.iter().map(|e| e.data_len()).sum();
        assert_eq!(data, 0);
        let term = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Terminated))
            .unwrap();
        assert!(term.stream.total_bytes() > 12_000);
        assert!(term.stream.total_pkts() >= 15);
    }

    #[test]
    fn fdir_cutoff_drops_at_nic_but_still_terminates() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(1000),
                ..Default::default()
            },
            use_fdir: true,
            chunk_size: 4096,
            ..Default::default()
        });
        let resp = vec![b'R'; 40_000];
        drive(&mut k, &http_session(b"Q", &resp));
        let st = k.stats();
        assert!(
            st.stack.nic_filtered_packets > 10,
            "nic filtered {}",
            st.stack.nic_filtered_packets
        );
        assert!(st.fdir_ops >= 4);
        let events = collect_events(&mut k);
        let term = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Terminated))
            .count();
        assert_eq!(term, 1);
        assert_eq!(k.fdir_filters(), 0, "filters must be removed at close");
    }

    #[test]
    fn fdir_termination_estimates_flow_size_from_fin() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(1000),
                ..Default::default()
            },
            use_fdir: true,
            chunk_size: 4096,
            ..Default::default()
        });
        let resp = vec![b'R'; 40_000];
        drive(&mut k, &http_session(b"Q", &resp));
        let events = collect_events(&mut k);
        let term = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Terminated))
            .unwrap();
        // Even though most data packets were dropped at the NIC, the
        // FIN-sequence estimate recovers the true response size.
        assert!(
            term.stream.total_bytes() >= 40_000,
            "estimated bytes {} too small",
            term.stream.total_bytes()
        );
    }

    #[test]
    fn offload_cutoff_drops_at_nic_and_reconciles_with_flight() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(1000),
                ..Default::default()
            },
            use_offload: true,
            offload_capacity: 1024,
            chunk_size: 4096,
            ..Default::default()
        });
        let resp = vec![b'R'; 40_000];
        drive(&mut k, &http_session(b"Q", &resp));
        let st = k.stats();
        let n = k.nic_stats();
        assert!(
            n.offload_dropped_frames > 10,
            "offload dropped {}",
            n.offload_dropped_frames
        );
        assert_eq!(st.stack.nic_filtered_packets, n.offload_dropped_frames);
        assert!(st.offload_ops >= 1);
        assert_eq!(st.fdir_ops, 0, "offload must not fall back to FDIR here");

        // Conservation: every wire packet is delivered, dropped, or
        // deliberately discarded — offload drops land in `discarded`.
        assert_eq!(
            st.stack.wire_packets,
            st.stack.delivered_packets + st.stack.dropped_packets + st.stack.discarded_packets
        );

        // Exact flight reconciliation: the journal's offload-drop events
        // sum to the NIC's counters, packets and bytes both.
        let (mut ev_pkts, mut ev_bytes) = (0u64, 0u64);
        for e in k.flight().events() {
            if e.kind == FlightKind::Discard && e.reason == DropReason::OffloadDrop {
                ev_pkts += e.a;
                ev_bytes += e.b;
            }
        }
        assert_eq!(ev_pkts, n.offload_dropped_frames);
        assert_eq!(ev_bytes, n.offload_dropped_bytes);

        // FIN punts through the drop rule, so the stream terminates and
        // its rule is uninstalled.
        let events = collect_events(&mut k);
        let term = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Terminated))
            .count();
        assert_eq!(term, 1);
        assert_eq!(k.offload_rules(), 0, "rule must be removed at close");
    }

    #[test]
    fn offload_preferred_over_fdir_when_both_enabled() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(1000),
                ..Default::default()
            },
            use_fdir: true,
            use_offload: true,
            chunk_size: 4096,
            ..Default::default()
        });
        drive(&mut k, &http_session(b"Q", &vec![b'R'; 40_000]));
        let st = k.stats();
        assert!(st.offload_ops >= 1);
        assert_eq!(
            st.fdir_ops, 0,
            "a healthy offload table must absorb all cutoff rules"
        );
    }

    #[test]
    fn offload_mark_rule_overrides_priority_policy() {
        let mut k = kernel(ScapConfig {
            use_offload: true,
            chunk_size: 4096,
            ..Default::default()
        });
        // The application marks the flow before its first packet; the
        // stream is created with the marked priority, not the policy's.
        let key = FlowKey::new_v4([10, 0, 0, 1], [93, 184, 216, 34], 43210, 80, Transport::Tcp);
        k.offload_install(OffloadRule::new(key, OffloadAction::Mark(3), 3))
            .unwrap();
        drive(&mut k, &http_session(b"Q", b"R"));
        let events = collect_events(&mut k);
        let created = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Created))
            .unwrap();
        assert_eq!(created.stream.priority, 3);
    }

    #[test]
    fn offload_rules_survive_warm_restart() {
        let mut k = kernel(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(1000),
                ..Default::default()
            },
            use_offload: true,
            chunk_size: 4096,
            ..Default::default()
        });
        // Drive data past the cutoff but stop before FIN, so the drop
        // rule is still installed at checkpoint time.
        let pkts = http_session(b"Q", &vec![b'R'; 40_000]);
        let data_only = &pkts[..pkts.len() - 2];
        drive(&mut k, data_only);
        assert_eq!(k.offload_rules(), 1);
        let last_ts = data_only.last().unwrap().ts_ns;

        let bytes = k.checkpoint_bytes(last_ts, 1);
        let img = CheckpointImage::decode(&bytes).expect("checkpoint decodes");
        assert_eq!(img.offload.len(), 1, "rule must travel in the image");
        let mut k2 = ScapKernel::from_image(img, None).expect("restore");
        assert_eq!(k2.offload_rules(), 1, "rule re-programmed on restore");

        // A post-restart data packet of the shunted flow still dies at
        // the NIC — the restored stream owns its rule again.
        let before = k2.nic_stats().offload_dropped_frames;
        let late = Packet::new(
            last_ts + 1_000_000,
            PacketBuilder::tcp_v4(
                [93, 184, 216, 34],
                [10, 0, 0, 1],
                80,
                43210,
                45_001,
                1002,
                TcpFlags::ACK,
                &[b'R'; 500],
            ),
        );
        let verdict = k2.nic_receive(&late);
        assert_eq!(verdict, NicVerdict::DroppedByOffload);
        assert_eq!(k2.nic_stats().offload_dropped_frames, before + 1);
    }

    #[test]
    fn inactivity_timeout_expires_streams() {
        let mut k = kernel(ScapConfig {
            inactivity_timeout_ns: 1_000_000_000,
            ..Default::default()
        });
        let p1 = Packet::new(
            0,
            PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 100, 53, b"q1"),
        );
        let p2 = Packet::new(
            1_000_000,
            PacketBuilder::udp_v4([2, 2, 2, 2], [1, 1, 1, 1], 53, 100, b"r1"),
        );
        drive(&mut k, &[p1, p2]);
        for c in 0..k.ncores() {
            k.kernel_timers(c, 5_000_000_000);
        }
        let events = collect_events(&mut k);
        let term: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Terminated))
            .collect();
        assert_eq!(term.len(), 1);
        assert_eq!(term[0].stream.status, StreamStatus::ClosedTimeout);
        assert_eq!(k.stats().expired_streams, 1);
        let data: usize = events.iter().map(|e| e.data_len()).sum();
        assert_eq!(data, 4);
    }

    #[test]
    fn flush_timeout_delivers_partial_chunks() {
        let mut k = kernel(ScapConfig {
            flush_timeout_ns: 50_000_000,
            chunk_size: 1 << 20, // chunk will never fill on its own
            ..Default::default()
        });
        // Handshake + one data packet, no close.
        let pkts = &http_session(&vec![b'Q'; 500], b"")[..5];
        drive(&mut k, pkts);
        // Before the flush timeout: no data event.
        let before: usize = {
            let evs = collect_events(&mut k);
            evs.iter().map(|e| e.data_len()).sum()
        };
        assert_eq!(before, 0);
        // After the timeout fires the partial chunk is delivered.
        for c in 0..k.ncores() {
            k.kernel_timers(c, 1_000_000_000);
        }
        let after: usize = collect_events(&mut k).iter().map(|e| e.data_len()).sum();
        assert_eq!(after, 500);
    }

    #[test]
    fn ppl_sheds_low_priority_first_under_memory_pressure() {
        use scap_filter::Filter;
        let mut cfg = ScapConfig {
            memory_bytes: 64 << 10,
            chunk_size: 4 << 10,
            ppl: scap_memory::PplConfig {
                base_threshold: 0.25,
                num_priorities: 2,
                overload_cutoff: None,
            },
            ..Default::default()
        };
        cfg.priorities
            .classes
            .push((Filter::new("port 80").unwrap(), 1));
        let mut k = kernel(cfg);

        let mut pkts = Vec::new();
        for f in 0..20u8 {
            let port = if f % 2 == 0 { 80 } else { 9000 + u16::from(f) };
            let c = [10, 0, 1, f];
            let s = [20, 0, 0, 1];
            let isn = 100u32;
            let mut v = Vec::new();
            v.push(PacketBuilder::tcp_v4(
                c,
                s,
                5000,
                port,
                isn,
                0,
                TcpFlags::SYN,
                b"",
            ));
            v.push(PacketBuilder::tcp_v4(
                s,
                c,
                port,
                5000,
                7,
                isn + 1,
                TcpFlags::SYN | TcpFlags::ACK,
                b"",
            ));
            let mut seq = isn + 1;
            for _ in 0..8 {
                let payload = vec![0x41u8; 1400];
                v.push(PacketBuilder::tcp_v4(
                    c,
                    s,
                    5000,
                    port,
                    seq,
                    8,
                    TcpFlags::ACK,
                    &payload,
                ));
                seq += 1400;
            }
            for (i, frame) in v.into_iter().enumerate() {
                pkts.push(Packet::new((i as u64) * 1000, frame));
            }
        }
        pkts.sort_by_key(|p| p.ts_ns);
        // Events are never consumed, so the arena fills and PPL must act.
        drive(&mut k, &pkts);

        let st = k.stats();
        assert!(st.stack.dropped_packets > 0, "no PPL drops under pressure");

        let mut hi_drops = 0u64;
        let mut lo_drops = 0u64;
        for c in 0..k.ncores() {
            for rec in k.streams_on_core(c) {
                let drops = rec.dirs[0].dropped_pkts + rec.dirs[1].dropped_pkts;
                if rec.priority == 1 {
                    hi_drops += drops;
                } else {
                    lo_drops += drops;
                }
            }
        }
        assert!(
            hi_drops <= lo_drops,
            "high-priority drops {hi_drops} exceed low-priority {lo_drops}"
        );
    }

    #[test]
    fn campus_trace_roundtrip_accounting() {
        let mut k = kernel(ScapConfig {
            memory_bytes: 64 << 20,
            ..Default::default()
        });
        let pkts = CampusMix::new(CampusMixConfig::sized(11, 4 << 20)).collect_all();
        drive(&mut k, &pkts);
        k.finish(u64::MAX / 2);
        let events = collect_events(&mut k);
        let st = k.stats();
        assert_eq!(st.stack.wire_packets, pkts.len() as u64);
        assert_eq!(st.stack.dropped_packets, 0, "no overload expected");
        assert!(st.stack.streams_created > 10);
        assert_eq!(st.stack.streams_created, st.stack.streams_reported);
        let created = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Created))
            .count();
        let terminated = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Terminated))
            .count();
        assert_eq!(created as u64, st.stack.streams_created);
        assert_eq!(terminated as u64, st.stack.streams_reported);
    }

    #[test]
    fn need_pkts_produces_packet_records() {
        let mut k = kernel(ScapConfig {
            need_pkts: true,
            chunk_size: 2048,
            ..Default::default()
        });
        drive(&mut k, &http_session(&vec![b'Q'; 3000], &vec![b'R'; 3000]));
        let events = collect_events(&mut k);
        let mut recs = 0;
        for e in &events {
            if let EventKind::Data { packets, .. } = &e.kind {
                recs += packets.len();
            }
        }
        assert!(recs >= 6, "packet records missing: {recs}");
    }

    #[test]
    fn fdir_load_balancing_spreads_a_skewed_workload() {
        use scap_nic::RssHasher;
        use scap_wire::{FlowKey, Transport};
        // Craft client ports so every flow RSS-hashes to queue 0: a
        // worst-case skew no static hash can fix.
        let rss = RssHasher::symmetric(4);
        let server = [192, 0, 2, 1];
        let client = [10, 0, 0, 1];
        let mut skewed_ports = Vec::new();
        let mut port = 1024u16;
        while skewed_ports.len() < 64 {
            let key = FlowKey::new_v4(client, server, port, 80, Transport::Tcp);
            if rss.queue_for(&key) == 0 {
                skewed_ports.push(port);
            }
            port += 1;
        }

        let run = |balance: bool| -> (Vec<usize>, u64) {
            let mut k = kernel(ScapConfig {
                cores: 4,
                use_fdir_balancing: balance,
                balance_threshold: 1.2,
                ..Default::default()
            });
            let mut pkts = Vec::new();
            for (i, &p) in skewed_ports.iter().enumerate() {
                let t0 = i as u64 * 1_000_000;
                pkts.push(Packet::new(
                    t0,
                    PacketBuilder::tcp_v4(client, server, p, 80, 1, 0, TcpFlags::SYN, b""),
                ));
                pkts.push(Packet::new(
                    t0 + 1000,
                    PacketBuilder::tcp_v4(
                        server,
                        client,
                        80,
                        p,
                        9,
                        2,
                        TcpFlags::SYN | TcpFlags::ACK,
                        b"",
                    ),
                ));
                pkts.push(Packet::new(
                    t0 + 2000,
                    PacketBuilder::tcp_v4(
                        client,
                        server,
                        p,
                        80,
                        2,
                        10,
                        TcpFlags::ACK,
                        &[0x41; 100],
                    ),
                ));
            }
            drive(&mut k, &pkts);
            let counts = (0..k.ncores()).map(|c| k.tracked_streams(c)).collect();
            (counts, k.stats().rebalanced_streams)
        };

        let (skew_counts, rebalanced_off) = run(false);
        assert_eq!(rebalanced_off, 0);
        assert_eq!(skew_counts[0], 64, "skew setup failed: {skew_counts:?}");

        let (bal_counts, rebalanced_on) = run(true);
        assert!(
            rebalanced_on > 10,
            "only {rebalanced_on} streams rebalanced"
        );
        let max = *bal_counts.iter().max().unwrap();
        assert!(max < 64, "balancing had no effect: {bal_counts:?}");
        // Streams ended up on more than one core.
        assert!(bal_counts.iter().filter(|&&c| c > 0).count() >= 2);
    }

    #[test]
    fn bpf_filter_discards_early() {
        use scap_filter::Filter;
        let mut k = kernel(ScapConfig {
            filter: Some(Filter::new("port 9999").unwrap()),
            ..Default::default()
        });
        drive(&mut k, &http_session(&vec![b'Q'; 500], &vec![b'R'; 500]));
        let st = k.stats();
        assert_eq!(st.stack.streams_created, 0);
        assert!(st.stack.discarded_packets > 0);
    }

    /// Drive with the same group cadence through either dispatch path
    /// and transcribe everything delivered: for each event, the stream
    /// uid plus the exact chunk payload (or record kind). Byte-identical
    /// transcripts mean byte-identical delivery.
    fn delivery_transcript(fastpath: bool, pkts: &[Packet]) -> (Vec<u8>, ScapStats, Vec<u8>) {
        let mut k = kernel(ScapConfig {
            dispatch: if fastpath {
                crate::DispatchMode::Fastpath
            } else {
                crate::DispatchMode::Classic
            },
            fastpath_burst: 32,
            memory_bytes: 64 << 20,
            ..Default::default()
        });
        let mut transcript = Vec::new();
        for group in pkts.chunks(48) {
            let now = group.last().unwrap().ts_ns;
            for p in group {
                k.nic_receive(p);
            }
            for c in 0..k.ncores() {
                if fastpath {
                    while k.poll_burst(c, now).is_some() {}
                } else {
                    while k.kernel_poll(c, now).is_some() {}
                }
                k.kernel_timers(c, now);
            }
            for ev in collect_events(&mut k) {
                transcript.extend_from_slice(&ev.stream.uid.to_le_bytes());
                match ev.kind {
                    EventKind::Data { dir, chunk, .. } => {
                        transcript.push(0x10 | dir.index() as u8);
                        transcript.extend_from_slice(&chunk.start_offset.to_le_bytes());
                        transcript.extend_from_slice(&chunk.data[..chunk.len]);
                        k.release_data(ev.stream.uid, dir, chunk);
                    }
                    EventKind::Created => transcript.push(1),
                    EventKind::Terminated => transcript.push(2),
                }
            }
        }
        k.finish(pkts.last().map_or(1, |p| p.ts_ns + 1));
        for ev in collect_events(&mut k) {
            transcript.extend_from_slice(&ev.stream.uid.to_le_bytes());
            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                transcript.push(0x10 | dir.index() as u8);
                transcript.extend_from_slice(&chunk.start_offset.to_le_bytes());
                transcript.extend_from_slice(&chunk.data[..chunk.len]);
                k.release_data(ev.stream.uid, dir, chunk);
            } else {
                transcript.push(0);
            }
        }
        let flight = k.flight().encode();
        (transcript, k.stats(), flight)
    }

    #[test]
    fn fastpath_delivers_byte_identical_streams() {
        let pkts = CampusMix::new(CampusMixConfig::sized(23, 2 << 20)).collect_all();
        let (classic, classic_stats, _) = delivery_transcript(false, &pkts);
        let (fast, fast_stats, fast_flight) = delivery_transcript(true, &pkts);
        assert!(!classic.is_empty());
        assert_eq!(classic, fast, "fast-path delivery diverged from classic");

        // Conservation identity holds exactly on the fast path.
        let s = fast_stats.stack;
        assert_eq!(
            s.wire_packets,
            s.delivered_packets + s.dropped_packets + s.discarded_packets,
            "fast-path conservation identity violated"
        );
        assert_eq!(s.wire_packets, classic_stats.stack.wire_packets);
        assert_eq!(s.delivered_packets, classic_stats.stack.delivered_packets);
        assert_eq!(s.streams_created, classic_stats.stack.streams_created);

        // Same seed, same path: the full flight journal is reproducible
        // byte for byte.
        let (_, _, fast_flight2) = delivery_transcript(true, &pkts);
        assert_eq!(fast_flight, fast_flight2);
    }

    #[test]
    fn fastpath_counts_bursts_and_checkpoints_dispatch_mode() {
        let pkts = CampusMix::new(CampusMixConfig::sized(5, 256 << 10)).collect_all();
        let mut k = kernel(ScapConfig {
            dispatch: crate::DispatchMode::Fastpath,
            fastpath_burst: 16,
            ..Default::default()
        });
        for p in &pkts {
            k.nic_receive(p);
        }
        let now = pkts.last().unwrap().ts_ns;
        for c in 0..k.ncores() {
            while k.poll_burst(c, now).is_some() {}
            k.kernel_timers(c, now);
        }
        let fp = k.fastpath_stats();
        assert!(fp.bursts > 0, "no bursts recorded");
        assert_eq!(fp.packets, pkts.len() as u64);
        assert!(fp.fill_permille() > 0);
        let snap = k.telemetry_snapshot();
        assert_eq!(snap.total(Metric::FastpathPackets), pkts.len() as u64);
        assert_eq!(snap.total(Metric::FastpathBursts), fp.bursts);

        // The dispatch mode and burst size survive checkpoint/restore,
        // so a warm-restarted capture resumes on the same path.
        let bytes = k.checkpoint_bytes(now, 1);
        let img = CheckpointImage::decode(&bytes).unwrap();
        let restored = ScapKernel::from_image(img, None).unwrap();
        assert_eq!(restored.config().dispatch, crate::DispatchMode::Fastpath);
        assert_eq!(restored.config().fastpath_burst, 16);
    }
}
