//! The budgeted block arena.
//!
//! Models the kernel module's stream-data buffer: a fixed byte budget
//! (`memory_size` in `scap_create`) from which contiguous blocks are
//! allocated, one per in-progress chunk. Released blocks park on
//! per-size free lists, mirroring the paper's "own memory allocator"
//! that avoids dynamic-allocation overhead in the softirq path.

/// Arena exhaustion: the caller decides what to drop (PPL usually
/// prevents this from being reached by high-priority traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "stream memory arena exhausted")
    }
}

impl std::error::Error for OutOfMemory {}

/// An allocated block holding (part of) one stream chunk.
#[derive(Debug)]
pub struct ChunkBuf {
    /// Block storage; capacity is the allocation class size.
    pub data: Box<[u8]>,
    /// Valid bytes written so far.
    pub len: usize,
    /// Stream offset of `data[0]` (for reporting and packet records).
    pub start_offset: u64,
    /// True when reassembly noted an error inside this chunk (fast mode).
    pub had_error: bool,
    /// Synthetic address used by the cache model (set by the kernel when
    /// the chunk is emitted; 0 when unused).
    pub sim_addr: u64,
}

impl ChunkBuf {
    /// The valid payload of the chunk.
    pub fn bytes(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// Remaining capacity.
    pub fn room(&self) -> usize {
        self.data.len() - self.len
    }
}

use scap_telemetry::{Metric, PlainRegistry};

/// The block allocator.
#[derive(Debug)]
pub struct Arena {
    budget: usize,
    used: usize,
    /// Free lists keyed by block size (blocks are reused exactly-sized;
    /// chunk sizes are few in practice — one per application config).
    freelists: std::collections::HashMap<usize, Vec<Box<[u8]>>>,
    /// Lifetime counters for diagnostics and the cost model.
    pub allocs: u64,
    /// Blocks handed back.
    pub releases: u64,
    /// Allocation failures (arena full).
    pub failures: u64,
    /// High-water mark of `used`.
    pub peak_used: usize,
    /// Bytes withheld from the budget (fault injection / external
    /// pressure). Reserved bytes count as used for admission and for
    /// `used_fraction`, so PPL sees the pressure spike.
    reserved: usize,
    /// Telemetry (single shard: the arena is one shared resource).
    tele: PlainRegistry,
}

impl Arena {
    /// An arena with `budget` bytes (the paper's experiments use 1 GB).
    pub fn new(budget: usize) -> Self {
        Arena {
            budget,
            used: 0,
            freelists: std::collections::HashMap::new(),
            allocs: 0,
            releases: 0,
            failures: 0,
            peak_used: 0,
            reserved: 0,
            tele: PlainRegistry::new(1),
        }
    }

    /// The arena's telemetry registry (merged into capture-wide
    /// snapshots by the kernel).
    pub fn telemetry(&self) -> &PlainRegistry {
        &self.tele
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently allocated to live blocks.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes currently withheld from the budget (0 unless fault
    /// injection or an external reservation is active).
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Withhold `bytes` from the budget. Already-allocated blocks are
    /// unaffected; new allocations and `used_fraction` see the squeeze.
    pub fn set_reserved(&mut self, bytes: usize) {
        self.reserved = bytes.min(self.budget);
    }

    /// Fraction of the budget in use (input to PPL). Reserved bytes
    /// count as used.
    pub fn used_fraction(&self) -> f64 {
        if self.budget == 0 {
            1.0
        } else {
            ((self.used + self.reserved) as f64 / self.budget as f64).min(1.0)
        }
    }

    /// Allocate a block of exactly `size` bytes for a new chunk starting
    /// at stream offset `start_offset`.
    pub fn alloc(&mut self, size: usize, start_offset: u64) -> Result<ChunkBuf, OutOfMemory> {
        assert!(size > 0);
        if self.used + self.reserved + size > self.budget {
            self.failures += 1;
            self.tele.inc(0, Metric::ArenaAllocFailures);
            return Err(OutOfMemory);
        }
        let data = match self.freelists.get_mut(&size).and_then(Vec::pop) {
            Some(b) => b,
            None => vec![0u8; size].into_boxed_slice(),
        };
        self.used += size;
        self.peak_used = self.peak_used.max(self.used);
        self.allocs += 1;
        self.tele.inc(0, Metric::ArenaAllocs);
        Ok(ChunkBuf {
            data,
            len: 0,
            start_offset,
            had_error: false,
            sim_addr: 0,
        })
    }

    /// Return a block to the arena (after the worker consumed the chunk).
    pub fn release(&mut self, chunk: ChunkBuf) {
        let size = chunk.data.len();
        self.used -= size;
        self.releases += 1;
        self.tele.inc(0, Metric::ArenaReleases);
        self.freelists.entry(size).or_default().push(chunk.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_enforced() {
        let mut a = Arena::new(10_000);
        let c1 = a.alloc(4096, 0).unwrap();
        let _c2 = a.alloc(4096, 0).unwrap();
        assert!(a.alloc(4096, 0).is_err());
        assert_eq!(a.failures, 1);
        a.release(c1);
        assert!(a.alloc(4096, 0).is_ok());
    }

    #[test]
    fn used_fraction_tracks_allocations() {
        let mut a = Arena::new(100);
        assert_eq!(a.used_fraction(), 0.0);
        let c = a.alloc(50, 0).unwrap();
        assert!((a.used_fraction() - 0.5).abs() < 1e-9);
        a.release(c);
        assert_eq!(a.used_fraction(), 0.0);
        assert_eq!(a.peak_used, 50);
    }

    #[test]
    fn freed_blocks_are_reused() {
        let mut a = Arena::new(1 << 20);
        let c = a.alloc(8192, 0).unwrap();
        let ptr = c.data.as_ptr();
        a.release(c);
        let c2 = a.alloc(8192, 100).unwrap();
        assert_eq!(c2.data.as_ptr(), ptr, "block not recycled");
        assert_eq!(c2.start_offset, 100);
        assert_eq!(c2.len, 0);
    }

    #[test]
    fn chunk_buf_accessors() {
        let mut a = Arena::new(1 << 16);
        let mut c = a.alloc(100, 7).unwrap();
        c.data[..3].copy_from_slice(b"abc");
        c.len = 3;
        assert_eq!(c.bytes(), b"abc");
        assert_eq!(c.room(), 97);
    }

    #[test]
    fn reserved_bytes_squeeze_the_budget() {
        let mut a = Arena::new(10_000);
        a.set_reserved(7_000);
        assert!((a.used_fraction() - 0.7).abs() < 1e-9);
        assert!(a.alloc(4096, 0).is_err());
        let c = a.alloc(2048, 0).unwrap();
        assert!((a.used_fraction() - 0.9048).abs() < 1e-3);
        a.set_reserved(0);
        a.release(c);
        assert_eq!(a.used_fraction(), 0.0);
        // Reservation is clamped to the budget.
        a.set_reserved(usize::MAX);
        assert_eq!(a.reserved(), 10_000);
        assert_eq!(a.used_fraction(), 1.0);
    }

    #[test]
    fn zero_budget_is_always_full() {
        let mut a = Arena::new(0);
        assert_eq!(a.used_fraction(), 1.0);
        assert!(a.alloc(1, 0).is_err());
    }
}
