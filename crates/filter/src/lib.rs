#![warn(missing_docs)]

//! # scap-filter
//!
//! A BPF-style packet-filter substrate, built from scratch:
//!
//! * a tcpdump-like expression language (`"tcp and port 80"`,
//!   `"src net 10.0.0.0/8 and not dst port 443"`) with lexer and
//!   recursive-descent parser ([`parse`]),
//! * a compiler ([`compile::compile`]) from the AST to classic-BPF register
//!   bytecode operating on raw frame bytes (absolute loads, the
//!   `ldx msh` IP-header-length idiom, conditional jumps),
//! * a verifier and an interpreter VM ([`bytecode::BpfProgram`]) with
//!   real BPF semantics (out-of-bounds load ⇒ no match),
//! * a direct AST evaluator ([`eval`]) used both to filter by flow key
//!   (for per-class stream cutoffs, where no packet bytes exist) and as a
//!   differential-testing oracle for the compiler.
//!
//! The paper's `scap_set_filter` and `scap_add_cutoff_class` are built on
//! this crate.

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, Primitive, ProtoKind, Qual};
pub use bytecode::{BpfProgram, Instr};
pub use eval::{matches_key, matches_parsed};

/// Errors from parsing or compiling a filter expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// The lexer met a character it does not understand.
    Lex {
        /// Byte position of the offending character.
        pos: usize,
        /// Human-readable description.
        what: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Token index where parsing failed.
        pos: usize,
        /// Human-readable description.
        what: String,
    },
    /// The compiled program failed verification.
    Verify(String),
}

impl core::fmt::Display for FilterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FilterError::Lex { pos, what } => write!(f, "lex error at {pos}: {what}"),
            FilterError::Parse { pos, what } => write!(f, "parse error at {pos}: {what}"),
            FilterError::Verify(s) => write!(f, "verification failed: {s}"),
        }
    }
}

impl std::error::Error for FilterError {}

/// Parse a filter expression into an AST.
///
/// An empty (or all-whitespace) expression parses to the match-everything
/// filter, mirroring libpcap.
pub fn parse(expr: &str) -> Result<Expr, FilterError> {
    let tokens = lexer::lex(expr)?;
    parser::parse_tokens(&tokens)
}

/// A compiled filter: the AST (for flow-key matching) plus the verified
/// BPF program (for frame matching). The source expression is retained
/// so filters can be serialized into checkpoints and recompiled on
/// restore.
#[derive(Debug, Clone)]
pub struct Filter {
    source: String,
    expr: Expr,
    program: BpfProgram,
}

impl Filter {
    /// Parse and compile `expr`.
    pub fn new(expr: &str) -> Result<Self, FilterError> {
        let ast = parse(expr)?;
        let program = compile::compile(&ast)?;
        Ok(Filter {
            source: expr.to_string(),
            expr: ast,
            program,
        })
    }

    /// The match-everything filter.
    pub fn match_all() -> Self {
        Filter::new("").expect("empty filter always compiles")
    }

    /// The source expression this filter was compiled from (empty string
    /// for the match-everything filter). `Filter::new(f.source())`
    /// reproduces an equivalent filter.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Run the BPF program over a raw frame.
    pub fn matches_frame(&self, frame: &[u8]) -> bool {
        self.program.run(frame) != 0
    }

    /// Match a flow key directly (used for stream-class filters).
    pub fn matches_key(&self, key: &scap_wire::FlowKey) -> bool {
        eval::matches_key(&self.expr, key)
    }

    /// The underlying AST.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The compiled program.
    pub fn program(&self) -> &BpfProgram {
        &self.program
    }

    /// The union of two filters: matches whatever either matches.
    /// Used when multiple applications share one capture (§5.6 of the
    /// paper: "keeps streams that match at least one of the filters").
    pub fn union(&self, other: &Filter) -> Result<Filter, FilterError> {
        // Either side empty means match-all: the union is match-all too,
        // and keeping the source empty preserves that round-trip.
        let source = if self.source.trim().is_empty() || other.source.trim().is_empty() {
            String::new()
        } else {
            format!("({}) or ({})", self.source, other.source)
        };
        let expr = Expr::or(self.expr.clone(), other.expr.clone());
        let program = compile::compile(&expr)?;
        Ok(Filter {
            source,
            expr,
            program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{PacketBuilder, TcpFlags};

    fn http_frame() -> Vec<u8> {
        PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [192, 168, 1, 9],
            43210,
            80,
            1,
            1,
            TcpFlags::ACK,
            b"GET /",
        )
    }

    #[test]
    fn end_to_end_filter_matches() {
        let f = Filter::new("tcp and dst port 80").unwrap();
        assert!(f.matches_frame(&http_frame()));
        let f2 = Filter::new("udp").unwrap();
        assert!(!f2.matches_frame(&http_frame()));
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::match_all();
        assert!(f.matches_frame(&http_frame()));
        assert!(f.matches_frame(&PacketBuilder::udp_v4(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            b""
        )));
    }

    #[test]
    fn key_and_frame_matching_agree() {
        let f = Filter::new("src net 10.0.0.0/8 and port 80").unwrap();
        let frame = http_frame();
        let parsed = scap_wire::parse_frame(&frame).unwrap();
        assert_eq!(f.matches_frame(&frame), f.matches_key(&parsed.key.unwrap()));
    }

    #[test]
    fn parse_error_is_reported() {
        assert!(Filter::new("tcp and and").is_err());
        assert!(Filter::new("port notanumber").is_err());
    }
}
