//! Cross-crate integration: the full Scap pipeline — generator → NIC →
//! kernel module → reassembly → chunks → application — under both the
//! simulation driver and the live threaded driver, checked against
//! ground truth from the trace itself.

use scap::apps::{FlowStatsApp, PatternMatchApp};
use scap::{Scap, ScapConfig, ScapKernel, ScapSimStack, StreamCtx};
use scap_bench::common::{engine, oracle_engine};
use scap_patterns::{AhoCorasick, MatcherState};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::stats::TraceStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn workload(seed: u64) -> (Vec<scap_trace::Packet>, TraceStats, Vec<Vec<u8>>, u64) {
    let pats = scap_patterns::generate_web_attack_patterns(400, seed ^ 0xF00D);
    let trace = CampusMix::new(CampusMixConfig {
        patterns: Some(Arc::new(pats.clone())),
        pattern_prob: 0.5,
        ..CampusMixConfig::sized(seed, 6 << 20)
    })
    .collect_all();
    let stats = TraceStats::from_packets(trace.iter());

    // Ground-truth matches: scan each flow's payload bytes directly via
    // an order-preserving per-flow reassembly using the generator's
    // deterministic payload (we reuse the oracle engine instead: a run
    // with unbounded CPU and no drops).
    let ac = AhoCorasick::new(&pats, false);
    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }),
        PatternMatchApp::new(ac),
    );
    let truth = oracle_engine().run(trace.clone(), &mut stack).stats.matches;
    (trace, stats, pats, truth)
}

#[test]
fn sim_stack_accounts_for_every_packet_and_stream() {
    let (trace, stats, _pats, _truth) = workload(1);
    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }),
        FlowStatsApp::default(),
    );
    let report = engine().run(trace, &mut stack);
    assert_eq!(report.stats.wire_packets, stats.packets);
    assert_eq!(report.stats.dropped_packets, 0);
    // Every keyed flow of the trace is created and reported exactly once.
    assert_eq!(report.stats.streams_created, stats.flows);
    assert_eq!(report.stats.streams_reported, stats.flows);
    assert_eq!(stack.app().exported, stats.flows);
}

#[test]
fn live_and_sim_drivers_agree_on_matches() {
    let (trace, _stats, pats, truth) = workload(2);
    assert!(truth > 0, "workload must contain matches");

    // Simulation driver with unlimited CPU found `truth` matches; the
    // live threaded driver must find exactly the same.
    let ac = Arc::new(AhoCorasick::new(&pats, false));
    let found = Arc::new(AtomicU64::new(0));
    let states: Arc<std::sync::Mutex<std::collections::HashMap<(u64, u8), MatcherState>>> =
        Arc::new(std::sync::Mutex::new(Default::default()));

    let mut scap = Scap::builder()
        .worker_threads(4)
        .inactivity_timeout_ns(500_000_000)
        .try_build()
        .unwrap();
    {
        let ac = ac.clone();
        let found = found.clone();
        let states = states.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            let (Some(data), Some(dir)) = (ctx.data, ctx.dir) else {
                return;
            };
            let key = (ctx.stream.uid, dir.index() as u8);
            let mut st = states.lock().unwrap().remove(&key).unwrap_or_default();
            found.fetch_add(ac.count(&mut st, data), Ordering::Relaxed);
            states.lock().unwrap().insert(key, st);
        });
    }
    scap.start_capture(trace);
    assert_eq!(found.load(Ordering::Relaxed), truth);
}

#[test]
fn live_driver_reassembles_exact_payload_bytes() {
    // A trace with retransmissions, reordering and overlaps: duplicates
    // must be suppressed, reorder fixed, and the live threaded driver
    // must deliver byte-for-byte what the budget-free simulation driver
    // delivers from the same packets.
    let trace = CampusMix::new(CampusMixConfig {
        retrans_prob: 0.05,
        reorder_prob: 0.05,
        overlap_prob: 0.02,
        ..CampusMixConfig::sized(3, 2 << 20)
    })
    .collect_all();

    // Reference: the oracle simulation run.
    use scap::apps::StreamTouchApp;
    let mut sim = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }),
        StreamTouchApp::default(),
    );
    let sim_rep = oracle_engine().run(trace.clone(), &mut sim);
    assert_eq!(sim_rep.stats.dropped_packets, 0);
    let sim_bytes = sim.app().bytes;
    // Duplicates were suppressed: the wire carried more payload than the
    // streams contain (retransmissions and overlaps).
    assert!(sim_rep.stats.discarded_packets > 0);

    // Live threaded driver on the same packets.
    let delivered = Arc::new(AtomicU64::new(0));
    let mut scap = Scap::builder()
        .worker_threads(2)
        .inactivity_timeout_ns(500_000_000)
        .try_build()
        .unwrap();
    {
        let delivered = delivered.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            delivered.fetch_add(ctx.data.map_or(0, |d| d.len() as u64), Ordering::Relaxed);
        });
    }
    let stats = scap.start_capture(trace);
    assert_eq!(stats.stack.dropped_packets, 0);
    assert_eq!(delivered.load(Ordering::Relaxed), sim_bytes);
}

#[test]
fn strict_and_fast_modes_agree_without_loss() {
    use scap::ReassemblyMode;
    let (trace, _stats, pats, truth) = workload(4);
    let ac = AhoCorasick::new(&pats, false);
    for mode in [ReassemblyMode::Fast, ReassemblyMode::Strict] {
        let mut stack = ScapSimStack::new(
            ScapKernel::new(ScapConfig {
                reassembly_mode: mode,
                inactivity_timeout_ns: 500_000_000,
                ..ScapConfig::default()
            }),
            PatternMatchApp::new(ac.clone()),
        );
        let report = oracle_engine().run(trace.clone(), &mut stack);
        assert_eq!(
            report.stats.matches, truth,
            "mode {mode:?} diverged from ground truth"
        );
    }
}

#[test]
fn keep_chunk_merges_into_next_delivery() {
    use scap::{ControlOp, Direction, EventKind};
    use scap_wire::{PacketBuilder, TcpFlags};
    // Drive the kernel directly so the keep-chunk control round-trip is
    // deterministic (in the threaded driver it is asynchronous).
    let c = [10, 0, 0, 9];
    let s = [10, 0, 0, 10];
    let mut kernel = ScapKernel::new(ScapConfig {
        chunk_size: 1024,
        ..ScapConfig::default()
    });
    let mut now = 0u64;
    let mut feed = |kernel: &mut ScapKernel, frame: Vec<u8>| {
        now += 1_000_000;
        kernel.nic_receive(&scap_trace::Packet::new(now, frame));
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
        }
    };
    feed(
        &mut kernel,
        PacketBuilder::tcp_v4(c, s, 7, 80, 100, 0, TcpFlags::SYN, b""),
    );
    feed(
        &mut kernel,
        PacketBuilder::tcp_v4(s, c, 80, 7, 500, 101, TcpFlags::SYN | TcpFlags::ACK, b""),
    );
    // First 1 KB chunk completes.
    feed(
        &mut kernel,
        PacketBuilder::tcp_v4(c, s, 7, 80, 101, 501, TcpFlags::ACK, &[b'a'; 1024]),
    );

    let next_data = |kernel: &mut ScapKernel| -> Option<scap::Event> {
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                if matches!(ev.kind, EventKind::Data { .. }) {
                    return Some(ev);
                }
                if let EventKind::Data { chunk, dir, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        None
    };

    let ev1 = next_data(&mut kernel).expect("first chunk");
    let uid = ev1.stream.uid;
    let EventKind::Data { chunk, dir, .. } = ev1.kind else {
        unreachable!()
    };
    assert_eq!(chunk.len, 1024);
    assert_eq!(chunk.start_offset, 0);
    assert_eq!(dir, ev1.stream.first_dir);
    // scap_keep_stream_chunk + chunk return.
    kernel.control(ControlOp::KeepChunk(uid, dir));
    kernel.release_data(uid, dir, chunk);

    // Second 1 KB of data: its completed chunk must come out merged.
    feed(
        &mut kernel,
        PacketBuilder::tcp_v4(c, s, 7, 80, 1125, 501, TcpFlags::ACK, &[b'b'; 1024]),
    );
    let ev2 = next_data(&mut kernel).expect("merged chunk");
    let EventKind::Data { chunk, .. } = ev2.kind else {
        unreachable!()
    };
    assert_eq!(
        chunk.start_offset, 0,
        "merged chunk restarts at the kept offset"
    );
    assert_eq!(chunk.len, 2048, "kept + next chunk");
    assert_eq!(&chunk.bytes()[..1024], &[b'a'; 1024][..]);
    assert_eq!(&chunk.bytes()[1024..], &[b'b'; 1024][..]);
    let _ = Direction::Forward;
}
