//! Tokenizer for the filter expression language.

use crate::FilterError;

/// A lexical token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Byte offset in the source expression.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A bare word: keyword or identifier.
    Word(String),
    /// An unsigned integer literal.
    Number(u64),
    /// A dotted-quad IPv4 literal.
    Ipv4([u8; 4]),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `/` (prefix-length separator)
    Slash,
    /// `-` (port-range separator)
    Dash,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

/// Tokenize a filter expression.
pub fn lex(src: &str) -> Result<Vec<Token>, FilterError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            b'/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    pos: i,
                });
                i += 1;
            }
            b'-' => {
                out.push(Token {
                    kind: TokenKind::Dash,
                    pos: i,
                });
                i += 1;
            }
            b'!' => {
                out.push(Token {
                    kind: TokenKind::Bang,
                    pos: i,
                });
                i += 1;
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token {
                        kind: TokenKind::AndAnd,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(FilterError::Lex {
                        pos: i,
                        what: "single '&' (did you mean '&&' or 'and'?)".into(),
                    });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token {
                        kind: TokenKind::OrOr,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(FilterError::Lex {
                        pos: i,
                        what: "single '|' (did you mean '||' or 'or'?)".into(),
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                if text.contains('.') {
                    out.push(Token {
                        kind: TokenKind::Ipv4(parse_ipv4(text, start)?),
                        pos: start,
                    });
                } else {
                    let n = text.parse::<u64>().map_err(|_| FilterError::Lex {
                        pos: start,
                        what: format!("bad number '{text}'"),
                    })?;
                    out.push(Token {
                        kind: TokenKind::Number(n),
                        pos: start,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Word(src[start..i].to_ascii_lowercase()),
                    pos: start,
                });
            }
            other => {
                return Err(FilterError::Lex {
                    pos: i,
                    what: format!("unexpected character '{}'", other as char),
                })
            }
        }
    }
    Ok(out)
}

fn parse_ipv4(text: &str, pos: usize) -> Result<[u8; 4], FilterError> {
    let mut parts = [0u8; 4];
    let mut n = 0;
    for piece in text.split('.') {
        if n >= 4 {
            return Err(FilterError::Lex {
                pos,
                what: format!("bad IPv4 address '{text}'"),
            });
        }
        parts[n] = piece.parse::<u8>().map_err(|_| FilterError::Lex {
            pos,
            what: format!("bad IPv4 octet in '{text}'"),
        })?;
        n += 1;
    }
    if n != 4 {
        return Err(FilterError::Lex {
            pos,
            what: format!("bad IPv4 address '{text}'"),
        });
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_numbers() {
        assert_eq!(
            kinds("tcp port 80"),
            vec![
                TokenKind::Word("tcp".into()),
                TokenKind::Word("port".into()),
                TokenKind::Number(80),
            ]
        );
    }

    #[test]
    fn ipv4_literals() {
        assert_eq!(
            kinds("host 10.0.0.255"),
            vec![
                TokenKind::Word("host".into()),
                TokenKind::Ipv4([10, 0, 0, 255]),
            ]
        );
    }

    #[test]
    fn operators_and_parens() {
        assert_eq!(
            kinds("(a && b) || !c"),
            vec![
                TokenKind::LParen,
                TokenKind::Word("a".into()),
                TokenKind::AndAnd,
                TokenKind::Word("b".into()),
                TokenKind::RParen,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Word("c".into()),
            ]
        );
    }

    #[test]
    fn net_with_prefix() {
        assert_eq!(
            kinds("net 10.0.0.0/8"),
            vec![
                TokenKind::Word("net".into()),
                TokenKind::Ipv4([10, 0, 0, 0]),
                TokenKind::Slash,
                TokenKind::Number(8),
            ]
        );
    }

    #[test]
    fn case_is_folded() {
        assert_eq!(kinds("TCP"), vec![TokenKind::Word("tcp".into())]);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(lex("tcp @ udp").is_err());
        assert!(lex("host 300.1.1.1").is_err());
        assert!(lex("host 1.2.3").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("host 1.2.3.4.5").is_err());
    }

    #[test]
    fn positions_recorded() {
        let toks = lex("tcp port 80").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 4);
        assert_eq!(toks[2].pos, 9);
    }
}
