#![warn(missing_docs)]

//! # scap-shard
//!
//! Scale-out sharding primitives for a supervised capture fleet: the
//! leaf mechanisms the `scap::shard` supervisor composes into a
//! fault-tolerant multi-shard capture.
//!
//! * [`ShardMap`] — RSS-consistent partitioning: a flow key is hashed
//!   with the same symmetric Toeplitz-style hash the fast path and the
//!   flow table use ([`scap_fastpath::hash_key`]), so **both directions
//!   of a flow land on the same shard** for any shard count ≥ 1, and a
//!   shard's partition is a pure function of `(seed, nshards)`.
//! * [`Lease`] — a per-shard heartbeat lease with deadline detection:
//!   the supervisor beats the lease on every observed unit of progress
//!   and declares the shard stalled when work is pending and the lease
//!   age passes the deadline.
//! * [`Backoff`] — exponential backoff with deterministic, seeded
//!   jitter and a hard cap. The same policy paces shard respawns and
//!   the kernel's FDIR install retries.
//! * [`CircuitBreaker`] — M failures inside a sliding window trips the
//!   breaker; the supervisor then parks the shard (or stops respawning
//!   a worker slot) instead of thrashing forever.
//!
//! Everything here is deterministic: no wall clock, no global RNG.
//! Timestamps are the caller's (virtual) clock and jitter derives from
//! [`scap_wire::splitmix64`] over caller-provided tokens, so a seeded
//! run schedules byte-identical respawns.

use scap_wire::{splitmix64, FlowKey};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/// RSS-consistent symmetric partitioning of flows onto shards.
///
/// `shard_of(key) == shard_of(key.reversed())` for every key, because
/// the underlying hash is computed over the canonical (direction
/// normalized) key — the property NIC RSS needs symmetric Toeplitz
/// keys for, inherited here from `FlowKey::sym_hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nshards: usize,
    seed: u64,
}

impl ShardMap {
    /// A map over `nshards` shards (clamped to ≥ 1) with the given
    /// hash seed. The seed must match across restarts for partitions
    /// to remain stable.
    pub fn new(nshards: usize, seed: u64) -> Self {
        ShardMap {
            nshards: nshards.max(1),
            seed,
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `key` (either direction maps identically).
    pub fn shard_of(&self, key: &FlowKey) -> usize {
        let hashed = scap_fastpath::hash_key(self.seed, key);
        self.shard_of_hash(hashed.hash)
    }

    /// The shard owning a pre-computed symmetric hash.
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        // Multiply-shift reduction keeps all 64 hash bits in play
        // (plain modulo would only use the low bits' entropy).
        ((u128::from(hash) * self.nshards as u128) >> 64) as usize
    }
}

// ---------------------------------------------------------------------------
// Heartbeat leases
// ---------------------------------------------------------------------------

/// A per-shard heartbeat lease. The supervisor beats it on every unit
/// of observed progress; [`Lease::expired`] reports a deadline miss
/// only while work is pending (an idle shard never expires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    deadline_ns: u64,
    last_beat_ns: u64,
    /// Offers made to the shard since the last beat — pending work.
    pending: u64,
}

impl Lease {
    /// A fresh lease with the given deadline, anchored at `now_ns`.
    pub fn new(deadline_ns: u64, now_ns: u64) -> Self {
        Lease {
            deadline_ns: deadline_ns.max(1),
            last_beat_ns: now_ns,
            pending: 0,
        }
    }

    /// Record progress: the shard processed work at `now_ns`.
    pub fn beat(&mut self, now_ns: u64) {
        self.last_beat_ns = self.last_beat_ns.max(now_ns);
        self.pending = 0;
    }

    /// Record an offer the shard has not yet acknowledged.
    pub fn offered(&mut self) {
        self.pending += 1;
    }

    /// Age of the lease at `now_ns`.
    pub fn age(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.last_beat_ns)
    }

    /// Work offered since the last beat.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Deadline miss: work is pending and the lease age passed the
    /// deadline.
    pub fn expired(&self, now_ns: u64) -> bool {
        self.pending > 0 && self.age(now_ns) > self.deadline_ns
    }
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Exponential backoff with deterministic jitter and a hard cap.
///
/// The raw schedule is `base << attempt`, capped at `cap`; up to 25%
/// of the raw delay is added as jitter derived from
/// `splitmix64(seed ^ token ^ attempt)`, so concurrent retriers with
/// distinct tokens de-synchronize while a seeded run stays
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First delay, in nanoseconds.
    pub base_ns: u64,
    /// Hard ceiling on any single delay (jitter included).
    pub cap_ns: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Backoff {
    /// A policy with the given base and cap (cap clamped to ≥ base).
    pub fn new(base_ns: u64, cap_ns: u64, seed: u64) -> Self {
        Backoff {
            base_ns: base_ns.max(1),
            cap_ns: cap_ns.max(base_ns.max(1)),
            seed,
        }
    }

    /// The delay before retry number `attempt` (0-based) for the
    /// retrier identified by `token` (a shard index, stream uid, …).
    pub fn delay_ns(&self, attempt: u32, token: u64) -> u64 {
        let raw = self
            .base_ns
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ns);
        let jitter_span = raw / 4 + 1;
        let jitter = splitmix64(self.seed ^ token ^ u64::from(attempt)) % jitter_span;
        raw.saturating_add(jitter).min(self.cap_ns)
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// M-failures-in-a-window circuit breaker.
///
/// Failures are recorded with the caller's clock; when `threshold`
/// failures land inside `window_ns`, the breaker trips and stays
/// tripped (the supervisor parks the shard — there is no half-open
/// probing state, recovery is an operator decision).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    window_ns: u64,
    failures: VecDeque<u64>,
    tripped: bool,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` failures inside
    /// `window_ns` (threshold clamped to ≥ 1).
    pub fn new(threshold: u32, window_ns: u64) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            window_ns: window_ns.max(1),
            failures: VecDeque::new(),
            tripped: false,
        }
    }

    /// Record a failure at `now_ns`; returns `true` when this failure
    /// trips the breaker (exactly once — later failures on a tripped
    /// breaker return `false`).
    pub fn record_failure(&mut self, now_ns: u64) -> bool {
        if self.tripped {
            return false;
        }
        self.failures.push_back(now_ns);
        while let Some(&t) = self.failures.front() {
            if now_ns.saturating_sub(t) > self.window_ns {
                self.failures.pop_front();
            } else {
                break;
            }
        }
        if self.failures.len() >= self.threshold as usize {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Is the breaker tripped?
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Failures currently inside the window.
    pub fn failures_in_window(&self) -> u32 {
        self.failures.len() as u32
    }
}

// ---------------------------------------------------------------------------
// Shard state
// ---------------------------------------------------------------------------

/// Lifecycle state of one shard under supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Running and holding its lease.
    Up,
    /// Killed (crash or stall takedown); waiting out its backoff
    /// before the supervisor respawns it from a checkpoint.
    Respawning,
    /// Circuit breaker tripped: no further respawns; the partition's
    /// loss is accounted until the capture ends.
    Parked,
}

impl ShardState {
    /// Stable lowercase name (status tables, CSV columns).
    pub const fn name(self) -> &'static str {
        match self {
            ShardState::Up => "up",
            ShardState::Respawning => "respawning",
            ShardState::Parked => "parked",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{FlowKey, Transport};

    fn key(a: u8, b: u8, pa: u16, pb: u16) -> FlowKey {
        FlowKey::new_v4([10, 0, 0, a], [10, 0, 0, b], pa, pb, Transport::Tcp)
    }

    #[test]
    fn partitioning_is_direction_symmetric() {
        let map = ShardMap::new(7, 0xABCD);
        for i in 0..200u8 {
            let k = key(i, i.wrapping_add(1), 1000 + u16::from(i), 80);
            assert_eq!(map.shard_of(&k), map.shard_of(&k.reversed()));
        }
    }

    #[test]
    fn partitioning_covers_all_shards_and_is_stable() {
        let map = ShardMap::new(8, 42);
        let again = ShardMap::new(8, 42);
        let mut seen = [false; 8];
        for i in 0..255u8 {
            let k = key(i, 1, 40_000 + u16::from(i), 443);
            let s = map.shard_of(&k);
            assert!(s < 8);
            assert_eq!(s, again.shard_of(&k), "same map, same shard");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "255 flows must touch all 8 shards");
    }

    #[test]
    fn single_shard_takes_everything() {
        let map = ShardMap::new(1, 7);
        for i in 0..50u8 {
            assert_eq!(map.shard_of(&key(i, 2, 1, 2)), 0);
        }
    }

    #[test]
    fn lease_expires_only_with_pending_work() {
        let mut l = Lease::new(1_000, 0);
        // Idle forever: never expired.
        assert!(!l.expired(1_000_000));
        l.offered();
        assert!(!l.expired(500));
        assert!(l.expired(1_001));
        l.beat(1_200);
        assert!(!l.expired(2_000));
        assert_eq!(l.pending(), 0);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let b = Backoff::new(1_000, 64_000, 9);
        let d0 = b.delay_ns(0, 3);
        let d3 = b.delay_ns(3, 3);
        assert!((1_000..=1_250).contains(&d0));
        assert!((8_000..=10_000).contains(&d3));
        assert_eq!(d3, Backoff::new(1_000, 64_000, 9).delay_ns(3, 3));
        for a in 0..30 {
            assert!(b.delay_ns(a, 1) <= 64_000, "cap must hold at attempt {a}");
        }
        // Distinct tokens de-synchronize.
        assert_ne!(b.delay_ns(2, 1), b.delay_ns(2, 2));
    }

    #[test]
    fn breaker_trips_on_threshold_inside_window() {
        let mut cb = CircuitBreaker::new(3, 1_000);
        assert!(!cb.record_failure(0));
        assert!(!cb.record_failure(100));
        assert!(cb.record_failure(200), "third failure in window trips");
        assert!(cb.is_tripped());
        assert!(!cb.record_failure(300), "trips only once");
    }

    #[test]
    fn breaker_forgets_failures_outside_the_window() {
        let mut cb = CircuitBreaker::new(3, 1_000);
        assert!(!cb.record_failure(0));
        assert!(!cb.record_failure(100));
        // The first two fall out of the window before the third lands.
        assert!(!cb.record_failure(5_000));
        assert!(!cb.is_tripped());
        assert_eq!(cb.failures_in_window(), 1);
    }

    #[test]
    fn shard_state_names_are_stable() {
        assert_eq!(ShardState::Up.name(), "up");
        assert_eq!(ShardState::Respawning.name(), "respawning");
        assert_eq!(ShardState::Parked.name(), "parked");
    }
}
