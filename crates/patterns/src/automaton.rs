//! The Aho–Corasick automaton.
//!
//! Construction is the textbook three-step build:
//!
//! 1. insert every pattern into a trie;
//! 2. compute failure links breadth-first;
//! 3. flatten goto+failure into a dense DFA transition table
//!    (`states × 256`), so scanning is branch-free.
//!
//! Output sets are shared via per-state output lists built from the
//! pattern terminals plus the outputs reachable through failure links.

/// A single match: which pattern ended where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern in the set given to [`AhoCorasick::new`].
    pub pattern: u32,
    /// Byte offset *one past* the last byte of the match, relative to the
    /// start of the scanned buffer (or stream position when streaming).
    pub end: u64,
}

/// Opaque streaming state: the current DFA state plus the running stream
/// offset. Persist it between chunks of the same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatcherState {
    state: u32,
    offset: u64,
}

impl MatcherState {
    /// Fresh state at stream offset zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The absolute stream offset consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// A compiled multi-pattern matcher.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense transition table: `trans[state * 256 + byte]`.
    trans: Vec<u32>,
    /// Per-state output lists (pattern ids ending at this state).
    outputs: Vec<Vec<u32>>,
    /// Number of states.
    state_count: usize,
    /// Case folding applied to both patterns and input.
    case_insensitive: bool,
    /// Number of patterns compiled in.
    pattern_count: usize,
}

#[inline]
fn fold(b: u8, ci: bool) -> u8 {
    if ci {
        b.to_ascii_lowercase()
    } else {
        b
    }
}

impl AhoCorasick {
    /// Compile a pattern set. Empty patterns are ignored (they would match
    /// everywhere). With `case_insensitive`, ASCII case is folded on both
    /// sides, matching Snort's `nocase` modifier.
    pub fn new(patterns: &[Vec<u8>], case_insensitive: bool) -> Self {
        // Step 1: trie with per-node sparse children.
        struct Node {
            children: Vec<(u8, u32)>,
            fail: u32,
            out: Vec<u32>,
        }
        let mut nodes: Vec<Node> = vec![Node {
            children: Vec::new(),
            fail: 0,
            out: Vec::new(),
        }];

        for (pid, pat) in patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &raw in pat {
                let b = fold(raw, case_insensitive);
                let found = nodes[cur as usize]
                    .children
                    .iter()
                    .find(|(cb, _)| *cb == b)
                    .map(|(_, n)| *n);
                cur = match found {
                    Some(n) => n,
                    None => {
                        let id = nodes.len() as u32;
                        nodes.push(Node {
                            children: Vec::new(),
                            fail: 0,
                            out: Vec::new(),
                        });
                        nodes[cur as usize].children.push((b, id));
                        id
                    }
                };
            }
            nodes[cur as usize].out.push(pid as u32);
        }

        // Step 2: failure links, breadth-first.
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].children.clone();
        for (_, child) in &root_children {
            nodes[*child as usize].fail = 0;
            queue.push_back(*child);
        }
        while let Some(u) = queue.pop_front() {
            let children = nodes[u as usize].children.clone();
            for (b, v) in children {
                // Walk failure links of u until a node with a b-child.
                let mut f = nodes[u as usize].fail;
                let fail_of_v = loop {
                    if let Some((_, n)) = nodes[f as usize].children.iter().find(|(cb, _)| *cb == b)
                    {
                        if *n != v {
                            break *n;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[v as usize].fail = fail_of_v;
                let inherited = nodes[fail_of_v as usize].out.clone();
                nodes[v as usize].out.extend(inherited);
                queue.push_back(v);
            }
        }

        // Step 3: dense DFA. delta(s, b) = goto(s, b) if present, else
        // delta(fail(s), b); computed in BFS order so parents are done first.
        let n = nodes.len();
        let mut trans = vec![0u32; n * 256];
        // Root row.
        for (b, child) in &nodes[0].children {
            trans[*b as usize] = *child;
        }
        let mut queue = std::collections::VecDeque::new();
        for (_, child) in &root_children {
            queue.push_back(*child);
        }
        let mut visited = vec![false; n];
        visited[0] = true;
        while let Some(u) = queue.pop_front() {
            if visited[u as usize] {
                continue;
            }
            visited[u as usize] = true;
            let fail = nodes[u as usize].fail;
            // Start from the failure state's row, then overlay gotos.
            let (fail_row_start, u_row_start) = (fail as usize * 256, u as usize * 256);
            for b in 0..256 {
                trans[u_row_start + b] = trans[fail_row_start + b];
            }
            for &(b, child) in &nodes[u as usize].children {
                trans[u_row_start + b as usize] = child;
                queue.push_back(child);
            }
        }

        AhoCorasick {
            trans,
            outputs: nodes.into_iter().map(|nd| nd.out).collect(),
            state_count: n,
            case_insensitive,
            pattern_count: patterns.iter().filter(|p| !p.is_empty()).count(),
        }
    }

    /// Number of DFA states (memory/cost metric).
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of (non-empty) patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Approximate size of the transition table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.trans.len() * core::mem::size_of::<u32>()
    }

    /// Scan `data`, advancing `state`, invoking `on_match` for every match.
    ///
    /// This is the streaming entry point: call repeatedly with consecutive
    /// chunks of one stream, reusing the same `state`.
    pub fn scan<F: FnMut(Match)>(&self, state: &mut MatcherState, data: &[u8], mut on_match: F) {
        let mut s = state.state as usize;
        let ci = self.case_insensitive;
        for (i, &raw) in data.iter().enumerate() {
            let b = fold(raw, ci);
            s = self.trans[s * 256 + b as usize] as usize;
            let outs = &self.outputs[s];
            if !outs.is_empty() {
                let end = state.offset + i as u64 + 1;
                for &pid in outs {
                    on_match(Match { pattern: pid, end });
                }
            }
        }
        state.state = s as u32;
        state.offset += data.len() as u64;
    }

    /// Count matches in `data` without materializing them (the hot path
    /// for the benchmark harness).
    pub fn count(&self, state: &mut MatcherState, data: &[u8]) -> u64 {
        let mut n = 0u64;
        let mut s = state.state as usize;
        let ci = self.case_insensitive;
        for &raw in data {
            let b = fold(raw, ci);
            s = self.trans[s * 256 + b as usize] as usize;
            n += self.outputs[s].len() as u64;
        }
        state.state = s as u32;
        state.offset += data.len() as u64;
        n
    }

    /// One-shot convenience: all matches in a standalone buffer.
    pub fn find_all(&self, data: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut st = MatcherState::new();
        self.scan(&mut st, data, |m| out.push(m));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pats(v: &[&str]) -> Vec<Vec<u8>> {
        v.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn classic_ushers() {
        let ac = AhoCorasick::new(&pats(&["he", "she", "his", "hers"]), false);
        let m = ac.find_all(b"ushers");
        let got: Vec<(u32, u64)> = m.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(got.contains(&(1, 4))); // she
        assert!(got.contains(&(0, 4))); // he
        assert!(got.contains(&(3, 6))); // hers
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn overlapping_matches_all_reported() {
        let ac = AhoCorasick::new(&pats(&["aa"]), false);
        let m = ac.find_all(b"aaaa");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn streaming_across_chunk_boundary() {
        let ac = AhoCorasick::new(&pats(&["attack-string"]), false);
        let data = b"xxattack-stringyy";
        for split in 0..data.len() {
            let mut st = MatcherState::new();
            let mut found = Vec::new();
            ac.scan(&mut st, &data[..split], |m| found.push(m));
            ac.scan(&mut st, &data[split..], |m| found.push(m));
            assert_eq!(found.len(), 1, "split at {split}");
            assert_eq!(found[0].end, 15);
        }
    }

    #[test]
    fn case_insensitive_matches_both_cases() {
        let ac = AhoCorasick::new(&pats(&["SELECT"]), true);
        assert_eq!(ac.find_all(b"select * from").len(), 1);
        assert_eq!(ac.find_all(b"SeLeCt").len(), 1);
        let cs = AhoCorasick::new(&pats(&["SELECT"]), false);
        assert_eq!(cs.find_all(b"select").len(), 0);
    }

    #[test]
    fn empty_patterns_ignored() {
        let ac = AhoCorasick::new(&pats(&["", "x"]), false);
        assert_eq!(ac.pattern_count(), 1);
        assert_eq!(ac.find_all(b"xx").len(), 2);
    }

    #[test]
    fn count_agrees_with_scan() {
        let ac = AhoCorasick::new(&pats(&["ab", "bc", "abc"]), false);
        let data = b"zabcabcz";
        let mut s1 = MatcherState::new();
        let mut s2 = MatcherState::new();
        let n = ac.count(&mut s1, data);
        assert_eq!(n, ac.find_all(data).len() as u64);
        let mut k = 0;
        ac.scan(&mut s2, data, |_| k += 1);
        assert_eq!(n, k);
    }

    #[test]
    fn binary_patterns_work() {
        let ac = AhoCorasick::new(&[vec![0x00, 0xFF, 0x00], vec![0x90, 0x90, 0x90]], false);
        let data = [0x41, 0x00, 0xFF, 0x00, 0x90, 0x90, 0x90, 0x41];
        assert_eq!(ac.find_all(&data).len(), 2);
    }

    #[test]
    fn offsets_accumulate_across_chunks() {
        let ac = AhoCorasick::new(&pats(&["z"]), false);
        let mut st = MatcherState::new();
        let mut ends = Vec::new();
        ac.scan(&mut st, b"az", |m| ends.push(m.end));
        ac.scan(&mut st, b"bz", |m| ends.push(m.end));
        assert_eq!(ends, vec![2, 4]);
        assert_eq!(st.offset(), 4);
    }

    /// Naive oracle for differential testing.
    fn naive_count(patterns: &[Vec<u8>], data: &[u8]) -> u64 {
        let mut n = 0;
        for p in patterns.iter().filter(|p| !p.is_empty()) {
            if p.len() > data.len() {
                continue;
            }
            for w in data.windows(p.len()) {
                if w == &p[..] {
                    n += 1;
                }
            }
        }
        n
    }

    proptest! {
        /// DFA agrees with the naive windowed scan on random inputs,
        /// including when the input is split into chunks.
        #[test]
        fn agrees_with_naive(
            patterns in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 1..5), 1..6),
            data in proptest::collection::vec(0u8..4, 0..100),
            split in 0usize..100,
        ) {
            let ac = AhoCorasick::new(&patterns, false);
            let mut st = MatcherState::new();
            let cut = split.min(data.len());
            let n = ac.count(&mut st, &data[..cut]) + ac.count(&mut st, &data[cut..]);
            prop_assert_eq!(n, naive_count(&patterns, &data));
        }
    }
}
