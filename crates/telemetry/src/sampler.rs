//! Periodic gauge sampling into bounded in-memory time-series rings.
//!
//! The sampler never reads a clock: the caller passes `now` — virtual
//! time under simulation, trace time live — so a seeded run produces a
//! byte-identical series.

use crate::Gauge;
use std::collections::VecDeque;

/// One sampled row: a timestamp plus every gauge value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePoint {
    /// Caller-supplied timestamp (virtual or trace nanoseconds).
    pub t_ns: u64,
    /// Gauge values in [`Gauge::ALL`] order.
    pub gauges: [u64; Gauge::COUNT],
}

/// A bounded time-series ring of gauge samples.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval_ns: u64,
    cap: usize,
    next_due_ns: Option<u64>,
    points: VecDeque<SamplePoint>,
    /// Points evicted because the ring was full (oldest-first).
    pub evicted: u64,
}

impl Sampler {
    /// A sampler taking one row every `interval_ns`, keeping at most
    /// `cap` rows (oldest rows are evicted, and counted).
    pub fn new(interval_ns: u64, cap: usize) -> Self {
        Sampler {
            interval_ns: interval_ns.max(1),
            cap: cap.max(1),
            next_due_ns: None,
            points: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Whether a sample is due at `now` (always true for the first call).
    #[inline]
    pub fn due(&self, now_ns: u64) -> bool {
        match self.next_due_ns {
            None => true,
            Some(due) => now_ns >= due,
        }
    }

    /// Record one row and schedule the next due time.
    pub fn record(&mut self, now_ns: u64, gauges: [u64; Gauge::COUNT]) {
        self.next_due_ns = Some(now_ns.saturating_add(self.interval_ns));
        if self.points.len() == self.cap {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back(SamplePoint {
            t_ns: now_ns,
            gauges,
        });
    }

    /// The retained rows, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SamplePoint> {
        self.points.iter()
    }

    /// Number of retained rows.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sampling interval in force.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_and_bound() {
        let mut s = Sampler::new(10, 3);
        assert!(s.due(0));
        s.record(0, [0; Gauge::COUNT]);
        assert!(!s.due(9));
        assert!(s.due(10));
        for t in [10u64, 20, 30, 40] {
            s.record(t, [t; Gauge::COUNT]);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted, 2);
        let ts: Vec<u64> = s.points().map(|p| p.t_ns).collect();
        assert_eq!(ts, vec![20, 30, 40]);
        assert!(!s.is_empty());
        assert_eq!(s.interval_ns(), 10);
    }
}
