//! One function per figure/table of the paper's evaluation.
//!
//! Each function regenerates the corresponding series from the
//! reproduction's stacks and returns [`FigureResult`]s (one per subplot).
//! The `experiments` binary writes them to `results/` and prints them.

use crate::common::*;
use scap::apps::PatternMatchApp;
use scap::{ScapKernel, ScapSimStack};
use scap_baseline::apps::{FlowExportApp, PatternScanApp, TouchApp};
use scap_baseline::UserStack;
use scap_filter::Filter;
use scap_sim::CacheSim;
use scap_trace::concurrent::ConcurrentStreams;
use scap_trace::replay::RateReplay;

/// §6.1 — the trace-description table.
pub fn trace_stats(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = campus_workload(cfg);
    let s = &wl.stats;
    let rows = vec![
        vec!["packets".into(), s.packets.to_string()],
        vec!["flows".into(), s.flows.to_string()],
        vec!["tcp flows".into(), s.tcp_flows.to_string()],
        vec!["total bytes".into(), s.total_bytes.to_string()],
        vec!["tcp traffic %".into(), f1(s.tcp_byte_percent())],
        vec!["mean packet size B".into(), f1(s.mean_packet_size())],
        vec!["duration s".into(), f2(s.duration_secs())],
        vec!["natural rate Mbit/s".into(), f1(wl.natural_bps / 1e6)],
    ];
    vec![FigureResult {
        name: "trace_stats".into(),
        headers: vec!["property".into(), "value".into()],
        rows,
        notes: vec![
            "paper trace: 58,714,906 pkts, 1,493,032 flows, >46 GB, 95.4% TCP".into(),
            format!("reproduction scale: {}", cfg.scale.name),
        ],
    }]
}

/// Fig. 3 — flow-statistics export: drop %, CPU %, softirq % vs. rate for
/// YAF / Libnids / Scap without FDIR / Scap with FDIR.
pub fn fig3(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = campus_workload(cfg);
    let eng = engine();
    let mut drop_rows = Vec::new();
    let mut cpu_rows = Vec::new();
    let mut sirq_rows = Vec::new();
    let mut notes = Vec::new();

    for &gbps in &cfg.scale.rates_gbps {
        let mut drops = vec![format!("{gbps:.2}")];
        let mut cpus = vec![format!("{gbps:.2}")];
        let mut sirqs = vec![format!("{gbps:.2}")];

        // YAF and Libnids.
        for base in [yaf_cfg(cfg), libnids_cfg(cfg)] {
            let (rep, _s) = run_baseline(&eng, base, FlowExportApp::default(), wl.at_rate(gbps));
            drops.push(f1(rep.stats.drop_percent()));
            cpus.push(f1(rep.user_cpu_percent()));
            sirqs.push(f1(rep.softirq_percent()));
        }
        // Scap, cutoff 0, without and with FDIR.
        for use_fdir in [false, true] {
            let mut sc = scap_config(cfg);
            sc.cutoff.default = Some(0);
            sc.use_fdir = use_fdir;
            let (rep, stack) = run_scap(&eng, sc, flow_stats_app(), wl.at_rate(gbps));
            drops.push(f1(rep.stats.drop_percent()));
            cpus.push(f1(rep.user_cpu_percent()));
            sirqs.push(f1(rep.softirq_percent()));
            if use_fdir && (gbps - 6.0).abs() < 0.01 {
                let s = stack.kernel().stats();
                let to_mem = s.stack.wire_packets - s.stack.nic_filtered_packets;
                notes.push(format!(
                    "§6.2 headline: Scap+FDIR brings {:.1}% of packets into memory at 6 Gbit/s (paper: ~3%)",
                    100.0 * to_mem as f64 / s.stack.wire_packets as f64
                ));
            }
        }
        drop_rows.push(drops);
        cpu_rows.push(cpus);
        sirq_rows.push(sirqs);
    }

    let headers: Vec<String> = ["rate_gbps", "yaf", "libnids", "scap", "scap_fdir"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    vec![
        FigureResult {
            name: "fig3a_drops".into(),
            headers: headers.clone(),
            rows: drop_rows,
            notes: notes.clone(),
        },
        FigureResult {
            name: "fig3b_cpu".into(),
            headers: headers.clone(),
            rows: cpu_rows,
            notes: vec![],
        },
        FigureResult {
            name: "fig3c_softirq".into(),
            headers,
            rows: sirq_rows,
            notes: vec![],
        },
    ]
}

/// Fig. 4 — stream delivery with no processing: Libnids / Snort / Scap.
pub fn fig4(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = campus_workload(cfg);
    let eng = engine();
    let mut drop_rows = Vec::new();
    let mut cpu_rows = Vec::new();
    let mut sirq_rows = Vec::new();

    for &gbps in &cfg.scale.rates_gbps {
        let mut drops = vec![format!("{gbps:.2}")];
        let mut cpus = vec![format!("{gbps:.2}")];
        let mut sirqs = vec![format!("{gbps:.2}")];
        for base in [libnids_cfg(cfg), stream5_cfg(cfg)] {
            let (rep, _s) = run_baseline(&eng, base, TouchApp::default(), wl.at_rate(gbps));
            drops.push(f1(rep.stats.drop_percent()));
            cpus.push(f1(rep.user_cpu_percent()));
            sirqs.push(f1(rep.softirq_percent()));
        }
        let (rep, _s) = run_scap(&eng, scap_config(cfg), touch_app(), wl.at_rate(gbps));
        drops.push(f1(rep.stats.drop_percent()));
        cpus.push(f1(rep.user_cpu_percent()));
        sirqs.push(f1(rep.softirq_percent()));
        drop_rows.push(drops);
        cpu_rows.push(cpus);
        sirq_rows.push(sirqs);
    }

    let headers: Vec<String> = ["rate_gbps", "libnids", "snort", "scap"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    vec![
        FigureResult {
            name: "fig4a_drops".into(),
            headers: headers.clone(),
            rows: drop_rows,
            notes: vec![
                "paper: scap loss-free to 5.5 Gbit/s; libnids drops from 2.5, snort from 2.75"
                    .into(),
            ],
        },
        FigureResult {
            name: "fig4b_cpu".into(),
            headers: headers.clone(),
            rows: cpu_rows,
            notes: vec![],
        },
        FigureResult {
            name: "fig4c_softirq".into(),
            headers,
            rows: sirq_rows,
            notes: vec![],
        },
    ]
}

/// Fig. 5 — concurrent streams at a fixed 1 Gbit/s.
pub fn fig5(cfg: &ExpConfig) -> Vec<FigureResult> {
    let eng = engine();
    let mut lost_rows = Vec::new();
    let mut cpu_rows = Vec::new();
    let mut sirq_rows = Vec::new();

    for &n in &cfg.scale.conc_levels {
        let gen = ConcurrentStreams {
            streams: n,
            data_packets_per_stream: cfg.scale.conc_pkts_per_stream,
            payload_per_packet: 1460,
            wire_gap_ns: 12_000,
        };
        let make = || {
            let total_bytes: u64 = gen.iter().take(2048).map(|p| p.len() as u64).sum();
            let sampled = 2048.min(gen.total_packets()) as f64;
            let mean = total_bytes as f64 / sampled;
            let natural = mean * 8.0 / (gen.wire_gap_ns as f64 / 1e9);
            RateReplay::new(gen.iter(), natural, 1e9)
        };

        let mut lost = vec![n.to_string()];
        let mut cpus = vec![n.to_string()];
        let mut sirqs = vec![n.to_string()];

        for base in [libnids_cfg(cfg), stream5_cfg(cfg)] {
            let mut bc = base;
            bc.max_flows = cfg.scale.baseline_max_flows;
            let mut stack = UserStack::new(bc, TouchApp::default());
            let rep = eng.run(make(), &mut stack);
            let lost_pct = 100.0 * (n.saturating_sub(rep.stats.streams_reported)) as f64 / n as f64;
            lost.push(f1(lost_pct));
            cpus.push(f1(rep.user_cpu_percent()));
            sirqs.push(f1(rep.softirq_percent()));
        }
        let (rep, _s) = run_scap(&eng, scap_config(cfg), touch_app(), make().collect());
        let lost_pct = 100.0 * (n.saturating_sub(rep.stats.streams_reported)) as f64 / n as f64;
        lost.push(f1(lost_pct));
        cpus.push(f1(rep.user_cpu_percent()));
        sirqs.push(f1(rep.softirq_percent()));

        lost_rows.push(lost);
        cpu_rows.push(cpus);
        sirq_rows.push(sirqs);
    }

    let headers: Vec<String> = ["streams", "libnids", "snort", "scap"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    vec![
        FigureResult {
            name: "fig5a_lost_streams".into(),
            headers: headers.clone(),
            rows: lost_rows,
            notes: vec![format!(
                "baseline flow tables limited to {} (paper: ~1M); scap grows dynamically",
                cfg.scale.baseline_max_flows
            )],
        },
        FigureResult {
            name: "fig5b_cpu".into(),
            headers: headers.clone(),
            rows: cpu_rows,
            notes: vec![],
        },
        FigureResult {
            name: "fig5c_softirq".into(),
            headers,
            rows: sirq_rows,
            notes: vec![],
        },
    ]
}

/// Fig. 6 — pattern matching: drop %, matched %, lost streams % vs. rate.
pub fn fig6(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = pattern_workload(cfg);
    let truth_matches = oracle_matches(cfg, &wl).max(1);
    let total_flows = wl.stats.flows.max(1);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");

    let mut drop_rows = Vec::new();
    let mut match_rows = Vec::new();
    let mut lost_rows = Vec::new();

    for &gbps in &cfg.scale.rates_gbps {
        let mut drops = vec![format!("{gbps:.2}")];
        let mut matches = vec![format!("{gbps:.2}")];
        let mut losts = vec![format!("{gbps:.2}")];

        for base in [libnids_cfg(cfg), stream5_cfg(cfg)] {
            let (rep, _s) = run_baseline(
                &eng,
                base,
                PatternScanApp::new(ac.clone()),
                wl.at_rate(gbps),
            );
            drops.push(f1(rep.stats.drop_percent()));
            matches.push(f1(100.0 * rep.stats.matches as f64 / truth_matches as f64));
            losts.push(f1(100.0
                * (total_flows.saturating_sub(rep.stats.streams_reported)) as f64
                / total_flows as f64));
        }
        // Scap, and Scap with per-packet delivery (§6.5.3).
        for per_packet in [false, true] {
            let mut sc = scap_config(cfg);
            sc.need_pkts = per_packet;
            let mut app = PatternMatchApp::new(ac.clone());
            app.per_packet = per_packet;
            let (rep, _s) = run_scap(&eng, sc, app, wl.at_rate(gbps));
            drops.push(f1(rep.stats.drop_percent()));
            matches.push(f1(100.0 * rep.stats.matches as f64 / truth_matches as f64));
            losts.push(f1(100.0
                * (total_flows.saturating_sub(rep.stats.streams_reported)) as f64
                / total_flows as f64));
        }
        drop_rows.push(drops);
        match_rows.push(matches);
        lost_rows.push(losts);
    }

    let headers: Vec<String> = ["rate_gbps", "libnids", "snort", "scap", "scap_pkts"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    vec![
        FigureResult {
            name: "fig6a_drops".into(),
            headers: headers.clone(),
            rows: drop_rows,
            notes: vec![format!("ground-truth matches (oracle run): {truth_matches}")],
        },
        FigureResult {
            name: "fig6b_matched".into(),
            headers: headers.clone(),
            rows: match_rows,
            notes: vec![
                "paper at 6 Gbit/s: snort/libnids <10% of matches, scap ~50%".into(),
            ],
        },
        FigureResult {
            name: "fig6c_lost_streams".into(),
            headers,
            rows: lost_rows,
            notes: vec![
                "paper: baseline stream loss tracks packet loss; scap loses 14% streams at 81% packet loss".into(),
            ],
        },
    ]
}

/// Fig. 7 — L2 cache misses per packet vs. rate (locality).
pub fn fig7(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = pattern_workload(cfg);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");
    let mut rows = Vec::new();

    for &gbps in &cfg.scale.rates_gbps {
        let mut row = vec![format!("{gbps:.2}")];
        for base in [libnids_cfg(cfg), stream5_cfg(cfg)] {
            let mut stack = UserStack::new(base, PatternScanApp::new(ac.clone()))
                .with_cache(CacheSim::paper_l2());
            let rep = eng.run(wl.at_rate(gbps), &mut stack);
            row.push(f2(
                stack.cache_misses() as f64 / rep.stats.wire_packets as f64
            ));
        }
        let mut stack = ScapSimStack::new(
            ScapKernel::new(scap_config(cfg)),
            PatternMatchApp::new(ac.clone()),
        )
        .with_cache(CacheSim::paper_l2());
        let rep = eng.run(wl.at_rate(gbps), &mut stack);
        row.push(f2(
            stack.cache_misses() as f64 / rep.stats.wire_packets as f64
        ));
        rows.push(row);
    }

    vec![FigureResult {
        name: "fig7_cache_misses".into(),
        headers: ["rate_gbps", "libnids", "snort", "scap"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes: vec![
            "paper at 0.25 Gbit/s: snort ~25, libnids ~21, scap ~10.2 misses/packet".into(),
        ],
    }]
}

/// Fig. 8 — cutoff sweep at a fixed 4 Gbit/s.
pub fn fig8(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = pattern_workload(cfg);
    let truth_matches = oracle_matches(cfg, &wl).max(1);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");
    let gbps = 4.0;

    let mut drop_rows = Vec::new();
    let mut cpu_rows = Vec::new();
    let mut sirq_rows = Vec::new();
    let mut notes = Vec::new();

    for &cutoff in &cfg.scale.cutoffs {
        let label = if cutoff >= 1 << 20 {
            format!("{}M", cutoff >> 20)
        } else if cutoff >= 1 << 10 {
            format!("{}K", cutoff >> 10)
        } else {
            cutoff.to_string()
        };
        let mut drops = vec![label.clone()];
        let mut cpus = vec![label.clone()];
        let mut sirqs = vec![label.clone()];

        for base in [libnids_cfg(cfg), stream5_cfg(cfg)] {
            let mut bc = base;
            bc.cutoff = Some(cutoff);
            let (rep, _s) =
                run_baseline(&eng, bc, PatternScanApp::new(ac.clone()), wl.at_rate(gbps));
            drops.push(f1(rep.stats.drop_percent()));
            cpus.push(f1(rep.user_cpu_percent()));
            sirqs.push(f1(rep.softirq_percent()));
        }
        for use_fdir in [false, true] {
            let mut sc = scap_config(cfg);
            sc.cutoff.default = Some(cutoff);
            sc.use_fdir = use_fdir;
            let (rep, stack) =
                run_scap(&eng, sc, PatternMatchApp::new(ac.clone()), wl.at_rate(gbps));
            drops.push(f1(rep.stats.drop_percent()));
            cpus.push(f1(rep.user_cpu_percent()));
            sirqs.push(f1(rep.softirq_percent()));
            if !use_fdir && cutoff == 10 << 10 {
                let s = rep.stats;
                let _ = &stack;
                let discarded = 100.0 * s.discarded_bytes as f64 / s.wire_bytes as f64;
                let matched = 100.0 * s.matches as f64 / truth_matches as f64;
                notes.push(format!(
                    "§6.6 headline at 10KB cutoff: {discarded:.1}% of traffic discarded, \
                     {matched:.1}% of matches kept, drop {:.1}% (paper: 97.6% discarded, 83.6% matches, CPU 97%→21.9%)",
                    rep.stats.drop_percent()
                ));
            }
        }
        drop_rows.push(drops);
        cpu_rows.push(cpus);
        sirq_rows.push(sirqs);
    }

    let headers: Vec<String> = ["cutoff", "libnids", "snort", "scap", "scap_fdir"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    vec![
        FigureResult {
            name: "fig8a_drops".into(),
            headers: headers.clone(),
            rows: drop_rows,
            notes,
        },
        FigureResult {
            name: "fig8b_cpu".into(),
            headers: headers.clone(),
            rows: cpu_rows,
            notes: vec![
                "paper: baselines stay ~100% CPU at every cutoff; scap ~21.9% at 10KB".into(),
            ],
        },
        FigureResult {
            name: "fig8c_softirq".into(),
            headers,
            rows: sirq_rows,
            notes: vec![],
        },
    ]
}

/// Fig. 9 — PPL: high- vs. low-priority drop % vs. rate.
pub fn fig9(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = pattern_workload(cfg);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");
    let mut rows = Vec::new();

    for &gbps in &cfg.scale.rates_gbps {
        let mut sc = scap_config(cfg);
        sc.priorities
            .classes
            .push((Filter::new("port 80").expect("valid"), 1));
        sc.ppl.num_priorities = 2;
        sc.ppl.base_threshold = 0.5;
        // Pure priority-based PPL, as in the paper's Fig. 9 (no
        // overload cutoff in play).
        sc.ppl.overload_cutoff = None;
        let (_rep, stack) = run_scap(&eng, sc, PatternMatchApp::new(ac.clone()), wl.at_rate(gbps));
        let s = stack.kernel().stats();
        let pct = |dropped: u64, wire: u64| {
            if wire == 0 {
                0.0
            } else {
                100.0 * dropped as f64 / wire as f64
            }
        };
        rows.push(vec![
            format!("{gbps:.2}"),
            f1(pct(s.dropped_by_priority[0], s.wire_by_priority[0])),
            f1(pct(s.dropped_by_priority[1], s.wire_by_priority[1])),
        ]);
    }

    vec![FigureResult {
        name: "fig9_ppl_priorities".into(),
        headers: ["rate_gbps", "low_priority_drop%", "high_priority_drop%"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes: vec![
            "high priority = port-80 streams (≈8.4% of packets)".into(),
            "paper: zero high-priority loss to 5.5 Gbit/s while low-priority loses up to 85.7%"
                .into(),
        ],
    }]
}

/// Fig. 10 — worker-thread scaling: drop % at fixed rates, and the
/// maximum loss-free rate per worker count.
pub fn fig10(cfg: &ExpConfig) -> Vec<FigureResult> {
    let wl = pattern_workload(cfg);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");
    let fixed_rates = [2.0, 4.0, 6.0];
    let mut drop_rows = Vec::new();
    let mut rate_rows = Vec::new();

    let run_at = |workers: usize, gbps: f64| -> f64 {
        let mut sc = scap_config(cfg);
        sc.worker_threads = workers;
        // §4.2: RSS complemented by dynamic FDIR load balancing.
        sc.use_fdir_balancing = true;
        // This experiment measures CPU scaling, not buffer dynamics, so
        // it runs with the paper's memory regime (1 GB there): the arena
        // must absorb single-flow bursts rather than shed them.
        sc.memory_bytes = 64 << 20;
        let (rep, _s) = run_scap(&eng, sc, PatternMatchApp::new(ac.clone()), wl.at_rate(gbps));
        rep.stats.drop_percent()
    };

    for workers in 1..=8usize {
        let mut row = vec![workers.to_string()];
        for &g in &fixed_rates {
            row.push(f1(run_at(workers, g)));
        }
        drop_rows.push(row);

        // Binary search the loss-free knee (drop < 1%, the paper's
        // visual resolution).
        let (mut lo, mut hi) = (0.25f64, 10.0f64);
        if run_at(workers, hi) < 1.0 {
            lo = hi;
        } else {
            for _ in 0..6 {
                let mid = (lo + hi) / 2.0;
                if run_at(workers, mid) < 1.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
        rate_rows.push(vec![workers.to_string(), f2(lo)]);
    }

    vec![
        FigureResult {
            name: "fig10a_drops_by_workers".into(),
            headers: ["workers", "2gbps", "4gbps", "6gbps"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows: drop_rows,
            notes: vec!["paper: 7 workers handle 4 Gbit/s loss-free".into()],
        },
        FigureResult {
            name: "fig10b_max_lossfree_rate".into(),
            headers: ["workers", "max_lossfree_gbps"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows: rate_rows,
            notes: vec!["paper: ~1 Gbit/s at 1 worker scaling to 5.5 Gbit/s at 8".into()],
        },
    ]
}

/// Fig. 11 — M/M/1/N loss probability for high-priority packets.
pub fn fig11(_cfg: &ExpConfig) -> Vec<FigureResult> {
    let mut rows = Vec::new();
    for n in (0..=200usize).step_by(10) {
        rows.push(vec![
            n.to_string(),
            sci(scap_analysis::mm1n_loss(0.1, n)),
            sci(scap_analysis::mm1n_loss(0.5, n)),
            sci(scap_analysis::mm1n_loss(0.9, n)),
        ]);
    }
    // Monte-Carlo cross-check at a few points.
    let mut notes =
        vec!["paper: ρ=0.1 needs <10 slots, ρ=0.5 ~20, ρ=0.9 ~150 for ~zero loss".into()];
    for (rho, n) in [(0.5f64, 10usize), (0.9, 40)] {
        let sim = scap_analysis::simulate_mm1n(rho, 1.0, n, 300_000, 7);
        notes.push(format!(
            "monte-carlo ρ={rho} N={n}: simulated {:.2e} vs closed form {:.2e}",
            sim.loss_ratio(),
            scap_analysis::mm1n_loss(rho, n)
        ));
    }
    vec![FigureResult {
        name: "fig11_mm1n".into(),
        headers: ["N", "rho_0.1", "rho_0.5", "rho_0.9"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes,
    }]
}

/// Fig. 12 — the three-priority chain: high/medium loss vs. N at
/// ρ₁ = ρ₂ = 0.3.
pub fn fig12(_cfg: &ExpConfig) -> Vec<FigureResult> {
    let mut rows = Vec::new();
    for n in 1..=40usize {
        rows.push(vec![
            n.to_string(),
            sci(scap_analysis::high_priority_loss(0.3, 0.3, n)),
            sci(scap_analysis::medium_priority_loss(0.3, 0.3, n)),
        ]);
    }
    let (hi_sim, med_sim) =
        scap_analysis::montecarlo::simulate_priority(0.6, 0.3, 1.0, 5, 400_000, 11);
    vec![FigureResult {
        name: "fig12_priority_chain".into(),
        headers: ["N", "high_priority", "medium_priority"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes: vec![
            "paper: a few tens of slots make both loss probabilities practically zero".into(),
            format!(
                "monte-carlo check (ρ₁=0.6, ρ₂=0.3, N=5): high {hi_sim:.3e} vs {:.3e}, med {med_sim:.3e} vs {:.3e}",
                scap_analysis::high_priority_loss(0.6, 0.3, 5),
                scap_analysis::medium_priority_loss(0.6, 0.3, 5),
            ),
        ],
    }]
}

/// Fault-injection experiment: drive the kernel synchronously through a
/// seeded fault storm (mangled frames, FDIR install failures, ring
/// stalls, arena squeezes) and table the degradation/recovery timeline
/// plus the final resilience counters. Fully deterministic: the same
/// seed produces byte-identical tables.
pub fn faults(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::{mangle_packets, EventKind, FaultPlan};

    let wl = campus_workload(cfg);
    // Calm tail past the configured fault windows so the recovery half of
    // the timeline (retries draining, governor de-escalating) is visible.
    let mut trace = wl.trace.clone();
    let tail_start = trace.last().map_or(0, |p| p.ts_ns);
    for i in 0..220u64 {
        trace.push(scap_trace::Packet::new(
            tail_start + (i + 1) * 10_000_000,
            scap_wire::PacketBuilder::udp_v4([10, 1, 1, 1], [10, 1, 1, 2], 9999, 53, b"ping"),
        ));
    }

    let plan = FaultPlan::storm(cfg.seed);
    let (packets, frame_stats) = mangle_packets(&plan, trace);

    let mut config = scap_config(cfg);
    config.use_fdir = true;
    config.cutoff.default = Some(16 << 10);
    config.faults = Some(plan);
    let mut kernel = ScapKernel::new(config);
    kernel.note_frame_faults(frame_stats);

    let total = packets.len();
    let bucket = (total / 14).max(1);
    let mut rows = Vec::new();
    let mut sample = |kernel: &ScapKernel, fed: usize| {
        let s = kernel.stats();
        let r = s.resilience;
        rows.push(vec![
            fed.to_string(),
            r.governor_level.to_string(),
            r.fdir_retries.to_string(),
            r.fdir_retry_successes.to_string(),
            r.fdir_fallback_software.to_string(),
            r.ring_stall_windows.to_string(),
            r.arena_spikes.to_string(),
            r.evicted_streams.to_string(),
            s.stack.dropped_packets.to_string(),
            s.stack.discarded_packets.to_string(),
        ]);
    };

    let mut now = 0;
    for (i, pkt) in packets.iter().enumerate() {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        if (i + 1) % bucket == 0 || i + 1 == total {
            sample(&kernel, i + 1);
        }
    }
    kernel.finish(now.saturating_add(1));
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }

    let s = kernel.stats();
    let r = s.resilience;
    let timeline = FigureResult {
        name: "faults_timeline".into(),
        headers: vec![
            "packets".into(),
            "gov_level".into(),
            "fdir_retries".into(),
            "fdir_retry_ok".into(),
            "fdir_sw_fallback".into(),
            "ring_stalls".into(),
            "arena_spikes".into(),
            "evicted".into(),
            "dropped".into(),
            "discarded".into(),
        ],
        rows,
        notes: vec![
            format!("fault plan: storm(seed={})", cfg.seed),
            "degradation is bounded and recovery is visible: the governor returns to level 0 and retry counters go quiet in the calm tail".into(),
        ],
    };

    let conserved = s.stack.delivered_packets + s.stack.dropped_packets + s.stack.discarded_packets;
    let summary = FigureResult {
        name: "faults_resilience".into(),
        headers: vec!["counter".into(), "value".into()],
        rows: vec![
            vec!["wire packets (post-mangling)".into(), s.stack.wire_packets.to_string()],
            vec!["delivered + dropped + discarded".into(), conserved.to_string()],
            vec!["frames corrupted".into(), r.frames_corrupted.to_string()],
            vec!["frames truncated".into(), r.frames_truncated.to_string()],
            vec!["frames duplicated".into(), r.frames_duplicated.to_string()],
            vec!["frames reordered".into(), r.frames_reordered.to_string()],
            vec!["timestamp anomalies".into(), r.ts_anomalies.to_string()],
            vec!["fdir transient failures".into(), r.fdir_transient_failures.to_string()],
            vec!["fdir slow installs".into(), r.fdir_slow_installs.to_string()],
            vec!["fdir retries".into(), r.fdir_retries.to_string()],
            vec!["fdir retry successes".into(), r.fdir_retry_successes.to_string()],
            vec!["fdir software fallbacks".into(), r.fdir_fallback_software.to_string()],
            vec!["ring stall windows".into(), r.ring_stall_windows.to_string()],
            vec!["arena spikes".into(), r.arena_spikes.to_string()],
            vec!["governor max level".into(), r.governor_max_level.to_string()],
            vec!["governor transitions".into(), r.governor_transitions.to_string()],
            vec!["governor cutoff clamps".into(), r.governor_cutoff_clamps.to_string()],
            vec!["governor final level".into(), r.governor_level.to_string()],
            vec!["streams evicted".into(), r.evicted_streams.to_string()],
        ],
        notes: vec![
            format!(
                "packet conservation: wire={} == delivered+dropped+discarded={}",
                s.stack.wire_packets, conserved
            ),
            "worker panic/stall recovery is exercised by the live driver (tests/chaos.rs); this table is the synchronous, byte-reproducible kernel view".into(),
        ],
    };
    vec![timeline, summary]
}

/// The observability experiment: run the simulated Scap stack over the
/// campus workload at a fixed 4 Gbit/s, then export the subsystem's full
/// state — merged counters (kernel + NIC + arena), per-stage span
/// histograms in virtual cycles, and the gauge time-series — as
/// `telemetry_*` artifacts in the output directory. Deterministic per
/// seed: the same seed produces byte-identical CSVs.
pub fn telemetry(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::telemetry::{export, Metric, Stage};

    let wl = campus_workload(cfg);
    let eng = engine();
    let mut sc = scap_config(cfg);
    sc.use_fdir = true;
    sc.cutoff.default = Some(64 << 10);
    let (rep, stack) = run_scap(&eng, sc, flow_stats_app(), wl.at_rate(4.0));
    let kernel = stack.kernel();
    let snap = kernel.telemetry_snapshot();
    let series = kernel.telemetry_series();

    // The subsystem's native export formats go out as-is, next to the
    // figure tables.
    let write = |name: &str, text: String| {
        if std::fs::create_dir_all(&cfg.out_dir).is_ok() {
            if let Err(e) = std::fs::write(cfg.out_dir.join(name), text) {
                eprintln!("warning: could not write {name}: {e}");
            }
        }
    };
    write("telemetry_counters.csv", export::to_csv(&snap));
    write("telemetry_counters.jsonl", export::to_jsonl(&snap));
    write("telemetry_table.txt", export::to_table(&snap));
    write("telemetry_series.csv", export::series_to_csv(series));

    let stage_rows: Vec<Vec<String>> = Stage::ALL
        .iter()
        .map(|&st| {
            let h = snap.stage(st);
            vec![
                st.name().to_string(),
                h.count().to_string(),
                f1(h.mean()),
                h.quantile(0.5).to_string(),
                h.quantile(0.99).to_string(),
            ]
        })
        .collect();

    let conserved = snap.total(Metric::DeliveredPackets)
        + snap.total(Metric::DroppedPackets)
        + snap.total(Metric::DiscardedPackets);
    let summary_rows = vec![
        vec![
            "wire packets".into(),
            snap.total(Metric::WirePackets).to_string(),
        ],
        vec![
            "delivered + dropped + discarded".into(),
            conserved.to_string(),
        ],
        vec![
            "delivered bytes".into(),
            snap.total(Metric::DeliveredBytes).to_string(),
        ],
        vec![
            "kernel hash probes".into(),
            snap.total(Metric::KernelHashProbes).to_string(),
        ],
        vec![
            "kernel bytes copied".into(),
            snap.total(Metric::KernelBytesCopied).to_string(),
        ],
        vec![
            "chunks placed".into(),
            snap.total(Metric::KernelChunksPlaced).to_string(),
        ],
        vec![
            "events enqueued".into(),
            snap.total(Metric::KernelEventsEnqueued).to_string(),
        ],
        vec![
            "worker events handled".into(),
            snap.total(Metric::WorkerEventsHandled).to_string(),
        ],
        vec![
            "fdir ops".into(),
            snap.total(Metric::NicFdirOps).to_string(),
        ],
        vec![
            "governor transitions".into(),
            snap.total(Metric::GovernorTransitions).to_string(),
        ],
        vec!["gauge samples retained".into(), series.len().to_string()],
    ];

    vec![
        FigureResult {
            name: "telemetry_stages".into(),
            headers: ["stage", "count", "mean", "p50", "p99"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows: stage_rows,
            notes: vec![
                "units: virtual cycles (simulation driver); the live driver records wall ns".into(),
                format!(
                    "run: campus mix at 4 Gbit/s, drop {:.1}%",
                    rep.stats.drop_percent()
                ),
            ],
        },
        FigureResult {
            name: "telemetry_summary".into(),
            headers: vec!["counter".into(), "value".into()],
            rows: summary_rows,
            notes: vec![format!(
                "packet conservation: wire={} == delivered+dropped+discarded={}",
                snap.total(Metric::WirePackets),
                conserved
            )],
        },
    ]
}

/// The persistent-archive experiment: drive the kernel synchronously over
/// the campus workload with a 32 KB cutoff and two priority classes
/// (web = 2, dns = 1), persist every delivered stream through a
/// [`scap_store::StoreWriter`] under a disk budget of one eighth of the
/// trace, then reopen the archive read-only and table the archive/
/// retention statistics plus an index-only query check. Deterministic per
/// seed: the same seed produces a byte-identical index dump.
pub fn store(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::EventKind;
    use scap_store::{StoreConfig, StoreReader, StoreWriter};

    let wl = campus_workload(cfg);

    let mut config = scap_config(cfg);
    config.cutoff.default = Some(32 << 10);
    config.priorities.classes = vec![
        (Filter::new("port 80").unwrap(), 2),
        (Filter::new("port 53").unwrap(), 1),
    ];
    config.ppl.num_priorities = 3;
    let mut kernel = ScapKernel::new(config);

    let archive_dir = cfg.out_dir.join("store_archive");
    let _ = std::fs::remove_dir_all(&archive_dir);
    let budget = cfg.scale.trace_bytes / 8;
    let mut writer = StoreWriter::open(
        StoreConfig::new(&archive_dir)
            .segment_bytes(1 << 20)
            .disk_budget(budget),
    )
    .expect("open store archive");

    let mut now = 0;
    let drain = |kernel: &mut ScapKernel, writer: &mut StoreWriter| {
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                writer.observe(&ev).expect("archive write");
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    };
    for pkt in &wl.trace {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
        }
        drain(&mut kernel, &mut writer);
    }
    kernel.finish(now.saturating_add(1));
    drain(&mut kernel, &mut writer);
    let stats = writer.finish().expect("archive finish");
    drop(writer);

    let reader = StoreReader::open(&archive_dir).expect("reopen archive");
    let report = reader.verify().expect("verify archive");
    let web_hits = reader.query("tcp and port 80").expect("query").len();
    let ks = kernel.stats();

    let archive = FigureResult {
        name: "store_archive".into(),
        headers: vec!["counter".into(), "value".into()],
        rows: vec![
            vec![
                "streams reported".into(),
                ks.stack.streams_reported.to_string(),
            ],
            vec![
                "streams archived".into(),
                stats.streams_archived.to_string(),
            ],
            vec![
                "payload bytes archived".into(),
                stats.bytes_archived.to_string(),
            ],
            vec![
                "segments created".into(),
                stats.segments_created.to_string(),
            ],
            vec!["disk budget bytes".into(), budget.to_string()],
            vec![
                "streams pruned (retention)".into(),
                stats.streams_pruned.to_string(),
            ],
            vec![
                "bytes pruned (retention)".into(),
                stats.bytes_pruned.to_string(),
            ],
            vec![
                "bytes reclaimed (compaction)".into(),
                stats.bytes_reclaimed.to_string(),
            ],
            vec![
                "index records after retention".into(),
                reader.len().to_string(),
            ],
            vec![
                "segment frames valid".into(),
                report.frames_valid.to_string(),
            ],
            vec![
                "segment bytes on disk".into(),
                report.segment_bytes_total.to_string(),
            ],
            vec!["verify clean".into(), report.is_clean().to_string()],
            vec![
                "index query 'tcp and port 80' hits".into(),
                web_hits.to_string(),
            ],
        ],
        notes: vec![
            format!(
                "archive at {} (seed {}): same seed ⇒ byte-identical index dump",
                archive_dir.display(),
                cfg.seed
            ),
            "durability by write ordering: payload frames flush before their index record".into(),
        ],
    };

    let mut prio_rows = Vec::new();
    for (prio, ps) in &stats.by_priority {
        prio_rows.push(vec![
            prio.to_string(),
            ps.archived.to_string(),
            ps.pruned.to_string(),
            format!("{:.3}", stats.discard_ratio(*prio)),
            ps.live_bytes.to_string(),
        ]);
    }
    let priorities = FigureResult {
        name: "store_priorities".into(),
        headers: vec![
            "priority".into(),
            "archived".into(),
            "pruned".into(),
            "discard_ratio".into(),
            "live_bytes".into(),
        ],
        rows: prio_rows,
        notes: vec![
            "PPL on disk: retention tombstones lowest-priority / most-truncated / oldest streams first"
                .into(),
        ],
    };
    vec![archive, priorities]
}

/// The warm-restart experiment: crash-consistent checkpoint/restore over
/// the campus workload. For each checkpoint interval, the kernel is
/// driven synchronously, checkpointed every N packets, crashed at a
/// fixed packet index (no flush, no finish), restored from the latest
/// checkpoint, and fed the remaining packets. The table reports the
/// checkpoint size, the deterministic recovery latency (virtual cycles),
/// and the bytes lost in the blackout window between the last checkpoint
/// and the crash. Deterministic per seed: same seed, same table.
pub fn restart(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::checkpoint::CheckpointImage;
    use scap::EventKind;

    let wl = campus_workload(cfg);
    let trace = &wl.trace;
    let kill_idx = (trace.len() * 6 / 10).max(1);

    // Drive the kernel synchronously over packets[from..to], consuming
    // (and releasing) every event, checkpointing every `every` packets.
    // Returns the latest checkpoint and the packet index it was taken at.
    fn drive(
        kernel: &mut ScapKernel,
        trace: &[scap_trace::Packet],
        from: usize,
        to: usize,
        every: Option<u64>,
    ) -> (Option<Vec<u8>>, usize, u64) {
        let mut last_ckpt = None;
        let mut ckpt_at = from;
        let mut seq = 0u64;
        let mut delivered = 0u64;
        for (i, pkt) in trace[from..to].iter().enumerate() {
            let now = pkt.ts_ns;
            kernel.nic_receive(pkt);
            for core in 0..kernel.ncores() {
                while kernel.kernel_poll(core, now).is_some() {}
                kernel.kernel_timers(core, now);
                while let Some(ev) = kernel.next_event(core) {
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        delivered += chunk.len as u64;
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
            if let Some(every) = every {
                if ((i + 1) as u64).is_multiple_of(every) {
                    seq += 1;
                    last_ckpt = Some(kernel.checkpoint_bytes(now, seq));
                    ckpt_at = from + i + 1;
                }
            }
        }
        (last_ckpt, ckpt_at, delivered)
    }

    fn finish(kernel: &mut ScapKernel, trace: &[scap_trace::Packet]) -> u64 {
        let now = trace.last().map_or(1, |p| p.ts_ns.saturating_add(1));
        kernel.finish(now);
        let mut delivered = 0u64;
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    delivered += chunk.len as u64;
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        delivered
    }

    // Baseline: the same workload uninterrupted.
    let mut base_kernel = ScapKernel::new(scap_config(cfg));
    let (_, _, mut base_delivered) = drive(&mut base_kernel, trace, 0, trace.len(), None);
    base_delivered += finish(&mut base_kernel, trace);
    let base_streams = base_kernel.stats().stack.streams_reported;

    let mut rows = Vec::new();
    for interval in [250u64, 500, 1000, 2000, 4000] {
        if interval as usize > kill_idx {
            continue; // the crash would precede the first checkpoint
        }
        // Run 1: capture, checkpoint periodically, crash at kill_idx
        // (the kernel is dropped without finish — no flush, no events).
        let mut k1 = ScapKernel::new(scap_config(cfg));
        let (ckpt, ckpt_at, delivered1) = drive(&mut k1, trace, 0, kill_idx, Some(interval));
        let bytes = ckpt.expect("at least one checkpoint before the crash");
        drop(k1);

        let blackout_wire: u64 = trace[ckpt_at..kill_idx]
            .iter()
            .map(|p| p.frame.len() as u64)
            .sum();

        // Run 2: restore from the latest checkpoint, resume with the
        // packets the dead instance never admitted.
        let img = CheckpointImage::decode(&bytes).expect("decode checkpoint");
        let mut k2 = ScapKernel::from_image(img, None).expect("restore checkpoint");
        let recovery = k2.stats().resilience.recovery_virtual_cycles;
        let resumed = k2.stats().resilience.resumed_streams;
        let (_, _, mut delivered2) = drive(&mut k2, trace, kill_idx, trace.len(), None);
        delivered2 += finish(&mut k2, trace);
        let rs = k2.stats();

        rows.push(vec![
            interval.to_string(),
            bytes.len().to_string(),
            recovery.to_string(),
            (kill_idx - ckpt_at).to_string(),
            blackout_wire.to_string(),
            rs.resilience.resume_gap_bytes.to_string(),
            resumed.to_string(),
            (delivered1 + delivered2).to_string(),
            base_delivered.to_string(),
        ]);
    }

    vec![FigureResult {
        name: "restart_recovery".into(),
        headers: vec![
            "ckpt_interval_pkts".into(),
            "ckpt_size_bytes".into(),
            "recovery_vcycles".into(),
            "blackout_pkts".into(),
            "blackout_wire_bytes".into(),
            "gap_bytes_skipped".into(),
            "resumed_streams".into(),
            "delivered_bytes_resumed".into(),
            "delivered_bytes_baseline".into(),
        ],
        rows,
        notes: vec![
            format!(
                "crash injected at packet {kill_idx} of {}; baseline reported {base_streams} streams",
                trace.len()
            ),
            "recovery latency is a deterministic virtual-cycle cost model, not wall time".into(),
            "gap_bytes_skipped ≤ blackout window: no committed byte is re-delivered, \
             resumed streams carry the RESUMED flag"
                .into(),
        ],
    }]
}

/// The flight-recorder experiment: drive the kernel synchronously over
/// the campus workload (FDIR on, 16 KB cutoff) with a journal ring sized
/// past the workload, then reconcile the journal's drop/discard event
/// sums *exactly* against the merged telemetry counters and the packet
/// conservation identity `wire == delivered + dropped + discarded`. A
/// second same-seed run must produce a byte-identical journal, and a
/// kill/restore sub-drive cross-checks the resilience restart counter
/// against the journal's restart events. Any mismatch panics, so the CI
/// gate is a plain exit-status check. Artifacts: `flight_journal.bin`
/// (the encoded journal) next to the tables.
pub fn flight(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::checkpoint::CheckpointImage;
    use scap::flight::{attribution, decode_journal, top_reasons_line};
    use scap::telemetry::Metric;
    use scap::{EventKind, FlightKind, ScapConfig};

    let wl = campus_workload(cfg);
    let trace = &wl.trace;

    // Exact reconciliation requires a lossless journal: no wrap-around,
    // so the per-core rings are sized past anything the workload can
    // emit (a packet produces at most a handful of events).
    let ring_cap = trace.len() * 4 + 1024;
    let build = |ring_cap: usize| -> ScapKernel {
        let mut config: ScapConfig = scap_config(cfg);
        config.use_fdir = true;
        config.cutoff.default = Some(16 << 10);
        config.flight_ring_cap = ring_cap;
        ScapKernel::new(config)
    };
    // Synchronous drive over trace[from..to]; `finish` runs termination.
    fn drive(kernel: &mut ScapKernel, trace: &[scap_trace::Packet], from: usize, to: usize) {
        for pkt in &trace[from..to] {
            let now = pkt.ts_ns;
            kernel.nic_receive(pkt);
            for core in 0..kernel.ncores() {
                while kernel.kernel_poll(core, now).is_some() {}
                kernel.kernel_timers(core, now);
                while let Some(ev) = kernel.next_event(core) {
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
        }
    }
    fn finish(kernel: &mut ScapKernel, trace: &[scap_trace::Packet]) {
        let now = trace.last().map_or(1, |p| p.ts_ns.saturating_add(1));
        kernel.finish(now);
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    }

    let mut kernel = build(ring_cap);
    drive(&mut kernel, trace, 0, trace.len());
    finish(&mut kernel, trace);
    let journal_bytes = kernel.flight().encode();

    // Determinism gate: a second same-seed run, byte for byte.
    let mut k2 = build(ring_cap);
    drive(&mut k2, trace, 0, trace.len());
    finish(&mut k2, trace);
    assert_eq!(
        journal_bytes,
        k2.flight().encode(),
        "flight journal must be byte-identical across same-seed runs"
    );
    drop(k2);

    if std::fs::create_dir_all(&cfg.out_dir).is_ok() {
        if let Err(e) = std::fs::write(cfg.out_dir.join("flight_journal.bin"), &journal_bytes) {
            eprintln!("warning: could not write flight_journal.bin: {e}");
        }
    }

    let journal = decode_journal(&journal_bytes).expect("journal round-trips through the codec");
    assert_eq!(
        journal.total_dropped(),
        0,
        "the reconciliation ring must not wrap (raise ring_cap)"
    );

    // Reconcile: every loss event was emitted inside the accounting
    // funnels, so the journal sums must equal the merged telemetry
    // counters *exactly* — not approximately.
    let mut ev_drop = (0u64, 0u64);
    let mut ev_disc = (0u64, 0u64);
    for e in &journal.events {
        match e.kind {
            FlightKind::Drop => {
                ev_drop.0 += e.a;
                ev_drop.1 += e.b;
            }
            FlightKind::Discard => {
                ev_disc.0 += e.a;
                ev_disc.1 += e.b;
            }
            _ => {}
        }
    }
    let snap = kernel.telemetry_snapshot();
    let tele = (
        snap.total(Metric::WirePackets),
        snap.total(Metric::DeliveredPackets),
        snap.total(Metric::DroppedPackets),
        snap.total(Metric::DroppedBytes),
        snap.total(Metric::DiscardedPackets),
        snap.total(Metric::DiscardedBytes),
    );
    assert_eq!(
        ev_drop.0, tele.2,
        "flight Drop pkts != telemetry DroppedPackets"
    );
    assert_eq!(
        ev_drop.1, tele.3,
        "flight Drop bytes != telemetry DroppedBytes"
    );
    assert_eq!(
        ev_disc.0, tele.4,
        "flight Discard pkts != telemetry DiscardedPackets"
    );
    assert_eq!(
        ev_disc.1, tele.5,
        "flight Discard bytes != telemetry DiscardedBytes"
    );
    assert_eq!(
        tele.0,
        tele.1 + tele.2 + tele.4,
        "conservation identity violated: wire != delivered + dropped + discarded"
    );

    // Restart cross-check: kill at 60%, checkpoint, restore, resume. The
    // resilience restart counter and the journal's restart events must
    // tell the same story.
    let kill_idx = (trace.len() * 6 / 10).max(1);
    let mut k1 = build(ring_cap);
    drive(&mut k1, trace, 0, kill_idx);
    let ckpt = k1.checkpoint_bytes(trace[kill_idx - 1].ts_ns, 1);
    drop(k1);
    let img = CheckpointImage::decode(&ckpt).expect("decode checkpoint");
    let mut k3 = ScapKernel::from_image(img, None).expect("restore checkpoint");
    drive(&mut k3, trace, kill_idx, trace.len());
    finish(&mut k3, trace);
    let restarts = k3.stats().resilience.restarts;
    let restart_events = k3
        .flight()
        .events()
        .iter()
        .filter(|e| e.kind == FlightKind::Restarted)
        .count() as u64;
    assert_eq!(
        restarts, restart_events,
        "resilience restart counter disagrees with the journal's restart events"
    );

    let attr_rows: Vec<Vec<String>> = attribution(&journal.events)
        .iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                r.layer.name().to_string(),
                r.reason.name().to_string(),
                r.events.to_string(),
                r.pkts.to_string(),
                r.bytes.to_string(),
            ]
        })
        .collect();
    let attribution_fig = FigureResult {
        name: "flight_attribution".into(),
        headers: vec![
            "kind".into(),
            "layer".into(),
            "reason".into(),
            "events".into(),
            "pkts".into(),
            "bytes".into(),
        ],
        rows: attr_rows,
        notes: vec![
            top_reasons_line(&journal.events, 3),
            "every row was emitted inside the kernel's loss-accounting funnel, so the sums \
             reconcile against telemetry by construction"
                .into(),
        ],
    };

    let reconcile = FigureResult {
        name: "flight_reconciliation".into(),
        headers: vec!["check".into(), "flight".into(), "telemetry".into()],
        rows: vec![
            vec![
                "dropped packets".into(),
                ev_drop.0.to_string(),
                tele.2.to_string(),
            ],
            vec![
                "dropped bytes".into(),
                ev_drop.1.to_string(),
                tele.3.to_string(),
            ],
            vec![
                "discarded packets".into(),
                ev_disc.0.to_string(),
                tele.4.to_string(),
            ],
            vec![
                "discarded bytes".into(),
                ev_disc.1.to_string(),
                tele.5.to_string(),
            ],
            vec![
                "journal events / overwritten".into(),
                journal.events.len().to_string(),
                journal.total_dropped().to_string(),
            ],
            vec![
                "restarts (counter vs journal)".into(),
                restarts.to_string(),
                restart_events.to_string(),
            ],
        ],
        notes: vec![
            format!(
                "packet conservation: wire={} == delivered+dropped+discarded={}",
                tele.0,
                tele.1 + tele.2 + tele.4
            ),
            format!(
                "journal: {} events, byte-identical across two same-seed runs (seed {})",
                journal.events.len(),
                cfg.seed
            ),
        ],
    };
    vec![attribution_fig, reconcile]
}

/// The multi-tenant isolation experiment (`--exp tenants`): three
/// tenants with distinct filters, cutoffs, priorities, and quota shares
/// attach to one shared capture. The seeded tenant fault plan nominates
/// a hostile tenant whose consumer stalls; the slow-consumer ladder
/// degrades, drops-with-provenance, and disconnects it. The tables show
/// (a) isolation/fairness — each well-behaved tenant's shared-run
/// delivered bytes against its solo run, with the ≥95% bound asserted —
/// and (b) per-tenant conservation, reconciled exactly against the
/// flight journal's tenant drop sums. Deterministic per seed: the
/// journal is asserted byte-identical across two same-seed runs, and
/// any bound or identity violation panics (the CI gate).
pub fn tenants(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::flight::{decode_journal, DropReason, FlightKind, FlightLayer};
    use scap::tenant::{TenantEngine, TenantSpec, TenantState};
    use scap::{EventKind, FaultPlan};

    const DELIVERY_BUDGET: u64 = 64 << 10;
    const STRIKE_LIMIT: u32 = 8;
    const ISOLATION_BOUND_PCT: u64 = 95;

    let specs = || {
        vec![
            TenantSpec {
                name: "web".into(),
                filter: Some("tcp and port 80".into()),
                cutoff: Some(8 << 10),
                priority: 2,
                mem_share: 300,
                disk_share: 300,
            },
            TenantSpec {
                name: "dns".into(),
                filter: Some("udp".into()),
                cutoff: Some(2 << 10),
                priority: 1,
                mem_share: 200,
                disk_share: 200,
            },
            TenantSpec {
                name: "bulk".into(),
                filter: Some("tcp".into()),
                cutoff: None,
                priority: 0,
                mem_share: 300,
                disk_share: 300,
            },
        ]
    };

    // The seeded fault plan picks the stall point deterministically.
    let plan = FaultPlan::tenant_storm(cfg.seed, 3);
    let stall_after = plan
        .tenants
        .iter()
        .find_map(|f| match f.kind {
            scap_faults::TenantFaultKind::StallConsumer { after_events } => Some(after_events),
            _ => None,
        })
        .expect("tenant storm always stalls someone");

    let wl = campus_workload(cfg);
    let trace = wl.at_rate(4.0);

    // Run one capture with the given tenant set; `stalled` maps tenant
    // name -> event count after which its consumer stops draining.
    let run = |specs: Vec<TenantSpec>, stalled: &[(&str, u64)]| {
        let mut engine = TenantEngine::new(DELIVERY_BUDGET, STRIKE_LIMIT);
        let mut ids = Vec::new();
        for s in specs {
            ids.push((s.name.clone(), engine.attach(s, 0, None).expect("attach")));
        }
        let merged = engine
            .merged_config(scap_config(cfg))
            .expect("merged config");
        let mut kernel = ScapKernel::new(merged);
        kernel.set_tenant_table(engine.images());
        let stalled: Vec<(u64, u64)> = stalled
            .iter()
            .map(|(n, after)| {
                (
                    ids.iter().find(|(name, _)| name == n).expect("tenant").1,
                    *after,
                )
            })
            .collect();
        let all_ids: Vec<u64> = ids.iter().map(|(_, id)| *id).collect();
        let mut drained_events: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        let drain_pass =
            |engine: &mut TenantEngine,
             drained_events: &mut std::collections::HashMap<u64, u64>| {
                for &id in &all_ids {
                    let seen = drained_events.entry(id).or_insert(0);
                    let stall = stalled
                        .iter()
                        .find(|(sid, _)| *sid == id)
                        .map(|(_, after)| *after);
                    if stall.is_some_and(|after| *seen >= after) {
                        continue; // stalled consumer never drains again
                    }
                    *seen += engine.drain(id, u64::MAX).len() as u64;
                }
            };
        let mut now = 0;
        for pkt in &trace {
            now = pkt.ts_ns;
            kernel.nic_receive(pkt);
            for core in 0..kernel.ncores() {
                while kernel.kernel_poll(core, now).is_some() {}
                kernel.kernel_timers(core, now);
                while let Some(ev) = kernel.next_event(core) {
                    engine.on_event(&ev, kernel.flight_mut());
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
            drain_pass(&mut engine, &mut drained_events);
        }
        kernel.finish(now.saturating_add(1));
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                engine.on_event(&ev, kernel.flight_mut());
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        drain_pass(&mut engine, &mut drained_events);
        (engine, kernel)
    };

    let hostile = [("bulk", stall_after)];
    let (shared, kernel) = run(specs(), &hostile);

    // Determinism gate: a second same-seed run must produce a
    // byte-identical flight journal.
    let (_, k2) = run(specs(), &hostile);
    assert_eq!(
        kernel.flight().encode(),
        k2.flight().encode(),
        "tenant run must be deterministic per seed"
    );
    drop(k2);

    let journal = decode_journal(&kernel.flight().encode()).expect("journal decodes");
    let journal_dropped = |id: u64| -> u64 {
        journal
            .events
            .iter()
            .filter(|e| {
                e.kind == FlightKind::Drop
                    && e.layer == FlightLayer::Tenant
                    && e.uid == id
                    && e.reason == DropReason::SlowConsumer
            })
            .map(|e| e.b)
            .sum()
    };

    // The hostile tenant must have walked the full ladder.
    let bulk = shared.tenant_by_name("bulk").expect("bulk attached");
    assert_eq!(
        bulk.state,
        TenantState::Disconnected,
        "hostile tenant must be disconnected, not tolerated"
    );

    let mut iso_rows = Vec::new();
    let mut cons_rows = Vec::new();
    for spec in specs() {
        let name = spec.name.clone();
        let t = shared.tenant_by_name(&name).expect("tenant");
        let (state, id, stats) = (t.state, t.id, t.stats);
        let is_hostile = hostile.iter().any(|(n, _)| *n == name);
        let solo_delivered = {
            let (solo, _) = run(vec![spec], &[]);
            solo.tenant_by_name(&name)
                .expect("solo tenant")
                .stats
                .delivered_bytes
        };
        // Conservation must hold for every tenant, hostile included,
        // and the journal must attribute the drops exactly.
        assert!(
            stats.conserved(),
            "tenant {name}: conservation identity violated: {stats:?}"
        );
        let jd = journal_dropped(id);
        assert_eq!(
            jd, stats.dropped_bytes,
            "tenant {name}: journal drop sum != engine dropped bytes"
        );
        if !is_hostile {
            assert_eq!(
                stats.dropped_bytes, 0,
                "well-behaved tenant {name} took drops"
            );
            assert!(
                stats.delivered_bytes * 100 >= solo_delivered * ISOLATION_BOUND_PCT,
                "isolation bound violated for {name}: shared={} < {}% of solo={}",
                stats.delivered_bytes,
                ISOLATION_BOUND_PCT,
                solo_delivered
            );
        }
        let state_str = match state {
            TenantState::Active => "active",
            TenantState::Degraded => "degraded",
            TenantState::Disconnected => "disconnected",
        };
        let pct = (stats.delivered_bytes * 100)
            .checked_div(solo_delivered)
            .unwrap_or(100);
        iso_rows.push(vec![
            name.clone(),
            state_str.into(),
            solo_delivered.to_string(),
            stats.delivered_bytes.to_string(),
            pct.to_string(),
            if is_hostile { "yes" } else { "no" }.into(),
        ]);
        cons_rows.push(vec![
            name,
            stats.matched_bytes.to_string(),
            stats.delivered_bytes.to_string(),
            stats.dropped_bytes.to_string(),
            stats.discarded_bytes.to_string(),
            jd.to_string(),
            stats.strikes.to_string(),
            stats.disconnects.to_string(),
        ]);
    }

    let isolation = FigureResult {
        name: "tenants_isolation".into(),
        headers: vec![
            "tenant".into(),
            "state".into(),
            "solo_delivered_B".into(),
            "shared_delivered_B".into(),
            "shared/solo %".into(),
            "hostile".into(),
        ],
        rows: iso_rows,
        notes: vec![
            format!(
                "isolation bound (asserted): well-behaved tenants deliver >= {ISOLATION_BOUND_PCT}% \
                 of their solo-run bytes while the hostile tenant stalls (seed {})",
                cfg.seed
            ),
            format!(
                "hostile consumer stalls after {stall_after} events (seeded tenant fault plan); \
                 the ladder degrades, drops with provenance, then disconnects at {STRIKE_LIMIT} strikes"
            ),
            "flight journal byte-identical across two same-seed runs".into(),
        ],
    };
    let conservation = FigureResult {
        name: "tenants_conservation".into(),
        headers: vec![
            "tenant".into(),
            "matched_B".into(),
            "delivered_B".into(),
            "dropped_B".into(),
            "discarded_B".into(),
            "journal_dropped_B".into(),
            "strikes".into(),
            "disconnected".into(),
        ],
        rows: cons_rows,
        notes: vec![
            "per-tenant conservation (asserted): matched == delivered + dropped + discarded".into(),
            "journal_dropped_B is the flight journal's Drop/tenant/slow_consumer byte sum per \
             tenant id — it must equal dropped_B exactly"
                .into(),
        ],
    };
    vec![isolation, conservation]
}

/// Kernel-bypass fast path vs. classic dispatch at a million-plus
/// concurrent flows.
///
/// The workload is 2^20 distinct empty-payload UDP flows (header-only
/// frames, so each flow costs exactly one flow-table record and zero
/// arena memory): an *insert pass* fills the open-addressed table to
/// 1M+ live entries, then a *hit pass* probes the fully loaded table
/// from the reverse direction (exercising canonicalization). The same
/// packets drive both dispatch modes; throughput is derived from the
/// calibrated cost model as `pkts/s = wire_pkts * ncores * core_hz /
/// kernel_cycles`.
///
/// Asserted (panics on violation, so the CI gate is a plain
/// exit-status check):
/// - conservation `wire == delivered + dropped + discarded`, exact,
///   on both paths — once after the clean drive and once after an
///   induced NIC-ring-overflow phase;
/// - flight-journal drop/discard sums reconcile *exactly* against the
///   telemetry counters, with real induced drops so the check is not
///   vacuous;
/// - both paths deliver identical packet/flow totals;
/// - the bypass path beats classic pkts/s at full table load.
///
/// A second figure ablates the burst size (8..128 frames) at 128 K
/// flows.
pub fn fastpath(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::telemetry::Metric;
    use scap::{DispatchMode, EventKind, ScapConfig};
    use scap_flight::{decode_journal, FlightKind};
    use scap_sim::{CostModel, Work};
    use scap_trace::Packet;
    use scap_wire::PacketBuilder;

    const FLOWS: u64 = 1 << 20; // 1,048,576 concurrent flows
    const ABLATION_FLOWS: u64 = 1 << 17;
    // Packets slammed into the NIC without polling to force ring-full
    // drops (8 rings x 4096 slots fill first; the excess is dropped
    // with provenance). Reuses live flow keys, so no new flows appear.
    // NIC-layer drops are journaled into core 0's flight ring (8192
    // events), so the expected drop count (~3.2 K) must stay below
    // that for the exact reconciliation to see every event.
    const OVERLOAD: u64 = 36_000;

    // Insert pass then hit pass. 100 ns spacing keeps the entire run
    // inside the (raised) inactivity timeout: every flow admitted in
    // the insert pass is still live when the hit pass probes it.
    fn make_pkts(flows: u64) -> Vec<Packet> {
        let mut pkts = Vec::with_capacity(flows as usize * 2);
        let mut ts = 1u64;
        for pass in 0..2u64 {
            for i in 0..flows {
                let src = [10, (i >> 16) as u8, (i >> 8) as u8, i as u8];
                let dst = [172, 16 + (i >> 16) as u8, (i >> 8) as u8, i as u8];
                let sport = 1024 + (i % 60_000) as u16;
                let frame = if pass == 0 {
                    PacketBuilder::udp_v4(src, dst, sport, 53, &[])
                } else {
                    PacketBuilder::udp_v4(dst, src, 53, sport, &[])
                };
                pkts.push(Packet::new(ts, frame));
                ts += 100;
            }
        }
        pkts
    }

    // Batched drive: enqueue a batch (well under the 4096-slot rings),
    // then poll every core dry and drain its events. Returns the
    // accumulated `Work` receipt for the cost model.
    fn drive(kernel: &mut ScapKernel, pkts: &[Packet], fastpath: bool) -> Work {
        const BATCH: usize = 512;
        let mut work = Work::default();
        for batch in pkts.chunks(BATCH) {
            for p in batch {
                kernel.nic_receive(p);
            }
            let now = batch.last().expect("non-empty batch").ts_ns;
            for core in 0..kernel.ncores() {
                loop {
                    let w = if fastpath {
                        kernel.poll_burst(core, now)
                    } else {
                        kernel.kernel_poll(core, now)
                    };
                    match w {
                        Some(w) => work.add(&w),
                        None => break,
                    }
                }
                while let Some(ev) = kernel.next_event(core) {
                    // Delivery span: producing packet's NIC ingress to
                    // this hand-off (exemplar-eligible).
                    kernel.note_delivery(&ev, now);
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
        }
        work
    }

    struct RunOut {
        wire: u64,
        delivered: u64,
        concurrent: u64,
        cyc_per_pkt: f64,
        mpps: f64,
        fill_permille: u64,
        induced_drops: u64,
        pulse: scap::telemetry::PulseSnapshot,
    }

    let model = CostModel::default();
    let run = |mode: DispatchMode, burst: usize, pkts: &[Packet], flows: u64| -> RunOut {
        let mut sc: ScapConfig = scap_config(cfg);
        sc.dispatch = mode;
        sc.fastpath_burst = burst;
        // Concurrency is the point: no flow may expire mid-run.
        sc.inactivity_timeout_ns = u64::MAX / 2;
        let mut kernel = ScapKernel::new(sc);
        let is_fp = mode == DispatchMode::Fastpath;

        // Phase 1: the measured drive (insert pass + hit pass).
        let work = drive(&mut kernel, pkts, is_fp);
        // Pulse acceptance on the measured phase, while every exemplar's
        // `pulse_exemplar` journal event is still in its flight ring
        // (finish() floods the rings with StreamTerminated events).
        let pulse = kernel.pulse_snapshot();
        {
            let journal = decode_journal(&kernel.flight().encode())
                .expect("journal round-trips through the codec");
            assert_pulse_acceptance(&pulse, Some(&journal));
        }
        let snap = kernel.telemetry_snapshot();
        let wire = snap.total(Metric::WirePackets);
        let delivered = snap.total(Metric::DeliveredPackets);
        let dropped = snap.total(Metric::DroppedPackets);
        let discarded = snap.total(Metric::DiscardedPackets);
        assert_eq!(
            wire,
            delivered + dropped + discarded,
            "conservation identity violated after clean drive ({mode:?})"
        );
        assert_eq!(
            dropped, 0,
            "the measured drive must be loss-free ({mode:?})"
        );
        assert_eq!(
            wire,
            pkts.len() as u64,
            "every packet reaches the wire counter"
        );
        let concurrent: u64 = (0..kernel.ncores())
            .map(|c| kernel.tracked_streams(c) as u64)
            .sum();
        assert_eq!(
            concurrent, flows,
            "all {flows} flows must be live simultaneously ({mode:?})"
        );

        // Phase 2 (unmeasured): induce real NIC-ring-overflow drops,
        // then reconcile the flight journal against telemetry exactly.
        // Runs before `finish`, while the per-core drop events are the
        // newest entries in their flight rings.
        if flows >= FLOWS {
            let last_ts = pkts.last().expect("non-empty workload").ts_ns;
            let mut over = Vec::with_capacity(OVERLOAD as usize);
            for i in 0..OVERLOAD {
                let src = [10, (i >> 16) as u8, (i >> 8) as u8, i as u8];
                let dst = [172, 16 + (i >> 16) as u8, (i >> 8) as u8, i as u8];
                let sport = 1024 + (i % 60_000) as u16;
                over.push(Packet::new(
                    last_ts + 1 + i,
                    PacketBuilder::udp_v4(src, dst, sport, 53, &[]),
                ));
            }
            for p in &over {
                kernel.nic_receive(p); // no polling: rings overflow
            }
            let now = over.last().expect("overload packets").ts_ns;
            for core in 0..kernel.ncores() {
                loop {
                    let w = if is_fp {
                        kernel.poll_burst(core, now)
                    } else {
                        kernel.kernel_poll(core, now)
                    };
                    if w.is_none() {
                        break;
                    }
                }
                while let Some(ev) = kernel.next_event(core) {
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
            let snap2 = kernel.telemetry_snapshot();
            let (w2, del2, drop2, disc2) = (
                snap2.total(Metric::WirePackets),
                snap2.total(Metric::DeliveredPackets),
                snap2.total(Metric::DroppedPackets),
                snap2.total(Metric::DiscardedPackets),
            );
            assert_eq!(
                w2,
                del2 + drop2 + disc2,
                "conservation identity violated after overload ({mode:?})"
            );
            assert!(drop2 > 0, "the overload phase must force ring-full drops");
            let journal = decode_journal(&kernel.flight().encode())
                .expect("journal round-trips through the codec");
            let mut jd = (0u64, 0u64);
            let mut jx = (0u64, 0u64);
            for e in &journal.events {
                match e.kind {
                    FlightKind::Drop => {
                        jd.0 += e.a;
                        jd.1 += e.b;
                    }
                    FlightKind::Discard => {
                        jx.0 += e.a;
                        jx.1 += e.b;
                    }
                    _ => {}
                }
            }
            assert_eq!(
                jd.0, drop2,
                "flight Drop pkts != telemetry DroppedPackets ({mode:?})"
            );
            assert_eq!(
                jd.1,
                snap2.total(Metric::DroppedBytes),
                "flight Drop bytes != telemetry DroppedBytes ({mode:?})"
            );
            assert_eq!(
                jx.0, disc2,
                "flight Discard pkts != telemetry DiscardedPackets ({mode:?})"
            );
        }
        let induced_drops = kernel.telemetry_snapshot().total(Metric::DroppedPackets);

        let fill_permille = kernel.fastpath_stats().fill_permille();
        kernel.finish(pkts.last().map_or(1, |p| p.ts_ns) + OVERLOAD + 2);
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }

        let cycles = model.kernel_cycles(&work).max(1.0);
        let cyc_per_pkt = cycles / wire as f64;
        let mpps = wire as f64 * model.core_hz * kernel.ncores() as f64 / cycles / 1e6;
        RunOut {
            wire,
            delivered,
            concurrent,
            cyc_per_pkt,
            mpps,
            fill_permille,
            induced_drops,
            pulse,
        }
    };

    // Head-to-head at full scale.
    let pkts = make_pkts(FLOWS);
    let classic = run(DispatchMode::Classic, 64, &pkts, FLOWS);
    let fp = run(DispatchMode::Fastpath, 64, &pkts, FLOWS);
    drop(pkts);
    assert_eq!(
        classic.delivered, fp.delivered,
        "both dispatch paths must deliver identical packet totals"
    );
    assert_eq!(classic.wire, fp.wire);
    assert!(
        fp.mpps > classic.mpps,
        "bypass must beat classic at 1M flows: {:.2} vs {:.2} Mpkt/s",
        fp.mpps,
        classic.mpps
    );

    let throughput = FigureResult {
        name: "fastpath_throughput".into(),
        headers: vec![
            "path".into(),
            "burst".into(),
            "wire_pkts".into(),
            "concurrent_flows".into(),
            "cycles/pkt".into(),
            "Mpkt/s".into(),
            "speedup".into(),
            "induced_drops".into(),
        ],
        rows: vec![
            vec![
                "classic".into(),
                "-".into(),
                classic.wire.to_string(),
                classic.concurrent.to_string(),
                f1(classic.cyc_per_pkt),
                f2(classic.mpps),
                "1.00".into(),
                classic.induced_drops.to_string(),
            ],
            vec![
                "fastpath".into(),
                "64".into(),
                fp.wire.to_string(),
                fp.concurrent.to_string(),
                f1(fp.cyc_per_pkt),
                f2(fp.mpps),
                f2(fp.mpps / classic.mpps),
                fp.induced_drops.to_string(),
            ],
        ],
        notes: vec![
            format!(
                "asserted: bypass beats classic at {FLOWS} concurrent flows \
                 ({:.2} vs {:.2} Mpkt/s, {:.1}x), identical delivery on both paths",
                fp.mpps,
                classic.mpps,
                fp.mpps / classic.mpps
            ),
            "asserted: conservation wire == delivered + dropped + discarded exact on both \
             paths, and flight-journal drop/discard sums reconcile exactly against \
             telemetry after induced NIC-ring-overflow drops"
                .into(),
            format!(
                "pkts/s derived from the calibrated cost model: wire_pkts * ncores * \
                 core_hz / kernel_cycles; fastpath burst fill {} permille",
                fp.fill_permille
            ),
        ],
    };

    // Burst-size ablation at 128 K flows, classic as the reference row.
    let apkts = make_pkts(ABLATION_FLOWS);
    let aref = run(DispatchMode::Classic, 64, &apkts, ABLATION_FLOWS);
    let mut arows = vec![vec![
        "classic".into(),
        "-".into(),
        f1(aref.cyc_per_pkt),
        f2(aref.mpps),
        "1.00".into(),
        "-".into(),
    ]];
    for burst in [8usize, 16, 32, 64, 128] {
        let r = run(DispatchMode::Fastpath, burst, &apkts, ABLATION_FLOWS);
        arows.push(vec![
            "fastpath".into(),
            burst.to_string(),
            f1(r.cyc_per_pkt),
            f2(r.mpps),
            f2(r.mpps / aref.mpps),
            r.fill_permille.to_string(),
        ]);
    }
    // Same-seed determinism probe at a small scale: the pulse plane
    // (histograms, thresholds, and the exemplar set) must be
    // byte-identical across reruns, or the latency section could not be
    // compared between runs.
    let dpkts = make_pkts(1 << 12);
    let d1 = run(DispatchMode::Fastpath, 64, &dpkts, 1 << 12);
    let d2 = run(DispatchMode::Fastpath, 64, &dpkts, 1 << 12);
    assert_eq!(
        d1.pulse, d2.pulse,
        "same-seed runs must produce identical pulse snapshots"
    );
    drop(dpkts);

    let latency = latency_figure(
        "fastpath_latency",
        &fp.pulse,
        vec![
            format!(
                "pulse plane of the measured fast-path drive at {FLOWS} concurrent flows \
                 (insert + hit pass, batch 512); clock-difference stages ride the trace \
                 clock, processing stages the 2 GHz virtual cost model"
            ),
            "asserted: nonzero delivery p99, every exemplar >= its stage's sampling \
             threshold, every exemplar uid resolves in the flight journal, and a \
             same-seed rerun reproduces the pulse snapshot byte-for-byte"
                .into(),
        ],
    );

    let ablation = FigureResult {
        name: "fastpath_burst_ablation".into(),
        headers: vec![
            "path".into(),
            "burst".into(),
            "cycles/pkt".into(),
            "Mpkt/s".into(),
            "speedup".into(),
            "fill_permille".into(),
        ],
        rows: arows,
        notes: vec![
            format!(
                "burst ablation at {ABLATION_FLOWS} flows: the per-burst charge amortizes \
                 across more frames as the burst grows, with diminishing returns past ~64"
            ),
            "fill_permille is how full the average pulled burst ran (1000 = every pull \
             returned a full burst)"
                .into(),
        ],
    };
    vec![throughput, latency, ablation]
}

/// The programmable per-flow offload engine: hit rate vs. softirq
/// savings per cutoff (mirroring Fig. 8's axes), a 10–100× amplified
/// million-flow streaming replay, and byte-exact drop reconciliation
/// against the flight journal.
pub fn offload(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::telemetry::Metric;
    use scap::{EventKind, OffloadAction, OffloadRule, ScapConfig};
    use scap_flight::{decode_journal, DropReason, FlightKind};
    use scap_trace::{Amplifier, AmplifyConfig, CampusMix, CampusMixConfig, Packet};

    let eng = engine();
    let wl = campus_workload(cfg);
    let gbps = 4.0;

    // ---- Part 1: hit rate vs. softirq savings per cutoff (fig. 8 axes).
    //
    // Three Scap variants per cutoff: no NIC filters (every packet pays
    // the softirq path), the fixed FDIR stage, and the programmable
    // offload stage. The offload column also reports its hit rate: the
    // fraction of wire packets the NIC resolved without host work.
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &cutoff in &cfg.scale.cutoffs {
        let label = if cutoff >= 1 << 20 {
            format!("{}M", cutoff >> 20)
        } else if cutoff >= 1 << 10 {
            format!("{}K", cutoff >> 10)
        } else {
            cutoff.to_string()
        };
        let mut sirq = Vec::new();
        let mut hit_pct = 0.0;
        for variant in 0..3usize {
            let mut sc: ScapConfig = scap_config(cfg);
            sc.cutoff.default = Some(cutoff);
            sc.use_fdir = variant == 1;
            sc.use_offload = variant == 2;
            let (rep, stack) = run_scap(&eng, sc, flow_stats_app(), wl.at_rate(gbps));
            sirq.push(rep.softirq_percent());
            let s = stack.kernel().stats();
            let n = stack.kernel().nic_stats();
            assert_eq!(
                s.stack.wire_packets,
                s.stack.delivered_packets + s.stack.dropped_packets + s.stack.discarded_packets,
                "conservation identity violated (cutoff {cutoff}, variant {variant})"
            );
            match variant {
                1 => assert_eq!(s.offload_ops, 0, "offload disabled must stay idle"),
                2 => {
                    assert_eq!(
                        s.fdir_ops, 0,
                        "a healthy offload table must absorb every cutoff rule"
                    );
                    assert_eq!(
                        s.stack.nic_filtered_packets,
                        n.offload_dropped_frames + n.offload_sampled_frames,
                        "every NIC-filtered packet must be attributed to an offload rule"
                    );
                    hit_pct = 100.0 * stack.kernel().offload_stats().hits as f64
                        / s.stack.wire_packets.max(1) as f64;
                    // Large cutoffs can exceed the biggest flow the scaled
                    // trace contains; only cutoffs the traffic actually
                    // crosses are guaranteed to install rules.
                    if cutoff <= 100 << 10 {
                        assert!(
                            s.offload_ops > 0,
                            "cutoff {cutoff}: the offload path must install rules"
                        );
                    }
                }
                _ => {}
            }
        }
        let savings = (sirq[0] - sirq[2]).max(0.0);
        rows.push(vec![
            label,
            f1(hit_pct),
            f1(sirq[0]),
            f1(sirq[1]),
            f1(sirq[2]),
            f1(savings),
        ]);
    }
    notes.push(
        "asserted per run: conservation wire == delivered + dropped + discarded, \
         offload absorbs every cutoff rule (fdir_ops == 0), and rules are installed \
         at every cutoff the traffic actually crosses"
            .into(),
    );
    notes.push(
        "hit_rate% = offload-resolved frames / wire frames; savings = softirq(none) \
         - softirq(offload), the Fig. 8c axis the offload stage moves"
            .into(),
    );
    let fig8_mirror = FigureResult {
        name: "offload_fig8_softirq".into(),
        headers: vec![
            "cutoff".into(),
            "hit_rate%".into(),
            "softirq_none%".into(),
            "softirq_fdir%".into(),
            "softirq_offload%".into(),
            "savings_pp".into(),
        ],
        rows,
        notes,
    };

    // ---- Part 2: the amplified million-flow streaming replay.
    //
    // The concurrency amplifier fans the campus mix out 10–100× into
    // distinct NAT-rewritten flows, *streamed* — the amplified trace is
    // never materialized, so memory stays bounded by the base trace plus
    // the kernel's fixed arena and tables regardless of the factor.
    let base_flows = wl.stats.flows.max(1);
    let target_flows: u64 = if cfg.scale.name == "smoke" {
        10_000
    } else {
        1 << 20
    };
    let factor = (target_flows.div_ceil(base_flows)).clamp(10, 100) as usize;
    let mut sc: ScapConfig = scap_config(cfg);
    sc.cutoff.default = Some(10 << 10);
    sc.use_offload = true;
    // No flow may expire mid-run: every amplified flow stays tracked, so
    // the end-of-run count *is* the concurrency level reached.
    sc.inactivity_timeout_ns = u64::MAX / 2;
    let capacity = sc.offload_capacity;
    let mut kernel = ScapKernel::new(sc);
    let amplified = Amplifier::new(wl.trace.iter().cloned(), AmplifyConfig::by(factor));
    let mut wire_in = 0u64;
    let mut batch: Vec<Packet> = Vec::with_capacity(512);
    let drain = |kernel: &mut ScapKernel, batch: &mut Vec<Packet>| {
        let now = batch.last().expect("non-empty batch").ts_ns;
        for p in batch.iter() {
            kernel.nic_receive(p);
        }
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        batch.clear();
    };
    let mut last_ts = 0u64;
    for p in amplified {
        wire_in += 1;
        last_ts = p.ts_ns;
        batch.push(p);
        if batch.len() == 512 {
            drain(&mut kernel, &mut batch);
        }
    }
    if !batch.is_empty() {
        drain(&mut kernel, &mut batch);
    }

    let s = kernel.stats();
    let n = kernel.nic_stats();
    let os = kernel.offload_stats();
    assert!(factor >= 10, "amplification must reach at least 10x");
    assert_eq!(
        s.stack.wire_packets,
        s.stack.delivered_packets + s.stack.dropped_packets + s.stack.discarded_packets,
        "conservation identity violated in the amplified replay"
    );
    assert!(
        s.stack.streams_created >= base_flows * factor as u64 * 9 / 10,
        "amplified replay must track ~{factor}x the base flows: created {} of {}",
        s.stack.streams_created,
        base_flows * factor as u64
    );
    assert!(
        kernel.offload_rules() <= capacity,
        "the offload table must stay within its fixed capacity"
    );
    assert_eq!(
        s.stack.nic_filtered_packets,
        n.offload_dropped_frames + n.offload_sampled_frames,
        "every NIC-filtered packet must be attributed to an offload rule"
    );
    let hit_rate = 100.0 * os.hits as f64 / s.stack.wire_packets.max(1) as f64;
    let concurrent: u64 = (0..kernel.ncores())
        .map(|c| kernel.tracked_streams(c) as u64)
        .sum();
    let load_permille = kernel.offload_load_permille();
    let rules_resident = kernel.offload_rules();
    kernel.finish(last_ts + 1);
    let scale_fig = FigureResult {
        name: "offload_scale".into(),
        headers: vec!["metric".into(), "value".into()],
        rows: vec![
            vec!["base_flows".into(), base_flows.to_string()],
            vec!["amplification".into(), format!("{factor}x")],
            vec!["flows_replayed".into(), s.stack.streams_created.to_string()],
            vec!["concurrent_at_end".into(), concurrent.to_string()],
            vec!["wire_pkts".into(), wire_in.to_string()],
            vec!["offload_rule_ops".into(), s.offload_ops.to_string()],
            vec!["rules_resident_at_end".into(), rules_resident.to_string()],
            vec!["offload_hit_rate%".into(), f1(hit_rate)],
            vec![
                "nic_dropped_pkts".into(),
                n.offload_dropped_frames.to_string(),
            ],
            vec!["evictions".into(), os.evictions.to_string()],
            vec!["table_load_permille".into(), load_permille.to_string()],
        ],
        notes: vec![
            format!(
                "memory-bounded by construction: the {factor}x amplified trace is \
                 streamed through a lazy NAT-rewriting iterator and never materialized; \
                 kernel arena and offload table are fixed-size"
            ),
            "asserted: conservation exact, >=10x amplification, ~factor x base flows \
             tracked, table within capacity, every NIC-filtered packet attributed"
                .into(),
        ],
    };

    // ---- Part 3: the full action mix, reconciled byte-exactly against
    // the flight journal. A small sub-trace keeps every per-packet drop
    // event inside the (raised) flight ring, so reconciliation sees all
    // of them — no sampling, no tolerance.
    let sub_bytes = cfg.scale.trace_bytes.min(16 << 20);
    let sub: Vec<Packet> =
        CampusMix::new(CampusMixConfig::sized(cfg.seed ^ 7, sub_bytes)).collect_all();
    let mut sc: ScapConfig = scap_config(cfg);
    sc.cutoff.default = Some(10 << 10);
    sc.use_offload = true;
    sc.flight_ring_cap = 1 << 17;
    let mut kernel = ScapKernel::new(sc);
    // Pre-install application rules over real flows of the sub-trace so
    // all four actions appear: every 7th flow sampled 1-in-4, every 11th
    // bypassed, every 13th marked.
    let mut seen = std::collections::HashSet::new();
    let (mut installed_sample, mut installed_bypass, mut installed_mark) = (0u64, 0u64, 0u64);
    for p in &sub {
        if let Ok(parsed) = scap_wire::parse_frame(&p.frame) {
            if let Some(key) = parsed.key {
                if !parsed.is_tcp() || !seen.insert(key.canonical().0) {
                    continue;
                }
                let i = seen.len();
                let rule = if i % 7 == 0 {
                    installed_sample += 1;
                    OffloadRule::new(key, OffloadAction::Sample(4), 1)
                } else if i % 11 == 0 {
                    installed_bypass += 1;
                    OffloadRule::new(key, OffloadAction::Bypass, 1)
                } else if i % 13 == 0 {
                    installed_mark += 1;
                    OffloadRule::new(key, OffloadAction::Mark(2), 2)
                } else {
                    continue;
                };
                kernel
                    .offload_install(rule)
                    .expect("pre-install fits the table");
            }
        }
    }
    let mut batch: Vec<Packet> = Vec::with_capacity(512);
    for p in &sub {
        batch.push(p.clone());
        if batch.len() == 512 {
            drain(&mut kernel, &mut batch);
        }
    }
    if !batch.is_empty() {
        drain(&mut kernel, &mut batch);
    }
    let snap = kernel.telemetry_snapshot();
    let n = kernel.nic_stats();
    let os = kernel.offload_stats();
    assert_eq!(
        snap.total(Metric::WirePackets),
        snap.total(Metric::DeliveredPackets)
            + snap.total(Metric::DroppedPackets)
            + snap.total(Metric::DiscardedPackets),
        "conservation identity violated in the action-mix run"
    );
    let journal =
        decode_journal(&kernel.flight().encode()).expect("journal round-trips through the codec");
    assert_eq!(
        journal.total_dropped(),
        0,
        "the raised flight ring must retain every event for exact reconciliation"
    );
    let (mut jd, mut js) = ((0u64, 0u64), (0u64, 0u64));
    for e in &journal.events {
        if e.kind != FlightKind::Discard {
            continue;
        }
        match e.reason {
            DropReason::OffloadDrop => {
                jd.0 += e.a;
                jd.1 += e.b;
            }
            DropReason::OffloadSample => {
                js.0 += e.a;
                js.1 += e.b;
            }
            _ => {}
        }
    }
    assert_eq!(
        (jd.0, jd.1),
        (n.offload_dropped_frames, n.offload_dropped_bytes),
        "offload Drop events must reconcile byte-exactly against the NIC counters"
    );
    assert_eq!(
        (js.0, js.1),
        (n.offload_sampled_frames, n.offload_sampled_bytes),
        "offload Sample events must reconcile byte-exactly against the NIC counters"
    );
    let last = sub.last().map_or(1, |p| p.ts_ns);
    kernel.finish(last + 1);
    let reconcile = FigureResult {
        name: "offload_action_mix".into(),
        headers: vec![
            "action".into(),
            "rules".into(),
            "frames".into(),
            "bytes".into(),
        ],
        rows: vec![
            vec![
                "drop (cutoff)".into(),
                "kernel".into(),
                os.drop_frames.to_string(),
                os.drop_bytes.to_string(),
            ],
            vec![
                "sample 1-in-4".into(),
                installed_sample.to_string(),
                format!(
                    "{} kept / {} shed",
                    os.sample_kept_frames, os.sample_drop_frames
                ),
                os.sample_drop_bytes.to_string(),
            ],
            vec![
                "bypass".into(),
                installed_bypass.to_string(),
                os.bypass_frames.to_string(),
                os.bypass_bytes.to_string(),
            ],
            vec![
                "mark".into(),
                installed_mark.to_string(),
                os.mark_frames.to_string(),
                "-".into(),
            ],
            vec![
                "control punt".into(),
                "-".into(),
                os.control_passthrough.to_string(),
                "-".into(),
            ],
        ],
        notes: vec![
            "asserted: flight-journal OffloadDrop and OffloadSample discard events \
             reconcile byte-exactly (packets and bytes) against the NIC offload \
             counters, with zero journal overwrites"
                .into(),
            "SYN/FIN/RST punt to the host through drop-class rules, so stream \
             lifecycle tracking survives subzero-copy shunting"
                .into(),
        ],
    };

    vec![fig8_mirror, scale_fig, reconcile]
}

/// Sustained-load soak: the amplified multi-million-flow replay
/// partitioned across a shard fleet under a seeded shard-kill storm
/// (kills, heartbeat stalls, checkpoint corruption), with one archive
/// per shard and a federated query across the surviving fleet.
///
/// Proves the PR's robustness claims end to end: byte-exact fleet
/// conservation reconciled against the supervisor's flight journal,
/// every killed shard respawned (or parked by the breaker) within a
/// bounded blackout, and federated queries that report per-shard
/// partial-result status instead of silently shrinking.
pub fn soak(cfg: &ExpConfig) -> Vec<FigureResult> {
    use scap::{FaultPlan, FleetConfig, ScapConfig, ShardFleet, ShardState};
    use scap_flight::{decode_journal, DropReason, FlightKind, FlightLayer};
    use scap_store::{FederatedReader, ShardOutcome, StoreConfig, StoreWriter};
    use scap_trace::{Amplifier, AmplifyConfig};
    use std::time::Duration;

    let wl = campus_workload(cfg);
    let nshards: usize = if cfg.scale.name == "smoke" { 4 } else { 8 };
    let base_flows = wl.stats.flows.max(1);
    let target_flows: u64 = if cfg.scale.name == "smoke" {
        20_000
    } else {
        2 << 20
    };
    let factor = (target_flows.div_ceil(base_flows)).clamp(10, 100) as usize;

    let mut shard_cfg: ScapConfig = scap_config(cfg);
    // No flow may expire mid-run: the end-of-run tracked count is the
    // concurrency the fleet actually sustained.
    shard_cfg.inactivity_timeout_ns = u64::MAX / 2;
    let fleet_cfg = FleetConfig {
        nshards,
        shard: shard_cfg,
        faults: Some(FaultPlan::shard_storm(cfg.seed, nshards)),
        ..FleetConfig::default()
    };
    let lease_timeout_ns = fleet_cfg.lease_timeout_ns;
    let backoff_cap_ns = fleet_cfg.backoff_cap_ns;
    let mut fleet = ShardFleet::new(fleet_cfg);

    // One archive per shard under a common root — the layout
    // `FederatedReader` federates over.
    let store_root = cfg.out_dir.join("soak_store");
    let _ = std::fs::remove_dir_all(&store_root);
    let mut writers: Vec<StoreWriter> = (0..nshards)
        .map(|s| {
            StoreWriter::open(
                StoreConfig::new(store_root.join(format!("shard-{s}"))).segment_bytes(1 << 20),
            )
            .expect("open shard archive")
        })
        .collect();

    let amplified = Amplifier::new(wl.trace.iter().cloned(), AmplifyConfig::by(factor));
    let mut wire_in = 0u64;
    let mut wire_bytes_in = 0u64;
    let mut last_ts = 0u64;
    let wall = std::time::Instant::now();
    for p in amplified {
        wire_in += 1;
        wire_bytes_in += p.frame.len() as u64;
        last_ts = p.ts_ns;
        fleet.offer_with(&p, &mut |shard, ev| {
            writers[shard].observe(ev).expect("shard archive write");
        });
    }
    // Let every in-flight respawn land (backoff is bounded by the cap),
    // then flush the fleet: surviving kernels finish into their shard's
    // archive, down shards close their final blackout.
    fleet.tick(last_ts + backoff_cap_ns + 1);
    // Concurrency snapshot before finish() flushes every tracked stream.
    let tracked: u64 = fleet.status().iter().map(|s| s.tracked_streams).sum();
    fleet.finish_with(last_ts + backoff_cap_ns + 2, &mut |shard, ev| {
        writers[shard].observe(ev).expect("shard archive write");
    });
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let mut streams_archived = 0u64;
    for w in &mut writers {
        streams_archived += w.finish().expect("shard archive finish").streams_archived;
    }
    // Store-seal spans live in the per-shard archive writers, outside
    // the fleet; harvest them before the writers close.
    let mut store_pulse = scap::telemetry::PulseSnapshot::default();
    for w in &writers {
        store_pulse.merge(&w.pulse_snapshot());
    }
    drop(writers);

    let fs = fleet.fleet_stats();
    let status = fleet.status();

    // ---- The fleet-merged pulse plane: shard histograms merge in the
    // supervisor harvest (every retired incarnation plus the survivors),
    // and the merged exemplar set is re-filtered against the fleet-wide
    // tail. The journal-resolution check lives in the fastpath
    // experiment — here finish() has already flooded the rings with
    // StreamTerminated events.
    let mut fleet_pulse = fleet.fleet_pulse();
    fleet_pulse.merge(&store_pulse);
    assert_pulse_acceptance(&fleet_pulse, None);

    // ---- Fleet-wide conservation, byte-exact.
    assert_eq!(fs.wire_packets, wire_in, "fleet must see every wire packet");
    assert_eq!(
        fs.wire_bytes, wire_bytes_in,
        "fleet must see every wire byte"
    );
    assert!(
        fs.packets_conserved(),
        "fleet packet conservation violated: wire {} != delivered {} + dropped {} + \
         discarded {} + shard_down {}",
        fs.wire_packets,
        fs.delivered_packets,
        fs.dropped_packets,
        fs.discarded_packets,
        fs.shard_down_packets
    );
    assert!(
        fs.bytes_conserved(),
        "fleet byte conservation violated: wire {} != shard wire {} + shard_down {}",
        fs.wire_bytes,
        fs.shard_wire_bytes,
        fs.shard_down_bytes
    );

    // ---- Blackout loss reconciles byte-exactly against the
    // supervisor's flight journal (one aggregated ShardDown drop per
    // blackout, so the bounded ring cannot lose precision).
    let journal = decode_journal(&fleet.flight().encode()).expect("supervisor journal decodes");
    assert_eq!(
        journal.total_dropped(),
        0,
        "the supervisor ring must retain every blackout event"
    );
    let (mut jp, mut jb) = (0u64, 0u64);
    for e in &journal.events {
        if e.kind == FlightKind::Drop
            && e.layer == FlightLayer::Shard
            && e.reason == DropReason::ShardDown
        {
            jp += e.a;
            jb += e.b;
        }
    }
    assert_eq!(
        (jp, jb),
        (fs.shard_down_packets, fs.shard_down_bytes),
        "journal ShardDown events must reconcile byte-exactly against the fleet counters"
    );

    // ---- The storm actually stormed, and recovery is bounded: every
    // killed shard is back up (kills == respawns) or parked by the
    // circuit breaker, with no blackout longer than stall + lease
    // deadline + backoff cap + tick slack.
    assert!(
        fs.kills > 0,
        "the seeded storm must kill at least one shard"
    );
    for st in &status {
        assert!(
            st.state == ShardState::Parked || st.kills == st.respawns,
            "shard {}: {} kills but only {} respawns and not parked",
            st.shard,
            st.kills,
            st.respawns
        );
    }
    let blackout_bound_ns = 20_000_000 + lease_timeout_ns + 2 * backoff_cap_ns + 10_000_000;
    assert!(
        fs.max_blackout_ns <= blackout_bound_ns,
        "recovery must be bounded: worst blackout {} ns > bound {} ns",
        fs.max_blackout_ns,
        blackout_bound_ns
    );

    // ---- Federated queries across the per-shard archives: complete
    // over a healthy fleet, explicitly partial under a zero budget.
    let fed = FederatedReader::open(&store_root).expect("open federated root");
    assert_eq!(fed.nshards(), nshards);
    let res = fed.query("tcp and port 80", Duration::from_secs(60));
    assert!(
        !res.partial,
        "intact shard archives must yield a complete federated result"
    );
    assert_eq!(res.ok_shards(), nshards);
    let starved = fed.query("tcp and port 80", Duration::ZERO);
    assert!(
        starved.partial && starved.records.is_empty(),
        "a zero budget must be reported as partial, never as an empty success"
    );

    let mpps = wire_in as f64 / elapsed / 1e6;
    let gbps = wire_bytes_in as f64 * 8.0 / elapsed / 1e9;
    let fleet_fig = FigureResult {
        name: "soak_fleet".into(),
        headers: vec!["metric".into(), "value".into()],
        rows: vec![
            vec!["shards".into(), nshards.to_string()],
            vec!["amplification".into(), format!("{factor}x")],
            vec!["flows_tracked".into(), fs.streams_created.to_string()],
            vec!["concurrent_at_end".into(), tracked.to_string()],
            vec!["wire_pkts".into(), fs.wire_packets.to_string()],
            vec!["wire_bytes".into(), fs.wire_bytes.to_string()],
            vec!["delivered_pkts".into(), fs.delivered_packets.to_string()],
            vec!["dropped_pkts".into(), fs.dropped_packets.to_string()],
            vec!["discarded_pkts".into(), fs.discarded_packets.to_string()],
            vec!["shard_down_pkts".into(), fs.shard_down_packets.to_string()],
            vec!["shard_down_bytes".into(), fs.shard_down_bytes.to_string()],
            vec!["kills".into(), fs.kills.to_string()],
            vec!["lease_expiries".into(), fs.lease_expiries.to_string()],
            vec!["respawns".into(), fs.respawns.to_string()],
            vec!["ckpt_fallbacks".into(), fs.ckpt_fallbacks.to_string()],
            vec!["cold_starts".into(), fs.cold_starts.to_string()],
            vec!["parked".into(), fs.parked.to_string()],
            vec![
                "max_blackout_ms".into(),
                f2(fs.max_blackout_ns as f64 / 1e6),
            ],
            vec!["resume_gap_bytes".into(), fs.resume_gap_bytes.to_string()],
            vec!["resumed_streams".into(), fs.resumed_streams.to_string()],
            vec![
                "checkpoints_written".into(),
                fs.checkpoints_written.to_string(),
            ],
            vec!["streams_archived".into(), streams_archived.to_string()],
            vec!["throughput_mpps".into(), f2(mpps)],
            vec!["throughput_gbps".into(), f2(gbps)],
        ],
        notes: vec![
            "asserted: fleet conservation exact in packets and bytes (wire == \
             Σ shard incarnations + shard_down), journal ShardDown events reconcile \
             byte-exactly, storm killed >= 1 shard, every kill respawned or parked, \
             worst blackout within lease + backoff + stall bound"
                .into(),
            format!(
                "storm: FaultPlan::shard_storm(seed={}, shards={nshards}) — kills on \
                 every shard, heartbeat stalls on odd shards, one checkpoint \
                 corruption victim",
                cfg.seed
            ),
        ],
    };

    let shard_rows = status
        .iter()
        .map(|st| {
            vec![
                st.shard.to_string(),
                st.state.name().into(),
                st.offered_pkts.to_string(),
                st.tracked_streams.to_string(),
                st.kills.to_string(),
                st.respawns.to_string(),
                st.down_pkts.to_string(),
                st.down_bytes.to_string(),
                f2(st.max_blackout_ns as f64 / 1e6),
                st.ckpt_fallbacks.to_string(),
                st.cold_starts.to_string(),
            ]
        })
        .collect();
    let shards_fig = FigureResult {
        name: "soak_shards".into(),
        headers: vec![
            "shard".into(),
            "state".into(),
            "offered_pkts".into(),
            "tracked".into(),
            "kills".into(),
            "respawns".into(),
            "down_pkts".into(),
            "down_bytes".into(),
            "max_blackout_ms".into(),
            "ckpt_fallbacks".into(),
            "cold_starts".into(),
        ],
        rows: shard_rows,
        notes: vec![
            "per-shard supervisor view: RSS-consistent partitioning keeps both \
             directions of a flow on one shard, so a shard's blackout loses whole \
             flows, never half-flows"
                .into(),
        ],
    };

    let fed_rows = res
        .statuses
        .iter()
        .map(|s| {
            let (outcome, n) = match &s.outcome {
                ShardOutcome::Ok(n) => ("ok".to_string(), n.to_string()),
                ShardOutcome::Error(e) => (format!("error: {e}"), "-".into()),
                ShardOutcome::TimedOut => ("timed out".into(), "-".into()),
            };
            vec![
                s.shard.to_string(),
                outcome,
                n,
                f2(s.elapsed.as_secs_f64() * 1e3),
            ]
        })
        .collect();
    let fed_fig = FigureResult {
        name: "soak_federated".into(),
        headers: vec![
            "shard".into(),
            "outcome".into(),
            "records".into(),
            "elapsed_ms".into(),
        ],
        rows: fed_rows,
        notes: vec![format!(
            "federated `tcp and port 80` over {} shard archives: {} records, \
                 partial={}; a zero-budget probe correctly reported all shards \
                 timed out instead of returning an empty success",
            nshards,
            res.records.len(),
            res.partial
        )],
    };

    let latency_fig = latency_figure(
        "soak_latency",
        &fleet_pulse,
        vec![format!(
            "pulse plane merged across {nshards} shards and every killed/respawned \
             incarnation (drive burst 256, storm seed {}); exemplars re-filtered \
             against the fleet-wide tail at merge time",
            cfg.seed
        )],
    );

    vec![fleet_fig, shards_fig, fed_fig, latency_fig]
}

/// Dispatch by experiment id.
pub fn run_experiment(id: &str, cfg: &ExpConfig) -> Option<Vec<FigureResult>> {
    Some(match id {
        "trace-stats" => trace_stats(cfg),
        "fig3" => fig3(cfg),
        "fig4" => fig4(cfg),
        "fig5" => fig5(cfg),
        "fig6" => fig6(cfg),
        "fig7" => fig7(cfg),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "ablations" => ablations(cfg),
        "fig11" => fig11(cfg),
        "fig12" => fig12(cfg),
        "faults" => faults(cfg),
        "telemetry" => telemetry(cfg),
        "store" => store(cfg),
        "restart" => restart(cfg),
        "flight" => flight(cfg),
        "tenants" => tenants(cfg),
        "fastpath" => fastpath(cfg),
        "offload" => offload(cfg),
        "soak" => soak(cfg),
        _ => return None,
    })
}

/// Every experiment id, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "trace-stats",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablations",
    "fig11",
    "fig12",
    "faults",
    "telemetry",
    "store",
    "restart",
    "flight",
    "tenants",
    "fastpath",
    "offload",
    "soak",
];

/// Design-choice ablations (not in the paper's figures, but probing the
/// design decisions the paper argues for).
pub fn ablations(cfg: &ExpConfig) -> Vec<FigureResult> {
    vec![
        ablation_chunk_size(cfg),
        ablation_reassembly_modes(cfg),
        ablation_overload_cutoff(cfg),
    ]
}

/// Chunk-size sweep: the event-overhead vs. delivery-latency tradeoff
/// behind the paper's 16 KB default.
fn ablation_chunk_size(cfg: &ExpConfig) -> FigureResult {
    let wl = pattern_workload(cfg);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");
    let mut rows = Vec::new();
    for chunk_kb in [1usize, 4, 16, 64, 256] {
        let mut sc = scap_config(cfg);
        sc.chunk_size = chunk_kb << 10;
        let (rep, stack) = run_scap(&eng, sc, PatternMatchApp::new(ac.clone()), wl.at_rate(2.0));
        let st = stack.kernel().stats();
        rows.push(vec![
            format!("{chunk_kb}K"),
            f1(rep.stats.drop_percent()),
            f2(st.chunks as f64 / rep.stats.wire_packets as f64),
            f1(rep.user_cpu_percent()),
            f1(rep.softirq_percent()),
        ]);
    }
    FigureResult {
        name: "ablation_chunk_size".into(),
        headers: ["chunk", "drop%", "chunks_per_pkt", "user_cpu%", "softirq%"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes: vec!["at 2 Gbit/s, single worker (paper default: 16K)".into()],
    }
}

/// Strict vs. fast reassembly under induced packet loss: fast keeps
/// delivering (flagging gaps); strict buffers and stalls behind holes.
fn ablation_reassembly_modes(cfg: &ExpConfig) -> FigureResult {
    use scap::ReassemblyMode;
    let wl = pattern_workload(cfg);
    let ac = wl.patterns.clone().expect("patterns");
    let mut rows = Vec::new();
    for loss_pct in [0u32, 1, 5, 10] {
        let mut row = vec![format!("{loss_pct}%")];
        for mode in [ReassemblyMode::Fast, ReassemblyMode::Strict] {
            // Deterministic pre-drop: every k-th data-bearing packet.
            let mut n = 0u64;
            let lossy: Vec<_> = wl
                .trace
                .iter()
                .filter(|_p| {
                    if loss_pct == 0 {
                        return true;
                    }
                    n += 1;
                    (n * u64::from(loss_pct)) % 100 >= u64::from(loss_pct)
                })
                .cloned()
                .collect();
            let mut sc = scap_config(cfg);
            sc.reassembly_mode = mode;
            let (rep, stack) = run_scap(
                &oracle_engine(),
                sc,
                PatternMatchApp::new(ac.clone()),
                lossy,
            );
            let _ = &stack;
            row.push(f1(
                100.0 * rep.stats.matches as f64 / oracle_matches(cfg, &wl).max(1) as f64
            ));
        }
        rows.push(row);
    }
    FigureResult {
        name: "ablation_reassembly_modes".into(),
        headers: ["wire_loss", "fast_matched%", "strict_matched%"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes: vec![
            "both modes recover equally by termination-time flush on this workload; strict differs in buffering latency and memory under sustained holes".into(),
        ],
    }
}

/// The overload cutoff (PPL tail shedding) on vs. off at an overload
/// rate: what keeps matches alive under pressure.
fn ablation_overload_cutoff(cfg: &ExpConfig) -> FigureResult {
    let wl = pattern_workload(cfg);
    let truth = oracle_matches(cfg, &wl).max(1);
    let eng = engine();
    let ac = wl.patterns.clone().expect("patterns");
    let mut rows = Vec::new();
    for (label, cutoff) in [
        ("off", None),
        ("16K", Some(16u64 << 10)),
        ("64K", Some(64 << 10)),
        ("256K", Some(256 << 10)),
    ] {
        let mut sc = scap_config(cfg);
        sc.ppl.overload_cutoff = cutoff;
        let (rep, _s) = run_scap(&eng, sc, PatternMatchApp::new(ac.clone()), wl.at_rate(5.0));
        rows.push(vec![
            label.to_string(),
            f1(rep.stats.drop_percent()),
            f1(100.0 * rep.stats.matches as f64 / truth as f64),
        ]);
    }
    FigureResult {
        name: "ablation_overload_cutoff".into(),
        headers: ["overload_cutoff", "drop%", "matched%"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
        notes: vec![
            "at 5 Gbit/s, single worker: shedding stream tails early keeps the match-bearing stream heads alive".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analysis figures are cheap; run them end-to-end.
    #[test]
    fn analysis_figures_produce_tables() {
        let cfg = ExpConfig::new(Scale::smoke());
        let f11 = fig11(&cfg);
        assert_eq!(f11.len(), 1);
        assert!(f11[0].rows.len() > 10);
        let f12 = fig12(&cfg);
        assert_eq!(f12[0].rows.len(), 40);
    }

    #[test]
    fn trace_stats_table_reports_profile() {
        let cfg = ExpConfig::new(Scale::smoke());
        let t = trace_stats(&cfg);
        let table = t[0].to_table();
        assert!(table.contains("tcp traffic"));
    }

    #[test]
    fn dispatch_knows_all_ids() {
        let cfg = ExpConfig::new(Scale::smoke());
        assert!(run_experiment("nope", &cfg).is_none());
        assert!(run_experiment("fig11", &cfg).is_some());
        for id in ALL_EXPERIMENTS {
            // Only dispatchability, not execution (heavy ones run in the
            // binary / integration tests).
            assert!(ALL_EXPERIMENTS.contains(id));
        }
    }
}
