//! Internet checksum (RFC 1071) and pseudo-header helpers.

/// Incremental ones-complement sum accumulator.
///
/// The accumulator can be fed data in arbitrary slices; `finish` folds the
/// carries and complements the result. Odd-length slices are only legal for
/// the *final* `push` (standard RFC 1071 behaviour).
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Add a byte slice to the sum. A trailing odd byte is padded with zero.
    pub fn push(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add a single big-endian u16.
    pub fn push_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
    }

    /// Fold carries and return the ones-complement checksum.
    pub fn finish(mut self) -> u16 {
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xFFFF) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Checksum of a single contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(data);
    c.finish()
}

/// IPv4 pseudo-header sum for TCP/UDP checksums.
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], proto: u8, l4_len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src);
    c.push(&dst);
    c.push_u16(u16::from(proto));
    c.push_u16(l4_len);
    c
}

/// IPv6 pseudo-header sum for TCP/UDP checksums.
pub fn pseudo_header_v6(src: [u8; 16], dst: [u8; 16], proto: u8, l4_len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src);
    c.push(&dst);
    c.push_u16((l4_len >> 16) as u16);
    c.push_u16(l4_len as u16);
    c.push_u16(u16::from(proto));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> 0xddf2, ~ = 0x220d
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn zero_buffer_sums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xFFFF);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u8..=200).collect();
        let oneshot = checksum(&data);
        let mut inc = Checksum::new();
        inc.push(&data[..100]);
        inc.push(&data[100..200]);
        inc.push(&data[200..]);
        assert_eq!(inc.finish(), oneshot);
    }

    #[test]
    fn verifying_a_buffer_with_its_checksum_yields_zero() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 0, 0];
        let c = checksum(&data);
        data[6..8].copy_from_slice(&c.to_be_bytes());
        // A correct checksum makes the full sum fold to 0.
        assert_eq!(checksum(&data), 0);
    }
}
