//! Integration tests for the telemetry subsystem: the simulated pipeline
//! must be deterministic per seed (byte-identical exports), the JSONL
//! exporter must round-trip a real run's snapshot, and the merged
//! counters must agree exactly with `ScapStats`.

use scap::telemetry::export;
use scap::telemetry::{Metric, Snapshot, Stage};
use scap::ScapStats;
use scap_bench::common::{campus_workload, engine, flow_stats_app, run_scap, scap_config};
use scap_bench::{ExpConfig, Scale};

/// One simulated run at 4 Gbit/s over a small campus trace; returns the
/// merged telemetry snapshot, the series CSV, and the kernel statistics.
fn run_sim(seed: u64) -> (Snapshot, String, ScapStats) {
    let mut scale = Scale::smoke();
    scale.trace_bytes = 3 << 20;
    let mut cfg = ExpConfig::new(scale);
    cfg.seed = seed;
    let wl = campus_workload(&cfg);
    let mut sc = scap_config(&cfg);
    sc.use_fdir = true;
    sc.cutoff.default = Some(64 << 10);
    let (_rep, stack) = run_scap(&engine(), sc, flow_stats_app(), wl.at_rate(4.0));
    let kernel = stack.kernel();
    (
        kernel.telemetry_snapshot(),
        export::series_to_csv(kernel.telemetry_series()),
        kernel.stats(),
    )
}

#[test]
fn same_seed_produces_byte_identical_exports() {
    let (a, series_a, _) = run_sim(33);
    let (b, series_b, _) = run_sim(33);
    assert_eq!(export::to_csv(&a), export::to_csv(&b));
    assert_eq!(series_a, series_b);

    let (c, _, _) = run_sim(34);
    assert_ne!(
        export::to_csv(&a),
        export::to_csv(&c),
        "different seeds should produce different telemetry"
    );
}

#[test]
fn jsonl_round_trips_a_real_snapshot() {
    let (snap, _, _) = run_sim(7);
    assert!(snap.total(Metric::WirePackets) > 0);
    let parsed = export::from_jsonl(&export::to_jsonl(&snap)).expect("reparse");
    assert_eq!(parsed, snap);
}

#[test]
fn merged_counters_agree_with_scap_stats() {
    let (snap, _, stats) = run_sim(11);
    assert_eq!(snap.total(Metric::WirePackets), stats.stack.wire_packets);
    assert_eq!(snap.total(Metric::WireBytes), stats.stack.wire_bytes);
    assert_eq!(
        snap.total(Metric::DeliveredPackets),
        stats.stack.delivered_packets
    );
    assert_eq!(
        snap.total(Metric::DroppedPackets),
        stats.stack.dropped_packets
    );
    assert_eq!(
        snap.total(Metric::DiscardedPackets),
        stats.stack.discarded_packets
    );
    // The conservation identity, stated purely in telemetry terms.
    assert_eq!(
        snap.total(Metric::WirePackets),
        snap.total(Metric::DeliveredPackets)
            + snap.total(Metric::DroppedPackets)
            + snap.total(Metric::DiscardedPackets)
    );
}

#[test]
fn sim_driver_populates_stage_spans_and_series() {
    let (snap, series_csv, _) = run_sim(5);
    // Virtual-cycle spans from the work receipts: every stage that does
    // work in this configuration must have samples.
    for st in [Stage::Nic, Stage::Kernel, Stage::Memory, Stage::EventQueue] {
        assert!(
            snap.stage(st).count() > 0,
            "stage {} recorded no spans",
            st.name()
        );
    }
    assert!(snap.total(Metric::WorkerEventsHandled) > 0);
    // The gauge time-series has its header plus at least one sample row.
    assert!(series_csv.lines().count() > 1, "series: {series_csv}");
}
