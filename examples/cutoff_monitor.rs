//! Per-flow cutoff monitoring (§2.1 / §6.6) — the Time-Machine pattern.
//!
//! Internet traffic is heavy-tailed: a few elephant flows carry most of
//! the bytes, but the analytically interesting content (headers, request
//! lines, handshakes) sits in the first kilobytes of each stream. This
//! monitor keeps only the first 8 KB of every stream. Scap enforces the
//! cutoff inside the kernel — and, with flow-director filters, on the
//! NIC — so the discarded tail never costs a single user-space cycle,
//! while full per-flow statistics are still reported at termination
//! (sizes recovered from FIN sequence numbers when the NIC ate the tail).
//!
//! Run with: `cargo run --release --example cutoff_monitor`

use scap::{Scap, StreamCtx};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    const CUTOFF: u64 = 8 << 10;

    let traffic = CampusMix::new(CampusMixConfig::sized(23, 16 << 20));

    let captured = Arc::new(AtomicU64::new(0));
    let largest = Arc::new(AtomicU64::new(0));

    let mut scap = Scap::builder()
        .memory(64 << 20)
        .cutoff(CUTOFF)
        .use_fdir(true) // drop cutoff tails at the (emulated) NIC
        .worker_threads(2)
        .try_build()
        .expect("valid configuration");

    {
        let captured = captured.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            // Everything arriving here is within the first 8 KB of some
            // stream: index it, store it, scan it — it is cheap.
            captured.fetch_add(ctx.data.map_or(0, |d| d.len() as u64), Ordering::Relaxed);
        });
        let largest = largest.clone();
        scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
            // Wire totals are exact even for streams whose tails were
            // dropped in hardware (FIN-sequence estimation, §5.5).
            largest.fetch_max(ctx.stream.total_bytes(), Ordering::Relaxed);
        });
    }

    let stats = scap.start_capture(traffic);

    let wire = stats.stack.wire_bytes;
    let kept = captured.load(Ordering::Relaxed);
    println!("cutoff: {} KB per stream direction", CUTOFF >> 10);
    println!("wire traffic:        {:>12} bytes", wire);
    println!(
        "retained for analysis:{:>12} bytes ({:.1}% of the wire)",
        kept,
        100.0 * kept as f64 / wire as f64
    );
    println!(
        "discarded early:      {:>12} bytes ({} packets, {} of them at the NIC)",
        stats.stack.discarded_bytes,
        stats.stack.discarded_packets,
        stats.stack.nic_filtered_packets
    );
    println!(
        "flow records intact:  {:>12} streams (largest observed flow: {} bytes)",
        stats.stack.streams_reported,
        largest.load(Ordering::Relaxed)
    );
    println!("NIC filter operations: {}", stats.fdir_ops);
}
