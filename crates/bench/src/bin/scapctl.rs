//! scapctl — client for a running scapd control directory.
//!
//! Speaks the scapd filesystem protocol (see `scapd.rs`): attach
//! requests are `attach-<name>.conf` files, deliveries arrive in
//! `<name>.spool`, and flow control is the consumed offset the client
//! writes to `<name>.ack`. A consumer that stops acking exercises the
//! daemon's slow-consumer ladder — `consume --stall-after` does that
//! on purpose for the CI isolation smoke.
//!
//! ```text
//! scapctl attach  --dir D --name web --filter "tcp and port 80" \
//!                 --cutoff 8192 --priority 2 --mem 300 --disk 300
//! scapctl consume --dir D --name web            # ack until scapd-done
//! scapctl consume --dir D --name bulk --stall-after 4096
//! scapctl detach  --dir D --name web
//! scapctl metrics --dir D                       # validated OpenMetrics dump
//! scapctl status  --dir D [--json]              # live tsv / final json status
//! ```

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("scapctl: {msg}");
    std::process::exit(2);
}

fn write_atomic(path: &Path, content: &str) {
    let tmp = path.with_extension("tmp-scapctl");
    std::fs::write(&tmp, content)
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
}

struct Flags {
    dir: PathBuf,
    name: String,
    filter: Option<String>,
    cutoff: Option<u64>,
    priority: u8,
    mem: u32,
    disk: u32,
    stall_after: Option<u64>,
    wait_ms: u64,
    poll_ms: u64,
    json: bool,
}

fn parse_flags(args: &[String], needs_name: bool) -> Flags {
    let mut f = Flags {
        dir: PathBuf::new(),
        name: String::new(),
        filter: None,
        cutoff: None,
        priority: 0,
        mem: 100,
        disk: 100,
        stall_after: None,
        wait_ms: 15_000,
        poll_ms: 10,
        json: false,
    };
    let numarg = |args: &[String], i: usize, name: &str| -> u64 {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{name} needs a number")))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                f.dir = PathBuf::from(args.get(i).unwrap_or_else(|| die("--dir needs a path")));
            }
            "--name" => {
                i += 1;
                f.name = args
                    .get(i)
                    .unwrap_or_else(|| die("--name needs a value"))
                    .clone();
            }
            "--filter" => {
                i += 1;
                f.filter = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--filter needs a value"))
                        .clone(),
                );
            }
            "--cutoff" => {
                i += 1;
                f.cutoff = Some(numarg(args, i, "--cutoff"));
            }
            "--priority" => {
                i += 1;
                f.priority = numarg(args, i, "--priority") as u8;
            }
            "--mem" => {
                i += 1;
                f.mem = numarg(args, i, "--mem") as u32;
            }
            "--disk" => {
                i += 1;
                f.disk = numarg(args, i, "--disk") as u32;
            }
            "--stall-after" => {
                i += 1;
                f.stall_after = Some(numarg(args, i, "--stall-after"));
            }
            "--wait-ms" => {
                i += 1;
                f.wait_ms = numarg(args, i, "--wait-ms");
            }
            "--poll-ms" => {
                i += 1;
                f.poll_ms = numarg(args, i, "--poll-ms").max(1);
            }
            "--json" => f.json = true,
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if f.dir.as_os_str().is_empty() {
        die("--dir is required");
    }
    if needs_name && f.name.is_empty() {
        die("--name is required");
    }
    f
}

/// Write the attach spec and wait for the daemon's verdict.
fn attach(f: &Flags) -> i32 {
    let mut conf = String::new();
    if let Some(flt) = &f.filter {
        conf.push_str(&format!("filter={flt}\n"));
    }
    if let Some(c) = f.cutoff {
        conf.push_str(&format!("cutoff={c}\n"));
    }
    conf.push_str(&format!(
        "priority={}\nmem_share={}\ndisk_share={}\n",
        f.priority, f.mem, f.disk
    ));
    let granted = f.dir.join(format!("{}.attached", f.name));
    let rejected = f.dir.join(format!("{}.rejected", f.name));
    let _ = std::fs::remove_file(&granted);
    let _ = std::fs::remove_file(&rejected);
    write_atomic(&f.dir.join(format!("attach-{}.conf", f.name)), &conf);
    let deadline = Instant::now() + Duration::from_millis(f.wait_ms);
    loop {
        if let Ok(grant) = std::fs::read_to_string(&granted) {
            print!("attached {}: {grant}", f.name);
            return 0;
        }
        if let Ok(why) = std::fs::read_to_string(&rejected) {
            eprint!("scapctl: attach {} rejected: {why}", f.name);
            return 1;
        }
        if Instant::now() > deadline {
            die(&format!("attach {} timed out", f.name));
        }
        std::thread::sleep(Duration::from_millis(f.poll_ms));
    }
}

/// Tail the spool, acking the payload bytes consumed (scapd's flow
/// control currency), until the daemon is done. With `--stall-after B`
/// the client stops consuming (and acking) once it has taken B payload
/// bytes — a hostile slow consumer that exercises the daemon's ladder.
fn consume(f: &Flags) -> i32 {
    let spool_path = f.dir.join(format!("{}.spool", f.name));
    let ack_path = f.dir.join(format!("{}.ack", f.name));
    let done_path = f.dir.join("scapd-done");
    let mut offset = 0u64; // spool bytes read
    let mut payload = 0u64; // payload bytes consumed (the acked value)
    let mut records = 0u64;
    let mut carry = String::new();
    let stall_at = f.stall_after.unwrap_or(u64::MAX);
    let mut stalled = false;
    loop {
        let done = done_path.exists();
        let len = std::fs::metadata(&spool_path).map(|m| m.len()).unwrap_or(0);
        if !stalled && len > offset {
            let mut file = std::fs::File::open(&spool_path)
                .unwrap_or_else(|e| die(&format!("cannot open spool: {e}")));
            file.seek(SeekFrom::Start(offset))
                .unwrap_or_else(|e| die(&format!("seek failed: {e}")));
            let mut buf = vec![0u8; (len - offset) as usize];
            file.read_exact(&mut buf)
                .unwrap_or_else(|e| die(&format!("spool read failed: {e}")));
            offset = len;
            carry.push_str(&String::from_utf8_lossy(&buf));
            // Only complete lines count as consumed records; a partial
            // tail line waits for the next poll.
            while let Some(nl) = carry.find('\n') {
                let line: String = carry.drain(..=nl).collect();
                records += 1;
                let mut parts = line.split_whitespace();
                if parts.next() == Some("d") {
                    let _uid = parts.next();
                    let _dir = parts.next();
                    payload += parts
                        .next()
                        .and_then(|b| b.parse::<u64>().ok())
                        .unwrap_or(0);
                }
                if payload >= stall_at {
                    stalled = true;
                    eprintln!("scapctl: {} stalling at {payload} payload bytes", f.name);
                    break;
                }
            }
            if !stalled {
                write_atomic(&ack_path, &format!("{payload}\n"));
            }
        }
        if done && (stalled || len <= offset) {
            break;
        }
        std::thread::sleep(Duration::from_millis(f.poll_ms));
    }
    println!(
        "consumed {}: {records} records, {payload} payload bytes{}",
        f.name,
        if stalled { " (stalled)" } else { "" }
    );
    0
}

fn detach(f: &Flags) -> i32 {
    write_atomic(&f.dir.join(format!("detach-{}", f.name)), "");
    println!("detach {} requested", f.name);
    0
}

/// Dump the daemon's OpenMetrics exposition, refusing to relay text
/// that does not parse — a scrape that passes here is safe to hand to
/// any OpenMetrics consumer.
fn metrics(f: &Flags) -> i32 {
    let path = f.dir.join("metrics");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        die(&format!(
            "cannot read {} (is scapd running with traffic?): {e}",
            path.display()
        ))
    });
    match scap::telemetry::openmetrics::validate(&text) {
        Ok(samples) => {
            print!("{text}");
            eprintln!("scapctl: {samples} samples, exposition valid");
            0
        }
        Err(why) => {
            eprintln!("scapctl: invalid OpenMetrics exposition: {why}");
            1
        }
    }
}

/// Print the daemon's status: the live per-tenant tsv panel, or with
/// `--json` the machine-readable status (which embeds the telemetry
/// counter/gauge snapshot and the per-stage latency summary).
fn status(f: &Flags) -> i32 {
    let path = if f.json {
        f.dir.join("scapd-status.json")
    } else {
        f.dir.join("scapd-status.tsv")
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    print!("{text}");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: scapctl <attach|consume|detach|metrics|status> --dir DIR \
                 [--name NAME] [--json] \
                 [--filter F] [--cutoff B] [--priority P] [--mem PERMILLE] \
                 [--disk PERMILLE] [--stall-after BYTES] [--wait-ms MS] [--poll-ms MS]";
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{usage}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let cmd = args[0].clone();
    let needs_name = matches!(cmd.as_str(), "attach" | "consume" | "detach");
    let f = parse_flags(&args[1..], needs_name);
    let code = match cmd.as_str() {
        "attach" => attach(&f),
        "consume" => consume(&f),
        "detach" => detach(&f),
        "metrics" => metrics(&f),
        "status" => status(&f),
        other => die(&format!("unknown command {other} ({usage})")),
    };
    std::process::exit(code);
}
