//! The live threaded driver and the user-facing API of Table 1.
//!
//! [`Scap`] mirrors the paper's C API in builder form:
//!
//! | paper                         | here                                   |
//! |-------------------------------|----------------------------------------|
//! | `scap_create`                 | [`Scap::builder`] → [`ScapBuilder::build`] |
//! | `scap_set_filter`             | [`ScapBuilder::filter`]                |
//! | `scap_set_cutoff`             | [`ScapBuilder::cutoff`]                |
//! | `scap_add_cutoff_direction`   | [`ScapBuilder::cutoff_direction`]      |
//! | `scap_add_cutoff_class`       | [`ScapBuilder::cutoff_class`]          |
//! | `scap_set_worker_threads`     | [`ScapBuilder::worker_threads`]        |
//! | `scap_set_parameter`          | dedicated builder methods              |
//! | `scap_dispatch_creation`      | [`Scap::dispatch_creation`]            |
//! | `scap_dispatch_data`          | [`Scap::dispatch_data`]                |
//! | `scap_dispatch_termination`   | [`Scap::dispatch_termination`]         |
//! | `scap_start_capture`          | [`Scap::start_capture`]                |
//! | `scap_discard_stream`         | [`StreamCtx::discard_stream`]          |
//! | `scap_set_stream_cutoff`      | [`StreamCtx::set_stream_cutoff`]       |
//! | `scap_set_stream_priority`    | [`StreamCtx::set_stream_priority`]     |
//! | `scap_set_stream_parameter`   | [`StreamCtx::set_stream_cutoff`] et al.|
//! | `scap_keep_stream_chunk`      | [`StreamCtx::keep_chunk`]              |
//! | `scap_next_stream_packet`     | [`StreamCtx::packets`]                 |
//! | `scap_get_stats`              | returned by [`Scap::start_capture`], [`Scap::stats`] |
//! | `scap_close`                  | `drop`                                 |
//!
//! The driver spawns one worker thread per configured worker (pinned
//! one-to-one to the kernel event queues they cover), runs the kernel
//! data path on the calling thread, and routes control operations and
//! chunk returns back to the kernel — the PF_SCAP socket and shared
//! memory of §5, as channels.

use crate::config::ScapConfig;
use crate::event::{Event, EventKind, PacketRecord, StreamSnapshot};
use crate::kernel::{ControlOp, ScapKernel, ScapStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use scap_filter::{Filter, FilterError};
use scap_reassembly::{OverlapPolicy, ReassemblyMode};
use scap_trace::Packet;
use scap_wire::Direction;
use std::sync::Arc;

/// Callback type: runs on worker threads.
pub type Handler = Arc<dyn Fn(&StreamCtx<'_>) + Send + Sync>;

/// The view handed to callbacks: a consistent stream snapshot, the
/// delivered data (for data events), and the control surface.
pub struct StreamCtx<'a> {
    /// Consistent descriptor snapshot (`sd`).
    pub stream: &'a StreamSnapshot,
    /// Data direction, for data events.
    pub dir: Option<Direction>,
    /// Reassembled chunk bytes (`sd->data`), for data events.
    pub data: Option<&'a [u8]>,
    /// Stream offset of `data[0]` within its direction.
    pub data_offset: u64,
    /// Per-packet records (when `need_packets` was configured).
    pub packet_records: &'a [PacketRecord],
    ctl: &'a Sender<ControlOp>,
}

impl StreamCtx<'_> {
    /// `scap_discard_stream`: stop collecting data for this stream.
    pub fn discard_stream(&self) {
        let _ = self.ctl.send(ControlOp::Discard(self.stream.uid));
    }

    /// `scap_set_stream_cutoff`.
    pub fn set_stream_cutoff(&self, cutoff: u64) {
        let _ = self
            .ctl
            .send(ControlOp::SetCutoff(self.stream.uid, None, Some(cutoff)));
    }

    /// Per-direction stream cutoff.
    pub fn set_stream_cutoff_direction(&self, dir: Direction, cutoff: u64) {
        let _ = self
            .ctl
            .send(ControlOp::SetCutoff(self.stream.uid, Some(dir), Some(cutoff)));
    }

    /// `scap_set_stream_priority`.
    pub fn set_stream_priority(&self, priority: u8) {
        let _ = self
            .ctl
            .send(ControlOp::SetPriority(self.stream.uid, priority));
    }

    /// `scap_set_stream_parameter` for chunk geometry: change this
    /// stream's chunk size and overlap from the next chunk on.
    pub fn set_chunk_geometry(&self, chunk_size: u32, overlap: u32) {
        let _ = self.ctl.send(ControlOp::SetChunkGeometry(
            self.stream.uid,
            chunk_size,
            overlap,
        ));
    }

    /// `scap_keep_stream_chunk`: merge this chunk into the next one.
    ///
    /// Best-effort in the threaded driver: the request races the kernel's
    /// own chunk production, so a chunk that completes before the request
    /// arrives is delivered unmerged (the same asynchrony the real
    /// socket-based call has).
    pub fn keep_chunk(&self) {
        if let Some(d) = self.dir {
            let _ = self.ctl.send(ControlOp::KeepChunk(self.stream.uid, d));
        }
    }

    /// `scap_next_stream_packet`: iterate the chunk's packets in capture
    /// order, yielding each record and its payload slice within the chunk.
    pub fn packets(&self) -> impl Iterator<Item = (PacketRecord, Option<&[u8]>)> {
        let data = self.data;
        let base = self.data_offset;
        self.packet_records.iter().map(move |pr| {
            let slice = match (data, pr.chunk_off) {
                (Some(d), off) if off != u32::MAX => {
                    let start = (off as u64).saturating_sub(base) as usize;
                    let end = (start + pr.payload_len as usize).min(d.len());
                    (start < end).then(|| &d[start..end])
                }
                _ => None,
            };
            (*pr, slice)
        })
    }
}

/// Builder for a capture socket (`scap_create` + configuration calls).
pub struct ScapBuilder {
    cfg: ScapConfig,
    filter_err: Option<FilterError>,
}

impl ScapBuilder {
    /// Stream-memory budget (`memory_size`).
    pub fn memory(mut self, bytes: usize) -> Self {
        self.cfg.memory_bytes = bytes;
        self
    }

    /// TCP reassembly mode.
    pub fn reassembly_mode(mut self, mode: ReassemblyMode) -> Self {
        self.cfg.reassembly_mode = mode;
        self
    }

    /// Target-based overlap policy.
    pub fn overlap_policy(mut self, policy: OverlapPolicy) -> Self {
        self.cfg.overlap_policy = policy;
        self
    }

    /// Deliver per-packet records with each chunk (`need_pkts`).
    pub fn need_packets(mut self, yes: bool) -> Self {
        self.cfg.need_pkts = yes;
        self
    }

    /// `scap_set_filter`: BPF filter expression.
    pub fn filter(mut self, expr: &str) -> Self {
        match Filter::new(expr) {
            Ok(f) => self.cfg.filter = Some(f),
            Err(e) => self.filter_err = Some(e),
        }
        self
    }

    /// `scap_set_cutoff`: default per-stream cutoff in bytes.
    pub fn cutoff(mut self, bytes: u64) -> Self {
        self.cfg.cutoff.default = Some(bytes);
        self
    }

    /// `scap_add_cutoff_direction`.
    pub fn cutoff_direction(mut self, dir: Direction, bytes: u64) -> Self {
        self.cfg.cutoff.per_direction[dir.index()] = Some(bytes);
        self
    }

    /// `scap_add_cutoff_class`: cutoff for streams matching a filter.
    pub fn cutoff_class(mut self, expr: &str, bytes: u64) -> Self {
        match Filter::new(expr) {
            Ok(f) => self.cfg.cutoff.classes.push((f, bytes)),
            Err(e) => self.filter_err = Some(e),
        }
        self
    }

    /// Assign a PPL priority to streams matching a filter.
    pub fn priority_class(mut self, expr: &str, priority: u8) -> Self {
        match Filter::new(expr) {
            Ok(f) => {
                self.cfg.priorities.classes.push((f, priority));
                self.cfg.ppl.num_priorities =
                    self.cfg.ppl.num_priorities.max(priority + 1);
            }
            Err(e) => self.filter_err = Some(e),
        }
        self
    }

    /// `scap_set_worker_threads`.
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.cfg.worker_threads = n.max(1);
        self
    }

    /// Kernel cores / NIC queues.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.cores = n.max(1);
        self
    }

    /// Chunk size parameter.
    pub fn chunk_size(mut self, bytes: usize) -> Self {
        self.cfg.chunk_size = bytes.max(1);
        self
    }

    /// Inter-chunk overlap parameter.
    pub fn overlap(mut self, bytes: usize) -> Self {
        self.cfg.overlap = bytes;
        self
    }

    /// Flush timeout parameter.
    pub fn flush_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.flush_timeout_ns = ns;
        self
    }

    /// Inactivity timeout parameter.
    pub fn inactivity_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.inactivity_timeout_ns = ns;
        self
    }

    /// PPL base threshold (fraction of memory in use).
    pub fn base_threshold(mut self, frac: f64) -> Self {
        self.cfg.ppl.base_threshold = frac.clamp(0.0, 1.0);
        self
    }

    /// PPL overload cutoff (stream offset beyond which bytes are shed
    /// under pressure).
    pub fn overload_cutoff(mut self, bytes: u64) -> Self {
        self.cfg.ppl.overload_cutoff = Some(bytes);
        self
    }

    /// Enable NIC flow-director filters (subzero copy).
    pub fn use_fdir(mut self, yes: bool) -> Self {
        self.cfg.use_fdir = yes;
        self
    }

    /// Finalize; panics on an invalid filter expression (use
    /// [`ScapBuilder::try_build`] to handle errors).
    pub fn build(self) -> Scap {
        self.try_build().expect("invalid filter expression")
    }

    /// Finalize, surfacing filter-compilation errors.
    pub fn try_build(mut self) -> Result<Scap, FilterError> {
        if let Some(e) = self.filter_err.take() {
            return Err(e);
        }
        self.cfg.ppl.num_priorities = self
            .cfg
            .ppl
            .num_priorities
            .max(self.cfg.priorities.levels());
        Ok(Scap {
            cfg: Some(self.cfg),
            on_create: None,
            on_data: None,
            on_termination: None,
            last_stats: None,
        })
    }
}

/// A capture socket.
pub struct Scap {
    cfg: Option<ScapConfig>,
    on_create: Option<Handler>,
    on_data: Option<Handler>,
    on_termination: Option<Handler>,
    last_stats: Option<ScapStats>,
}

impl Scap {
    /// Start configuring a capture (`scap_create`).
    pub fn builder() -> ScapBuilder {
        ScapBuilder {
            cfg: ScapConfig::default(),
            filter_err: None,
        }
    }

    /// `scap_dispatch_creation`.
    pub fn dispatch_creation<F: Fn(&StreamCtx<'_>) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_create = Some(Arc::new(f));
    }

    /// `scap_dispatch_data`.
    pub fn dispatch_data<F: Fn(&StreamCtx<'_>) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_data = Some(Arc::new(f));
    }

    /// `scap_dispatch_termination`.
    pub fn dispatch_termination<F: Fn(&StreamCtx<'_>) + Send + Sync + 'static>(&mut self, f: F) {
        self.on_termination = Some(Arc::new(f));
    }

    /// `scap_get_stats` for the most recent capture.
    pub fn stats(&self) -> Option<ScapStats> {
        self.last_stats
    }

    /// `scap_start_capture`: run the capture over a packet source with
    /// the configured worker threads; returns the final statistics.
    ///
    /// The packet source stands in for the monitored interface: a pcap
    /// file reader, a synthetic generator, or any packet iterator.
    pub fn start_capture(&mut self, packets: impl IntoIterator<Item = Packet>) -> ScapStats {
        let cfg = self.cfg.take().expect("capture already consumed");
        let nworkers = cfg.worker_threads.max(1);
        let ncores = cfg.cores.max(1);
        let mut kernel = ScapKernel::new(cfg);

        // PF_SCAP-socket stand-ins.
        let (ctl_tx, ctl_rx): (Sender<ControlOp>, Receiver<ControlOp>) = unbounded();
        let (rel_tx, rel_rx) = unbounded::<Event>();
        let mut ev_txs = Vec::new();
        let mut ev_rxs = Vec::new();
        for _ in 0..nworkers {
            let (tx, rx) = unbounded::<Event>();
            ev_txs.push(tx);
            ev_rxs.push(rx);
        }

        let handlers = WorkerHandlers {
            on_create: self.on_create.clone(),
            on_data: self.on_data.clone(),
            on_termination: self.on_termination.clone(),
        };

        let stats = crossbeam::thread::scope(|scope| {
            // Workers: poll their event channel, run callbacks, return
            // data chunks for release.
            let mut joins = Vec::new();
            for rx in ev_rxs.into_iter() {
                let h = handlers.clone();
                let ctl = ctl_tx.clone();
                let rel = rel_tx.clone();
                joins.push(scope.spawn(move |_| {
                    while let Ok(ev) = rx.recv() {
                        h.dispatch(&ev, &ctl);
                        if matches!(ev.kind, EventKind::Data { .. }) {
                            let _ = rel.send(ev);
                        }
                    }
                }));
            }
            drop(rel_tx);
            drop(ctl_tx);

            // Kernel loop on this thread.
            let mut now = 0u64;
            let pump =
                |kernel: &mut ScapKernel, ev_txs: &[Sender<Event>], now: u64| {
                    for core in 0..ncores {
                        while kernel.kernel_poll(core, now).is_some() {}
                        kernel.kernel_timers(core, now);
                        while let Some(ev) = kernel.next_event(core) {
                            let _ = ev_txs[core % nworkers].send(ev);
                        }
                    }
                    // Releases and control ops from workers.
                    while let Ok(op) = ctl_rx.try_recv() {
                        kernel.control(op);
                    }
                    while let Ok(ev) = rel_rx.try_recv() {
                        if let EventKind::Data { dir, chunk, .. } = ev.kind {
                            kernel.release_data(ev.stream.uid, dir, chunk);
                        }
                    }
                };

            for pkt in packets {
                now = pkt.ts_ns;
                kernel.nic_receive(&pkt);
                pump(&mut kernel, &ev_txs, now);
            }
            kernel.finish(now.saturating_add(1));
            pump(&mut kernel, &ev_txs, now.saturating_add(1));

            // Close event channels; workers drain and exit.
            drop(ev_txs);
            for j in joins {
                let _ = j.join();
            }
            // Final releases.
            while let Ok(op) = ctl_rx.try_recv() {
                kernel.control(op);
            }
            while let Ok(ev) = rel_rx.try_recv() {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
            kernel.stats()
        })
        .expect("worker thread panicked");

        self.last_stats = Some(stats);
        stats
    }
}

#[derive(Clone)]
struct WorkerHandlers {
    on_create: Option<Handler>,
    on_data: Option<Handler>,
    on_termination: Option<Handler>,
}

impl WorkerHandlers {
    fn dispatch(&self, ev: &Event, ctl: &Sender<ControlOp>) {
        let (handler, dir, data, off, records): (
            &Option<Handler>,
            Option<Direction>,
            Option<&[u8]>,
            u64,
            &[PacketRecord],
        ) = match &ev.kind {
            EventKind::Created => (&self.on_create, None, None, 0, &[]),
            EventKind::Data { dir, chunk, packets } => (
                &self.on_data,
                Some(*dir),
                Some(chunk.bytes()),
                chunk.start_offset,
                packets.as_slice(),
            ),
            EventKind::Terminated => (&self.on_termination, None, None, 0, &[]),
        };
        if let Some(h) = handler {
            let ctx = StreamCtx {
                stream: &ev.stream,
                dir,
                data,
                data_offset: off,
                packet_records: records,
                ctl,
            };
            h(&ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn trace() -> Vec<Packet> {
        CampusMix::new(CampusMixConfig::sized(21, 2 << 20)).collect_all()
    }

    #[test]
    fn live_capture_delivers_all_event_kinds() {
        let created = Arc::new(AtomicU64::new(0));
        let data_bytes = Arc::new(AtomicU64::new(0));
        let terminated = Arc::new(AtomicU64::new(0));

        let mut scap = Scap::builder().worker_threads(2).build();
        {
            let c = created.clone();
            scap.dispatch_creation(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
            let d = data_bytes.clone();
            scap.dispatch_data(move |ctx| {
                d.fetch_add(ctx.data.map_or(0, |b| b.len() as u64), Ordering::Relaxed);
            });
            let t = terminated.clone();
            scap.dispatch_termination(move |_| {
                t.fetch_add(1, Ordering::Relaxed);
            });
        }
        let stats = scap.start_capture(trace());
        assert_eq!(created.load(Ordering::Relaxed), stats.stack.streams_created);
        assert_eq!(
            terminated.load(Ordering::Relaxed),
            stats.stack.streams_reported
        );
        assert!(data_bytes.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.stack.dropped_packets, 0);
        assert!(scap.stats().is_some());
    }

    #[test]
    fn zero_cutoff_suppresses_data_events() {
        let data_events = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().cutoff(0).build();
        let d = data_events.clone();
        scap.dispatch_data(move |_| {
            d.fetch_add(1, Ordering::Relaxed);
        });
        let stats = scap.start_capture(trace());
        assert_eq!(data_events.load(Ordering::Relaxed), 0);
        assert!(stats.stack.streams_reported > 0);
    }

    #[test]
    fn discard_stream_from_callback_stops_data() {
        let seen = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().chunk_size(1024).build();
        let s = seen.clone();
        scap.dispatch_data(move |ctx| {
            s.fetch_add(ctx.data.map_or(0, |b| b.len() as u64), Ordering::Relaxed);
            ctx.discard_stream();
        });
        let stats = scap.start_capture(trace());
        // Discards must have kicked in: far less data delivered than
        // exists on the wire.
        let delivered = seen.load(Ordering::Relaxed);
        assert!(delivered > 0);
        assert!(stats.stack.discarded_packets > 0);
    }

    #[test]
    fn filter_restricts_capture() {
        let mut scap = Scap::builder().filter("udp and port 53").build();
        let stats = scap.start_capture(trace());
        assert!(stats.stack.streams_created > 0);
        assert!(stats.stack.discarded_packets > stats.stack.streams_created);
    }

    #[test]
    fn invalid_filter_is_an_error() {
        assert!(Scap::builder().filter("tcp and and").try_build().is_err());
    }

    #[test]
    fn packet_records_iterate_with_payloads() {
        let pkt_count = Arc::new(AtomicU64::new(0));
        let payload_bytes = Arc::new(AtomicU64::new(0));
        let mut scap = Scap::builder().need_packets(true).build();
        let pc = pkt_count.clone();
        let pb = payload_bytes.clone();
        scap.dispatch_data(move |ctx| {
            for (rec, slice) in ctx.packets() {
                pc.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = slice {
                    pb.fetch_add(s.len() as u64, Ordering::Relaxed);
                }
                assert!(rec.wire_len > 0);
            }
        });
        scap.start_capture(trace());
        assert!(pkt_count.load(Ordering::Relaxed) > 0);
        assert!(payload_bytes.load(Ordering::Relaxed) > 0);
    }
}
