//! Per-direction reassembly: sequence tracking, in-order delivery,
//! duplicate suppression, and the strict/fast hole-handling split.

use crate::segbuf::SegmentBuffer;
use crate::{OverlapPolicy, ReasmFlags, ReassemblyMode};

/// Tuning limits for the out-of-order buffer.
#[derive(Debug, Clone, Copy)]
pub struct ReasmConfig {
    /// Reassembly mode.
    pub mode: ReassemblyMode,
    /// Overlap policy (target-based).
    pub policy: OverlapPolicy,
    /// Max buffered out-of-order bytes before the mode's overflow action.
    pub max_ooo_bytes: usize,
    /// Max buffered out-of-order segments.
    pub max_ooo_segments: usize,
}

impl ReasmConfig {
    /// Defaults for a mode: fast keeps a small tolerance so plain
    /// reordering reassembles exactly but loss never stalls processing;
    /// strict buffers generously and only errors at attack-scale gaps.
    pub fn for_mode(mode: ReassemblyMode) -> Self {
        match mode {
            ReassemblyMode::Fast => ReasmConfig {
                mode,
                policy: OverlapPolicy::default(),
                max_ooo_bytes: 64 << 10,
                max_ooo_segments: 64,
            },
            ReassemblyMode::Strict => ReasmConfig {
                mode,
                policy: OverlapPolicy::default(),
                max_ooo_bytes: 4 << 20,
                max_ooo_segments: 4096,
            },
        }
    }

    /// Same config with a different overlap policy.
    pub fn with_policy(mut self, policy: OverlapPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Per-direction outcome counters for one segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataOutcome {
    /// Bytes delivered in-order to the sink by this call.
    pub delivered: u64,
    /// Bytes recognized as duplicate/overlap losers and discarded.
    pub duplicate: u64,
    /// Bytes parked in the out-of-order buffer.
    pub buffered: u64,
    /// A hole was skipped (fast mode) during this call.
    pub gap_skipped: bool,
    /// Bytes the frontier jumped over in this call (0 when no skip).
    pub gap: u64,
    /// Of `gap`, the bytes attributed to a warm-restart blackout (the
    /// one-shot resume skip armed by [`DirReassembler::arm_resume_skip`]).
    pub resume_gap: u64,
}

/// A serializable snapshot of one direction's reassembly state, for the
/// checkpoint subsystem: everything needed to re-anchor the direction at
/// its committed offset after a warm restart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirState {
    /// Sequence number of stream byte 0, if the direction is anchored.
    pub base_seq: Option<u32>,
    /// Relative offset of the next in-order byte (the committed offset).
    pub expected: u64,
    /// Accumulated error flags (raw bits).
    pub flags: u8,
    /// Total delivered payload bytes.
    pub delivered_bytes: u64,
    /// Total duplicate bytes discarded.
    pub duplicate_bytes: u64,
    /// Total bytes skipped over as unfilled holes.
    pub gap_bytes: u64,
    /// Buffered out-of-order extents as `(relative offset, bytes)`,
    /// ascending and non-overlapping.
    pub segments: Vec<(u64, Vec<u8>)>,
}

/// One direction of a TCP stream.
#[derive(Debug)]
pub struct DirReassembler {
    cfg: ReasmConfig,
    /// Sequence number of stream byte 0 (ISN + 1). `None` until known.
    base_seq: Option<u32>,
    /// Relative offset of the next in-order byte.
    expected: u64,
    buffer: SegmentBuffer,
    /// Accumulated error flags.
    pub flags: ReasmFlags,
    /// Total delivered payload bytes.
    pub delivered_bytes: u64,
    /// Total duplicate bytes discarded.
    pub duplicate_bytes: u64,
    /// Total bytes skipped over as unfilled holes.
    pub gap_bytes: u64,
    /// Armed after a warm restart: the first segment past the frontier
    /// marks the blackout gap and is skipped over instead of stalling.
    resume_skip: bool,
}

impl DirReassembler {
    /// New direction with the given config.
    pub fn new(cfg: ReasmConfig) -> Self {
        DirReassembler {
            cfg,
            base_seq: None,
            expected: 0,
            buffer: SegmentBuffer::new(),
            flags: ReasmFlags::default(),
            delivered_bytes: 0,
            duplicate_bytes: 0,
            gap_bytes: 0,
            resume_skip: false,
        }
    }

    /// Snapshot this direction's state for a checkpoint. The export is
    /// deterministic: buffered extents come out in ascending offset order.
    pub fn export_state(&self) -> DirState {
        DirState {
            base_seq: self.base_seq,
            expected: self.expected,
            flags: self.flags.0,
            delivered_bytes: self.delivered_bytes,
            duplicate_bytes: self.duplicate_bytes,
            gap_bytes: self.gap_bytes,
            segments: self
                .buffer
                .iter()
                .map(|(off, data)| (off, data.to_vec()))
                .collect(),
        }
    }

    /// Rebuild a direction from a checkpointed [`DirState`], re-anchored
    /// at its committed offset with buffered extents reinstated.
    pub fn restore(cfg: ReasmConfig, st: &DirState) -> Self {
        let mut buffer = SegmentBuffer::new();
        for (off, data) in &st.segments {
            let _ = buffer.insert(*off, data, cfg.policy);
        }
        DirReassembler {
            cfg,
            base_seq: st.base_seq,
            expected: st.expected,
            buffer,
            flags: ReasmFlags(st.flags),
            delivered_bytes: st.delivered_bytes,
            duplicate_bytes: st.duplicate_bytes,
            gap_bytes: st.gap_bytes,
            resume_skip: false,
        }
    }

    /// Arm the resume-gap skip: the next segment landing beyond the
    /// frontier jumps over the blackout hole immediately (flagged as a
    /// SEQUENCE_GAP and counted in `gap_bytes`) instead of waiting for
    /// bytes that were lost while the capture process was down.
    pub fn arm_resume_skip(&mut self) {
        self.resume_skip = true;
    }

    /// Anchor the stream: `seq_of_first_byte` is ISN+1 after a SYN.
    pub fn set_base(&mut self, seq_of_first_byte: u32) {
        if self.base_seq.is_none() {
            self.base_seq = Some(seq_of_first_byte);
        }
    }

    /// True once the direction is anchored (SYN seen or midstream pickup).
    pub fn anchored(&self) -> bool {
        self.base_seq.is_some()
    }

    /// Next expected relative offset (== total in-order bytes delivered).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Bytes waiting in the out-of-order buffer.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.bytes()
    }

    /// Map a wire sequence number to a relative offset, choosing the
    /// unwrapping closest to the current frontier (exact for streams
    /// shorter than 2 GiB between wraps).
    fn rel_of(&self, seq: u32) -> u64 {
        let base = self.base_seq.expect("anchored before data");
        let low = u64::from(seq.wrapping_sub(base));
        // Candidates differing by 2^32; pick the one nearest `expected`.
        let anchor = self.expected;
        let k = anchor >> 32;
        let mut best = low.wrapping_add(k << 32);
        let mut best_d = best.abs_diff(anchor);
        for cand in [
            low.wrapping_add(k.saturating_sub(1) << 32),
            low.wrapping_add((k + 1) << 32),
        ] {
            let d = cand.abs_diff(anchor);
            if d < best_d {
                best = cand;
                best_d = d;
            }
        }
        best
    }

    /// Relative stream offset a wire sequence number corresponds to, if
    /// the direction is anchored. Used by the kernel to estimate the size
    /// of flows whose data packets were dropped at the NIC from the
    /// sequence numbers of their FIN/RST packets (§5.5).
    pub fn rel_offset_of(&self, seq: u32) -> Option<u64> {
        self.base_seq?;
        Some(self.rel_of(seq))
    }

    /// Process a data segment. In-order bytes (from this segment and any
    /// unblocked buffered ones) are passed to `sink(stream_offset, bytes)`
    /// in order.
    pub fn on_data(
        &mut self,
        seq: u32,
        payload: &[u8],
        sink: &mut impl FnMut(u64, &[u8]),
    ) -> DataOutcome {
        let mut out = DataOutcome::default();
        if payload.is_empty() {
            return out;
        }
        if self.base_seq.is_none() {
            // Midstream pickup: anchor at this segment.
            self.base_seq = Some(seq);
            self.flags.set(ReasmFlags::INCOMPLETE_HANDSHAKE);
        }
        let rel = self.rel_of(seq);
        let end = rel + payload.len() as u64;

        // Entirely in the past: retransmission of delivered data.
        if end <= self.expected {
            out.duplicate = payload.len() as u64;
            self.duplicate_bytes += out.duplicate;
            return out;
        }

        // Sanity window: a segment absurdly far ahead is treated as
        // invalid rather than buffered (anti-evasion, §2.3 normalization).
        const MAX_AHEAD: u64 = 1 << 30;
        if rel > self.expected + MAX_AHEAD {
            self.flags.set(ReasmFlags::INVALID_SEQUENCE);
            out.duplicate = payload.len() as u64;
            return out;
        }

        // Trim any prefix that was already delivered (old data wins for
        // delivered bytes in every policy: they are already in chunks).
        let (rel, payload) = if rel < self.expected {
            let skip = (self.expected - rel) as usize;
            out.duplicate += skip as u64;
            self.duplicate_bytes += skip as u64;
            (self.expected, &payload[skip..])
        } else {
            (rel, payload)
        };

        if self.resume_skip {
            // First segment after a warm restart. If it lands beyond the
            // committed frontier, the hole is the restart blackout: skip
            // it now rather than stalling on bytes the previous instance
            // took to its grave.
            self.resume_skip = false;
            if rel > self.expected {
                let gap = rel - self.expected;
                self.gap_bytes += gap;
                out.gap += gap;
                out.resume_gap += gap;
                out.gap_skipped = true;
                self.flags.set(ReasmFlags::SEQUENCE_GAP);
                self.expected = rel;
            }
        }

        if rel == self.expected {
            // In-order: deliver directly, then drain whatever unblocked.
            sink(rel, payload);
            self.expected = rel + payload.len() as u64;
            out.delivered += payload.len() as u64;
            let before = self.expected;
            self.expected = self.buffer.drain_from(self.expected, |o, d| sink(o, d));
            out.delivered += self.expected - before;
            self.delivered_bytes += out.delivered;
            return out;
        }

        // Out of order: park it.
        let ins = self.buffer.insert(rel, payload, self.cfg.policy);
        if ins.inconsistent {
            self.flags.set(ReasmFlags::INCONSISTENT_OVERLAP);
        }
        out.buffered = ins.stored;
        out.duplicate += ins.duplicate;
        self.duplicate_bytes += ins.duplicate;

        // Buffer pressure: fast mode skips the hole; strict mode flags
        // overflow and sheds the buffer head to bound memory.
        while self.buffer.bytes() > self.cfg.max_ooo_bytes
            || self.buffer.len() > self.cfg.max_ooo_segments
        {
            match self.cfg.mode {
                ReassemblyMode::Fast => {
                    out.gap_skipped = true;
                    self.skip_gap(sink, &mut out);
                }
                ReassemblyMode::Strict => {
                    self.flags.set(ReasmFlags::BUFFER_OVERFLOW);
                    // Shed by skipping, like fast mode, but flag loudly:
                    // a strict-mode monitor must know coverage was lost.
                    out.gap_skipped = true;
                    self.skip_gap(sink, &mut out);
                }
            }
        }
        out
    }

    /// Jump the frontier to the first buffered byte, delivering what is
    /// buffered beyond the hole.
    fn skip_gap(&mut self, sink: &mut impl FnMut(u64, &[u8]), out: &mut DataOutcome) {
        let Some(first) = self.buffer.first_offset() else {
            return;
        };
        debug_assert!(first > self.expected);
        self.gap_bytes += first - self.expected;
        out.gap += first - self.expected;
        self.flags.set(ReasmFlags::SEQUENCE_GAP);
        let before = first;
        self.expected = self.buffer.drain_from(first, |o, d| sink(o, d));
        out.delivered += self.expected - before;
        self.delivered_bytes += self.expected - before;
    }

    /// Force out any buffered data (stream terminating): holes are
    /// skipped and flagged, buffered bytes delivered in order.
    pub fn flush(&mut self, sink: &mut impl FnMut(u64, &[u8])) -> u64 {
        let mut total = 0u64;
        while let Some(first) = self.buffer.first_offset() {
            if first > self.expected {
                self.gap_bytes += first - self.expected;
                self.flags.set(ReasmFlags::SEQUENCE_GAP);
            }
            let before = self.expected.max(first);
            self.expected = self.buffer.drain_from(first, |o, d| sink(o, d));
            total += self.expected - before;
        }
        self.delivered_bytes += total;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fast() -> DirReassembler {
        DirReassembler::new(ReasmConfig::for_mode(ReassemblyMode::Fast))
    }

    fn strict() -> DirReassembler {
        DirReassembler::new(ReasmConfig::for_mode(ReassemblyMode::Strict))
    }

    fn run(r: &mut DirReassembler, segs: &[(u32, &[u8])]) -> Vec<u8> {
        let mut got = Vec::new();
        for (seq, data) in segs {
            r.on_data(*seq, data, &mut |_, d| got.extend_from_slice(d));
        }
        got
    }

    #[test]
    fn in_order_delivery() {
        let mut r = fast();
        r.set_base(1000);
        let got = run(&mut r, &[(1000, b"hello "), (1006, b"world")]);
        assert_eq!(got, b"hello world");
        assert_eq!(r.expected(), 11);
        assert!(r.flags.is_clean());
    }

    #[test]
    fn reordering_is_fixed_by_buffering() {
        let mut r = fast();
        r.set_base(0);
        let got = run(&mut r, &[(0, b"AA"), (4, b"CC"), (2, b"BB"), (6, b"DD")]);
        assert_eq!(got, b"AABBCCDD");
        assert!(r.flags.is_clean());
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn retransmission_discarded() {
        let mut r = fast();
        r.set_base(0);
        let mut got = Vec::new();
        r.on_data(0, b"abcd", &mut |_, d| got.extend_from_slice(d));
        let out = r.on_data(0, b"abcd", &mut |_, d| got.extend_from_slice(d));
        assert_eq!(out.duplicate, 4);
        assert_eq!(out.delivered, 0);
        assert_eq!(got, b"abcd");
        assert_eq!(r.duplicate_bytes, 4);
    }

    #[test]
    fn partial_retransmission_delivers_only_new_suffix() {
        let mut r = fast();
        r.set_base(0);
        let mut got = Vec::new();
        r.on_data(0, b"abcd", &mut |_, d| got.extend_from_slice(d));
        // Segment re-covers 2..4 and extends to 6.
        let out = r.on_data(2, b"cdEF", &mut |_, d| got.extend_from_slice(d));
        assert_eq!(out.delivered, 2);
        assert_eq!(out.duplicate, 2);
        assert_eq!(got, b"abcdEF");
    }

    #[test]
    fn fast_mode_skips_unfilled_holes_under_pressure() {
        let mut r = DirReassembler::new(ReasmConfig {
            mode: ReassemblyMode::Fast,
            policy: OverlapPolicy::First,
            max_ooo_bytes: 8,
            max_ooo_segments: 64,
        });
        r.set_base(0);
        let mut got = Vec::new();
        // Byte 0..2 never arrives; buffered data exceeds the 8-byte cap.
        r.on_data(2, b"BBBB", &mut |_, d| got.extend_from_slice(d));
        assert!(got.is_empty());
        let out = r.on_data(6, b"CCCCCC", &mut |_, d| got.extend_from_slice(d));
        assert!(out.gap_skipped);
        assert_eq!(got, b"BBBBCCCCCC");
        assert!(r.flags.contains(ReasmFlags::SEQUENCE_GAP));
        assert_eq!(r.gap_bytes, 2);
        assert_eq!(r.expected(), 12);
    }

    #[test]
    fn strict_mode_waits_for_holes() {
        let mut r = strict();
        r.set_base(0);
        let mut got = Vec::new();
        r.on_data(2, b"BBBB", &mut |_, d| got.extend_from_slice(d));
        r.on_data(6, b"CCCC", &mut |_, d| got.extend_from_slice(d));
        assert!(got.is_empty());
        assert_eq!(r.buffered_bytes(), 8);
        // The hole fills: everything drains.
        r.on_data(0, b"AA", &mut |_, d| got.extend_from_slice(d));
        assert_eq!(got, b"AABBBBCCCC");
        assert!(r.flags.is_clean());
    }

    #[test]
    fn strict_mode_overflow_flags_and_sheds() {
        let mut r = DirReassembler::new(ReasmConfig {
            mode: ReassemblyMode::Strict,
            policy: OverlapPolicy::First,
            max_ooo_bytes: 4,
            max_ooo_segments: 64,
        });
        r.set_base(0);
        let mut got = Vec::new();
        r.on_data(10, b"XXXXXXXX", &mut |_, d| got.extend_from_slice(d));
        assert!(r.flags.contains(ReasmFlags::BUFFER_OVERFLOW));
        assert!(r.flags.contains(ReasmFlags::SEQUENCE_GAP));
        assert_eq!(got, b"XXXXXXXX");
    }

    #[test]
    fn flush_delivers_buffered_tail() {
        let mut r = strict();
        r.set_base(0);
        let mut got = Vec::new();
        r.on_data(0, b"AA", &mut |_, d| got.extend_from_slice(d));
        r.on_data(4, b"CC", &mut |_, d| got.extend_from_slice(d));
        assert_eq!(got, b"AA");
        let n = r.flush(&mut |_, d| got.extend_from_slice(d));
        assert_eq!(n, 2);
        assert_eq!(got, b"AACC");
        assert!(r.flags.contains(ReasmFlags::SEQUENCE_GAP));
    }

    #[test]
    fn sequence_wraparound_handled() {
        let base = u32::MAX - 3;
        let mut r = fast();
        r.set_base(base);
        let mut got = Vec::new();
        r.on_data(base, b"abcd", &mut |_, d| got.extend_from_slice(d)); // crosses wrap
        r.on_data(0, b"efgh", &mut |_, d| got.extend_from_slice(d)); // post-wrap seq 0
        assert_eq!(got, b"abcdefgh");
        assert_eq!(r.expected(), 8);
    }

    #[test]
    fn absurd_sequence_flagged_invalid() {
        let mut r = fast();
        r.set_base(0);
        let mut got = Vec::new();
        let out = r.on_data(0x7000_0000, b"evil", &mut |_, d| got.extend_from_slice(d));
        assert_eq!(out.delivered, 0);
        assert!(r.flags.contains(ReasmFlags::INVALID_SEQUENCE));
        assert!(got.is_empty());
    }

    #[test]
    fn midstream_pickup_flags_handshake() {
        let mut r = fast();
        let mut got = Vec::new();
        r.on_data(5555, b"data", &mut |_, d| got.extend_from_slice(d));
        assert_eq!(got, b"data");
        assert!(r.flags.contains(ReasmFlags::INCOMPLETE_HANDSHAKE));
    }

    #[test]
    fn offsets_reported_to_sink_are_stream_offsets() {
        let mut r = fast();
        r.set_base(100);
        let mut offs = Vec::new();
        r.on_data(100, b"ab", &mut |o, _| offs.push(o));
        r.on_data(104, b"ef", &mut |o, _| offs.push(o));
        r.on_data(102, b"cd", &mut |o, _| offs.push(o));
        assert_eq!(offs, vec![0, 2, 4]);
    }

    proptest! {
        /// Random segmentations with duplicates and reordering of a
        /// consistent source always reassemble exactly in strict mode,
        /// and in fast mode when within the buffering tolerance.
        #[test]
        fn reassembles_consistent_source(
            source in proptest::collection::vec(any::<u8>(), 1..600),
            seed: u64,
            strict_mode: bool,
        ) {
            let mut segs: Vec<(u32, Vec<u8>)> = Vec::new();
            let mut off = 0usize;
            let mut st = seed;
            let mut next = |m: usize| {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (st >> 33) as usize % m
            };
            while off < source.len() {
                let len = 1 + next(40).min(source.len() - off - 1);
                let len = len.min(source.len() - off);
                segs.push((off as u32, source[off..off+len].to_vec()));
                // Occasional duplicate.
                if next(5) == 0 {
                    segs.push((off as u32, source[off..off+len].to_vec()));
                }
                off += len;
            }
            // Local shuffle: swap adjacent pairs (bounded reordering that
            // stays within fast mode's tolerance).
            for i in 1..segs.len() {
                if next(3) == 0 {
                    segs.swap(i - 1, i);
                }
            }
            let mode = if strict_mode { ReassemblyMode::Strict } else { ReassemblyMode::Fast };
            let mut r = DirReassembler::new(ReasmConfig::for_mode(mode));
            r.set_base(0);
            let mut got = Vec::new();
            for (seq, d) in &segs {
                r.on_data(*seq, d, &mut |_, b| got.extend_from_slice(b));
            }
            r.flush(&mut |_, b| got.extend_from_slice(b));
            prop_assert_eq!(got, source);
            prop_assert!(!r.flags.contains(ReasmFlags::INCONSISTENT_OVERLAP));
        }
    }
}
