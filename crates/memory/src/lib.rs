#![warn(missing_docs)]

//! # scap-memory
//!
//! The stream memory substrate (§5.3 of the paper):
//!
//! * [`arena`] — the large buffer the kernel module allocates and maps
//!   into user space, modelled as a budgeted block allocator with
//!   per-size-class free lists. Streams get contiguous blocks of their
//!   chunk size; the fill fraction drives overload policy.
//! * [`assembler`] — per-direction chunk assembly: payload is copied
//!   *once*, directly into the stream's current block (the paper's core
//!   performance argument against user-level reassembly), with chunk
//!   completion, flush, and inter-chunk overlap.
//! * [`ppl`] — Prioritized Packet Loss (§2.2): the
//!   `base_threshold`/watermark scheme that sheds low-priority packets
//!   and the tails of long streams first under memory pressure.

pub mod arena;
pub mod assembler;
pub mod ppl;

pub use arena::{Arena, ChunkBuf, OutOfMemory};
pub use assembler::ChunkAssembler;
pub use ppl::{PplConfig, PplVerdict};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_quickstart() {
        let mut arena = Arena::new(1 << 20);
        let mut asm = ChunkAssembler::new(4096, 0);
        let mut done = Vec::new();
        asm.append(&mut arena, &[7u8; 10_000], &mut done).unwrap();
        // Two full 4 KB chunks completed; the rest is still assembling.
        assert_eq!(done.len(), 2);
        let tail = asm.flush().unwrap();
        assert_eq!(done.iter().map(|c| c.len).sum::<usize>() + tail.len, 10_000);
    }
}
