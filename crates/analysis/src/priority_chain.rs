//! The three-priority Markov chain of §7 (Fig. 12).
//!
//! Memory above the base threshold is split into two regions of `N`
//! packet slots. While occupancy is below `N`, both medium- (rate λ₁)
//! and high-priority (rate λ₂) packets are admitted; between `N` and
//! `2N` only high-priority packets are; at `2N` everything is dropped.
//! Service is exponential at rate μ. The chain over occupancy
//! `0..2N` is birth–death with birth rate `λ₁+λ₂` in the first region
//! and `λ₂` in the second.
//!
//! With `ρ₁ = (λ₁+λ₂)/μ` and `ρ₂ = λ₂/μ` (the paper's eq. 2):
//!
//! * high-priority packets are lost only in state `2N`:
//!   `P_high = ρ₁^N · ρ₂^N · p₀`;
//! * medium-priority packets are lost whenever occupancy ≥ `N` (PASTA):
//!   `P_med = Σ_{i=N}^{2N} p_i` (the paper's eq. 3 quotes the M/M/1/N
//!   form for the first region, a tight upper-region-ignoring
//!   approximation; both are provided here).

use crate::birth_death::stationary_distribution;

/// Stationary distribution of the two-region chain.
pub fn chain_distribution(rho1: f64, rho2: f64, n: usize) -> Vec<f64> {
    assert!(n > 0);
    let mut births = vec![rho1; n];
    births.extend(std::iter::repeat_n(rho2, n));
    let deaths = vec![1.0; 2 * n];
    stationary_distribution(&births, &deaths)
}

/// High-priority loss probability: `p_{2N}` (eq. 2).
pub fn high_priority_loss(rho1: f64, rho2: f64, n: usize) -> f64 {
    let p = chain_distribution(rho1, rho2, n);
    p[2 * n]
}

/// Medium-priority loss probability, exact: occupancy ≥ N.
pub fn medium_priority_loss(rho1: f64, rho2: f64, n: usize) -> f64 {
    let p = chain_distribution(rho1, rho2, n);
    p[n..].iter().sum()
}

/// Medium-priority loss in the paper's eq. 3 form (M/M/1/N over the
/// first region only).
pub fn medium_priority_loss_paper(rho1: f64, n: usize) -> f64 {
    crate::mm1n::loss_probability(rho1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure_12_anchor() {
        // Fig. 12: ρ₁ = ρ₂ = 0.3; a few tens of slots push both loss
        // probabilities to practically zero.
        let n = 20;
        assert!(high_priority_loss(0.3, 0.3, n) < 1e-10);
        assert!(medium_priority_loss(0.3, 0.3, n) < 1e-8);
        // And high-priority is always the better-protected class.
        for n in [2usize, 5, 10, 30] {
            assert!(
                high_priority_loss(0.3, 0.3, n) < medium_priority_loss(0.3, 0.3, n),
                "at N={n}"
            );
        }
    }

    #[test]
    fn closed_form_matches_distribution() {
        // p_{2N} should equal ρ₁^N ρ₂^N p₀ by construction.
        let (rho1, rho2, n) = (0.6, 0.25, 7);
        let p = chain_distribution(rho1, rho2, n);
        let expected = p[0] * rho1.powi(n as i32) * rho2.powi(n as i32);
        assert!((p[2 * n] - expected).abs() < 1e-14);
    }

    #[test]
    fn paper_eq3_approximates_exact_medium_loss() {
        // The eq. 3 form ignores the upper region; for small ρ₂ the two
        // agree closely.
        let exact = medium_priority_loss(0.5, 0.05, 15);
        let paper = medium_priority_loss_paper(0.5, 15);
        assert!((exact - paper).abs() / paper < 0.2, "{exact} vs {paper}");
    }

    proptest! {
        /// Loss probabilities are valid and ordered for any loads.
        #[test]
        fn sane_and_ordered(
            rho1 in 0.05f64..0.95,
            rho2f in 0.05f64..1.0,
            n in 1usize..40,
        ) {
            // ρ₂ ≤ ρ₁ by construction (high priority is a subset of all).
            let rho2 = rho2f * rho1;
            let hi = high_priority_loss(rho1, rho2, n);
            let med = medium_priority_loss(rho1, rho2, n);
            prop_assert!((0.0..=1.0).contains(&hi));
            prop_assert!((0.0..=1.0).contains(&med));
            prop_assert!(hi <= med + 1e-12);
            // More memory helps both classes.
            prop_assert!(high_priority_loss(rho1, rho2, n + 1) <= hi + 1e-12);
            prop_assert!(medium_priority_loss(rho1, rho2, n + 1) <= med + 1e-12);
        }
    }
}
