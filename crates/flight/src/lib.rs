#![warn(missing_docs)]

//! # scap-flight
//!
//! An always-on, zero-dependency flight recorder for the Scap pipeline:
//! per-core ring-buffered journals of typed, timestamped events with
//! *drop provenance* — every packet or byte the capture loses or refuses
//! carries `{layer, reason, stream_uid}`, so overload episodes are
//! attributable after the fact, not just countable.
//!
//! Where [`scap-telemetry`] answers *how many*, the flight recorder
//! answers *why this stream* and *why at that moment*:
//!
//! * [`FlightRecorder`] — one preallocated ring per core. A hot-path
//!   record is a handful of stores into the next slot (no allocation, no
//!   locks; the single-writer-per-core discipline the kernel already
//!   enforces makes the relaxed cursor race-free). When a ring wraps,
//!   the overwritten events are **counted** — tracing never silently
//!   loses its own loss (see [`FlightRecorder::dropped`]).
//! * [`FlightEvent`] — a fixed-size record with static-enum identities
//!   ([`FlightKind`], [`FlightLayer`], [`DropReason`]), a capture-wide
//!   sequence number, a virtual/trace timestamp, and two payload words
//!   whose meaning depends on the kind (packet/byte counts for drops,
//!   from/to levels for governor changes, …).
//! * A CRC-framed journal codec ([`FlightRecorder::encode`] /
//!   [`decode_journal`]) sharing the checkpoint file discipline: 16-byte
//!   file header, per-record magic + length + CRC-32, torn-tail-tolerant
//!   scanning. [`FlightRecorder::encode_tail`] produces the last-N-events
//!   *black box* the live driver dumps next to the checkpoint file when
//!   the process dies.
//!
//! Determinism contract (same as `scap-telemetry`): timestamps are the
//! caller's clock — virtual/trace time under simulation — and sequence
//! numbers are assigned in record order, so a seeded run produces a
//! byte-identical journal.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Static event identities
// ---------------------------------------------------------------------------

macro_rules! flight_ids {
    ($(#[$meta:meta])* $name:ident {
        $($(#[$vmeta:meta])* $var:ident => $s:literal,)+
    }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum $name {
            $($(#[$vmeta])* $var,)+
        }

        impl $name {
            /// Number of variants.
            pub const COUNT: usize = [$($name::$var),+].len();
            /// All variants in declaration (and export) order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$var),+];

            /// Stable wire name used by every exporter.
            pub const fn name(self) -> &'static str {
                match self { $($name::$var => $s,)+ }
            }

            /// Reverse lookup by wire name.
            pub fn from_name(s: &str) -> Option<Self> {
                match s { $($s => Some($name::$var),)+ _ => None }
            }

            /// Index into per-identity arrays / the wire byte.
            #[inline]
            pub const fn idx(self) -> u8 {
                self as u8
            }

            /// Decode the wire byte; `None` rejects corrupt identities.
            pub fn from_idx(i: u8) -> Option<Self> {
                Self::ALL.get(i as usize).copied()
            }
        }
    };
}

flight_ids! {
    /// What happened. Declaration order is the stable wire encoding, so
    /// only append.
    FlightKind {
        /// Packets/bytes lost to overload (`a` = packets, `b` = bytes).
        Drop => "drop",
        /// Packets/bytes deliberately not captured (`a` = packets,
        /// `b` = bytes).
        Discard => "discard",
        /// A new stream entered the flow table.
        StreamCreated => "stream_created",
        /// The stream's cutoff tripped for the first time.
        CutoffHit => "cutoff_hit",
        /// The governor evicted a low-priority stream's pending memory.
        StreamEvicted => "stream_evicted",
        /// The stream expired by inactivity.
        StreamExpired => "stream_expired",
        /// The stream terminated and was reported (`a` = total bytes,
        /// `b` = total packets).
        StreamTerminated => "stream_terminated",
        /// The stream was restored from a checkpoint (RESUMED).
        StreamResumed => "stream_resumed",
        /// The overload governor changed level (`a` = from, `b` = to).
        GovernorChange => "governor_change",
        /// NIC drop filters were installed for a stream.
        FdirInstalled => "fdir_installed",
        /// A stream's filters were evicted to make room (nearest
        /// deadline first).
        FdirEvicted => "fdir_evicted",
        /// A transiently failed install was parked for retry
        /// (`a` = attempts so far).
        FdirRetryQueued => "fdir_retry_queued",
        /// A parked install retry finally succeeded.
        FdirRetryOk => "fdir_retry_ok",
        /// Retries exhausted: cutoff enforced in software from now on.
        FdirFallback => "fdir_fallback",
        /// A filter's timeout elapsed and it was removed.
        FdirExpired => "fdir_expired",
        /// A checkpoint was written (`a` = sequence, `b` = bytes).
        CheckpointWritten => "checkpoint_written",
        /// The kernel was rebuilt from a checkpoint (`a` = lineage
        /// restart count, `b` = streams resumed).
        Restarted => "restarted",
        /// A live worker thread panicked (`a` = worker index).
        WorkerPanic => "worker_panic",
        /// The heartbeat watchdog detected a wedged worker
        /// (`a` = worker index).
        WorkerStall => "worker_stall",
        /// The watchdog spawned a replacement worker (`a` = worker
        /// index).
        WorkerRestart => "worker_restart",
        /// The archive opened a new segment file (`a` = segment index).
        StoreSegmentCreated => "store_segment_created",
        /// A terminated stream was sealed into the archive
        /// (`a` = payload bytes archived).
        StoreStreamArchived => "store_stream_archived",
        /// A tenant attached to a shared capture (`uid` = tenant id,
        /// `a` = memory share in permille, `b` = disk share in permille).
        TenantAttached => "tenant_attached",
        /// A tenant detached cleanly (`uid` = tenant id, `a` = delivered
        /// bytes at detach).
        TenantDetached => "tenant_detached",
        /// A slow tenant was degraded — its delivery cutoff tightened
        /// (`uid` = tenant id, `a` = the degraded cutoff).
        TenantDegraded => "tenant_degraded",
        /// A persistently slow tenant was forcibly disconnected
        /// (`uid` = tenant id, `a` = bytes dropped on its queue).
        TenantDisconnected => "tenant_disconnected",
        /// An offload rule was programmed for a stream (`uid` = stream,
        /// `a` = action discriminant, `b` = rules installed).
        OffloadInstalled => "offload_installed",
        /// An offload rule was evicted under table pressure (`uid` =
        /// the displacing stream, `a` = evicted rule's priority).
        OffloadEvicted => "offload_evicted",
        /// A shard engine came up (`a` = shard index, `b` = 1 when the
        /// spawn was a cold start with no checkpoint).
        ShardSpawned => "shard_spawned",
        /// A shard's heartbeat lease passed its deadline with work
        /// pending (`a` = shard index, `b` = lease age in ns).
        ShardLeaseExpired => "shard_lease_expired",
        /// The supervisor killed a shard — crash or stall takedown
        /// (`a` = shard index, `b` = scheduled respawn backoff in ns).
        ShardKilled => "shard_killed",
        /// A killed shard was respawned from its checkpoint
        /// (`a` = shard index, `b` = blackout length in ns).
        ShardRespawned => "shard_respawned",
        /// The circuit breaker parked a shard for good
        /// (`a` = shard index, `b` = failures inside the window).
        ShardParked => "shard_parked",
        /// A respawn/restart circuit breaker tripped (`a` = slot or
        /// shard index, `b` = failures inside the window).
        BreakerTripped => "breaker_tripped",
        /// A shard's checkpoint failed CRC validation at respawn
        /// (`a` = shard index, `b` = 1 when an older checkpoint was
        /// used, 0 when the shard cold-started).
        ShardCheckpointCorrupt => "shard_checkpoint_corrupt",
        /// A stage latency cleared the pulse tail-sampling threshold and
        /// entered the exemplar ring (`uid` = stream, `a` = pulse stage
        /// index, `b` = observed delay in ns). Guarantees every exported
        /// exemplar's uid resolves in the journal it points into.
        PulseExemplar => "pulse_exemplar",
    }
}

flight_ids! {
    /// Where in the pipeline the event originated.
    FlightLayer {
        /// NIC admission: FDIR filters, RSS, RX descriptor rings.
        Nic => "nic",
        /// Kernel path: parsing, flow lookup, reassembly, timers.
        Kernel => "kernel",
        /// Stream memory: PPL admission, arena allocation, eviction.
        Memory => "memory",
        /// Kernel→user event queues.
        EventQueue => "event_queue",
        /// The overload governor.
        Governor => "governor",
        /// Flow-director filter management.
        Fdir => "fdir",
        /// Live-driver worker threads and their watchdog.
        Worker => "worker",
        /// Checkpoint / warm-restart machinery.
        Checkpoint => "checkpoint",
        /// The persistent stream archive (`scap-store`).
        Store => "store",
        /// Per-tenant demux and delivery queues (`scapd`).
        Tenant => "tenant",
        /// The programmable flow-offload stage (`scap-offload`).
        Offload => "offload",
        /// The scale-out shard supervisor (`scap-shard` + `scap::shard`).
        Shard => "shard",
    }
}

flight_ids! {
    /// Why packets/bytes were dropped or discarded. `None` for events
    /// that are not losses.
    DropReason {
        /// Not a loss event.
        None => "none",
        /// The frame would not parse.
        ParseError => "parse_error",
        /// A hardware FDIR drop filter matched (subzero copy).
        FdirFilter => "fdir_filter",
        /// The target RX descriptor ring was full.
        RingFull => "ring_full",
        /// The socket-wide BPF filter rejected the packet.
        BpfFilter => "bpf_filter",
        /// No flow key (non-IP, fragments, …).
        NoFlowKey => "no_flow_key",
        /// The flow table was at its configured cap.
        FlowTableFull => "flow_table_full",
        /// A TIME_WAIT tombstone absorbed a late packet.
        TimeWait => "time_wait",
        /// The stream's configured cutoff had been reached.
        Cutoff => "cutoff",
        /// The governor's tightened cutoff (below the configured one).
        GovernorClamp => "governor_clamp",
        /// The application called `scap_discard_stream`.
        AppDiscard => "app_discard",
        /// Transport said TCP but the header would not parse.
        NoTcpHeader => "no_tcp_header",
        /// Prioritized Packet Loss refused the packet under pressure.
        Ppl => "ppl",
        /// The stream arena was exhausted.
        ArenaOom => "arena_oom",
        /// The payload was a pure duplicate of captured data.
        Duplicate => "duplicate",
        /// The per-core event queue was at capacity.
        EventQueueFull => "event_queue_full",
        /// The governor evicted the stream's pending chunks.
        PriorityEvict => "priority_evict",
        /// Defensive internal path (state vanished mid-flight).
        Internal => "internal",
        /// A tenant's bounded delivery queue was full (slow consumer).
        SlowConsumer => "slow_consumer",
        /// Delivery trimmed/suppressed by a tenant quota (degraded
        /// cutoff or disconnected tenant).
        TenantQuota => "tenant_quota",
        /// An offload `Drop` rule matched (subzero copy at the NIC).
        OffloadDrop => "offload_drop",
        /// An offload `Sample(1-in-N)` rule dropped a non-kept packet.
        OffloadSample => "offload_sample",
        /// The owning shard was down (killed, stalled, respawning, or
        /// parked); its partition's frames had nowhere to go.
        ShardDown => "shard_down",
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One fixed-size flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Capture-wide sequence number (assigned by the recorder; total
    /// order over all cores).
    pub seq: u64,
    /// Caller's clock: virtual/trace nanoseconds under simulation.
    pub ts_ns: u64,
    /// Stream uid the event concerns (0 = not stream-scoped).
    pub uid: u64,
    /// First payload word (kind-dependent; packets for losses).
    pub a: u64,
    /// Second payload word (kind-dependent; bytes for losses).
    pub b: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Where it happened.
    pub layer: FlightLayer,
    /// Why (losses only; `DropReason::None` otherwise).
    pub reason: DropReason,
    /// Core / ring the event was recorded on.
    pub core: u8,
}

/// Encoded size of one event body (excluding the record frame).
pub const EVENT_LEN: usize = 44;

impl FlightEvent {
    /// A new event; `seq` and `core` are filled in by the recorder.
    pub fn new(kind: FlightKind, layer: FlightLayer, ts_ns: u64) -> Self {
        FlightEvent {
            seq: 0,
            ts_ns,
            uid: 0,
            a: 0,
            b: 0,
            kind,
            layer,
            reason: DropReason::None,
            core: 0,
        }
    }

    /// Attach a drop/discard reason.
    pub fn with_reason(mut self, reason: DropReason) -> Self {
        self.reason = reason;
        self
    }

    /// Attach the stream uid the event concerns.
    pub fn with_uid(mut self, uid: u64) -> Self {
        self.uid = uid;
        self
    }

    /// Attach the two kind-dependent payload words (packets/bytes for
    /// losses, from/to for governor changes, …).
    pub fn with_vals(mut self, a: u64, b: u64) -> Self {
        self.a = a;
        self.b = b;
        self
    }

    /// Encode into the fixed [`EVENT_LEN`]-byte wire form.
    pub fn encode(&self) -> [u8; EVENT_LEN] {
        let mut out = [0u8; EVENT_LEN];
        out[0..8].copy_from_slice(&self.seq.to_le_bytes());
        out[8..16].copy_from_slice(&self.ts_ns.to_le_bytes());
        out[16..24].copy_from_slice(&self.uid.to_le_bytes());
        out[24..32].copy_from_slice(&self.a.to_le_bytes());
        out[32..40].copy_from_slice(&self.b.to_le_bytes());
        out[40] = self.kind.idx();
        out[41] = self.layer.idx();
        out[42] = self.reason.idx();
        out[43] = self.core;
        out
    }

    /// Decode the fixed wire form, rejecting unknown identities.
    pub fn decode(body: &[u8]) -> Result<Self, FlightError> {
        if body.len() != EVENT_LEN {
            return Err(FlightError::Corrupt(format!(
                "event body is {} bytes, expected {EVENT_LEN}",
                body.len()
            )));
        }
        let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap());
        let kind = FlightKind::from_idx(body[40])
            .ok_or_else(|| FlightError::Corrupt(format!("unknown event kind {}", body[40])))?;
        let layer = FlightLayer::from_idx(body[41])
            .ok_or_else(|| FlightError::Corrupt(format!("unknown layer {}", body[41])))?;
        let reason = DropReason::from_idx(body[42])
            .ok_or_else(|| FlightError::Corrupt(format!("unknown reason {}", body[42])))?;
        Ok(FlightEvent {
            seq: u64_at(0),
            ts_ns: u64_at(8),
            uid: u64_at(16),
            a: u64_at(24),
            b: u64_at(32),
            kind,
            layer,
            reason,
            core: body[43],
        })
    }

    /// One-line human rendering (used by `scapcat --trace` and the
    /// `scapstore` black-box decoder).
    pub fn format(&self) -> String {
        let mut s = format!(
            "#{:<6} {:>12} ns  core {}  [{}] {}",
            self.seq,
            self.ts_ns,
            self.core,
            self.layer.name(),
            self.kind.name(),
        );
        if self.reason != DropReason::None {
            s.push_str(&format!(" reason={}", self.reason.name()));
        }
        if self.uid != 0 {
            s.push_str(&format!(" uid={}", self.uid));
        }
        match self.kind {
            FlightKind::Drop | FlightKind::Discard => {
                s.push_str(&format!(" pkts={} bytes={}", self.a, self.b));
            }
            FlightKind::GovernorChange => {
                s.push_str(&format!(" level {} -> {}", self.a, self.b));
            }
            FlightKind::CheckpointWritten => {
                s.push_str(&format!(" seq={} bytes={}", self.a, self.b));
            }
            FlightKind::Restarted => {
                s.push_str(&format!(" restarts={} resumed={}", self.a, self.b));
            }
            FlightKind::StreamTerminated => {
                s.push_str(&format!(" total_bytes={} total_pkts={}", self.a, self.b));
            }
            FlightKind::PulseExemplar => {
                s.push_str(&format!(" stage={} delay_ns={}", self.a, self.b));
            }
            _ if self.a != 0 || self.b != 0 => {
                s.push_str(&format!(" a={} b={}", self.a, self.b));
            }
            _ => {}
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Per-core rings and the recorder
// ---------------------------------------------------------------------------

/// Default per-core ring capacity (events) when none is configured.
pub const DEFAULT_RING_CAP: usize = 8192;

struct Ring {
    slots: Vec<FlightEvent>,
    cap: usize,
    recorded: u64,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(cap),
            cap,
            recorded: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, ev: FlightEvent) {
        if self.slots.len() < self.cap {
            self.slots.push(ev);
        } else {
            // Wrap-around: the oldest event is overwritten, and counted.
            let i = (self.recorded % self.cap as u64) as usize;
            self.slots[i] = ev;
            self.dropped += 1;
        }
        self.recorded += 1;
    }

    /// Surviving events, oldest first.
    fn events(&self) -> Vec<FlightEvent> {
        if self.slots.len() < self.cap || self.recorded as usize <= self.cap {
            return self.slots.clone();
        }
        let head = (self.recorded % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.cap);
        out.extend_from_slice(&self.slots[head..]);
        out.extend_from_slice(&self.slots[..head]);
        out
    }
}

/// The per-core ring-buffered event journal.
///
/// Single writer per core (the thread driving that core's kernel state),
/// which is what makes the unsynchronized cursor safe; readers take the
/// whole recorder (`&self`) between packets, exactly like telemetry
/// snapshots.
pub struct FlightRecorder {
    rings: Vec<Ring>,
    seq: u64,
    cap: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("cores", &self.rings.len())
            .field("cap", &self.cap)
            .field("recorded", &self.total_recorded())
            .field("dropped", &self.total_dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `ncores` rings of `cap` preallocated slots each.
    pub fn new(ncores: usize, cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            rings: (0..ncores.max(1)).map(|_| Ring::new(cap)).collect(),
            seq: 0,
            cap,
        }
    }

    /// Ring capacity per core.
    pub fn ring_cap(&self) -> usize {
        self.cap
    }

    /// Number of per-core rings.
    pub fn ncores(&self) -> usize {
        self.rings.len()
    }

    /// Record one event on `core`'s ring. Assigns the capture-wide
    /// sequence number and stamps the core; cores beyond the ring count
    /// collapse into the last ring.
    #[inline]
    pub fn emit(&mut self, core: usize, mut ev: FlightEvent) {
        let c = core.min(self.rings.len() - 1);
        ev.seq = self.seq;
        ev.core = c as u8;
        self.seq += 1;
        self.rings[c].push(ev);
    }

    /// Events ever recorded on one core (survivors + overwritten).
    pub fn recorded(&self, core: usize) -> u64 {
        self.rings.get(core).map_or(0, |r| r.recorded)
    }

    /// Events overwritten by wrap-around on one core — the
    /// `FlightDropped` meta-counter. Tracing never silently loses its
    /// own loss: what the ring forgot is still counted here.
    pub fn dropped(&self, core: usize) -> u64 {
        self.rings.get(core).map_or(0, |r| r.dropped)
    }

    /// Total events ever recorded across all cores.
    pub fn total_recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded).sum()
    }

    /// Total events overwritten across all cores.
    pub fn total_dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// All surviving events merged across cores, in capture order
    /// (ascending sequence number).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut all: Vec<FlightEvent> = self.rings.iter().flat_map(|r| r.events()).collect();
        all.sort_unstable_by_key(|e| e.seq);
        all
    }

    /// Encode the full journal (header, meta record, one record per
    /// surviving event in capture order).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_events(&self.events())
    }

    /// Encode a *black box*: the last `n` surviving events in capture
    /// order. This is what the live driver dumps next to the checkpoint
    /// file when the process dies.
    pub fn encode_tail(&self, n: usize) -> Vec<u8> {
        let all = self.events();
        let start = all.len().saturating_sub(n);
        self.encode_events(&all[start..])
    }

    fn encode_events(&self, events: &[FlightEvent]) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            FILE_HEADER_LEN + 64 + events.len() * (REC_HEADER_LEN + 1 + EVENT_LEN),
        );
        out.extend_from_slice(&file_header(FLIGHT_MAGIC, self.rings.len() as u64));
        let mut meta = Vec::with_capacity(1 + 8 + self.rings.len() * 16);
        meta.push(TAG_META);
        meta.extend_from_slice(&(self.cap as u64).to_le_bytes());
        for r in &self.rings {
            meta.extend_from_slice(&r.recorded.to_le_bytes());
            meta.extend_from_slice(&r.dropped.to_le_bytes());
        }
        out.extend_from_slice(&frame_record(&meta));
        for ev in events {
            let mut body = Vec::with_capacity(1 + EVENT_LEN);
            body.push(TAG_EVENT);
            body.extend_from_slice(&ev.encode());
            out.extend_from_slice(&frame_record(&body));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Journal file format (shares the checkpoint framing discipline)
// ---------------------------------------------------------------------------

/// Journal file magic: `SFLT` little-endian.
pub const FLIGHT_MAGIC: u32 = 0x544C_4653;
/// Journal format version.
pub const FORMAT_VERSION: u32 = 1;
/// File header length: magic, version, ring count.
pub const FILE_HEADER_LEN: usize = 16;
/// Record frame header: magic, body length, CRC-32.
pub const REC_HEADER_LEN: usize = 12;
/// Record magic: `RECD` little-endian (same as the checkpoint format).
pub const REC_MAGIC: u32 = 0x4443_4552;

const TAG_META: u8 = 0;
const TAG_EVENT: u8 = 1;

/// Errors from the journal codec.
#[derive(Debug)]
pub enum FlightError {
    /// Structural or identity corruption.
    Corrupt(String),
    /// File I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FlightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightError::Corrupt(m) => write!(f, "corrupt flight journal: {m}"),
            FlightError::Io(e) => write!(f, "flight journal i/o: {e}"),
        }
    }
}

impl std::error::Error for FlightError {}

impl From<std::io::Error> for FlightError {
    fn from(e: std::io::Error) -> Self {
        FlightError::Io(e)
    }
}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE), the integrity check on every record frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Standard 16-byte file header: magic, format version, file id.
pub fn file_header(magic: u32, id: u64) -> [u8; FILE_HEADER_LEN] {
    let mut h = [0u8; FILE_HEADER_LEN];
    h[0..4].copy_from_slice(&magic.to_le_bytes());
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&id.to_le_bytes());
    h
}

/// Frame a record body: magic, length, CRC-32, body.
pub fn frame_record(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER_LEN + body.len());
    out.extend_from_slice(&REC_MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// A decoded flight journal (full journal or black-box dump).
#[derive(Debug, Clone)]
pub struct Journal {
    /// Number of per-core rings in the recorder that wrote the file.
    pub ncores: usize,
    /// Ring capacity per core.
    pub ring_cap: u64,
    /// Events ever recorded, per core (survivors + overwritten).
    pub recorded: Vec<u64>,
    /// Events overwritten by wrap-around, per core.
    pub dropped: Vec<u64>,
    /// The events the file carries, in capture order.
    pub events: Vec<FlightEvent>,
    /// Bytes past the last valid record (a torn tail from a crash).
    pub torn_bytes: usize,
}

impl Journal {
    /// Total events overwritten across cores.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Total events ever recorded across cores.
    pub fn total_recorded(&self) -> u64 {
        self.recorded.iter().sum()
    }

    /// Events scoped to one stream uid, in capture order.
    pub fn for_uid(&self, uid: u64) -> Vec<FlightEvent> {
        self.events
            .iter()
            .filter(|e| e.uid == uid)
            .copied()
            .collect()
    }
}

/// Decode a journal or black-box file. Torn tails (a crash mid-append)
/// are tolerated and reported via [`Journal::torn_bytes`]; corruption
/// *inside* the valid prefix (bad magic/version, bad identity bytes in a
/// CRC-clean record) is an error.
pub fn decode_journal(data: &[u8]) -> Result<Journal, FlightError> {
    if data.len() < FILE_HEADER_LEN {
        return Err(FlightError::Corrupt(format!(
            "file too short for header: {} bytes",
            data.len()
        )));
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != FLIGHT_MAGIC {
        return Err(FlightError::Corrupt(format!(
            "bad file magic {magic:#010x}"
        )));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(FlightError::Corrupt(format!(
            "unsupported format version {version}"
        )));
    }
    let ncores = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;

    let mut pos = FILE_HEADER_LEN;
    let mut bodies: Vec<&[u8]> = Vec::new();
    loop {
        if pos + REC_HEADER_LEN > data.len() {
            break;
        }
        let magic = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        if magic != REC_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().unwrap());
        let start = pos + REC_HEADER_LEN;
        let Some(end) = start.checked_add(len).filter(|&e| e <= data.len()) else {
            break;
        };
        if crc32(&data[start..end]) != crc {
            break;
        }
        bodies.push(&data[start..end]);
        pos = end;
    }
    let torn_bytes = data.len() - pos;

    let Some((meta, event_bodies)) = bodies.split_first() else {
        return Err(FlightError::Corrupt("journal has no meta record".into()));
    };
    if meta.first() != Some(&TAG_META) {
        return Err(FlightError::Corrupt(
            "first record is not the meta record".into(),
        ));
    }
    let want = ncores
        .checked_mul(16)
        .and_then(|v| v.checked_add(1 + 8))
        .ok_or_else(|| FlightError::Corrupt(format!("implausible ring count {ncores}")))?;
    if meta.len() != want {
        return Err(FlightError::Corrupt(format!(
            "meta record is {} bytes, expected {want}",
            meta.len()
        )));
    }
    let ring_cap = u64::from_le_bytes(meta[1..9].try_into().unwrap());
    let mut recorded = Vec::with_capacity(ncores);
    let mut dropped = Vec::with_capacity(ncores);
    for c in 0..ncores {
        let o = 9 + c * 16;
        recorded.push(u64::from_le_bytes(meta[o..o + 8].try_into().unwrap()));
        dropped.push(u64::from_le_bytes(meta[o + 8..o + 16].try_into().unwrap()));
    }
    let mut events = Vec::with_capacity(event_bodies.len());
    for body in event_bodies {
        if body.first() != Some(&TAG_EVENT) {
            return Err(FlightError::Corrupt(format!(
                "unknown record tag {:?}",
                body.first()
            )));
        }
        events.push(FlightEvent::decode(&body[1..])?);
    }
    Ok(Journal {
        ncores,
        ring_cap,
        recorded,
        dropped,
        events,
        torn_bytes,
    })
}

/// Read and decode a journal file from disk.
pub fn read_journal(path: &std::path::Path) -> Result<Journal, FlightError> {
    decode_journal(&std::fs::read(path)?)
}

// ---------------------------------------------------------------------------
// Drop attribution
// ---------------------------------------------------------------------------

/// One row of the drop-attribution report: losses aggregated by
/// (kind, layer, reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionRow {
    /// [`FlightKind::Drop`] or [`FlightKind::Discard`].
    pub kind: FlightKind,
    /// Pipeline layer the loss happened in.
    pub layer: FlightLayer,
    /// Why.
    pub reason: DropReason,
    /// Number of loss events aggregated into this row.
    pub events: u64,
    /// Packets lost (sum of `a`).
    pub pkts: u64,
    /// Bytes lost (sum of `b`).
    pub bytes: u64,
}

/// Aggregate loss events by (kind, layer, reason), in stable identity
/// order. Non-loss events are ignored.
pub fn attribution(events: &[FlightEvent]) -> Vec<AttributionRow> {
    let mut agg: BTreeMap<(u8, u8, u8), (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        if !matches!(e.kind, FlightKind::Drop | FlightKind::Discard) {
            continue;
        }
        let slot = agg
            .entry((e.kind.idx(), e.layer.idx(), e.reason.idx()))
            .or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += e.a;
        slot.2 += e.b;
    }
    agg.into_iter()
        .map(|((k, l, r), (events, pkts, bytes))| AttributionRow {
            kind: FlightKind::from_idx(k).unwrap(),
            layer: FlightLayer::from_idx(l).unwrap(),
            reason: DropReason::from_idx(r).unwrap(),
            events,
            pkts,
            bytes,
        })
        .collect()
}

/// The top `n` loss reasons by packets, rendered as a one-line summary
/// (for `scapcat --stats-interval`).
pub fn top_reasons_line(events: &[FlightEvent], n: usize) -> String {
    let mut rows = attribution(events);
    rows.sort_by_key(|r| std::cmp::Reverse((r.pkts, r.bytes)));
    if rows.is_empty() {
        return "drops: none".to_string();
    }
    let parts: Vec<String> = rows
        .iter()
        .take(n)
        .map(|r| {
            format!(
                "{}/{} {} pkts ({} B)",
                r.layer.name(),
                r.reason.name(),
                r.pkts,
                r.bytes
            )
        })
        .collect();
    format!("top drop reasons: {}", parts.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: FlightKind, ts: u64) -> FlightEvent {
        FlightEvent::new(kind, FlightLayer::Kernel, ts)
    }

    #[test]
    fn identity_names_round_trip() {
        for k in FlightKind::ALL {
            assert_eq!(FlightKind::from_name(k.name()), Some(k));
            assert_eq!(FlightKind::from_idx(k.idx()), Some(k));
        }
        for l in FlightLayer::ALL {
            assert_eq!(FlightLayer::from_name(l.name()), Some(l));
        }
        for r in DropReason::ALL {
            assert_eq!(DropReason::from_name(r.name()), Some(r));
        }
        assert_eq!(FlightKind::from_idx(FlightKind::COUNT as u8), None);
    }

    #[test]
    fn ring_wraps_and_counts_overwrites() {
        let mut rec = FlightRecorder::new(1, 4);
        for i in 0..10 {
            rec.emit(0, ev(FlightKind::Drop, i));
        }
        assert_eq!(rec.recorded(0), 10);
        assert_eq!(rec.dropped(0), 6);
        let events = rec.events();
        assert_eq!(events.len(), 4);
        // Oldest survivor first, newest last.
        assert_eq!(events[0].seq, 6);
        assert_eq!(events[3].seq, 9);
    }

    #[test]
    fn journal_round_trips() {
        let mut rec = FlightRecorder::new(2, 16);
        rec.emit(0, ev(FlightKind::StreamCreated, 1).with_uid(7));
        rec.emit(
            1,
            ev(FlightKind::Drop, 2)
                .with_reason(DropReason::ArenaOom)
                .with_uid(7)
                .with_vals(1, 1500),
        );
        rec.emit(0, ev(FlightKind::GovernorChange, 3).with_vals(0, 2));
        let bytes = rec.encode();
        let j = decode_journal(&bytes).unwrap();
        assert_eq!(j.ncores, 2);
        assert_eq!(j.ring_cap, 16);
        assert_eq!(j.torn_bytes, 0);
        assert_eq!(j.events.len(), 3);
        assert_eq!(j.events[1].reason, DropReason::ArenaOom);
        assert_eq!(j.for_uid(7).len(), 2);
        assert_eq!(j.total_recorded(), 3);
        assert_eq!(j.total_dropped(), 0);
    }

    #[test]
    fn tail_dump_keeps_only_the_newest_events() {
        let mut rec = FlightRecorder::new(1, 64);
        for i in 0..20 {
            rec.emit(0, ev(FlightKind::Discard, i));
        }
        let j = decode_journal(&rec.encode_tail(5)).unwrap();
        assert_eq!(j.events.len(), 5);
        assert_eq!(j.events[0].seq, 15);
        assert_eq!(j.events[4].seq, 19);
        // The meta counters still describe the whole run.
        assert_eq!(j.total_recorded(), 20);
    }

    #[test]
    fn torn_tail_is_tolerated_and_reported() {
        let mut rec = FlightRecorder::new(1, 8);
        rec.emit(0, ev(FlightKind::Drop, 1));
        rec.emit(0, ev(FlightKind::Drop, 2));
        let mut bytes = rec.encode();
        let j0 = decode_journal(&bytes).unwrap();
        bytes.truncate(bytes.len() - 7); // crash mid-append
        let j = decode_journal(&bytes).unwrap();
        assert_eq!(j.events.len(), j0.events.len() - 1);
        assert!(j.torn_bytes > 0);
    }

    #[test]
    fn bit_flips_are_rejected_or_truncate() {
        let mut rec = FlightRecorder::new(1, 8);
        rec.emit(
            0,
            ev(FlightKind::Drop, 9)
                .with_reason(DropReason::Ppl)
                .with_vals(1, 64),
        );
        let clean = rec.encode();
        let j0 = decode_journal(&clean).unwrap();
        for pos in 0..clean.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = clean.clone();
                bad[pos] ^= bit;
                match decode_journal(&bad) {
                    // Header/meta corruption must fail loudly.
                    Err(_) => {}
                    // Frame corruption truncates to the valid prefix…
                    Ok(j) => {
                        assert!(
                            j.events.len() < j0.events.len() || j.torn_bytes > 0,
                            "flip at {pos} bit {bit:#x} went unnoticed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn attribution_aggregates_losses() {
        let mut rec = FlightRecorder::new(1, 64);
        for _ in 0..3 {
            rec.emit(
                0,
                ev(FlightKind::Drop, 0)
                    .with_reason(DropReason::Ppl)
                    .with_vals(1, 100),
            );
        }
        rec.emit(
            0,
            ev(FlightKind::Discard, 0)
                .with_reason(DropReason::Cutoff)
                .with_vals(2, 50),
        );
        rec.emit(0, ev(FlightKind::StreamCreated, 0)); // ignored
        let rows = attribution(&rec.events());
        assert_eq!(rows.len(), 2);
        let ppl = rows.iter().find(|r| r.reason == DropReason::Ppl).unwrap();
        assert_eq!((ppl.events, ppl.pkts, ppl.bytes), (3, 3, 300));
        let line = top_reasons_line(&rec.events(), 3);
        assert!(line.contains("ppl"), "{line}");
    }
}
