//! # scap-pulse — the end-to-end latency plane.
//!
//! [`Pulse`] is a per-kernel latency recorder: one log2 histogram per
//! [`PulseStage`] plus a bounded ring of **exemplars** — the concrete
//! slow packets behind the tail percentiles. Clock-difference stages
//! (kernel dispatch, tenant queue, delivery) record deltas on the trace
//! clock (`now − ingress_ns`), which under both the sim and the live
//! driver is the packets' own capture timestamps, so same-seed runs
//! produce byte-identical distributions. Processing stages (NIC
//! verdict, offload, flow table, store seal, checkpoint) record virtual
//! nanoseconds derived from deterministic per-op cost models anchored
//! at [`CORE_HZ`].
//!
//! Exemplar sampling is *tail* sampling: a record is exemplar-eligible
//! only while its delay is at or above a cached estimate of the
//! configured quantile (refreshed every [`THRESHOLD_REFRESH`] records).
//! At snapshot time the ring is re-filtered against the **final**
//! quantile estimate, so every exported exemplar provably satisfies
//! `delay ≥ quantile(q)` of the histogram it rides with — including
//! after cross-shard merges, which re-filter again. Each exemplar
//! carries the stream uid and the flight-journal cursor at record time,
//! so `scapcat --trace <uid>` can replay why that packet was slow.

use crate::hist::{bucket_of, Hist64, HistSnapshot};
use crate::PulseStage;
use std::cell::Cell;

/// Virtual core frequency anchoring cycle→ns conversion (2 GHz, the
/// same anchor the sim cost model uses).
pub const CORE_HZ: f64 = 2.0e9;

/// Records between refreshes of the cached exemplar threshold.
const THRESHOLD_REFRESH: u64 = 256;

/// Convert virtual cycles to nanoseconds at the [`CORE_HZ`] anchor.
#[inline]
pub fn cycles_to_ns(cycles: u64) -> u64 {
    (cycles as f64 * 1e9 / CORE_HZ) as u64
}

/// One tail-sampled outlier: the concrete packet behind a percentile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Stream uid the slow packet belonged to (0 = no stream context).
    pub uid: u64,
    /// Stage whose latency this exemplifies.
    pub stage: PulseStage,
    /// The observed stage delay, in nanoseconds.
    pub delay_ns: u64,
    /// Flight-journal cursor (events recorded so far) at sample time —
    /// bounds where in the journal this packet's story lives.
    pub cursor: u64,
}

/// The live, mutable latency recorder owned by a kernel (or engine).
pub struct Pulse {
    hists: Vec<Hist64<Cell<u64>>>,
    exemplars: Vec<Vec<Exemplar>>,
    thresholds: Vec<u64>,
    since_refresh: Vec<u64>,
    quantile_permille: u32,
    exemplar_cap: usize,
}

impl std::fmt::Debug for Pulse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pulse")
            .field("quantile_permille", &self.quantile_permille)
            .field("exemplar_cap", &self.exemplar_cap)
            .field(
                "recorded",
                &self.hists.iter().map(|h| h.snapshot().count()).sum::<u64>(),
            )
            .finish_non_exhaustive()
    }
}

impl Default for Pulse {
    fn default() -> Self {
        Pulse::new(990, 8)
    }
}

impl Pulse {
    /// A recorder tail-sampling above the `quantile_permille`/1000
    /// quantile, keeping at most `exemplar_cap` exemplars per stage.
    pub fn new(quantile_permille: u32, exemplar_cap: usize) -> Self {
        let n = PulseStage::COUNT;
        Pulse {
            hists: (0..n).map(|_| Hist64::default()).collect(),
            exemplars: vec![Vec::new(); n],
            thresholds: vec![0; n],
            since_refresh: vec![0; n],
            quantile_permille: quantile_permille.clamp(1, 999),
            exemplar_cap,
        }
    }

    /// The sampling quantile, as a fraction.
    pub fn quantile(&self) -> f64 {
        f64::from(self.quantile_permille) / 1000.0
    }

    /// Record a stage delay with no stream context (never an exemplar).
    #[inline]
    pub fn record(&mut self, stage: PulseStage, delay_ns: u64) {
        self.hists[stage.idx()].record(delay_ns);
    }

    /// Record `n` identical stage delays (batched processing costs).
    #[inline]
    pub fn record_n(&mut self, stage: PulseStage, delay_ns: u64, n: u64) {
        self.hists[stage.idx()].record_n(delay_ns, n);
    }

    /// Record a stage delay for stream `uid`, tail-sampling it into the
    /// exemplar ring when it clears the cached quantile threshold.
    /// `cursor` is the flight-journal position at record time. Returns
    /// `true` when the sample entered the exemplar ring, so the caller
    /// can journal the outlier (a `pulse_exemplar` flight event) and
    /// keep the exemplar→journal lookup resolvable.
    pub fn record_uid(&mut self, stage: PulseStage, delay_ns: u64, uid: u64, cursor: u64) -> bool {
        let i = stage.idx();
        self.hists[i].record(delay_ns);
        self.since_refresh[i] += 1;
        if self.since_refresh[i] >= THRESHOLD_REFRESH {
            self.since_refresh[i] = 0;
            self.thresholds[i] = self.hists[i].snapshot().quantile_floor(self.quantile());
        }
        // Eligible only once the threshold has been established: early
        // records cannot flood the ring before the distribution exists.
        if uid == 0 || self.thresholds[i] == 0 || delay_ns < self.thresholds[i] {
            return false;
        }
        let ring = &mut self.exemplars[i];
        ring.push(Exemplar {
            uid,
            stage,
            delay_ns,
            cursor,
        });
        if ring.len() > self.exemplar_cap {
            // Evict the smallest delay (first occurrence on ties) so the
            // ring deterministically keeps the worst outliers.
            let min = ring
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.delay_ns)
                .map(|(j, _)| j)
                .unwrap_or(0);
            ring.remove(min);
        }
        true
    }

    /// Export the current state, re-filtering the exemplar rings against
    /// the **final** per-stage quantile estimates so every exported
    /// exemplar satisfies `delay_ns ≥ quantile(q)`.
    pub fn snapshot(&self) -> PulseSnapshot {
        let mut s = PulseSnapshot {
            stages: self.hists.iter().map(|h| h.snapshot()).collect(),
            exemplars: self.exemplars.iter().flatten().copied().collect(),
            quantile_permille: self.quantile_permille,
            exemplar_cap: self.exemplar_cap,
        };
        s.normalize();
        s
    }
}

/// Plain-data pulse state: mergeable across shards and incarnations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseSnapshot {
    /// One histogram per [`PulseStage`], in declaration order.
    pub stages: Vec<HistSnapshot>,
    /// Tail exemplars, every one satisfying `delay_ns ≥` its stage's
    /// `quantile(q)` estimate from `stages`.
    pub exemplars: Vec<Exemplar>,
    /// The sampling quantile, in permille.
    pub quantile_permille: u32,
    /// Per-stage exemplar retention cap.
    pub exemplar_cap: usize,
}

impl Default for PulseSnapshot {
    fn default() -> Self {
        PulseSnapshot {
            stages: (0..PulseStage::COUNT)
                .map(|_| HistSnapshot::default())
                .collect(),
            exemplars: Vec::new(),
            quantile_permille: 990,
            exemplar_cap: 8,
        }
    }
}

impl PulseSnapshot {
    /// The sampling quantile, as a fraction.
    pub fn quantile(&self) -> f64 {
        f64::from(self.quantile_permille) / 1000.0
    }

    /// The histogram for one stage.
    pub fn stage(&self, st: PulseStage) -> &HistSnapshot {
        &self.stages[st.idx()]
    }

    /// The exemplar threshold for a stage: the conservative
    /// (bucket-floor) estimate of the sampling quantile, guaranteed ≤
    /// the true quantile so the tail-sample set is never vacuously
    /// empty. Every exported exemplar satisfies `delay_ns ≥` this.
    pub fn threshold(&self, st: PulseStage) -> u64 {
        self.stages[st.idx()].quantile_floor(self.quantile())
    }

    /// Exemplars belonging to one stage, worst first.
    pub fn stage_exemplars(&self, st: PulseStage) -> Vec<Exemplar> {
        self.exemplars
            .iter()
            .filter(|e| e.stage == st)
            .copied()
            .collect()
    }

    /// Absorb another snapshot: histograms merge element-wise, exemplar
    /// sets concatenate and are re-filtered against the merged per-stage
    /// quantile estimates (a shard-local outlier may fall below the
    /// fleet-wide tail), then re-capped worst-first.
    pub fn merge(&mut self, other: &PulseSnapshot) {
        for (a, b) in self.stages.iter_mut().zip(other.stages.iter()) {
            a.merge(b);
        }
        self.exemplars.extend_from_slice(&other.exemplars);
        self.exemplar_cap = self.exemplar_cap.max(other.exemplar_cap);
        self.normalize();
    }

    /// Re-establish the exemplar invariants: drop entries below their
    /// stage's current quantile estimate, order deterministically
    /// (stage, then worst delay first), and cap per stage.
    fn normalize(&mut self) {
        let q = self.quantile();
        let thresholds: Vec<u64> = self.stages.iter().map(|h| h.quantile_floor(q)).collect();
        self.exemplars
            .retain(|e| e.delay_ns >= thresholds[e.stage.idx()] && e.delay_ns > 0);
        self.exemplars.sort_by(|a, b| {
            (
                a.stage.idx(),
                std::cmp::Reverse(a.delay_ns),
                a.uid,
                a.cursor,
            )
                .cmp(&(
                    b.stage.idx(),
                    std::cmp::Reverse(b.delay_ns),
                    b.uid,
                    b.cursor,
                ))
        });
        self.exemplars.dedup();
        let cap = self.exemplar_cap;
        let mut kept = [0usize; PulseStage::COUNT];
        self.exemplars.retain(|e| {
            kept[e.stage.idx()] += 1;
            kept[e.stage.idx()] <= cap
        });
    }

    /// (count, p50, p99, p999) summary for one stage.
    pub fn summary(&self, st: PulseStage) -> (u64, u64, u64, u64) {
        let h = self.stage(st);
        (
            h.count(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.quantile(0.999),
        )
    }

    /// True when no stage recorded anything.
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|h| h.count() == 0)
    }
}

/// Deterministic virtual-cost helpers shared by every driver, so both
/// dispatch paths and the live driver attribute identical processing
/// costs to identical work. All are cycle counts at the [`CORE_HZ`]
/// anchor; callers convert with [`cycles_to_ns`].
pub mod cost {
    /// NIC verdict: filter consult + RSS hash + ring admission.
    pub fn nic_verdict_cycles(frame_len: u64) -> u64 {
        60 + frame_len / 16
    }

    /// Offload table consult (and action application on a hit).
    pub fn offload_cycles(hit: bool) -> u64 {
        if hit {
            48
        } else {
            22
        }
    }

    /// Flow-table lookup: `probes` open-addressing group probes plus
    /// fixed parse/touch overhead.
    pub fn flow_table_cycles(probes: u64) -> u64 {
        30 + 28 * probes.max(1)
    }

    /// Store seal: per-stream index commit plus per-byte append cost.
    pub fn store_seal_cycles(bytes: u64) -> u64 {
        400 + bytes / 4
    }

    /// Checkpoint encode+fsync model from the image size.
    pub fn checkpoint_cycles(image_bytes: u64) -> u64 {
        2_000 + image_bytes / 2
    }
}

/// Sanity helper used by tests and experiment assertions: true when the
/// exemplar is consistent with the snapshot it was exported with.
pub fn exemplar_consistent(s: &PulseSnapshot, e: &Exemplar) -> bool {
    e.delay_ns >= s.threshold(e.stage) && s.stage(e.stage).buckets[bucket_of(e.delay_ns)] > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(seed: u64) -> Pulse {
        let mut p = Pulse::new(900, 4);
        let mut x = seed;
        for i in 0..2000u64 {
            // xorshift: a deterministic spread of delays.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let delay = x % 10_000;
            p.record_uid(PulseStage::Delivery, delay, 1 + i % 37, i);
        }
        p.record(PulseStage::NicVerdict, 120);
        p
    }

    #[test]
    fn exemplars_clear_the_final_threshold() {
        let s = filled(42).snapshot();
        assert!(!s.exemplars.is_empty(), "tail sampling produced nothing");
        for e in &s.exemplars {
            assert!(exemplar_consistent(&s, e), "exemplar {e:?} below threshold");
            assert!(e.uid != 0);
        }
        // Per-stage cap respected.
        assert!(s.stage_exemplars(PulseStage::Delivery).len() <= 4);
        // uid-less records never become exemplars.
        assert!(s.stage_exemplars(PulseStage::NicVerdict).is_empty());
    }

    #[test]
    fn snapshots_are_deterministic() {
        assert_eq!(filled(7).snapshot(), filled(7).snapshot());
    }

    #[test]
    fn merge_refilters_against_merged_tail() {
        let a = filled(1).snapshot();
        let b = filled(99).snapshot();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(
            m.stage(PulseStage::Delivery).count(),
            a.stage(PulseStage::Delivery).count() + b.stage(PulseStage::Delivery).count()
        );
        for e in &m.exemplars {
            assert!(
                exemplar_consistent(&m, e),
                "merged exemplar {e:?} below merged threshold"
            );
        }
        // Merge is commutative on the histogram state.
        let mut m2 = b.clone();
        m2.merge(&a);
        assert_eq!(m.stages, m2.stages);
        assert_eq!(m.exemplars, m2.exemplars);
    }

    #[test]
    fn cost_models_are_monotone() {
        assert!(cost::nic_verdict_cycles(1500) > cost::nic_verdict_cycles(64));
        assert!(cost::flow_table_cycles(9) > cost::flow_table_cycles(1));
        assert!(cost::store_seal_cycles(1 << 20) > cost::store_seal_cycles(64));
        assert!(cost::checkpoint_cycles(1 << 20) > cost::checkpoint_cycles(1 << 10));
        assert_eq!(cycles_to_ns(2_000_000_000), 1_000_000_000);
    }
}
