//! Quickstart — flow-statistics export (§3.3.1 of the paper).
//!
//! The first Scap program from the paper: create a capture socket, set
//! the stream cutoff to zero (no payload is wanted — only per-flow
//! statistics), register a termination callback, and start capturing.
//! Everything heavy (flow tracking, per-flow counters) happens in the
//! emulated kernel module; the application only formats records.
//!
//! Run with: `cargo run --release --example quickstart`

use scap::{Scap, StreamCtx};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // The monitored "interface": a synthetic campus-mix trace. Swap in
    // `scap_trace::pcap::PcapReader` to replay a real capture file.
    let traffic = CampusMix::new(CampusMixConfig::sized(42, 8 << 20));

    let exported = Arc::new(AtomicU64::new(0));

    // scap_create(...); scap_set_cutoff(sc, 0);
    let mut scap = Scap::builder()
        .memory(64 << 20)
        .cutoff(0) // discard all stream data; statistics only
        .worker_threads(2)
        .try_build()
        .expect("valid configuration");

    // scap_dispatch_termination(sc, stream_close);
    let n = exported.clone();
    scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
        let s = ctx.stream;
        let count = n.fetch_add(1, Ordering::Relaxed) + 1;
        // Print a NetFlow-style record for the first few streams.
        if count <= 15 {
            println!(
                "{:<46} {:>9} bytes {:>6} pkts  {:>8.3}s  {}",
                s.key.to_string(),
                s.total_bytes(),
                s.total_pkts(),
                (s.last_ts_ns - s.first_ts_ns) as f64 / 1e9,
                s.status_str(),
            );
        }
    });

    // scap_start_capture(sc);
    let stats = scap.start_capture(traffic);

    println!("---");
    println!(
        "streams: {} created, {} exported | packets: {} seen, {} discarded in-kernel, {} dropped",
        stats.stack.streams_created,
        exported.load(Ordering::Relaxed),
        stats.stack.wire_packets,
        stats.stack.discarded_packets,
        stats.stack.dropped_packets,
    );
    println!(
        "data copied to user space: {} bytes (cutoff 0 ⇒ statistics only)",
        stats.stack.delivered_bytes
    );
}
