//! scapcat — a tcpdump-flavoured flow analyzer built on the Scap library.
//!
//! Reads a pcap file (or generates a synthetic campus trace), runs the
//! full Scap capture pipeline over it — BPF filter, kernel-side flow
//! tracking and TCP reassembly, cutoffs — and prints one line per stream
//! plus capture totals. A small, real consumer of the public API.
//!
//! ```text
//! scapcat trace.pcap                         # all streams
//! scapcat trace.pcap "tcp and port 80"       # filtered
//! scapcat trace.pcap --cutoff 4096           # keep 4 KB per stream
//! scapcat --gen 8 out.pcap                   # write an 8 MB synthetic pcap
//! scapcat --top 20 trace.pcap                # largest 20 streams
//! scapcat --stats-interval 5000 trace.pcap   # telemetry table to stderr
//!                                            # every 5000 packets, plus a
//!                                            # final drop-attribution line
//! scapcat --trace 17 trace.pcap              # full flight-recorder
//!                                            # lifecycle of stream uid 17
//! scapcat --trace "port 80" trace.pcap       # same, for every stream
//!                                            # matching the 5-tuple filter
//! scapcat --write out.pcap trace.pcap "tcp"  # dump the post-filter /
//!                                            # post-cutoff packets
//! scapcat --supervise --checkpoint-every 500 --ckpt cap.ckpt \
//!         [--kill-at 2000] trace.pcap        # supervised warm-restart:
//!     run the capture under periodic checkpointing; if it dies (e.g. an
//!     injected --kill-at crash), resume from the latest checkpoint and
//!     continue with the remaining packets
//! ```

use scap::{Scap, StreamCtx};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::pcap::{write_file, PcapReader};
use std::sync::Arc;
use std::sync::Mutex;

struct FlowLine {
    uid: u64,
    flow_key: scap::FlowKey,
    key: String,
    status: &'static str,
    bytes: u64,
    pkts: u64,
    captured: u64,
    duration_ms: f64,
    errors: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: scapcat [--gen MB out.pcap] [--cutoff BYTES] [--top N] \
             [--fastpath] [--offload] [--burst FRAMES] \
             [--stats-interval PKTS] [--write out.pcap] [--trace UID|FILTER] \
             [--supervise [--checkpoint-every PKTS] [--ckpt FILE] [--kill-at PKT]] \
             <file.pcap> [filter]"
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    // --gen MB out.pcap: produce a synthetic trace and exit.
    if let Some(i) = args.iter().position(|a| a == "--gen") {
        let mb: u64 = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die("--gen needs a size in MB"));
        let path = args
            .get(i + 2)
            .unwrap_or_else(|| die("--gen needs an output path"));
        let trace = CampusMix::new(CampusMixConfig::sized(42, mb << 20)).collect_all();
        let f = std::fs::File::create(path)
            .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
        write_file(f, &trace).unwrap_or_else(|e| die(&format!("write failed: {e}")));
        println!("wrote {} packets to {path}", trace.len());
        return;
    }

    let mut cutoff: Option<u64> = None;
    let mut top: usize = usize::MAX;
    let mut stats_interval: Option<u64> = None;
    let mut write_out: Option<String> = None;
    let mut trace_query: Option<String> = None;
    let mut supervise = false;
    let mut fastpath = false;
    let mut offload = false;
    let mut burst: Option<usize> = None;
    let mut kill_at: Option<u64> = None;
    let mut ckpt_every: u64 = 1000;
    let mut ckpt_path: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--supervise" => supervise = true,
            "--fastpath" => fastpath = true,
            "--offload" => offload = true,
            "--burst" => {
                i += 1;
                burst = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--burst needs a frame count")),
                );
            }
            "--kill-at" => {
                i += 1;
                kill_at = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--kill-at needs a packet index")),
                );
            }
            "--checkpoint-every" => {
                i += 1;
                ckpt_every = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .unwrap_or_else(|| die("--checkpoint-every needs a packet count"));
            }
            "--ckpt" => {
                i += 1;
                ckpt_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--ckpt needs a file path")),
                );
            }
            "--cutoff" => {
                i += 1;
                cutoff = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--cutoff needs a byte count")),
                );
            }
            "--stats-interval" => {
                i += 1;
                stats_interval = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--stats-interval needs a packet count")),
                );
            }
            "--top" => {
                i += 1;
                top = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--top needs a number"));
            }
            "--write" => {
                i += 1;
                write_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--write needs an output path")),
                );
            }
            "--trace" => {
                i += 1;
                trace_query = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--trace needs a stream uid or 5-tuple filter")),
                );
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let Some(path) = positional.first() else {
        die("no pcap file given")
    };
    let filter = positional.get(1).map(|s| s.as_str()).unwrap_or("");

    let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
    let packets = PcapReader::new(f)
        .unwrap_or_else(|e| die(&format!("not a pcap file: {e}")))
        .read_all()
        .unwrap_or_else(|e| die(&format!("read error: {e}")));

    if supervise {
        let ckpt = ckpt_path.unwrap_or_else(|| format!("{path}.ckpt"));
        run_supervised(
            packets, filter, cutoff, fastpath, offload, burst, kill_at, ckpt_every, &ckpt,
        );
        return;
    }

    // --write out.pcap: dump the packets that survive the configured
    // filter and per-stream cutoff — the same view the capture keeps.
    if let Some(out) = &write_out {
        let filt = scap_filter::Filter::new(filter)
            .unwrap_or_else(|e| die(&format!("bad filter expression: {e}")));
        let mut budgets: std::collections::HashMap<scap::FlowKey, u64> =
            std::collections::HashMap::new();
        let kept: Vec<scap_trace::Packet> = packets
            .iter()
            .filter(|p| {
                if !filt.matches_frame(&p.frame) {
                    return false;
                }
                let Some(c) = cutoff else { return true };
                let Ok(parsed) = scap_wire::parse_frame(&p.frame) else {
                    return true;
                };
                let Some(key) = parsed.key else { return true };
                // Control packets (no payload) always pass; data packets
                // stop once the flow's payload budget is spent.
                let seen = budgets.entry(key.canonical().0).or_insert(0);
                if parsed.payload_len == 0 {
                    return true;
                }
                if *seen >= c {
                    return false;
                }
                *seen += parsed.payload_len as u64;
                true
            })
            .cloned()
            .collect();
        let f = std::fs::File::create(out)
            .unwrap_or_else(|e| die(&format!("cannot create {out}: {e}")));
        write_file(f, &kept).unwrap_or_else(|e| die(&format!("write failed: {e}")));
        println!(
            "wrote {} of {} packets (post-filter/post-cutoff) to {out}",
            kept.len(),
            packets.len()
        );
    }

    let flows: Arc<Mutex<Vec<FlowLine>>> = Arc::new(Mutex::new(Vec::new()));
    let mut builder = Scap::builder().filter(filter).worker_threads(2);
    if let Some(c) = cutoff {
        builder = builder.cutoff(c);
    }
    if fastpath {
        builder = builder.fastpath(true);
    }
    if offload {
        builder = builder.offload(true);
    }
    if let Some(n) = burst {
        builder = builder.fastpath_burst(n);
    }
    if let Some(n) = stats_interval {
        builder = builder.stats_interval(n);
    }
    let mut scap = builder
        .try_build()
        .unwrap_or_else(|e| die(&format!("bad filter expression: {e}")));
    if stats_interval.is_some() {
        scap.dispatch_stats(|snap| {
            eprintln!("{}", scap::telemetry::export::to_table(snap));
        });
    }
    {
        let flows = flows.clone();
        scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
            let s = ctx.stream;
            flows.lock().unwrap().push(FlowLine {
                uid: s.uid,
                flow_key: s.key,
                key: s.key.to_string(),
                status: s.status_str(),
                bytes: s.total_bytes(),
                pkts: s.total_pkts(),
                captured: s.dirs[0].captured_bytes + s.dirs[1].captured_bytes,
                duration_ms: (s.last_ts_ns - s.first_ts_ns) as f64 / 1e6,
                errors: !s.errors.is_clean(),
            });
        });
    }
    let stats = scap.start_capture(packets);

    let mut flows = Arc::try_unwrap(flows)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|arc| std::mem::take(&mut *arc.lock().unwrap()));
    flows.sort_by_key(|f| std::cmp::Reverse(f.bytes));

    println!(
        "{:<48} {:>12} {:>8} {:>12} {:>10}  {:<16} flags",
        "stream", "bytes", "pkts", "captured", "dur(ms)", "status"
    );
    for fl in flows.iter().take(top) {
        println!(
            "{:<48} {:>12} {:>8} {:>12} {:>10.1}  {:<16} {}",
            fl.key,
            fl.bytes,
            fl.pkts,
            fl.captured,
            fl.duration_ms,
            fl.status,
            if fl.errors { "E" } else { "" }
        );
    }
    if flows.len() > top {
        println!("... and {} more streams", flows.len() - top);
    }
    println!(
        "\n{} packets, {} bytes on the wire | {} streams | {} payload bytes reassembled | {} discarded in-kernel",
        stats.stack.wire_packets,
        stats.stack.wire_bytes,
        stats.stack.streams_reported,
        stats.stack.delivered_bytes,
        stats.stack.discarded_packets,
    );
    if offload {
        println!(
            "offload: {} packets resolved at the NIC ({:.1}% of wire) | {} rule ops",
            stats.stack.nic_filtered_packets,
            100.0 * stats.stack.nic_filtered_packets as f64
                / stats.stack.wire_packets.max(1) as f64,
            stats.offload_ops,
        );
    }
    if stats_interval.is_some() {
        if let Some(snap) = scap.telemetry_snapshot() {
            eprintln!(
                "\nfinal telemetry:\n{}",
                scap::telemetry::export::to_table(snap)
            );
        }
        // One-line drop attribution from the flight recorder: where and
        // why the capture lost packets, worst offenders first.
        if let Some(j) = scap
            .flight_journal()
            .and_then(|b| scap::flight::decode_journal(&b).ok())
        {
            eprintln!("{}", scap::flight::top_reasons_line(&j.events, 3));
        }
    }

    // --trace UID|FILTER: stream-scoped flight-recorder query — the full
    // recorded lifecycle (creation, losses with layer+reason, cutoff,
    // termination) of the requested stream(s).
    if let Some(q) = &trace_query {
        let bytes = scap
            .flight_journal()
            .unwrap_or_else(|| die("no flight journal (capture did not run)"));
        let journal = scap::flight::decode_journal(&bytes)
            .unwrap_or_else(|e| die(&format!("flight journal: {e}")));
        let uids: Vec<u64> = match q.parse::<u64>() {
            Ok(uid) => vec![uid],
            Err(_) => {
                let filt = scap_filter::Filter::new(q)
                    .unwrap_or_else(|e| die(&format!("bad --trace filter: {e}")));
                let mut v: Vec<u64> = flows
                    .iter()
                    .filter(|fl| {
                        filt.matches_key(&fl.flow_key) || filt.matches_key(&fl.flow_key.reversed())
                    })
                    .map(|fl| fl.uid)
                    .collect();
                v.sort_unstable();
                v
            }
        };
        if uids.is_empty() {
            println!("\nno streams matched --trace {q}");
        }
        for uid in &uids {
            let evs = journal.for_uid(*uid);
            let key = flows
                .iter()
                .find(|fl| fl.uid == *uid)
                .map(|fl| fl.key.as_str())
                .unwrap_or("?");
            println!(
                "\n--- flight trace uid {uid} {key} ({} event(s)) ---",
                evs.len()
            );
            for e in &evs {
                println!("{}", e.format());
            }
        }
    }
}

/// Supervisor loop: run the capture under periodic checkpointing; when a
/// run dies mid-capture (injected `--kill-at` crash), resume from the
/// latest checkpoint and feed it the packets the dead run never admitted.
/// The packets between the last checkpoint and the crash are the blackout
/// window — resumed streams carry the RESUMED flag and a bounded gap.
#[allow(clippy::too_many_arguments)]
fn run_supervised(
    packets: Vec<scap_trace::Packet>,
    filter: &str,
    cutoff: Option<u64>,
    fastpath: bool,
    offload: bool,
    burst: Option<usize>,
    kill_at: Option<u64>,
    ckpt_every: u64,
    ckpt: &str,
) {
    let _ = std::fs::remove_file(ckpt);
    let total = packets.len();
    let mut offset = 0usize;
    let mut kill = kill_at;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if attempts > 16 {
            die("too many restarts; giving up");
        }
        let mut builder = Scap::builder()
            .filter(filter)
            .worker_threads(2)
            .checkpoint_every(ckpt_every, ckpt);
        if let Some(c) = cutoff {
            builder = builder.cutoff(c);
        }
        if fastpath {
            builder = builder.fastpath(true);
        }
        if offload {
            builder = builder.offload(true);
        }
        if let Some(n) = burst {
            builder = builder.fastpath_burst(n);
        }
        if let Some(n) = kill.take() {
            builder = builder.fault_plan(scap::FaultPlan {
                kill_at_packet: Some(n),
                ..Default::default()
            });
        }
        if offset > 0 {
            if !std::path::Path::new(ckpt).exists() {
                die("capture died before the first checkpoint; nothing to resume");
            }
            builder = builder.resume_from(ckpt);
        }
        let mut scap = builder.try_build().unwrap_or_else(|e| die(&format!("{e}")));
        let stats = scap.start_capture(packets[offset..].to_vec());
        match scap.died_at() {
            Some(n) => {
                offset += n as usize;
                eprintln!(
                    "scapcat: capture died at packet {offset}/{total} — resuming from {ckpt}"
                );
            }
            None => {
                println!(
                    "supervised capture complete after {} restart(s): {} stream(s) resumed, \
                     recovery {} virtual cycles, {} checkpoint(s) written",
                    stats.resilience.restarts,
                    stats.resilience.resumed_streams,
                    stats.resilience.recovery_virtual_cycles,
                    stats.resilience.checkpoints_written,
                );
                println!(
                    "{} packets | {} streams | {} payload bytes reassembled",
                    stats.stack.wire_packets,
                    stats.stack.streams_reported,
                    stats.stack.delivered_bytes,
                );
                return;
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("scapcat: {msg}");
    std::process::exit(2);
}
