//! Configuration: everything `scap_create` and the `scap_set_*` family
//! control in the paper's Table 1.

use crate::governor::GovernorConfig;
use scap_faults::FaultPlan;
use scap_filter::Filter;
use scap_memory::PplConfig;
use scap_reassembly::{OverlapPolicy, ReassemblyMode};
use scap_wire::{Direction, FlowKey};

/// Stream cutoffs: default, per-direction, and per-class (§2.1).
///
/// Precedence when a stream is created: the first matching *class*
/// cutoff wins; otherwise the per-direction cutoff if set; otherwise the
/// default. Applications can still override per stream afterwards
/// (`scap_set_stream_cutoff`).
#[derive(Debug, Clone, Default)]
pub struct CutoffPolicy {
    /// Default cutoff for all streams (None = unlimited).
    pub default: Option<u64>,
    /// Direction-specific overrides (`scap_add_cutoff_direction`).
    pub per_direction: [Option<u64>; 2],
    /// Class overrides (`scap_add_cutoff_class`), first match wins.
    pub classes: Vec<(Filter, u64)>,
}

impl CutoffPolicy {
    /// Effective per-direction cutoffs for a new stream.
    pub fn effective(&self, key: &FlowKey) -> [Option<u64>; 2] {
        for (filter, value) in &self.classes {
            if filter.matches_key(key) || filter.matches_key(&key.reversed()) {
                return [Some(*value), Some(*value)];
            }
        }
        [
            self.per_direction[Direction::Forward.index()].or(self.default),
            self.per_direction[Direction::Reverse.index()].or(self.default),
        ]
    }

    /// True when no cutoff can ever apply (fast-path check).
    pub fn is_unlimited(&self) -> bool {
        self.default.is_none()
            && self.per_direction.iter().all(Option::is_none)
            && self.classes.is_empty()
    }

    /// Collapse the policy to a single default cutoff, clearing stale
    /// per-direction and per-class overrides. This is the "widening"
    /// rule shared by `union_config` (a new sharing subscriber must not
    /// inherit a narrower class cutoff) and `apply_config` (a widened
    /// cutoff must clear the overrides that would silently re-narrow it).
    pub fn generalize_to(&mut self, default: Option<u64>) {
        self.default = default;
        self.per_direction = [None, None];
        self.classes.clear();
    }
}

/// Priority assignment at stream creation: first matching filter wins.
#[derive(Debug, Clone, Default)]
pub struct PriorityPolicy {
    /// (filter, priority) pairs; unmatched streams get priority 0.
    pub classes: Vec<(Filter, u8)>,
}

impl PriorityPolicy {
    /// Priority for a new stream.
    pub fn for_key(&self, key: &FlowKey) -> u8 {
        for (filter, prio) in &self.classes {
            if filter.matches_key(key) || filter.matches_key(&key.reversed()) {
                return *prio;
            }
        }
        0
    }

    /// Number of distinct priority levels in use (for PPL watermarks).
    pub fn levels(&self) -> u8 {
        self.classes
            .iter()
            .map(|(_, p)| p + 1)
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

/// How packets move from the RX rings into the kernel pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// The emulated classic path: one softirq-style `kernel_poll` per
    /// packet, each paying the full per-packet entry cost.
    #[default]
    Classic,
    /// The kernel-bypass poll-mode path: `poll_burst` pulls packets in
    /// bursts and runs batched stages (parse → hash → flow lookup →
    /// reassembly → delivery), amortizing the entry cost and skipping
    /// the per-packet kernel/user copy. Delivered streams are
    /// byte-identical to [`DispatchMode::Classic`].
    Fastpath,
}

/// Why a [`ConfigDelta`] was rejected by validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The delta narrows the default cutoff while wider per-direction
    /// or per-class overrides stay installed: streams matching an
    /// override would keep delivering beyond the new default, silently
    /// contradicting the requested narrowing. Clear or replace the
    /// overrides in the same delta (set `cutoff_classes`), or widen
    /// instead.
    CutoffConflict {
        /// The rejected new default cutoff.
        new_default: Option<u64>,
        /// The widest installed override it conflicts with
        /// (`None` = an unlimited override).
        widest_override: Option<u64>,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::CutoffConflict {
                new_default,
                widest_override,
            } => {
                let fmt_cut = |c: &Option<u64>| match c {
                    Some(v) => v.to_string(),
                    None => "unlimited".to_string(),
                };
                write!(
                    f,
                    "cutoff_default {} conflicts with installed per-direction/class \
                     override {} — clear the overrides in the same delta or widen",
                    fmt_cut(new_default),
                    fmt_cut(widest_override)
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A hot-reconfiguration delta applied to a *running* capture via
/// `apply_config`: each `Some` field replaces the corresponding part of
/// the live [`ScapConfig`] without tearing down the driver. `None`
/// fields are left untouched.
#[derive(Debug, Default)]
pub struct ConfigDelta {
    /// Replace the default cutoff. Widening (a larger value or `None` =
    /// unlimited) also clears per-direction/class overrides — the same
    /// generalization `union_config` performs — and re-opens streams
    /// whose old, narrower cutoff had already tripped.
    pub cutoff_default: Option<Option<u64>>,
    /// Replace the cutoff class list (applies to new streams).
    pub cutoff_classes: Option<Vec<(Filter, u64)>>,
    /// Replace the priority classes; live streams are re-classified.
    pub priorities: Option<PriorityPolicy>,
    /// Replace the socket-wide BPF filter (`None` inside = match-all).
    pub filter: Option<Option<Filter>>,
}

impl ConfigDelta {
    /// Check this delta against the configuration it would be applied
    /// to, without consuming it. The only rejected shape is a *narrowed*
    /// default cutoff that leaves wider per-direction or per-class
    /// overrides installed: `apply_to` would set the new default, the
    /// overrides would keep winning for the streams they match, and the
    /// narrowing would be silently ignored for exactly the traffic it
    /// was probably aimed at. Widening is always fine — it generalizes
    /// the whole policy — and a delta that replaces the class list
    /// (`cutoff_classes`) vouches for its own classes.
    pub fn validate(&self, cfg: &ScapConfig) -> Result<(), ConfigError> {
        let Some(new_default) = self.cutoff_default else {
            return Ok(());
        };
        // Mirror `apply_to`'s widening rule: widen ⇒ generalize_to
        // clears every override, so no conflict can survive.
        let widened = match (cfg.cutoff.default, new_default) {
            (Some(old), Some(new)) => new > old,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if widened {
            return Ok(());
        }
        let Some(new) = new_default else {
            // None → None: no effective change, nothing to conflict.
            return Ok(());
        };
        let mut widest: Option<u64> = None;
        let mut consider = |v: u64| {
            if v > new && widest.is_none_or(|w| v > w) {
                widest = Some(v);
            }
        };
        for d in cfg.cutoff.per_direction.iter().flatten() {
            consider(*d);
        }
        if self.cutoff_classes.is_none() {
            for (_, v) in &cfg.cutoff.classes {
                consider(*v);
            }
        }
        match widest {
            Some(v) => Err(ConfigError::CutoffConflict {
                new_default,
                widest_override: Some(v),
            }),
            None => Ok(()),
        }
    }
}

/// Full capture configuration (the `scap_create` arguments plus every
/// `scap_set_*` knob).
#[derive(Debug, Clone)]
pub struct ScapConfig {
    /// Stream-memory budget in bytes (`memory_size`).
    pub memory_bytes: usize,
    /// TCP reassembly mode (`SCAP_TCP_STRICT` / `SCAP_TCP_FAST`).
    pub reassembly_mode: ReassemblyMode,
    /// Default target-based overlap policy.
    pub overlap_policy: OverlapPolicy,
    /// Deliver per-packet records alongside chunks (`need_pkts`).
    pub need_pkts: bool,
    /// Socket-wide BPF filter (`scap_set_filter`).
    pub filter: Option<Filter>,
    /// Cutoff configuration.
    pub cutoff: CutoffPolicy,
    /// Priority classes for PPL.
    pub priorities: PriorityPolicy,
    /// Worker threads (`scap_set_worker_threads`).
    pub worker_threads: usize,
    /// Kernel cores / NIC queues (the sensor machine has 8).
    pub cores: usize,
    /// Chunk size (default 16 KB, as in the evaluation).
    pub chunk_size: usize,
    /// Chunk overlap bytes.
    pub overlap: usize,
    /// Flush timeout for partial chunks (ns).
    pub flush_timeout_ns: u64,
    /// Inactivity timeout for stream expiration (ns; paper uses 10 s).
    pub inactivity_timeout_ns: u64,
    /// PPL parameters (`base_threshold`, `overload_cutoff`).
    pub ppl: PplConfig,
    /// Use NIC flow-director filters for subzero-copy discarding.
    pub use_fdir: bool,
    /// Dynamic FDIR load balancing (§2.4): when RSS assigns a new stream
    /// to a core already holding more than `balance_threshold ×` the
    /// average stream count, steer the stream to the least-loaded core
    /// with a flow-director filter instead.
    pub use_fdir_balancing: bool,
    /// Imbalance trigger as a multiple of the per-core average.
    pub balance_threshold: f64,
    /// RX descriptor ring size per queue.
    pub rx_ring_slots: usize,
    /// Maximum queued events per core (beyond this, data chunks are
    /// dropped; memory pressure usually intervenes first).
    pub event_queue_cap: usize,
    /// Overload-governor tuning (always active; the defaults only bite
    /// under sustained pressure).
    pub governor: GovernorConfig,
    /// Deterministic fault-injection plan (tests and the `faults`
    /// experiment; None in production use).
    pub faults: Option<FaultPlan>,
    /// Gauge-sampling interval for the telemetry time-series (ns of
    /// trace/virtual time between rows).
    pub telemetry_sample_interval_ns: u64,
    /// Maximum retained telemetry time-series rows (oldest evicted).
    pub telemetry_series_cap: usize,
    /// Per-core flight-recorder ring capacity (events). The recorder is
    /// always on; a full ring overwrites its oldest events and counts
    /// the overwrites.
    pub flight_ring_cap: usize,
    /// How packets are dispatched from the RX rings (classic per-packet
    /// emulated path vs. poll-mode kernel-bypass bursts).
    pub dispatch: DispatchMode,
    /// Frames pulled per burst on the fast path (clamped to ≥ 1).
    pub fastpath_burst: usize,
    /// Use the programmable flow-offload engine for cutoff enforcement
    /// (one bidirectional rule per stream instead of four FDIR filters)
    /// and for application-programmed bypass/mark/sample rules.
    pub use_offload: bool,
    /// Offload-table rule capacity (the simulated hardware table size).
    pub offload_capacity: usize,
    /// Worker failures (panics + stalls) inside
    /// [`ScapConfig::watchdog_breaker_window_ns`] that trip the live
    /// watchdog's circuit breaker and park the slot instead of
    /// respawning it forever.
    pub watchdog_breaker_threshold: u32,
    /// Sliding failure window (virtual ns) of the watchdog's circuit
    /// breaker.
    pub watchdog_breaker_window_ns: u64,
    /// Pulse-plane exemplar sampling quantile, in permille: stage
    /// delays at or above this quantile of their own distribution are
    /// tail-sampled into exemplars (990 = p99).
    pub pulse_exemplar_permille: u32,
    /// Exemplars retained per pulse stage (worst delays win).
    pub pulse_exemplar_cap: usize,
}

impl Default for ScapConfig {
    fn default() -> Self {
        ScapConfig {
            memory_bytes: 256 << 20,
            reassembly_mode: ReassemblyMode::Fast,
            overlap_policy: OverlapPolicy::default(),
            need_pkts: false,
            filter: None,
            cutoff: CutoffPolicy::default(),
            priorities: PriorityPolicy::default(),
            worker_threads: 1,
            cores: 8,
            chunk_size: 16 << 10,
            overlap: 0,
            flush_timeout_ns: 100_000_000,
            inactivity_timeout_ns: 10_000_000_000,
            ppl: PplConfig {
                base_threshold: 0.5,
                num_priorities: 1,
                overload_cutoff: None,
            },
            use_fdir: false,
            use_fdir_balancing: false,
            balance_threshold: 1.5,
            rx_ring_slots: 4096,
            event_queue_cap: 1 << 16,
            governor: GovernorConfig::default(),
            faults: None,
            telemetry_sample_interval_ns: 5_000_000,
            telemetry_series_cap: 4096,
            flight_ring_cap: scap_flight::DEFAULT_RING_CAP,
            dispatch: DispatchMode::Classic,
            fastpath_burst: scap_fastpath::DEFAULT_BURST,
            use_offload: false,
            offload_capacity: scap_offload::DEFAULT_OFFLOAD_CAPACITY,
            watchdog_breaker_threshold: 8,
            watchdog_breaker_window_ns: 2_000_000_000,
            pulse_exemplar_permille: 990,
            pulse_exemplar_cap: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::Transport;

    fn key(port: u16) -> FlowKey {
        FlowKey::new_v4([10, 0, 0, 1], [10, 0, 0, 2], 40000, port, Transport::Tcp)
    }

    #[test]
    fn cutoff_precedence_class_over_direction_over_default() {
        let mut c = CutoffPolicy {
            default: Some(1000),
            ..Default::default()
        };
        assert_eq!(c.effective(&key(80)), [Some(1000), Some(1000)]);
        c.per_direction[Direction::Reverse.index()] = Some(5000);
        assert_eq!(c.effective(&key(80)), [Some(1000), Some(5000)]);
        c.classes.push((Filter::new("port 80").unwrap(), 77));
        assert_eq!(c.effective(&key(80)), [Some(77), Some(77)]);
        assert_eq!(c.effective(&key(443)), [Some(1000), Some(5000)]);
    }

    #[test]
    fn class_cutoff_matches_either_direction_of_stream() {
        let c = CutoffPolicy {
            classes: vec![(Filter::new("src port 80").unwrap(), 9)],
            ..Default::default()
        };
        // The canonical key may have port 80 on either side.
        assert_eq!(c.effective(&key(80)), [Some(9), Some(9)]);
        assert_eq!(c.effective(&key(80).reversed()), [Some(9), Some(9)]);
    }

    #[test]
    fn unlimited_detection() {
        assert!(CutoffPolicy::default().is_unlimited());
        assert!(!CutoffPolicy {
            default: Some(0),
            ..Default::default()
        }
        .is_unlimited());
    }

    #[test]
    fn validate_rejects_narrowing_below_installed_overrides() {
        let mut cfg = ScapConfig {
            cutoff: CutoffPolicy {
                default: Some(10_000),
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.cutoff.per_direction[Direction::Forward.index()] = Some(50_000);

        // Narrowing the default below the per-direction override is the
        // silently-contradicted shape: rejected, naming the override.
        let narrow = ConfigDelta {
            cutoff_default: Some(Some(1_000)),
            ..Default::default()
        };
        assert_eq!(
            narrow.validate(&cfg),
            Err(ConfigError::CutoffConflict {
                new_default: Some(1_000),
                widest_override: Some(50_000),
            })
        );
        assert!(narrow
            .validate(&cfg)
            .unwrap_err()
            .to_string()
            .contains("50000"));

        // Widening generalizes away every override: always fine.
        let widen = ConfigDelta {
            cutoff_default: Some(Some(1 << 20)),
            ..Default::default()
        };
        assert_eq!(widen.validate(&cfg), Ok(()));
        let unlimited = ConfigDelta {
            cutoff_default: Some(None),
            ..Default::default()
        };
        assert_eq!(unlimited.validate(&cfg), Ok(()));
    }

    #[test]
    fn validate_class_conflict_waived_when_delta_replaces_classes() {
        let cfg = ScapConfig {
            cutoff: CutoffPolicy {
                default: Some(10_000),
                classes: vec![(Filter::new("port 80").unwrap(), 90_000)],
                ..Default::default()
            },
            ..Default::default()
        };
        let narrow = ConfigDelta {
            cutoff_default: Some(Some(1_000)),
            ..Default::default()
        };
        assert_eq!(
            narrow.validate(&cfg),
            Err(ConfigError::CutoffConflict {
                new_default: Some(1_000),
                widest_override: Some(90_000),
            })
        );
        // A delta that replaces the class list vouches for its classes:
        // the stale ones it conflicted with are gone after apply.
        let replace = ConfigDelta {
            cutoff_default: Some(Some(1_000)),
            cutoff_classes: Some(vec![]),
            ..Default::default()
        };
        assert_eq!(replace.validate(&cfg), Ok(()));
        // A delta touching no cutoff at all is trivially valid.
        assert_eq!(ConfigDelta::default().validate(&cfg), Ok(()));
    }

    #[test]
    fn priority_assignment() {
        let p = PriorityPolicy {
            classes: vec![(Filter::new("port 80").unwrap(), 1)],
        };
        assert_eq!(p.for_key(&key(80)), 1);
        assert_eq!(p.for_key(&key(443)), 0);
        assert_eq!(p.levels(), 2);
        assert_eq!(PriorityPolicy::default().levels(), 1);
    }
}
