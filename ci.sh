#!/usr/bin/env bash
# CI gate: build, test, lint, format. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "== benches compile =="
cargo bench --no-run

echo "== telemetry smoke run =="
smoke_out=$(mktemp -d)
cargo run --release -p scap-bench --bin experiments -- \
    --exp telemetry --scale smoke --out "$smoke_out" >/dev/null
for f in telemetry_counters.csv telemetry_series.csv telemetry_table.txt \
         telemetry_stages.csv BENCH_summary.json; do
    test -s "$smoke_out/$f" || { echo "missing $f"; exit 1; }
done
rm -rf "$smoke_out"

echo "CI green."
