//! Discrete-event Monte-Carlo validation of the queueing formulas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Arrivals offered.
    pub offered: u64,
    /// Arrivals lost (queue full).
    pub lost: u64,
}

impl SimResult {
    /// Observed loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost as f64 / self.offered as f64
        }
    }
}

fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-300);
    -u.ln() / rate
}

/// Simulate an M/M/1/N queue: Poisson arrivals at `lambda`, exponential
/// service at `mu`, `n` slots (including the one in service). Returns
/// observed loss over `arrivals` offered packets.
pub fn simulate_mm1n(lambda: f64, mu: f64, n: usize, arrivals: u64, seed: u64) -> SimResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queue = 0usize;
    let mut offered = 0u64;
    let mut lost = 0u64;
    let mut next_arrival = exp_sample(&mut rng, lambda);
    let mut next_departure = f64::INFINITY;

    while offered < arrivals {
        if next_arrival <= next_departure {
            let t = next_arrival;
            offered += 1;
            if queue >= n {
                lost += 1;
            } else {
                queue += 1;
                if queue == 1 {
                    next_departure = t + exp_sample(&mut rng, mu);
                }
            }
            next_arrival = t + exp_sample(&mut rng, lambda);
        } else {
            let t = next_departure;
            queue -= 1;
            next_departure = if queue > 0 {
                t + exp_sample(&mut rng, mu)
            } else {
                f64::INFINITY
            };
        }
    }
    SimResult { offered, lost }
}

/// Simulate the two-region priority queue of §7: total arrivals at
/// `lambda1` (medium+high) admitted below `n`, high-priority arrivals at
/// `lambda2` admitted below `2n`, service `mu`. Returns (high-priority
/// loss, medium-priority loss) observed.
pub fn simulate_priority(
    lambda1: f64,
    lambda2: f64,
    mu: f64,
    n: usize,
    arrivals: u64,
    seed: u64,
) -> (f64, f64) {
    assert!(lambda2 <= lambda1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queue = 0usize;
    let mut offered_hi = 0u64;
    let mut lost_hi = 0u64;
    let mut offered_med = 0u64;
    let mut lost_med = 0u64;
    let mut next_arrival = exp_sample(&mut rng, lambda1);
    let mut next_departure = f64::INFINITY;

    while offered_hi + offered_med < arrivals {
        if next_arrival <= next_departure {
            let t = next_arrival;
            // Thin the aggregate process: this arrival is high-priority
            // with probability λ₂/λ₁.
            let is_high = rng.random::<f64>() < lambda2 / lambda1;
            if is_high {
                offered_hi += 1;
                if queue >= 2 * n {
                    lost_hi += 1;
                } else {
                    queue += 1;
                    if queue == 1 {
                        next_departure = t + exp_sample(&mut rng, mu);
                    }
                }
            } else {
                offered_med += 1;
                if queue >= n {
                    lost_med += 1;
                } else {
                    queue += 1;
                    if queue == 1 {
                        next_departure = t + exp_sample(&mut rng, mu);
                    }
                }
            }
            next_arrival = t + exp_sample(&mut rng, lambda1);
        } else {
            let t = next_departure;
            queue -= 1;
            next_departure = if queue > 0 {
                t + exp_sample(&mut rng, mu)
            } else {
                f64::INFINITY
            };
        }
    }
    (
        lost_hi as f64 / offered_hi.max(1) as f64,
        lost_med as f64 / offered_med.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1n::loss_probability;
    use crate::priority_chain::{high_priority_loss, medium_priority_loss};

    #[test]
    fn mm1n_simulation_matches_formula() {
        for &(rho, n) in &[(0.5f64, 3usize), (0.8, 5), (0.9, 8), (1.2, 4)] {
            let sim = simulate_mm1n(rho, 1.0, n, 400_000, 42);
            let formula = loss_probability(rho, n);
            let err = (sim.loss_ratio() - formula).abs();
            assert!(
                err < 0.01 + formula * 0.15,
                "rho={rho} N={n}: sim {} vs formula {formula}",
                sim.loss_ratio()
            );
        }
    }

    #[test]
    fn priority_simulation_matches_chain() {
        // ρ₁ = 0.9 (aggregate), ρ₂ = 0.3 (high), N = 4: losses are large
        // enough to measure with modest samples.
        let (hi_sim, med_sim) = simulate_priority(0.9, 0.3, 1.0, 4, 600_000, 7);
        // Chain birth rates: below N the aggregate 0.9 arrives; above N
        // only 0.3. High-priority loss = p_{2N}; medium = P(occ ≥ N).
        let hi = high_priority_loss(0.9, 0.3, 4);
        let med = medium_priority_loss(0.9, 0.3, 4);
        assert!((hi_sim - hi).abs() < 0.01 + hi * 0.2, "hi {hi_sim} vs {hi}");
        assert!(
            (med_sim - med).abs() < 0.01 + med * 0.2,
            "med {med_sim} vs {med}"
        );
        assert!(hi_sim < med_sim);
    }

    #[test]
    fn empty_queue_never_loses() {
        let sim = simulate_mm1n(0.1, 1.0, 50, 50_000, 1);
        assert_eq!(sim.lost, 0);
    }
}
