//! Crash-consistent checkpoint/restore for the live capture pipeline.
//!
//! A checkpoint file captures everything a warm restart cannot rebuild
//! from the wire: per-core stream records and their kernel-side
//! reassembly state, the global uid counter, the overload-governor
//! escalation level, the installed FDIR filter set, and the active
//! [`ScapConfig`]. The on-disk format reuses the checksummed record
//! framing the `scap-store` archive proved out — this module *is* that
//! codec now: `scap-store` re-exports the constants and framing
//! functions defined here, so there is exactly one CRC table, one record
//! frame, and one torn-tail scanner in the tree.
//!
//! # File layout
//!
//! ```text
//! [16-byte file header: CKPT_MAGIC, FORMAT_VERSION, sequence number]
//! [record]*            each: REC_MAGIC, body len, CRC-32, body
//! ```
//!
//! Record bodies start with a kind byte: config (`0x10`), globals
//! (`0x11`), one per stream (`0x12`), the FDIR filter set (`0x13`), the
//! tenant table (`0x15`), the offload rule set (`0x16`), and
//! a mandatory trailing end marker (`0x14`). A file whose last valid
//! record is not the end marker was torn mid-write and is rejected by
//! [`CheckpointImage::decode`]; [`repair_file`] truncates such a tail
//! (idempotently — repairing an already-repaired file is a no-op).
//! Checkpoints are written via [`write_atomic`] (temp file + rename), so
//! a crash during checkpointing leaves the previous checkpoint intact.
//!
//! # Restore invariants
//!
//! * Stream UIDs are stable across the restart: the uid counter resumes
//!   where it left off and restored streams keep their checkpointed
//!   uids, so pre- and post-restart archive records join on uid.
//! * Every direction re-anchors at its *committed* offset (delivered
//!   in-order bytes plus the buffered partial chunk, which travels in
//!   the checkpoint). No committed byte is ever re-delivered.
//! * Restored live streams carry [`StreamErrors::RESUMED`]; bytes lost
//!   in the restart blackout are skipped on the first post-resume
//!   segment and accounted in `resume_gap_bytes` — bounded by the
//!   traffic that arrived between the checkpoint and the crash.
//!
//! [`StreamErrors::RESUMED`]: scap_flow::StreamErrors::RESUMED

use std::path::Path;

use crate::config::{ConfigDelta, CutoffPolicy, PriorityPolicy, ScapConfig};
use crate::event::StreamUid;
use crate::governor::GovernorConfig;
use scap_filter::Filter;
use scap_flow::{DirStats, StreamStatus};
use scap_memory::PplConfig;
use scap_nic::{FdirAction, FdirFilter, FlexMatch, OffloadAction, OffloadRule};
use scap_reassembly::{ConnCheckpoint, ConnPhase, DirState, OverlapPolicy, ReassemblyMode};
use scap_wire::{Direction, FlowKey, IpAddrBytes, Transport};

// ---------------------------------------------------------------------------
// Shared record codec (also used by scap-store via re-export)
// ---------------------------------------------------------------------------

/// On-disk format version shared by checkpoints and the archive.
pub const FORMAT_VERSION: u32 = 1;
/// File header length: magic + version + file id.
pub const FILE_HEADER_LEN: usize = 16;
/// Record frame header length: magic + body length + CRC-32.
pub const REC_HEADER_LEN: usize = 12;
/// Per-record magic ("RECD").
pub const REC_MAGIC: u32 = 0x4443_4552;
/// Checkpoint-file magic ("SCKP").
pub const CKPT_MAGIC: u32 = 0x504B_4353;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum (IEEE), the integrity check on every record frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Standard 16-byte file header: magic, format version, file id.
pub fn file_header(magic: u32, id: u64) -> [u8; FILE_HEADER_LEN] {
    let mut h = [0u8; FILE_HEADER_LEN];
    h[0..4].copy_from_slice(&magic.to_le_bytes());
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&id.to_le_bytes());
    h
}

/// Frame a record body: magic, length, CRC-32, body.
pub fn frame_record(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER_LEN + body.len());
    out.extend_from_slice(&REC_MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// One structurally valid record found by [`scan_records`].
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// Byte offset of the record's frame header within the file.
    pub frame_start: usize,
    /// Byte range of the record body within the file.
    pub body: core::ops::Range<usize>,
}

/// The result of scanning a record-framed file.
#[derive(Debug, Clone)]
pub struct RecordScan {
    /// Structurally valid records in file order.
    pub records: Vec<RawRecord>,
    /// File id from the header (sequence number for checkpoints).
    pub file_id: u64,
    /// Length of the valid prefix (header + intact records).
    pub valid_len: usize,
    /// Bytes past the valid prefix (a torn tail from a crashed write).
    pub torn_bytes: usize,
}

/// Scan a record-framed file: validate the header, then walk frames
/// checking magic, length, and CRC, stopping at the first invalid byte.
/// Everything before that point is the crash-consistent valid prefix.
pub fn scan_records(data: &[u8], file_magic: u32) -> Result<RecordScan, CheckpointError> {
    if data.len() < FILE_HEADER_LEN {
        return Err(CheckpointError::Corrupt(format!(
            "file too short for header: {} bytes",
            data.len()
        )));
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != file_magic {
        return Err(CheckpointError::Corrupt(format!(
            "bad file magic {magic:#010x}"
        )));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported format version {version}"
        )));
    }
    let file_id = u64::from_le_bytes(data[8..16].try_into().unwrap());

    let mut records = Vec::new();
    let mut pos = FILE_HEADER_LEN;
    loop {
        if pos + REC_HEADER_LEN > data.len() {
            break;
        }
        let magic = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        if magic != REC_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().unwrap());
        let body_start = pos + REC_HEADER_LEN;
        let Some(body_end) = body_start.checked_add(len) else {
            break;
        };
        if body_end > data.len() || crc32(&data[body_start..body_end]) != crc {
            break;
        }
        records.push(RawRecord {
            frame_start: pos,
            body: body_start..body_end,
        });
        pos = body_end;
    }
    Ok(RecordScan {
        records,
        file_id,
        valid_len: pos,
        torn_bytes: data.len() - pos,
    })
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Checkpoint read/write failures.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error reading or writing the checkpoint.
    Io(std::io::Error),
    /// The checkpoint bytes are structurally or semantically invalid.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Image types
// ---------------------------------------------------------------------------

/// Record kind bytes (first body byte of every checkpoint record).
const REC_CONFIG: u8 = 0x10;
const REC_GLOBALS: u8 = 0x11;
const REC_STREAM: u8 = 0x12;
const REC_FDIR: u8 = 0x13;
const REC_END: u8 = 0x14;
const REC_TENANTS: u8 = 0x15;
const REC_OFFLOAD: u8 = 0x16;

/// Kernel-global state that is not per-stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointGlobals {
    /// Trace timestamp the checkpoint was taken at (ns).
    pub ts_ns: u64,
    /// Last assigned stream uid (uids stay stable across restarts).
    pub uid_counter: u64,
    /// Overload-governor escalation level at checkpoint time.
    pub governor_level: u8,
    /// Warm restarts this lineage has been through so far.
    pub restarts: u64,
}

/// One direction's chunk-assembler state: the committed offset and the
/// buffered partial-chunk bytes (which the committed offset includes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsmImage {
    /// Next byte offset the assembler will write (committed frontier).
    pub committed: u64,
    /// Partial-chunk bytes buffered at checkpoint time.
    pub pending: Vec<u8>,
}

/// Kernel-side per-stream state (absent for TIME_WAIT tombstones).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KStateImage {
    /// NIC drop filters were installed for this stream.
    pub fdir_installed: bool,
    /// Current adaptive FDIR expiry timeout (ns).
    pub fdir_timeout_ns: u64,
    /// The stream fell back to software discard after FDIR failures.
    pub fdir_software_fallback: bool,
    /// TCP connection state (both directions' reassembly), if tracked.
    pub conn: Option<ConnCheckpoint>,
    /// Per-direction chunk-assembler state, indexed by `Direction`.
    pub asm: [Option<AsmImage>; 2],
}

/// One checkpointed stream: the flow-table record plus (for live
/// streams) the kernel state needed to resume reassembly exactly at the
/// committed offset.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamImage {
    /// Core (flow table) the stream lives on.
    pub core: u32,
    /// Stable stream uid.
    pub uid: StreamUid,
    /// Canonical flow key.
    pub key: FlowKey,
    /// Direction of the first observed packet.
    pub first_dir: Direction,
    /// First-packet timestamp (ns).
    pub first_ts_ns: u64,
    /// Most recent packet timestamp (ns).
    pub last_ts_ns: u64,
    /// Lifecycle status.
    pub status: StreamStatus,
    /// Raw error-flag bits.
    pub errors: u8,
    /// PPL priority.
    pub priority: u8,
    /// Per-direction cutoffs.
    pub cutoff: [Option<u64>; 2],
    /// A cutoff already tripped.
    pub cutoff_exceeded: bool,
    /// The application asked to discard the rest of the stream.
    pub discarded: bool,
    /// Per-direction byte/packet counters.
    pub dirs: [DirStats; 2],
    /// Per-stream chunk-size override (0 = socket default).
    pub chunk_size: u32,
    /// Per-stream chunk-overlap override.
    pub overlap: u32,
    /// Per-stream reassembly-policy override.
    pub reassembly_policy: Option<u8>,
    /// Cumulative user processing time charged to the stream (ns).
    pub processing_time_ns: u64,
    /// Chunks delivered so far.
    pub chunks: u64,
    /// Bytes already skipped over earlier restart blackouts.
    pub resume_gap_bytes: u64,
    /// Kernel state; `None` marks a TIME_WAIT tombstone (record only).
    pub kstate: Option<KStateImage>,
}

/// A decoded checkpoint: everything [`crate::ScapKernel`] needs to
/// rebuild itself mid-capture.
#[derive(Debug)]
pub struct CheckpointImage {
    /// Checkpoint sequence number (file header id).
    pub seq: u64,
    /// The capture configuration in force (fault plan excluded).
    pub config: ScapConfig,
    /// Kernel-global state.
    pub globals: CheckpointGlobals,
    /// All tracked streams, in ascending uid order.
    pub streams: Vec<StreamImage>,
    /// Installed FDIR filters, in deterministic (encoded-bytes) order.
    pub fdir: Vec<FdirFilter>,
    /// Installed offload rules, in deterministic (encoded-bytes) order.
    /// The record is only written when non-empty, so captures without
    /// the offload stage produce byte-identical checkpoints.
    pub offload: Vec<OffloadRule>,
    /// The multi-tenant attachment table (`scapd`), in ascending
    /// tenant-id order. Empty for single-tenant captures; the record is
    /// only written when tenants are attached, so single-tenant
    /// checkpoints stay byte-identical to pre-tenant ones.
    pub tenants: Vec<TenantImage>,
}

/// One tenant's row in the checkpointed tenant table: the attachment
/// spec plus the delivery accounting needed to resume the per-tenant
/// conservation identity across a warm restart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantImage {
    /// Stable tenant id (attach order, never reused within a lineage).
    pub id: u64,
    /// Tenant name (unique among live tenants).
    pub name: String,
    /// BPF filter source (`None` = all streams).
    pub filter_src: Option<String>,
    /// Requested per-stream cutoff (`None` = unlimited).
    pub cutoff: Option<u64>,
    /// PPL priority requested for this tenant's streams.
    pub priority: u8,
    /// Memory share in permille of the delivery budget.
    pub mem_share: u32,
    /// Disk share in permille of the archive budget.
    pub disk_share: u32,
    /// Slow-consumer ladder state (encodes `TenantState`).
    pub state: u8,
    /// Bytes delivered to this tenant so far.
    pub delivered_bytes: u64,
    /// Bytes dropped on this tenant's full queue so far.
    pub dropped_bytes: u64,
    /// Bytes withheld from this tenant by quota policy so far.
    pub discarded_bytes: u64,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    b.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_opt_u64(b: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            b.push(1);
            put_u64(b, x);
        }
        None => b.push(0),
    }
}

fn put_bytes(b: &mut Vec<u8>, v: &[u8]) {
    put_u32(b, v.len() as u32);
    b.extend_from_slice(v);
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_bytes(b, s.as_bytes());
}

fn put_addr(b: &mut Vec<u8>, a: IpAddrBytes) {
    match a {
        IpAddrBytes::V4(x) => {
            b.extend_from_slice(&x);
            b.extend_from_slice(&[0u8; 12]);
        }
        IpAddrBytes::V6(x) => b.extend_from_slice(&x),
    }
}

fn put_key(b: &mut Vec<u8>, key: &FlowKey) {
    b.push(match key.src() {
        IpAddrBytes::V4(_) => 4,
        IpAddrBytes::V6(_) => 6,
    });
    put_addr(b, key.src());
    put_addr(b, key.dst());
    b.extend_from_slice(&key.src_port().to_le_bytes());
    b.extend_from_slice(&key.dst_port().to_le_bytes());
    b.push(key.transport().proto_number());
}

fn overlap_policy_to_u8(p: OverlapPolicy) -> u8 {
    match p {
        OverlapPolicy::First => 0,
        OverlapPolicy::Last => 1,
        OverlapPolicy::Bsd => 2,
        OverlapPolicy::Windows => 3,
        OverlapPolicy::Solaris => 4,
        OverlapPolicy::Linux => 5,
    }
}

fn status_to_u8(s: StreamStatus) -> u8 {
    match s {
        StreamStatus::Active => 0,
        StreamStatus::ClosedFin => 1,
        StreamStatus::ClosedRst => 2,
        StreamStatus::ClosedTimeout => 3,
    }
}

fn encode_config_body(cfg: &ScapConfig) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    b.push(REC_CONFIG);
    put_u64(&mut b, cfg.memory_bytes as u64);
    b.push(match cfg.reassembly_mode {
        ReassemblyMode::Strict => 0,
        ReassemblyMode::Fast => 1,
    });
    b.push(overlap_policy_to_u8(cfg.overlap_policy));
    b.push(u8::from(cfg.need_pkts));
    match &cfg.filter {
        Some(f) => {
            b.push(1);
            put_str(&mut b, f.source());
        }
        None => b.push(0),
    }
    put_opt_u64(&mut b, cfg.cutoff.default);
    put_opt_u64(&mut b, cfg.cutoff.per_direction[0]);
    put_opt_u64(&mut b, cfg.cutoff.per_direction[1]);
    put_u32(&mut b, cfg.cutoff.classes.len() as u32);
    for (f, v) in &cfg.cutoff.classes {
        put_str(&mut b, f.source());
        put_u64(&mut b, *v);
    }
    put_u32(&mut b, cfg.priorities.classes.len() as u32);
    for (f, p) in &cfg.priorities.classes {
        put_str(&mut b, f.source());
        b.push(*p);
    }
    put_u64(&mut b, cfg.worker_threads as u64);
    put_u64(&mut b, cfg.cores as u64);
    put_u64(&mut b, cfg.chunk_size as u64);
    put_u64(&mut b, cfg.overlap as u64);
    put_u64(&mut b, cfg.flush_timeout_ns);
    put_u64(&mut b, cfg.inactivity_timeout_ns);
    put_f64(&mut b, cfg.ppl.base_threshold);
    b.push(cfg.ppl.num_priorities);
    put_opt_u64(&mut b, cfg.ppl.overload_cutoff);
    b.push(u8::from(cfg.use_fdir));
    b.push(u8::from(cfg.use_fdir_balancing));
    put_f64(&mut b, cfg.balance_threshold);
    put_u64(&mut b, cfg.rx_ring_slots as u64);
    put_u64(&mut b, cfg.event_queue_cap as u64);
    for e in cfg.governor.enter {
        put_f64(&mut b, e);
    }
    put_f64(&mut b, cfg.governor.exit);
    put_u32(&mut b, cfg.governor.calm_ticks);
    put_u64(&mut b, cfg.governor.tick_ns);
    put_u64(&mut b, cfg.governor.cutoff_caps[0]);
    put_u64(&mut b, cfg.governor.cutoff_caps[1]);
    put_f64(&mut b, cfg.governor.ppl_boost);
    put_u64(&mut b, cfg.governor.evict_batch as u64);
    put_u64(&mut b, cfg.telemetry_sample_interval_ns);
    put_u64(&mut b, cfg.telemetry_series_cap as u64);
    put_u64(&mut b, cfg.flight_ring_cap as u64);
    b.push(match cfg.dispatch {
        crate::config::DispatchMode::Classic => 0,
        crate::config::DispatchMode::Fastpath => 1,
    });
    put_u64(&mut b, cfg.fastpath_burst as u64);
    b.push(u8::from(cfg.use_offload));
    put_u64(&mut b, cfg.offload_capacity as u64);
    put_u32(&mut b, cfg.watchdog_breaker_threshold);
    put_u64(&mut b, cfg.watchdog_breaker_window_ns);
    put_u32(&mut b, cfg.pulse_exemplar_permille);
    put_u64(&mut b, cfg.pulse_exemplar_cap as u64);
    b
}

fn encode_globals_body(g: &CheckpointGlobals) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    b.push(REC_GLOBALS);
    put_u64(&mut b, g.ts_ns);
    put_u64(&mut b, g.uid_counter);
    b.push(g.governor_level);
    put_u64(&mut b, g.restarts);
    b
}

fn encode_dir_state(b: &mut Vec<u8>, d: &DirState) {
    match d.base_seq {
        Some(s) => {
            b.push(1);
            put_u32(b, s);
        }
        None => b.push(0),
    }
    put_u64(b, d.expected);
    b.push(d.flags);
    put_u64(b, d.delivered_bytes);
    put_u64(b, d.duplicate_bytes);
    put_u64(b, d.gap_bytes);
    put_u32(b, d.segments.len() as u32);
    for (off, data) in &d.segments {
        put_u64(b, *off);
        put_bytes(b, data);
    }
}

fn encode_stream_body(s: &StreamImage) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    b.push(REC_STREAM);
    put_u32(&mut b, s.core);
    put_u64(&mut b, s.uid);
    put_key(&mut b, &s.key);
    b.push(s.first_dir.index() as u8);
    put_u64(&mut b, s.first_ts_ns);
    put_u64(&mut b, s.last_ts_ns);
    b.push(status_to_u8(s.status));
    b.push(s.errors);
    b.push(s.priority);
    put_opt_u64(&mut b, s.cutoff[0]);
    put_opt_u64(&mut b, s.cutoff[1]);
    b.push(u8::from(s.cutoff_exceeded));
    b.push(u8::from(s.discarded));
    for d in &s.dirs {
        for v in [
            d.total_pkts,
            d.total_bytes,
            d.captured_bytes,
            d.captured_pkts,
            d.discarded_pkts,
            d.discarded_bytes,
            d.dropped_pkts,
            d.dropped_bytes,
        ] {
            put_u64(&mut b, v);
        }
    }
    put_u32(&mut b, s.chunk_size);
    put_u32(&mut b, s.overlap);
    match s.reassembly_policy {
        Some(p) => {
            b.push(1);
            b.push(p);
        }
        None => b.push(0),
    }
    put_u64(&mut b, s.processing_time_ns);
    put_u64(&mut b, s.chunks);
    put_u64(&mut b, s.resume_gap_bytes);
    match &s.kstate {
        None => b.push(0),
        Some(ks) => {
            b.push(1);
            b.push(u8::from(ks.fdir_installed));
            put_u64(&mut b, ks.fdir_timeout_ns);
            b.push(u8::from(ks.fdir_software_fallback));
            match &ks.conn {
                None => b.push(0),
                Some(c) => {
                    b.push(1);
                    b.push(match c.phase {
                        ConnPhase::Opening => 0,
                        ConnPhase::Established => 1,
                        ConnPhase::ClosedFin => 2,
                        ConnPhase::ClosedRst => 3,
                    });
                    match c.client_dir {
                        Some(d) => {
                            b.push(1);
                            b.push(d.index() as u8);
                        }
                        None => b.push(0),
                    }
                    b.push(u8::from(c.fin_seen[0]));
                    b.push(u8::from(c.fin_seen[1]));
                    for d in &c.dirs {
                        encode_dir_state(&mut b, d);
                    }
                }
            }
            for a in &ks.asm {
                match a {
                    None => b.push(0),
                    Some(a) => {
                        b.push(1);
                        put_u64(&mut b, a.committed);
                        put_bytes(&mut b, &a.pending);
                    }
                }
            }
        }
    }
    b
}

fn encode_filter(f: &FdirFilter) -> Vec<u8> {
    let mut b = Vec::with_capacity(48);
    put_key(&mut b, &f.key);
    match f.flex {
        Some(fx) => {
            b.push(1);
            b.extend_from_slice(&fx.offset.to_le_bytes());
            b.extend_from_slice(&fx.value.to_le_bytes());
        }
        None => b.push(0),
    }
    match f.action {
        FdirAction::Drop => b.push(0),
        FdirAction::ToQueue(q) => {
            b.push(1);
            put_u64(&mut b, q as u64);
        }
    }
    b
}

fn encode_fdir_body(filters: &[FdirFilter]) -> Vec<u8> {
    // FDIR tables hash by key, so the caller's iteration order is not
    // deterministic; sort by encoded bytes so identical filter sets
    // always produce identical checkpoints.
    let mut enc: Vec<Vec<u8>> = filters.iter().map(encode_filter).collect();
    enc.sort_unstable();
    let mut b = Vec::with_capacity(16 + enc.len() * 48);
    b.push(REC_FDIR);
    put_u32(&mut b, enc.len() as u32);
    for e in enc {
        b.extend_from_slice(&e);
    }
    b
}

fn encode_offload_rule(r: &OffloadRule) -> Vec<u8> {
    let mut b = Vec::with_capacity(48);
    put_key(&mut b, &r.key);
    b.push(r.action.discriminant());
    match r.action {
        OffloadAction::Bypass | OffloadAction::Drop => {}
        OffloadAction::Mark(tag) => b.push(tag),
        OffloadAction::Sample(n) => put_u32(&mut b, n),
    }
    b.push(r.priority);
    b
}

fn encode_offload_body(rules: &[OffloadRule]) -> Vec<u8> {
    // Same determinism discipline as the FDIR record: the table hashes
    // by key, so sort the encodings before writing.
    let mut enc: Vec<Vec<u8>> = rules.iter().map(encode_offload_rule).collect();
    enc.sort_unstable();
    let mut b = Vec::with_capacity(16 + enc.len() * 48);
    b.push(REC_OFFLOAD);
    put_u32(&mut b, enc.len() as u32);
    for e in enc {
        b.extend_from_slice(&e);
    }
    b
}

fn decode_offload_body(c: &mut Cursor<'_>) -> Result<Vec<OffloadRule>, CheckpointError> {
    let n = c.u32()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let key = decode_key(c)?;
        let action = match c.u8()? {
            0 => OffloadAction::Bypass,
            1 => OffloadAction::Drop,
            2 => OffloadAction::Mark(c.u8()?),
            3 => {
                let every = c.u32()?;
                if every == 0 {
                    return Err(corrupt("offload sample rate of zero"));
                }
                OffloadAction::Sample(every)
            }
            other => return Err(corrupt(format!("bad offload action {other}"))),
        };
        let priority = c.u8()?;
        out.push(OffloadRule::new(key, action, priority));
    }
    Ok(out)
}

fn encode_tenants_body(tenants: &[TenantImage]) -> Vec<u8> {
    // Ascending-id order regardless of input order: the byte output is
    // a pure function of the tenant table.
    let mut order: Vec<usize> = (0..tenants.len()).collect();
    order.sort_by_key(|&i| tenants[i].id);
    let mut b = Vec::with_capacity(32 + tenants.len() * 64);
    b.push(REC_TENANTS);
    put_u32(&mut b, tenants.len() as u32);
    for i in order {
        let t = &tenants[i];
        put_u64(&mut b, t.id);
        put_str(&mut b, &t.name);
        match &t.filter_src {
            Some(src) => {
                b.push(1);
                put_str(&mut b, src);
            }
            None => b.push(0),
        }
        put_opt_u64(&mut b, t.cutoff);
        b.push(t.priority);
        put_u32(&mut b, t.mem_share);
        put_u32(&mut b, t.disk_share);
        b.push(t.state);
        put_u64(&mut b, t.delivered_bytes);
        put_u64(&mut b, t.dropped_bytes);
        put_u64(&mut b, t.discarded_bytes);
    }
    b
}

fn decode_tenants_body(c: &mut Cursor<'_>) -> Result<Vec<TenantImage>, CheckpointError> {
    let n = c.u32()? as usize;
    let mut tenants = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let id = c.u64()?;
        let name = c.str()?;
        let filter_src = if c.bool()? {
            let src = c.str()?;
            // Validate at decode time: a tenant filter that no longer
            // compiles must fail the restore, not the next attach.
            Filter::new(&src).map_err(|e| corrupt(format!("bad tenant filter {src:?}: {e}")))?;
            Some(src)
        } else {
            None
        };
        let t = TenantImage {
            id,
            name,
            filter_src,
            cutoff: c.opt_u64()?,
            priority: c.u8()?,
            mem_share: c.u32()?,
            disk_share: c.u32()?,
            state: c.u8()?,
            delivered_bytes: c.u64()?,
            dropped_bytes: c.u64()?,
            discarded_bytes: c.u64()?,
        };
        if tenants.iter().any(|p: &TenantImage| p.id >= t.id) {
            return Err(corrupt("tenant table not in ascending-id order"));
        }
        tenants.push(t);
    }
    Ok(tenants)
}

/// Encode a full checkpoint file from its parts. `streams` are written
/// in ascending-uid order regardless of input order, so the byte output
/// is a pure function of the captured state.
pub fn encode_image(
    seq: u64,
    cfg: &ScapConfig,
    globals: &CheckpointGlobals,
    streams: &[StreamImage],
    fdir: &[FdirFilter],
    offload: &[OffloadRule],
    tenants: &[TenantImage],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&file_header(CKPT_MAGIC, seq));
    out.extend_from_slice(&frame_record(&encode_config_body(cfg)));
    out.extend_from_slice(&frame_record(&encode_globals_body(globals)));
    let mut order: Vec<usize> = (0..streams.len()).collect();
    order.sort_by_key(|&i| streams[i].uid);
    for i in order {
        out.extend_from_slice(&frame_record(&encode_stream_body(&streams[i])));
    }
    out.extend_from_slice(&frame_record(&encode_fdir_body(fdir)));
    if !offload.is_empty() {
        out.extend_from_slice(&frame_record(&encode_offload_body(offload)));
    }
    if !tenants.is_empty() {
        out.extend_from_slice(&frame_record(&encode_tenants_body(tenants)));
    }
    out.extend_from_slice(&frame_record(&[REC_END]));
    out
}

impl CheckpointImage {
    /// Re-encode this image to checkpoint-file bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_image(
            self.seq,
            &self.config,
            &self.globals,
            &self.streams,
            &self.fdir,
            &self.offload,
            &self.tenants,
        )
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounded byte cursor: every read is length-checked, so decoding
/// arbitrary or truncated input can fail but never panic.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cursor { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.b.len() {
            return Err(corrupt("record body too short"));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        Ok(self.u8()? != 0)
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.u32()? as usize;
        // An implausible length is corruption, not an allocation request.
        if n > self.b.len() {
            return Err(corrupt("length field exceeds record size"));
        }
        self.take(n)
    }

    fn str(&mut self) -> Result<String, CheckpointError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string field"))
    }

    fn done(&self) -> Result<(), CheckpointError> {
        if self.pos != self.b.len() {
            return Err(corrupt("trailing bytes in record body"));
        }
        Ok(())
    }
}

fn decode_filter_src(c: &mut Cursor<'_>) -> Result<Filter, CheckpointError> {
    let src = c.str()?;
    Filter::new(&src).map_err(|e| corrupt(format!("bad filter {src:?}: {e}")))
}

fn decode_key(c: &mut Cursor<'_>) -> Result<FlowKey, CheckpointError> {
    let family = c.u8()?;
    let src_raw = c.take(16)?;
    let dst_raw = c.take(16)?;
    let src_port = c.u16()?;
    let dst_port = c.u16()?;
    let transport = Transport::from(c.u8()?);
    match family {
        4 => Ok(FlowKey::new_v4(
            src_raw[..4].try_into().unwrap(),
            dst_raw[..4].try_into().unwrap(),
            src_port,
            dst_port,
            transport,
        )),
        6 => Ok(FlowKey::new_v6(
            src_raw.try_into().unwrap(),
            dst_raw.try_into().unwrap(),
            src_port,
            dst_port,
            transport,
        )),
        other => Err(corrupt(format!("bad address family {other}"))),
    }
}

fn decode_direction(v: u8) -> Result<Direction, CheckpointError> {
    match v {
        0 => Ok(Direction::Forward),
        1 => Ok(Direction::Reverse),
        other => Err(corrupt(format!("bad direction {other}"))),
    }
}

fn decode_config_body(c: &mut Cursor<'_>) -> Result<ScapConfig, CheckpointError> {
    let memory_bytes = c.u64()? as usize;
    let reassembly_mode = match c.u8()? {
        0 => ReassemblyMode::Strict,
        1 => ReassemblyMode::Fast,
        other => return Err(corrupt(format!("bad reassembly mode {other}"))),
    };
    let overlap_policy = match c.u8()? {
        0 => OverlapPolicy::First,
        1 => OverlapPolicy::Last,
        2 => OverlapPolicy::Bsd,
        3 => OverlapPolicy::Windows,
        4 => OverlapPolicy::Solaris,
        5 => OverlapPolicy::Linux,
        other => return Err(corrupt(format!("bad overlap policy {other}"))),
    };
    let need_pkts = c.bool()?;
    let filter = if c.bool()? {
        Some(decode_filter_src(c)?)
    } else {
        None
    };
    let default = c.opt_u64()?;
    let per_direction = [c.opt_u64()?, c.opt_u64()?];
    let nclasses = c.u32()?;
    let mut classes = Vec::new();
    for _ in 0..nclasses {
        let f = decode_filter_src(c)?;
        let v = c.u64()?;
        classes.push((f, v));
    }
    let nprio = c.u32()?;
    let mut prio_classes = Vec::new();
    for _ in 0..nprio {
        let f = decode_filter_src(c)?;
        let p = c.u8()?;
        prio_classes.push((f, p));
    }
    let worker_threads = c.u64()? as usize;
    let cores = c.u64()? as usize;
    let chunk_size = c.u64()? as usize;
    let overlap = c.u64()? as usize;
    let flush_timeout_ns = c.u64()?;
    let inactivity_timeout_ns = c.u64()?;
    let ppl = PplConfig {
        base_threshold: c.f64()?,
        num_priorities: c.u8()?,
        overload_cutoff: c.opt_u64()?,
    };
    let use_fdir = c.bool()?;
    let use_fdir_balancing = c.bool()?;
    let balance_threshold = c.f64()?;
    let rx_ring_slots = c.u64()? as usize;
    let event_queue_cap = c.u64()? as usize;
    let governor = GovernorConfig {
        enter: [c.f64()?, c.f64()?, c.f64()?],
        exit: c.f64()?,
        calm_ticks: c.u32()?,
        tick_ns: c.u64()?,
        cutoff_caps: [c.u64()?, c.u64()?],
        ppl_boost: c.f64()?,
        evict_batch: c.u64()? as usize,
    };
    let telemetry_sample_interval_ns = c.u64()?;
    let telemetry_series_cap = c.u64()? as usize;
    let flight_ring_cap = c.u64()? as usize;
    let dispatch = match c.u8()? {
        0 => crate::config::DispatchMode::Classic,
        1 => crate::config::DispatchMode::Fastpath,
        other => return Err(corrupt(format!("unknown dispatch mode {other}"))),
    };
    let fastpath_burst = c.u64()? as usize;
    let use_offload = c.bool()?;
    let offload_capacity = c.u64()? as usize;
    let watchdog_breaker_threshold = c.u32()?;
    let watchdog_breaker_window_ns = c.u64()?;
    let pulse_exemplar_permille = c.u32()?;
    let pulse_exemplar_cap = c.u64()? as usize;
    if cores == 0 || chunk_size == 0 || overlap >= chunk_size {
        return Err(corrupt("invalid capture geometry in config record"));
    }
    if use_offload && offload_capacity == 0 {
        return Err(corrupt("offload enabled with zero rule capacity"));
    }
    Ok(ScapConfig {
        memory_bytes,
        reassembly_mode,
        overlap_policy,
        need_pkts,
        filter,
        cutoff: CutoffPolicy {
            default,
            per_direction,
            classes,
        },
        priorities: PriorityPolicy {
            classes: prio_classes,
        },
        worker_threads,
        cores,
        chunk_size,
        overlap,
        flush_timeout_ns,
        inactivity_timeout_ns,
        ppl,
        use_fdir,
        use_fdir_balancing,
        balance_threshold,
        rx_ring_slots,
        event_queue_cap,
        governor,
        faults: None,
        telemetry_sample_interval_ns,
        telemetry_series_cap,
        flight_ring_cap,
        dispatch,
        fastpath_burst,
        use_offload,
        offload_capacity,
        watchdog_breaker_threshold,
        watchdog_breaker_window_ns,
        pulse_exemplar_permille,
        pulse_exemplar_cap,
    })
}

fn decode_globals_body(c: &mut Cursor<'_>) -> Result<CheckpointGlobals, CheckpointError> {
    Ok(CheckpointGlobals {
        ts_ns: c.u64()?,
        uid_counter: c.u64()?,
        governor_level: c.u8()?,
        restarts: c.u64()?,
    })
}

fn decode_dir_state(c: &mut Cursor<'_>) -> Result<DirState, CheckpointError> {
    let base_seq = if c.bool()? { Some(c.u32()?) } else { None };
    let expected = c.u64()?;
    let flags = c.u8()?;
    let delivered_bytes = c.u64()?;
    let duplicate_bytes = c.u64()?;
    let gap_bytes = c.u64()?;
    let nsegs = c.u32()?;
    let mut segments = Vec::new();
    for _ in 0..nsegs {
        let off = c.u64()?;
        let data = c.bytes()?.to_vec();
        segments.push((off, data));
    }
    Ok(DirState {
        base_seq,
        expected,
        flags,
        delivered_bytes,
        duplicate_bytes,
        gap_bytes,
        segments,
    })
}

fn decode_stream_body(c: &mut Cursor<'_>) -> Result<StreamImage, CheckpointError> {
    let core = c.u32()?;
    let uid = c.u64()?;
    let key = decode_key(c)?;
    let first_dir = decode_direction(c.u8()?)?;
    let first_ts_ns = c.u64()?;
    let last_ts_ns = c.u64()?;
    let status = match c.u8()? {
        0 => StreamStatus::Active,
        1 => StreamStatus::ClosedFin,
        2 => StreamStatus::ClosedRst,
        3 => StreamStatus::ClosedTimeout,
        other => return Err(corrupt(format!("bad stream status {other}"))),
    };
    let errors = c.u8()?;
    let priority = c.u8()?;
    let cutoff = [c.opt_u64()?, c.opt_u64()?];
    let cutoff_exceeded = c.bool()?;
    let discarded = c.bool()?;
    let mut dirs = [DirStats::default(); 2];
    for d in &mut dirs {
        d.total_pkts = c.u64()?;
        d.total_bytes = c.u64()?;
        d.captured_bytes = c.u64()?;
        d.captured_pkts = c.u64()?;
        d.discarded_pkts = c.u64()?;
        d.discarded_bytes = c.u64()?;
        d.dropped_pkts = c.u64()?;
        d.dropped_bytes = c.u64()?;
    }
    let chunk_size = c.u32()?;
    let overlap = c.u32()?;
    let reassembly_policy = if c.bool()? { Some(c.u8()?) } else { None };
    let processing_time_ns = c.u64()?;
    let chunks = c.u64()?;
    let resume_gap_bytes = c.u64()?;
    let kstate = if c.bool()? {
        let fdir_installed = c.bool()?;
        let fdir_timeout_ns = c.u64()?;
        let fdir_software_fallback = c.bool()?;
        let conn = if c.bool()? {
            let phase = match c.u8()? {
                0 => ConnPhase::Opening,
                1 => ConnPhase::Established,
                2 => ConnPhase::ClosedFin,
                3 => ConnPhase::ClosedRst,
                other => return Err(corrupt(format!("bad connection phase {other}"))),
            };
            let client_dir = if c.bool()? {
                Some(decode_direction(c.u8()?)?)
            } else {
                None
            };
            let fin_seen = [c.bool()?, c.bool()?];
            let dirs = [decode_dir_state(c)?, decode_dir_state(c)?];
            Some(ConnCheckpoint {
                phase,
                client_dir,
                fin_seen,
                dirs,
            })
        } else {
            None
        };
        let mut asm: [Option<AsmImage>; 2] = [None, None];
        for a in &mut asm {
            if c.bool()? {
                let committed = c.u64()?;
                let pending = c.bytes()?.to_vec();
                if (pending.len() as u64) > committed {
                    return Err(corrupt("pending bytes exceed committed offset"));
                }
                *a = Some(AsmImage { committed, pending });
            }
        }
        Some(KStateImage {
            fdir_installed,
            fdir_timeout_ns,
            fdir_software_fallback,
            conn,
            asm,
        })
    } else {
        None
    };
    Ok(StreamImage {
        core,
        uid,
        key,
        first_dir,
        first_ts_ns,
        last_ts_ns,
        status,
        errors,
        priority,
        cutoff,
        cutoff_exceeded,
        discarded,
        dirs,
        chunk_size,
        overlap,
        reassembly_policy,
        processing_time_ns,
        chunks,
        resume_gap_bytes,
        kstate,
    })
}

fn decode_fdir_body(c: &mut Cursor<'_>) -> Result<Vec<FdirFilter>, CheckpointError> {
    let n = c.u32()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let key = decode_key(c)?;
        let flex = if c.bool()? {
            Some(FlexMatch {
                offset: c.u16()?,
                value: c.u16()?,
            })
        } else {
            None
        };
        let action = match c.u8()? {
            0 => FdirAction::Drop,
            1 => FdirAction::ToQueue(c.u64()? as usize),
            other => return Err(corrupt(format!("bad FDIR action {other}"))),
        };
        out.push(FdirFilter { key, flex, action });
    }
    Ok(out)
}

impl CheckpointImage {
    /// Decode a checkpoint file. Requires the trailing end marker: a
    /// file with a torn tail (crash mid-write) is rejected rather than
    /// silently resumed from partial state — run [`repair_file`] first
    /// if the valid prefix is wanted anyway.
    pub fn decode(data: &[u8]) -> Result<Self, CheckpointError> {
        let scan = scan_records(data, CKPT_MAGIC)?;
        let mut config = None;
        let mut globals = None;
        let mut streams = Vec::new();
        let mut fdir = Vec::new();
        let mut offload = Vec::new();
        let mut tenants = Vec::new();
        let mut ended = false;
        for rec in &scan.records {
            if ended {
                return Err(corrupt("record after end marker"));
            }
            let body = &data[rec.body.clone()];
            let mut c = Cursor::new(body);
            match c.u8()? {
                REC_CONFIG => {
                    if config.is_some() {
                        return Err(corrupt("duplicate config record"));
                    }
                    config = Some(decode_config_body(&mut c)?);
                }
                REC_GLOBALS => {
                    if globals.is_some() {
                        return Err(corrupt("duplicate globals record"));
                    }
                    globals = Some(decode_globals_body(&mut c)?);
                }
                REC_STREAM => streams.push(decode_stream_body(&mut c)?),
                REC_FDIR => fdir.extend(decode_fdir_body(&mut c)?),
                REC_OFFLOAD => offload.extend(decode_offload_body(&mut c)?),
                REC_TENANTS => tenants = decode_tenants_body(&mut c)?,
                REC_END => ended = true,
                other => return Err(corrupt(format!("unknown record kind {other:#04x}"))),
            }
            c.done()?;
        }
        if !ended {
            return Err(corrupt("truncated checkpoint: no end marker"));
        }
        if scan.torn_bytes > 0 {
            return Err(corrupt(format!(
                "{} torn bytes after end marker",
                scan.torn_bytes
            )));
        }
        let config = config.ok_or_else(|| corrupt("missing config record"))?;
        let globals = globals.ok_or_else(|| corrupt("missing globals record"))?;
        let ncores = config.cores as u32;
        for s in &streams {
            if s.core >= ncores {
                return Err(corrupt(format!(
                    "stream {} on core {} but config has {} cores",
                    s.uid, s.core, ncores
                )));
            }
            if s.uid > globals.uid_counter {
                return Err(corrupt(format!(
                    "stream uid {} beyond uid counter {}",
                    s.uid, globals.uid_counter
                )));
            }
        }
        Ok(CheckpointImage {
            seq: scan.file_id,
            config,
            globals,
            streams,
            fdir,
            offload,
            tenants,
        })
    }
}

// ---------------------------------------------------------------------------
// File operations
// ---------------------------------------------------------------------------

/// Write checkpoint bytes crash-consistently: the bytes land in a
/// sibling temp file first and are renamed over `path`, so a crash
/// mid-checkpoint leaves the previous checkpoint untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and decode a checkpoint file.
pub fn read_image(path: &Path) -> Result<CheckpointImage, CheckpointError> {
    let data = std::fs::read(path)?;
    CheckpointImage::decode(&data)
}

/// The result of [`repair_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRepair {
    /// Length of the valid prefix the file was truncated to.
    pub valid_len: usize,
    /// Torn-tail bytes removed (0 when the file was already clean).
    pub torn_bytes_removed: usize,
}

/// Truncate a checkpoint file's torn tail, keeping the longest valid
/// record prefix. Idempotent: repairing a repaired file removes nothing.
pub fn repair_file(path: &Path) -> Result<CheckpointRepair, CheckpointError> {
    let data = std::fs::read(path)?;
    let scan = scan_records(&data, CKPT_MAGIC)?;
    if scan.torn_bytes > 0 {
        let keep = data[..scan.valid_len].to_vec();
        write_atomic(path, &keep)?;
    }
    Ok(CheckpointRepair {
        valid_len: scan.valid_len,
        torn_bytes_removed: scan.torn_bytes,
    })
}

// ---------------------------------------------------------------------------
// Recovery cost model
// ---------------------------------------------------------------------------

/// Deterministic recovery-latency estimate, in virtual cycles, for
/// restoring from `img`: a fixed base plus per-stream, per-buffered-byte
/// and per-filter costs. A cost model (rather than wall time) keeps
/// restart statistics identical across same-seed runs.
pub fn recovery_cycles(img: &CheckpointImage) -> u64 {
    const BASE: u64 = 10_000;
    const PER_STREAM: u64 = 500;
    const PER_LIVE_STREAM: u64 = 1_500;
    const PER_FDIR_FILTER: u64 = 250;
    // One offload rule re-programs one table entry; cheaper than an
    // FDIR filter quadruple but not free at million-rule scale.
    const PER_OFFLOAD_RULE: u64 = 60;
    let mut cycles = BASE + img.streams.len() as u64 * PER_STREAM;
    cycles += img.fdir.len() as u64 * PER_FDIR_FILTER;
    cycles += img.offload.len() as u64 * PER_OFFLOAD_RULE;
    for s in &img.streams {
        let Some(ks) = &s.kstate else { continue };
        cycles += PER_LIVE_STREAM;
        let mut bytes = 0u64;
        if let Some(conn) = &ks.conn {
            for d in &conn.dirs {
                bytes += d.segments.iter().map(|(_, b)| b.len() as u64).sum::<u64>();
            }
        }
        for a in ks.asm.iter().flatten() {
            bytes += a.pending.len() as u64;
        }
        // Copying restored bytes back into place: 4 bytes per cycle.
        cycles += bytes / 4;
    }
    cycles
}

// ---------------------------------------------------------------------------
// Hot-reconfiguration helpers
// ---------------------------------------------------------------------------

impl ConfigDelta {
    /// Apply this delta to a configuration (shared by the kernel's
    /// hot-reload path and the builder's pre-start path). Returns true
    /// when the default cutoff was *widened*, which obliges the caller
    /// to re-open live streams whose old narrower cutoff had tripped.
    pub fn apply_to(self, cfg: &mut ScapConfig) -> bool {
        let mut widened = false;
        if let Some(new_default) = self.cutoff_default {
            // `None` means unlimited, so it widens any finite cutoff.
            widened = match (cfg.cutoff.default, new_default) {
                (Some(old), Some(new)) => new > old,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if widened {
                cfg.cutoff.generalize_to(new_default);
            } else {
                cfg.cutoff.default = new_default;
            }
        }
        if let Some(classes) = self.cutoff_classes {
            cfg.cutoff.classes = classes;
        }
        if let Some(p) = self.priorities {
            cfg.priorities = p;
        }
        if let Some(f) = self.filter {
            cfg.filter = f;
        }
        widened
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_flow::StreamErrors;

    fn key(port: u16) -> FlowKey {
        FlowKey::new_v4([10, 0, 0, 1], [10, 0, 0, 2], 40_000, port, Transport::Tcp)
    }

    fn sample_stream(uid: u64) -> StreamImage {
        let mut dirs = [DirStats::default(); 2];
        dirs[0].total_pkts = 9;
        dirs[0].captured_bytes = 4_000;
        dirs[1].dropped_bytes = 12;
        StreamImage {
            core: 1,
            uid,
            key: key(80),
            first_dir: Direction::Reverse,
            first_ts_ns: 5,
            last_ts_ns: 99,
            status: StreamStatus::Active,
            errors: StreamErrors::SEQUENCE_GAP.0,
            priority: 2,
            cutoff: [Some(1_000_000), None],
            cutoff_exceeded: false,
            discarded: false,
            dirs,
            chunk_size: 0,
            overlap: 0,
            reassembly_policy: Some(2),
            processing_time_ns: 77,
            chunks: 3,
            resume_gap_bytes: 0,
            kstate: Some(KStateImage {
                fdir_installed: true,
                fdir_timeout_ns: 2_000_000_000,
                fdir_software_fallback: false,
                conn: Some(ConnCheckpoint {
                    phase: ConnPhase::Established,
                    client_dir: Some(Direction::Forward),
                    fin_seen: [true, false],
                    dirs: [
                        DirState {
                            base_seq: Some(1_000),
                            expected: 4_000,
                            flags: 0x02,
                            delivered_bytes: 4_000,
                            duplicate_bytes: 3,
                            gap_bytes: 7,
                            segments: vec![(4_100, vec![0xAA; 32])],
                        },
                        DirState::default(),
                    ],
                }),
                asm: [
                    Some(AsmImage {
                        committed: 4_000,
                        pending: vec![0x55; 100],
                    }),
                    None,
                ],
            }),
        }
    }

    fn sample_image_bytes() -> Vec<u8> {
        let mut cfg = ScapConfig {
            filter: Some(Filter::new("tcp").unwrap()),
            ..ScapConfig::default()
        };
        cfg.cutoff.default = Some(1 << 20);
        cfg.cutoff.classes = vec![(Filter::new("port 80").unwrap(), 4096)];
        cfg.priorities.classes = vec![(Filter::new("port 443").unwrap(), 1)];
        let globals = CheckpointGlobals {
            ts_ns: 1_234_567,
            uid_counter: 3,
            governor_level: 2,
            restarts: 1,
        };
        let streams = vec![sample_stream(2), {
            // A TIME_WAIT tombstone: record only, no kernel state.
            let mut t = sample_stream(1);
            t.status = StreamStatus::ClosedFin;
            t.kstate = None;
            t
        }];
        let fdir = vec![
            FdirFilter::drop_tcp_flags(key(80), scap_wire::TcpFlags::ACK),
            FdirFilter::steer(key(443), 3),
        ];
        encode_image(7, &cfg, &globals, &streams, &fdir, &[], &[])
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn image_round_trips() {
        let bytes = sample_image_bytes();
        let img = CheckpointImage::decode(&bytes).unwrap();
        assert_eq!(img.seq, 7);
        assert_eq!(img.globals.uid_counter, 3);
        assert_eq!(img.globals.governor_level, 2);
        assert_eq!(img.streams.len(), 2);
        // Streams come back in ascending uid order.
        assert_eq!(img.streams[0].uid, 1);
        assert!(img.streams[0].kstate.is_none());
        assert_eq!(img.streams[1].uid, 2);
        let ks = img.streams[1].kstate.as_ref().unwrap();
        assert!(ks.fdir_installed);
        let conn = ks.conn.as_ref().unwrap();
        assert_eq!(conn.phase, ConnPhase::Established);
        assert_eq!(conn.dirs[0].expected, 4_000);
        assert_eq!(conn.dirs[0].segments.len(), 1);
        assert_eq!(ks.asm[0].as_ref().unwrap().pending.len(), 100);
        assert_eq!(img.fdir.len(), 2);
        assert_eq!(img.config.cutoff.default, Some(1 << 20));
        assert_eq!(img.config.cutoff.classes.len(), 1);
        assert_eq!(img.config.filter.as_ref().unwrap().source(), "tcp");
        // Re-encoding the decoded image is byte-identical.
        assert_eq!(img.to_bytes(), bytes);
    }

    #[test]
    fn truncated_checkpoint_is_rejected_not_panicked() {
        let bytes = sample_image_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CheckpointImage::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn bit_flips_never_decode_silently() {
        let bytes = sample_image_bytes();
        // Flip one byte in each record body region; the CRC must catch
        // it (header flips fail on magic/version instead).
        let mut step = 37;
        let mut i = FILE_HEADER_LEN + REC_HEADER_LEN;
        while i < bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(CheckpointImage::decode(&bad).is_err(), "flip at {i}");
            i += step;
            step = step * 2 % 101 + 1;
        }
    }

    #[test]
    fn repair_truncates_torn_tail_idempotently() {
        let dir = std::env::temp_dir().join(format!("scap-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.scapckpt");
        let mut bytes = sample_image_bytes();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_image(&path).is_err());

        let r1 = repair_file(&path).unwrap();
        assert_eq!(r1.torn_bytes_removed, 4);
        assert_eq!(r1.valid_len, clean_len);
        let r2 = repair_file(&path).unwrap();
        assert_eq!(r2.torn_bytes_removed, 0, "second repair must be a no-op");
        assert!(read_image(&path).is_ok());
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn fdir_order_is_canonicalized() {
        let cfg = ScapConfig::default();
        let globals = CheckpointGlobals::default();
        let a = FdirFilter::drop_tcp_flags(key(80), scap_wire::TcpFlags::ACK);
        let b = FdirFilter::steer(key(443), 1);
        let x = encode_image(0, &cfg, &globals, &[], &[a, b], &[], &[]);
        let y = encode_image(0, &cfg, &globals, &[], &[b, a], &[], &[]);
        assert_eq!(x, y);
    }

    #[test]
    fn offload_rules_round_trip_in_canonical_order() {
        use scap_nic::OffloadAction;
        let cfg = ScapConfig::default();
        let globals = CheckpointGlobals::default();
        let rules = vec![
            OffloadRule::new(key(443), OffloadAction::Sample(128), 1),
            OffloadRule::new(key(80), OffloadAction::Drop, 0),
            OffloadRule::new(key(53), OffloadAction::Mark(3), 2),
            OffloadRule::new(key(22), OffloadAction::Bypass, 3),
        ];
        let mut rev = rules.clone();
        rev.reverse();
        let x = encode_image(0, &cfg, &globals, &[], &[], &rules, &[]);
        let y = encode_image(0, &cfg, &globals, &[], &[], &rev, &[]);
        assert_eq!(x, y, "rule order must not change the bytes");
        let img = CheckpointImage::decode(&x).unwrap();
        assert_eq!(img.offload.len(), 4);
        for r in &rules {
            assert!(img.offload.contains(r), "{r:?} must survive the trip");
        }
        assert_eq!(img.to_bytes(), x);

        // An offload-free image writes no offload record at all, so
        // captures without the stage stay byte-identical.
        let plain = encode_image(0, &cfg, &globals, &[], &[], &[], &[]);
        let img = CheckpointImage::decode(&plain).unwrap();
        assert!(img.offload.is_empty());

        // A zero sample rate is corruption, not a divide-by-zero later:
        // frame a hand-built offload record with rate 0 and a valid CRC.
        let mut body = vec![REC_OFFLOAD];
        put_u32(&mut body, 1);
        put_key(&mut body, &key(80));
        body.push(3); // Sample
        put_u32(&mut body, 0); // rate 0: invalid
        body.push(0); // priority
        let mut bad = Vec::new();
        bad.extend_from_slice(&file_header(CKPT_MAGIC, 0));
        bad.extend_from_slice(&frame_record(&encode_config_body(&cfg)));
        bad.extend_from_slice(&frame_record(&encode_globals_body(&globals)));
        bad.extend_from_slice(&frame_record(&encode_fdir_body(&[])));
        bad.extend_from_slice(&frame_record(&body));
        bad.extend_from_slice(&frame_record(&[REC_END]));
        let err = CheckpointImage::decode(&bad).unwrap_err();
        assert!(
            err.to_string().contains("sample rate"),
            "wrong error: {err}"
        );
    }

    #[test]
    fn recovery_cycles_scale_with_state() {
        let empty = CheckpointImage::decode(&encode_image(
            0,
            &ScapConfig::default(),
            &CheckpointGlobals::default(),
            &[],
            &[],
            &[],
            &[],
        ))
        .unwrap();
        let full = CheckpointImage::decode(&sample_image_bytes()).unwrap();
        assert!(recovery_cycles(&full) > recovery_cycles(&empty));
    }

    #[test]
    fn tenant_table_round_trips_in_canonical_order() {
        let tenants = vec![
            TenantImage {
                id: 2,
                name: "ids".into(),
                filter_src: Some("tcp".into()),
                cutoff: Some(4096),
                priority: 2,
                mem_share: 600,
                disk_share: 500,
                state: 1,
                delivered_bytes: 10,
                dropped_bytes: 2,
                discarded_bytes: 1,
            },
            TenantImage {
                id: 1,
                name: "dns".into(),
                ..Default::default()
            },
        ];
        let bytes = encode_image(
            3,
            &ScapConfig::default(),
            &CheckpointGlobals::default(),
            &[],
            &[],
            &[],
            &tenants,
        );
        let img = CheckpointImage::decode(&bytes).unwrap();
        // Ascending-id canonical order regardless of input order.
        assert_eq!(img.tenants.len(), 2);
        assert_eq!(img.tenants[0].id, 1);
        assert_eq!(img.tenants[0].name, "dns");
        assert_eq!(img.tenants[1].name, "ids");
        assert_eq!(img.tenants[1].filter_src.as_deref(), Some("tcp"));
        assert_eq!(img.tenants[1].cutoff, Some(4096));
        assert_eq!(img.tenants[1].delivered_bytes, 10);
        assert_eq!(img.to_bytes(), bytes);

        // A pre-tenant image decodes with an empty table (the record is
        // only written when non-empty, so old checkpoints are unchanged).
        let old = CheckpointImage::decode(&sample_image_bytes()).unwrap();
        assert!(old.tenants.is_empty());

        // A tenant whose stored filter no longer compiles is corruption,
        // not a silent pass-through.
        let bad = vec![TenantImage {
            id: 1,
            filter_src: Some("((".into()),
            ..Default::default()
        }];
        let bytes = encode_image(
            0,
            &ScapConfig::default(),
            &CheckpointGlobals::default(),
            &[],
            &[],
            &[],
            &bad,
        );
        assert!(CheckpointImage::decode(&bytes).is_err());
    }

    #[test]
    fn config_delta_widening_detection() {
        let mut cfg = ScapConfig::default();
        cfg.cutoff.default = Some(1_000);
        cfg.cutoff.classes = vec![(Filter::new("port 80").unwrap(), 10)];
        let widened = ConfigDelta {
            cutoff_default: Some(Some(2_000)),
            ..Default::default()
        }
        .apply_to(&mut cfg);
        assert!(widened);
        assert_eq!(cfg.cutoff.default, Some(2_000));
        assert!(cfg.cutoff.classes.is_empty(), "stale classes cleared");

        // Narrowing keeps overrides and reports false.
        let mut cfg = ScapConfig::default();
        cfg.cutoff.default = Some(1_000);
        let widened = ConfigDelta {
            cutoff_default: Some(Some(10)),
            ..Default::default()
        }
        .apply_to(&mut cfg);
        assert!(!widened);
        assert_eq!(cfg.cutoff.default, Some(10));
    }
}
