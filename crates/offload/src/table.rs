//! The fixed-capacity open-addressed rule table.
//!
//! Same index layout as the kernel flow table — one ctrl tag byte per
//! position (EMPTY / TOMBSTONE / 0x80|top7(hash)), probed in aligned
//! groups of [`GROUP`], with a parallel array of cached 64-bit hashes —
//! but sized once at construction and never rehashed: hardware flow
//! tables have a fixed number of entries. Deleting rules leaves
//! tombstones; when tombstones would start lengthening probe chains
//! noticeably (a quarter of the index), the table compacts in place,
//! which stands in for the background re-programming real firmware does.

use crate::{OffloadAction, OffloadError, OffloadRule, OffloadVerdict};
use scap_wire::{FlowKey, ParsedPacket, TcpFlags};

/// Tags scanned per probe step (one ctrl group, matching the flow
/// table's cache-line discipline).
pub const GROUP: usize = 16;

const CTRL_EMPTY: u8 = 0x00;
const CTRL_TOMB: u8 = 0x01;

#[inline]
fn tag(h: u64) -> u8 {
    0x80 | ((h >> 57) as u8)
}

/// Aggregate offload accounting. Per-rule hit/byte counters fold into
/// `evicted_hits`/`evicted_bytes` when a rule is evicted or removed, so
/// `hits`/`hit_bytes` (which include them) never go backwards and no
/// frame ever falls out of the accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffloadStats {
    /// Frames matched by any rule (all actions, kept or dropped).
    pub hits: u64,
    /// Bytes matched by any rule.
    pub hit_bytes: u64,
    /// Frames dropped by `Drop` rules (subzero copy).
    pub drop_frames: u64,
    /// Bytes dropped by `Drop` rules.
    pub drop_bytes: u64,
    /// Frames shunted by `Bypass` rules (counted delivered at the NIC).
    pub bypass_frames: u64,
    /// Bytes shunted by `Bypass` rules.
    pub bypass_bytes: u64,
    /// Frames passed through tagged by `Mark` rules.
    pub mark_frames: u64,
    /// Frames kept (1-in-N) by `Sample` rules.
    pub sample_kept_frames: u64,
    /// Frames dropped by `Sample` rules.
    pub sample_drop_frames: u64,
    /// Bytes dropped by `Sample` rules.
    pub sample_drop_bytes: u64,
    /// TCP control packets (SYN/FIN/RST) punted to the host by
    /// drop-class rules.
    pub control_passthrough: u64,
    /// Rules evicted under table pressure.
    pub evictions: u64,
    /// Hits folded in from evicted/removed rules (already included in
    /// `hits`; kept separately so reconciliation can see the fold).
    pub evicted_hits: u64,
    /// Bytes folded in from evicted/removed rules.
    pub evicted_bytes: u64,
    /// Rule add/remove operations (cost-model input, like FDIR's ~10 µs).
    pub ops: u64,
    /// Installs rejected with [`OffloadError::Busy`] (injected faults).
    pub transient_failures: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: FlowKey,
    action: OffloadAction,
    priority: u8,
    hits: u64,
    bytes: u64,
    /// Per-flow packet sequence for deterministic 1-in-N sampling.
    sample_seq: u32,
}

/// The programmable flow-offload table.
#[derive(Debug)]
pub struct OffloadTable {
    ctrl: Vec<u8>,
    hashes: Vec<u64>,
    slots: Vec<Option<Entry>>,
    mask: usize,
    /// Installed rules.
    len: usize,
    tombs: usize,
    /// Hard rule limit (the hardware table size).
    capacity: usize,
    seed: u64,
    /// Clock hand for tiered eviction, in index positions.
    clock: usize,
    stats: OffloadStats,
    faults: Option<scap_faults::FdirInjector>,
}

impl OffloadTable {
    /// A table holding at most `capacity` rules; `seed` randomizes the
    /// hash (the same symmetric hash both directions share).
    pub fn new(capacity: usize, seed: u64) -> Self {
        let capacity = capacity.max(1);
        // Index sized so `capacity` rules stay under a 7/8 load factor.
        let want = (capacity * 8 / 7 + GROUP)
            .max(2 * GROUP)
            .next_power_of_two();
        OffloadTable {
            ctrl: vec![CTRL_EMPTY; want],
            hashes: vec![0; want],
            slots: vec![None; want],
            mask: want - 1,
            len: 0,
            tombs: 0,
            capacity,
            seed,
            clock: 0,
            stats: OffloadStats::default(),
            faults: None,
        }
    }

    /// Attach a fault injector; subsequent `add` calls may transiently
    /// fail with [`OffloadError::Busy`].
    pub fn set_fault_injector(&mut self, inj: scap_faults::FdirInjector) {
        self.faults = Some(inj);
    }

    /// Installed rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining rule capacity.
    pub fn free(&self) -> usize {
        self.capacity - self.len
    }

    /// The hard rule limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rule occupancy in permille of the hardware capacity.
    pub fn load_permille(&self) -> u64 {
        (self.len as u64 * 1000) / self.capacity as u64
    }

    /// Aggregate accounting.
    pub fn stats(&self) -> OffloadStats {
        self.stats
    }

    fn ngroups(&self) -> usize {
        (self.mask + 1) / GROUP
    }

    #[inline]
    fn home_group(&self, h: u64) -> usize {
        (h as usize & self.mask) / GROUP
    }

    fn hash(&self, canon: &FlowKey) -> u64 {
        canon.sym_hash(self.seed)
    }

    /// Position of the rule for `canon`, if installed.
    fn find(&self, h: u64, canon: &FlowKey) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let t = tag(h);
        let ngroups = self.ngroups();
        let mut g = self.home_group(h);
        for _ in 0..ngroups {
            let base = g * GROUP;
            let mut saw_empty = false;
            for pos in base..base + GROUP {
                let c = self.ctrl[pos];
                if c == CTRL_EMPTY {
                    saw_empty = true;
                } else if c == t && self.hashes[pos] == h {
                    if let Some(e) = self.slots[pos].as_ref() {
                        if e.key == *canon {
                            return Some(pos);
                        }
                    }
                }
            }
            if saw_empty {
                return None;
            }
            g = (g + 1) & (ngroups - 1);
        }
        None
    }

    fn insert_pos(&self, h: u64) -> usize {
        let ngroups = self.ngroups();
        let mut g = self.home_group(h);
        let mut first_tomb: Option<usize> = None;
        for _ in 0..ngroups {
            let base = g * GROUP;
            for pos in base..base + GROUP {
                match self.ctrl[pos] {
                    CTRL_EMPTY => return first_tomb.unwrap_or(pos),
                    CTRL_TOMB => first_tomb = first_tomb.or(Some(pos)),
                    _ => {}
                }
            }
            g = (g + 1) & (ngroups - 1);
        }
        first_tomb.expect("index sized above rule capacity")
    }

    fn erase(&mut self, pos: usize) -> Entry {
        let e = self.slots[pos].take().expect("erase of live position");
        self.ctrl[pos] = CTRL_TOMB;
        self.len -= 1;
        self.tombs += 1;
        self.fold_counters(&e);
        self.maybe_compact();
        e
    }

    /// Fold a departing rule's counters into the aggregates so no hit
    /// is lost when the rule goes away.
    fn fold_counters(&mut self, e: &Entry) {
        self.stats.evicted_hits += e.hits;
        self.stats.evicted_bytes += e.bytes;
    }

    /// Compact in place once tombstones cover a quarter of the index
    /// (fixed tables cannot rehash away probe-chain rot; firmware
    /// re-programs instead).
    fn maybe_compact(&mut self) {
        if self.tombs * 4 < self.ctrl.len() {
            return;
        }
        let cap = self.ctrl.len();
        let mut live: Vec<(u64, Entry)> = Vec::with_capacity(self.len);
        for pos in 0..cap {
            if self.ctrl[pos] & 0x80 != 0 {
                live.push((self.hashes[pos], self.slots[pos].take().expect("full slot")));
            }
        }
        self.ctrl.iter_mut().for_each(|c| *c = CTRL_EMPTY);
        self.tombs = 0;
        self.len = 0;
        for (h, e) in live {
            let pos = self.insert_pos(h);
            self.ctrl[pos] = tag(h);
            self.hashes[pos] = h;
            self.slots[pos] = Some(e);
            self.len += 1;
        }
    }

    /// Install a rule. The key is canonicalized, so one rule covers
    /// both directions of the flow.
    pub fn add(&mut self, rule: OffloadRule) -> Result<(), OffloadError> {
        if let Some(inj) = self.faults.as_mut() {
            match inj.on_install() {
                scap_faults::FdirInstallFault::TransientFail => {
                    self.stats.transient_failures += 1;
                    return Err(OffloadError::Busy);
                }
                scap_faults::FdirInstallFault::Latency(_) | scap_faults::FdirInstallFault::None => {
                }
            }
        }
        let canon = rule.key.canonical().0;
        let h = self.hash(&canon);
        if self.find(h, &canon).is_some() {
            return Err(OffloadError::Duplicate);
        }
        if self.len >= self.capacity {
            return Err(OffloadError::TableFull);
        }
        let pos = self.insert_pos(h);
        if self.ctrl[pos] == CTRL_TOMB {
            self.tombs -= 1;
        }
        self.ctrl[pos] = tag(h);
        self.hashes[pos] = h;
        self.slots[pos] = Some(Entry {
            key: canon,
            action: rule.action,
            priority: rule.priority,
            hits: 0,
            bytes: 0,
            sample_seq: 0,
        });
        self.len += 1;
        self.stats.ops += 1;
        Ok(())
    }

    /// Remove the rule for a flow (either direction of the key works).
    pub fn remove(&mut self, key: &FlowKey) -> Result<OffloadRule, OffloadError> {
        let canon = key.canonical().0;
        let h = self.hash(&canon);
        let Some(pos) = self.find(h, &canon) else {
            return Err(OffloadError::NotFound);
        };
        let e = self.erase(pos);
        self.stats.ops += 1;
        Ok(OffloadRule {
            key: e.key,
            action: e.action,
            priority: e.priority,
        })
    }

    /// The installed action for a flow, if any (no counters touched).
    pub fn action_for(&self, key: &FlowKey) -> Option<OffloadAction> {
        let canon = key.canonical().0;
        let h = self.hash(&canon);
        self.find(h, &canon)
            .map(|pos| self.slots[pos].as_ref().expect("found slot").action)
    }

    /// The mark tag for a flow, if a `Mark` rule is installed — the
    /// kernel consults this at stream creation.
    pub fn mark_for(&self, key: &FlowKey) -> Option<u8> {
        match self.action_for(key) {
            Some(OffloadAction::Mark(t)) => Some(t),
            _ => None,
        }
    }

    /// Snapshot every installed rule (checkpointing; order unspecified,
    /// the codec sorts by encoding for determinism).
    pub fn rules(&self) -> Vec<OffloadRule> {
        self.slots
            .iter()
            .flatten()
            .map(|e| OffloadRule {
                key: e.key,
                action: e.action,
                priority: e.priority,
            })
            .collect()
    }

    /// Tiered clock eviction: scan up to `max_scan` installed rules
    /// from the clock hand and evict the lowest-priority one (fewest
    /// hits breaks ties, so cold rules go before hot ones). Returns the
    /// evicted rule. Counters fold into the aggregates first.
    pub fn evict_tiered(&mut self, max_scan: usize) -> Option<OffloadRule> {
        if self.len == 0 {
            return None;
        }
        let cap = self.ctrl.len();
        let mut best: Option<(u8, u64, usize)> = None;
        let mut scanned = 0usize;
        let mut pos = self.clock & self.mask;
        for _ in 0..cap {
            if self.ctrl[pos] & 0x80 != 0 {
                let e = self.slots[pos].as_ref().expect("full slot");
                let cand = (e.priority, e.hits, pos);
                let better = match best {
                    None => true,
                    Some((p, hits, _)) => (e.priority, e.hits) < (p, hits),
                };
                if better {
                    best = Some(cand);
                }
                scanned += 1;
                if scanned >= max_scan.max(1) {
                    break;
                }
            }
            pos = (pos + 1) & self.mask;
        }
        self.clock = (pos + 1) & self.mask;
        let (_, _, victim) = best?;
        let e = self.erase(victim);
        self.stats.evictions += 1;
        self.stats.ops += 1;
        Some(OffloadRule {
            key: e.key,
            action: e.action,
            priority: e.priority,
        })
    }

    /// Hardware lookup for one frame. Returns `None` when no rule
    /// matches (the frame continues to FDIR/RSS) — including TCP
    /// control packets punted past drop-class rules.
    pub fn lookup(&mut self, parsed: &ParsedPacket<'_>) -> Option<OffloadVerdict> {
        if self.len == 0 {
            return None;
        }
        let key = parsed.key.as_ref()?;
        let canon = key.canonical().0;
        let h = self.hash(&canon);
        let pos = self.find(h, &canon)?;
        let len = parsed.frame.len() as u64;

        // Drop-class rules punt SYN/FIN/RST to the host so the kernel
        // still sees connection setup and teardown (§5.5).
        if let Some(tcp) = parsed.tcp.as_ref() {
            let ctl = TcpFlags(TcpFlags::SYN.0 | TcpFlags::FIN.0 | TcpFlags::RST.0);
            let is_control = tcp.flags.0 & ctl.0 != 0;
            let action = self.slots[pos].as_ref().expect("found slot").action;
            if is_control && action.can_drop() {
                self.stats.control_passthrough += 1;
                return None;
            }
        }

        let e = self.slots[pos].as_mut().expect("found slot");
        e.hits += 1;
        e.bytes += len;
        self.stats.hits += 1;
        self.stats.hit_bytes += len;
        match e.action {
            OffloadAction::Bypass => {
                self.stats.bypass_frames += 1;
                self.stats.bypass_bytes += len;
                Some(OffloadVerdict::Bypass)
            }
            OffloadAction::Drop => {
                self.stats.drop_frames += 1;
                self.stats.drop_bytes += len;
                Some(OffloadVerdict::Drop)
            }
            OffloadAction::Mark(t) => {
                self.stats.mark_frames += 1;
                Some(OffloadVerdict::Mark(t))
            }
            OffloadAction::Sample(n) => {
                let n = n.max(1);
                let keep = e.sample_seq.is_multiple_of(n);
                e.sample_seq = e.sample_seq.wrapping_add(1);
                if keep {
                    self.stats.sample_kept_frames += 1;
                    Some(OffloadVerdict::SampleKeep)
                } else {
                    self.stats.sample_drop_frames += 1;
                    self.stats.sample_drop_bytes += len;
                    Some(OffloadVerdict::SampleDrop)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scap_wire::{parse_frame, PacketBuilder, Transport};

    fn key(i: u32) -> FlowKey {
        FlowKey::new_v4(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            [192, 168, 0, 1],
            1024 + (i % 60000) as u16,
            443,
            Transport::Tcp,
        )
    }

    fn frame(i: u32, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
        let k = key(i);
        PacketBuilder::tcp_v4(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            [192, 168, 0, 1],
            k.src_port(),
            k.dst_port(),
            100,
            200,
            flags,
            payload,
        )
    }

    #[test]
    fn add_lookup_remove_cycle() {
        let mut t = OffloadTable::new(16, 7);
        t.add(OffloadRule::new(key(1), OffloadAction::Drop, 0))
            .unwrap();
        assert_eq!(
            t.add(OffloadRule::new(key(1), OffloadAction::Bypass, 0)),
            Err(OffloadError::Duplicate)
        );
        let f = frame(1, TcpFlags::ACK, b"data");
        let p = parse_frame(&f).unwrap();
        assert_eq!(t.lookup(&p), Some(OffloadVerdict::Drop));
        assert_eq!(t.stats().drop_frames, 1);
        let removed = t.remove(&key(1)).unwrap();
        assert_eq!(removed.action, OffloadAction::Drop);
        assert!(t.is_empty());
        assert_eq!(t.remove(&key(1)), Err(OffloadError::NotFound));
        // Removed rule's counters folded into the aggregates.
        assert_eq!(t.stats().evicted_hits, 1);
        assert_eq!(t.stats().evicted_bytes, f.len() as u64);
    }

    #[test]
    fn one_rule_matches_both_directions() {
        let mut t = OffloadTable::new(16, 7);
        t.add(OffloadRule::new(key(1), OffloadAction::Drop, 0))
            .unwrap();
        let k = key(1);
        let rev = PacketBuilder::tcp_v4(
            [192, 168, 0, 1],
            [10, 0, 0, 1],
            k.dst_port(),
            k.src_port(),
            5,
            6,
            TcpFlags::ACK,
            b"resp",
        );
        assert_eq!(
            t.lookup(&parse_frame(&rev).unwrap()),
            Some(OffloadVerdict::Drop)
        );
        assert_eq!(t.action_for(&k.reversed()), Some(OffloadAction::Drop));
    }

    #[test]
    fn control_packets_punted_past_drop_rules() {
        let mut t = OffloadTable::new(16, 7);
        t.add(OffloadRule::new(key(1), OffloadAction::Drop, 0))
            .unwrap();
        for flags in [TcpFlags::SYN, TcpFlags::FIN | TcpFlags::ACK, TcpFlags::RST] {
            let f = frame(1, flags, b"");
            assert_eq!(t.lookup(&parse_frame(&f).unwrap()), None, "{flags:?}");
        }
        assert_eq!(t.stats().control_passthrough, 3);
        // Mark rules do tag control packets (marking is not a loss).
        t.remove(&key(1)).unwrap();
        t.add(OffloadRule::new(key(1), OffloadAction::Mark(3), 0))
            .unwrap();
        let syn = frame(1, TcpFlags::SYN, b"");
        assert_eq!(
            t.lookup(&parse_frame(&syn).unwrap()),
            Some(OffloadVerdict::Mark(3))
        );
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let mut t = OffloadTable::new(16, 7);
        t.add(OffloadRule::new(key(2), OffloadAction::Sample(4), 0))
            .unwrap();
        let f = frame(2, TcpFlags::ACK, b"x");
        let p = parse_frame(&f).unwrap();
        let verdicts: Vec<_> = (0..8).map(|_| t.lookup(&p).unwrap()).collect();
        assert_eq!(verdicts[0], OffloadVerdict::SampleKeep);
        assert_eq!(verdicts[4], OffloadVerdict::SampleKeep);
        assert_eq!(
            verdicts
                .iter()
                .filter(|v| **v == OffloadVerdict::SampleKeep)
                .count(),
            2
        );
        assert_eq!(t.stats().sample_kept_frames, 2);
        assert_eq!(t.stats().sample_drop_frames, 6);
    }

    #[test]
    fn capacity_enforced_and_eviction_frees_space() {
        let mut t = OffloadTable::new(3, 7);
        for i in 0..3 {
            t.add(OffloadRule::new(key(i), OffloadAction::Drop, (i % 3) as u8))
                .unwrap();
        }
        assert_eq!(
            t.add(OffloadRule::new(key(9), OffloadAction::Drop, 0)),
            Err(OffloadError::TableFull)
        );
        // Tiered eviction removes the lowest-priority rule.
        let evicted = t.evict_tiered(8).unwrap();
        assert_eq!(evicted.priority, 0);
        assert_eq!(t.stats().evictions, 1);
        t.add(OffloadRule::new(key(9), OffloadAction::Drop, 2))
            .unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn eviction_accounting_never_loses_hits() {
        let mut t = OffloadTable::new(4, 7);
        t.add(OffloadRule::new(key(1), OffloadAction::Drop, 0))
            .unwrap();
        let f = frame(1, TcpFlags::ACK, b"abcdef");
        let p = parse_frame(&f).unwrap();
        for _ in 0..5 {
            t.lookup(&p);
        }
        let before = t.stats();
        assert_eq!(before.hits, 5);
        t.evict_tiered(4).unwrap();
        let after = t.stats();
        assert_eq!(after.hits, 5, "aggregate hits survive eviction");
        assert_eq!(after.evicted_hits, 5);
        assert_eq!(after.evicted_bytes, 5 * f.len() as u64);
    }

    #[test]
    fn million_scale_table_stays_exact_under_churn() {
        let mut t = OffloadTable::new(1 << 16, 0xBEEF);
        for i in 0..50_000u32 {
            t.add(OffloadRule::new(key(i), OffloadAction::Drop, (i % 4) as u8))
                .unwrap();
            if i % 3 == 0 {
                t.remove(&key(i / 2)).ok();
            }
        }
        // Every surviving rule still resolves.
        let mut found = 0;
        for i in 0..50_000u32 {
            if t.action_for(&key(i)).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, t.len());
    }

    proptest! {
        /// The fixed-capacity table agrees with a BTreeMap reference
        /// model across install/remove/evict/lookup; eviction respects
        /// priority tiers within its scan window, and capacity is a
        /// hard limit.
        #[test]
        fn matches_reference_model(
            ops in proptest::collection::vec((0u8..4, 0u32..24, 0u8..4), 1..300)
        ) {
            let mut t = OffloadTable::new(8, 0xA5A5);
            let mut model: std::collections::BTreeMap<u32, u8> = Default::default();
            for (op, i, prio) in ops {
                match op {
                    0 => {
                        let r = t.add(OffloadRule::new(key(i), OffloadAction::Drop, prio));
                        if model.contains_key(&i) {
                            prop_assert_eq!(r, Err(OffloadError::Duplicate));
                        } else if model.len() >= 8 {
                            prop_assert_eq!(r, Err(OffloadError::TableFull));
                        } else {
                            prop_assert_eq!(r, Ok(()));
                            model.insert(i, prio);
                        }
                    }
                    1 => {
                        match t.remove(&key(i)) {
                            Ok(rule) => {
                                prop_assert_eq!(model.remove(&i), Some(rule.priority));
                            }
                            Err(OffloadError::NotFound) => {
                                prop_assert!(!model.contains_key(&i));
                            }
                            Err(e) => prop_assert!(false, "unexpected {:?}", e),
                        }
                    }
                    2 => {
                        // A full-window evict must pick a globally
                        // minimal priority tier.
                        let evicted = t.evict_tiered(usize::MAX);
                        match evicted {
                            Some(rule) => {
                                let min = model.values().min().copied().unwrap();
                                prop_assert_eq!(rule.priority, min);
                                let gone: Vec<u32> = model
                                    .iter()
                                    .filter(|(k2, p)| {
                                        **p == min && t.action_for(&key(**k2)).is_none()
                                    })
                                    .map(|(k2, _)| *k2)
                                    .collect();
                                prop_assert_eq!(gone.len(), 1);
                                model.remove(&gone[0]);
                            }
                            None => prop_assert!(model.is_empty()),
                        }
                    }
                    _ => {
                        prop_assert_eq!(
                            t.action_for(&key(i)).is_some(),
                            model.contains_key(&i)
                        );
                    }
                }
                prop_assert_eq!(t.len(), model.len());
            }
        }

        /// Aggregate hit accounting is conserved across arbitrary
        /// lookup/evict interleavings: hits == live per-rule hits +
        /// folded evicted hits, always.
        #[test]
        fn hit_accounting_conserved(
            ops in proptest::collection::vec((0u8..3, 0u32..12), 1..200)
        ) {
            let mut t = OffloadTable::new(6, 0x0FF1);
            let mut expected_hits = 0u64;
            for (op, i) in ops {
                match op {
                    0 => { t.add(OffloadRule::new(key(i), OffloadAction::Drop, (i % 3) as u8)).ok(); }
                    1 => {
                        let f = frame(i, TcpFlags::ACK, b"data");
                        let p = parse_frame(&f).unwrap();
                        if t.lookup(&p).is_some() {
                            expected_hits += 1;
                        }
                    }
                    _ => { t.evict_tiered(3); }
                }
                prop_assert_eq!(t.stats().hits, expected_hits);
            }
            // Drain everything: all hits end up folded.
            while t.evict_tiered(usize::MAX).is_some() {}
            prop_assert_eq!(t.stats().evicted_hits, expected_hits);
        }
    }
}
