//! Robustness: the capture pipeline must never panic, whatever arrives
//! from the wire — garbage frames, truncated headers, malformed options,
//! adversarial sequence numbers — and IPv6 traffic must flow through the
//! same paths as IPv4.

use proptest::prelude::*;
use scap::apps::StreamTouchApp;
use scap::{Scap, ScapConfig, ScapKernel, ScapSimStack, StreamCtx};
use scap_bench::common::oracle_engine;
use scap_trace::Packet;
use scap_wire::{parse_frame, PacketBuilder, TcpFlags};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    /// Wire parsing never panics on arbitrary bytes.
    #[test]
    fn parse_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_frame(&bytes);
    }

    /// Compiled filters never panic on arbitrary frames, and agree with
    /// the AST evaluator when the frame parses.
    #[test]
    fn filters_never_panic_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        which in 0usize..6,
    ) {
        let exprs = ["tcp", "port 80", "host 10.0.0.1", "net 192.168.0.0/16",
                     "udp and dst port 53", "not (tcp or udp)"];
        let f = scap_filter::Filter::new(exprs[which]).unwrap();
        let _ = f.matches_frame(&bytes);
    }

    /// The full kernel survives arbitrary frame bytes: nothing panics,
    /// and every frame is accounted for.
    #[test]
    fn kernel_survives_garbage_frames(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..60),
    ) {
        let mut kernel = ScapKernel::new(ScapConfig::default());
        let n = frames.len() as u64;
        for (i, f) in frames.into_iter().enumerate() {
            kernel.nic_receive(&Packet::new(i as u64 * 1000, f));
            for c in 0..kernel.ncores() {
                while kernel.kernel_poll(c, i as u64 * 1000).is_some() {}
            }
        }
        kernel.finish(u64::MAX / 2);
        let st = kernel.stats();
        prop_assert_eq!(st.stack.wire_packets, n);
    }

    /// Truncating a valid TCP frame at any byte never panics anywhere in
    /// the pipeline.
    #[test]
    fn truncated_frames_never_panic(cut in 0usize..100) {
        let frame = PacketBuilder::tcp_v4(
            [10, 0, 0, 1], [10, 0, 0, 2], 1000, 80, 1, 1,
            TcpFlags::ACK | TcpFlags::PSH, &[0x41; 64],
        );
        let cut = cut.min(frame.len());
        let mut kernel = ScapKernel::new(ScapConfig::default());
        kernel.nic_receive(&Packet::new(0, frame[..cut].to_vec()));
        for c in 0..kernel.ncores() {
            while kernel.kernel_poll(c, 0).is_some() {}
        }
        kernel.finish(1);
    }

    /// IPv6 frames with a mangled next-header byte and arbitrary bytes
    /// where extension headers / payload would sit: parsed or rejected,
    /// never a panic, and every frame accounted for.
    #[test]
    fn ipv6_extension_header_garbage_never_panics(
        next_header in any::<u8>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let mut frame = PacketBuilder::tcp_v6(
            [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
            [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2],
            4000, 443, 1, 1, TcpFlags::ACK, &[0x42; 32],
        );
        // Byte 6 of the IPv6 header (after the 14-byte Ethernet header)
        // is Next Header; arbitrary values turn the TCP header into a
        // bogus extension-header chain.
        frame[14 + 6] = next_header;
        frame.truncate(14 + 40);
        frame.extend_from_slice(&garbage);
        let mut kernel = ScapKernel::new(ScapConfig::default());
        kernel.nic_receive(&Packet::new(0, frame));
        for c in 0..kernel.ncores() {
            while kernel.kernel_poll(c, 0).is_some() {}
        }
        kernel.finish(1);
        let st = kernel.stats().stack;
        prop_assert_eq!(st.wire_packets, 1);
        prop_assert_eq!(
            st.delivered_packets + st.dropped_packets + st.discarded_packets, 1
        );
    }

    /// Mid-stream timestamp regressions (a clock stepping backwards, a
    /// capture card reordering batches) never panic the timer machinery,
    /// and conservation still holds.
    #[test]
    fn midstream_timestamp_regressions_never_panic(
        jumps in proptest::collection::vec((0u64..2_000_000_000, any::<bool>()), 1..20),
    ) {
        let c = [10, 0, 0, 1];
        let s = [10, 0, 0, 2];
        let mut kernel = ScapKernel::new(ScapConfig::default());
        let feed = |kernel: &mut ScapKernel, now: u64, frame: Vec<u8>| {
            kernel.nic_receive(&Packet::new(now, frame));
            for core in 0..kernel.ncores() {
                while kernel.kernel_poll(core, now).is_some() {}
                kernel.kernel_timers(core, now);
            }
        };
        feed(&mut kernel, 1_000_000_000,
             PacketBuilder::tcp_v4(c, s, 5, 80, 100, 0, TcpFlags::SYN, b""));
        feed(&mut kernel, 1_001_000_000,
             PacketBuilder::tcp_v4(s, c, 80, 5, 900, 101, TcpFlags::SYN | TcpFlags::ACK, b""));
        let mut now = 1_002_000_000u64;
        let mut seq = 101u32;
        let mut n = 0u64;
        for (delta, back) in jumps {
            now = if back { now.saturating_sub(delta) } else { now.saturating_add(delta) };
            feed(&mut kernel, now,
                 PacketBuilder::tcp_v4(c, s, 5, 80, seq, 901, TcpFlags::ACK | TcpFlags::PSH, &[0x43; 100]));
            seq = seq.wrapping_add(100);
            n += 1;
        }
        kernel.finish(now.saturating_add(1));
        let st = kernel.stats().stack;
        prop_assert_eq!(st.wire_packets, n + 2);
        prop_assert_eq!(
            st.delivered_packets + st.dropped_packets + st.discarded_packets,
            n + 2
        );
    }
}

/// One real checkpoint from a seeded partial capture (memoized — the
/// proptest properties below re-use the same handful of seeds).
fn sample_checkpoint(seed: u64) -> Vec<u8> {
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<u64, Vec<u8>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(b) = cache.lock().unwrap().get(&seed) {
        return b.clone();
    }
    let trace = CampusMix::new(CampusMixConfig::sized(seed, 256 << 10)).collect_all();
    let mut kernel = ScapKernel::new(ScapConfig::default());
    let mut now = 0;
    for pkt in &trace[..trace.len() / 2] {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for c in 0..kernel.ncores() {
            while kernel.kernel_poll(c, now).is_some() {}
            kernel.kernel_timers(c, now);
            while let Some(ev) = kernel.next_event(c) {
                if let scap::EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    }
    let bytes = kernel.checkpoint_bytes(now, 1);
    cache.lock().unwrap().insert(seed, bytes.clone());
    bytes
}

proptest! {
    /// Checkpoint decode never panics on arbitrary bytes.
    #[test]
    fn checkpoint_decode_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let _ = scap::CheckpointImage::decode(&bytes);
    }

    /// Real checkpoints round-trip byte-identically (encode → decode →
    /// encode), and truncating one at any byte never panics: decode
    /// either rejects the torn file or yields an image that itself
    /// re-encodes canonically.
    #[test]
    fn checkpoint_roundtrip_and_truncation(seed in 0u64..6, cut in 0usize..1 << 17) {
        let bytes = sample_checkpoint(seed);
        let img = scap::CheckpointImage::decode(&bytes).unwrap();
        prop_assert_eq!(img.to_bytes(), bytes.clone());
        let cut = cut.min(bytes.len());
        if let Ok(t) = scap::CheckpointImage::decode(&bytes[..cut]) {
            let re = t.to_bytes();
            let again = scap::CheckpointImage::decode(&re).unwrap();
            prop_assert_eq!(again.to_bytes(), re);
        }
    }

    /// Flipping any single byte of a checkpoint never panics decode —
    /// the CRC either rejects the record or the damage is semantically
    /// absorbed; it must never crash a restarting supervisor.
    #[test]
    fn checkpoint_bitflip_never_panics(
        seed in 0u64..3,
        pos in 0usize..1 << 17,
        flip in 1u8..=255,
    ) {
        let mut bytes = sample_checkpoint(seed);
        let len = bytes.len();
        bytes[pos % len] ^= flip;
        let _ = scap::CheckpointImage::decode(&bytes);
    }
}

/// Build an IPv6 TCP session (handshake, data both ways, FIN).
fn v6_session(req: &[u8], resp: &[u8]) -> Vec<Packet> {
    let c: [u8; 16] = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
    let s: [u8; 16] = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
    let (cp, sp) = (50000u16, 443u16);
    let (ic, is) = (7_000u32, 9_000u32);
    let mut t = 0u64;
    let mut nt = || {
        t += 1_000_000;
        t
    };
    let mut pkts = vec![
        Packet::new(
            nt(),
            PacketBuilder::tcp_v6(c, s, cp, sp, ic, 0, TcpFlags::SYN, b""),
        ),
        Packet::new(
            nt(),
            PacketBuilder::tcp_v6(s, c, sp, cp, is, ic + 1, TcpFlags::SYN | TcpFlags::ACK, b""),
        ),
        Packet::new(
            nt(),
            PacketBuilder::tcp_v6(c, s, cp, sp, ic + 1, is + 1, TcpFlags::ACK, b""),
        ),
    ];
    let mut seq = ic + 1;
    for chunk in req.chunks(1000) {
        pkts.push(Packet::new(
            nt(),
            PacketBuilder::tcp_v6(
                c,
                s,
                cp,
                sp,
                seq,
                is + 1,
                TcpFlags::ACK | TcpFlags::PSH,
                chunk,
            ),
        ));
        seq += chunk.len() as u32;
    }
    let mut sseq = is + 1;
    for chunk in resp.chunks(1000) {
        pkts.push(Packet::new(
            nt(),
            PacketBuilder::tcp_v6(s, c, sp, cp, sseq, seq, TcpFlags::ACK, chunk),
        ));
        sseq += chunk.len() as u32;
    }
    pkts.push(Packet::new(
        nt(),
        PacketBuilder::tcp_v6(s, c, sp, cp, sseq, seq, TcpFlags::FIN | TcpFlags::ACK, b""),
    ));
    pkts.push(Packet::new(
        nt(),
        PacketBuilder::tcp_v6(
            c,
            s,
            cp,
            sp,
            seq,
            sseq + 1,
            TcpFlags::FIN | TcpFlags::ACK,
            b"",
        ),
    ));
    pkts
}

#[test]
fn ipv6_sessions_reassemble_end_to_end() {
    let req = vec![b'Q'; 2500];
    let resp = vec![b'R'; 7000];
    let delivered = Arc::new(AtomicU64::new(0));
    let closed = Arc::new(AtomicU64::new(0));

    let mut scap = Scap::builder()
        .inactivity_timeout_ns(500_000_000)
        .try_build()
        .unwrap();
    {
        let d = delivered.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            d.fetch_add(ctx.data.map_or(0, |b| b.len() as u64), Ordering::Relaxed);
        });
        let c = closed.clone();
        scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
            c.fetch_add(1, Ordering::Relaxed);
            // The key renders as an IPv6 flow.
            assert!(ctx.stream.key.to_string().contains("2001:db8"));
        });
    }
    let stats = scap.start_capture(v6_session(&req, &resp));
    assert_eq!(delivered.load(Ordering::Relaxed), 9500);
    assert_eq!(closed.load(Ordering::Relaxed), 1);
    assert_eq!(stats.stack.streams_created, 1);
    assert_eq!(stats.stack.dropped_packets, 0);
}

#[test]
fn ipv6_and_ipv4_coexist_in_one_capture() {
    // Interleave a v6 session with a v4 session; both reassemble.
    let mut pkts = v6_session(&[b'6'; 1500], &[b'6'; 1500]);
    let v4 = {
        let c = [10, 0, 0, 1];
        let s = [10, 0, 0, 2];
        let mut v = vec![
            PacketBuilder::tcp_v4(c, s, 1, 80, 100, 0, TcpFlags::SYN, b""),
            PacketBuilder::tcp_v4(s, c, 80, 1, 200, 101, TcpFlags::SYN | TcpFlags::ACK, b""),
            PacketBuilder::tcp_v4(c, s, 1, 80, 101, 201, TcpFlags::ACK, &[b'4'; 500]),
        ];
        v.push(PacketBuilder::tcp_v4(
            c,
            s,
            1,
            80,
            601,
            201,
            TcpFlags::FIN | TcpFlags::ACK,
            b"",
        ));
        v.push(PacketBuilder::tcp_v4(
            s,
            c,
            80,
            1,
            201,
            602,
            TcpFlags::FIN | TcpFlags::ACK,
            b"",
        ));
        v
    };
    for (i, f) in v4.into_iter().enumerate() {
        pkts.push(Packet::new(500_000 + i as u64 * 1_000_000, f));
    }
    pkts.sort_by_key(|p| p.ts_ns);

    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }),
        StreamTouchApp::default(),
    );
    let report = oracle_engine().run(pkts, &mut stack);
    assert_eq!(report.stats.streams_created, 2);
    assert_eq!(report.stats.streams_reported, 2);
    assert_eq!(stack.app().bytes, 3000 + 500);
}

#[test]
fn adversarial_syn_flood_does_not_exhaust_tracking() {
    // A SYN flood: 50k half-open connections. Scap tracks them all (no
    // static limit) and expires them by inactivity without reporting
    // spurious data.
    let mut pkts = Vec::with_capacity(50_000);
    for i in 0..50_000u32 {
        let frame = PacketBuilder::tcp_v4(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            [192, 0, 2, 1],
            1024 + (i % 60000) as u16,
            80,
            i,
            0,
            TcpFlags::SYN,
            b"",
        );
        pkts.push(Packet::new(u64::from(i) * 10_000, frame));
    }
    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            inactivity_timeout_ns: 100_000_000,
            ..ScapConfig::default()
        }),
        StreamTouchApp::default(),
    );
    let report = oracle_engine().run(pkts, &mut stack);
    assert_eq!(report.stats.streams_created, 50_000);
    assert_eq!(report.stats.streams_reported, 50_000);
    assert_eq!(stack.app().bytes, 0);
    assert_eq!(report.stats.dropped_packets, 0);
}
