//! The concurrent-streams workload of Fig. 5.
//!
//! "Each stream consists of 100 packets with the maximum TCP payload, and
//! streams are multiplexed so that the desirable number of concurrent
//! streams is achieved" (§6.4). The workload is produced *lazily*: frames
//! are a pure function of `(stream index, packet index)`, so ten million
//! concurrent streams need no per-stream state in the generator.

use crate::Packet;
use scap_wire::{PacketBuilder, TcpFlags};

/// Generator of N mutually interleaved identical TCP streams.
#[derive(Debug, Clone)]
pub struct ConcurrentStreams {
    /// Number of concurrent streams.
    pub streams: u64,
    /// Data packets per stream (paper: 100).
    pub data_packets_per_stream: u32,
    /// TCP payload bytes per data packet (paper: full MSS).
    pub payload_per_packet: usize,
    /// Gap between consecutive packets on the wire, in nanoseconds.
    pub wire_gap_ns: u64,
}

impl ConcurrentStreams {
    /// The paper's configuration: 100 full-MSS packets per stream; the
    /// wire gap is chosen later by rate replay, so a nominal value is fine.
    pub fn paper(streams: u64) -> Self {
        ConcurrentStreams {
            streams,
            data_packets_per_stream: 100,
            payload_per_packet: 1460,
            wire_gap_ns: 12_000, // ≈1 Gbit/s at 1514-byte frames
        }
    }

    /// Packets per stream including handshake and teardown.
    pub fn packets_per_stream(&self) -> u32 {
        // SYN, SYN-ACK, ACK, data..., FIN, FIN-ACK
        self.data_packets_per_stream + 5
    }

    /// Total packets the generator will emit.
    pub fn total_packets(&self) -> u64 {
        self.streams * u64::from(self.packets_per_stream())
    }

    /// Deterministic endpoints for stream `i`: distinct client address and
    /// port per stream, a common server.
    fn endpoints(&self, i: u64) -> ([u8; 4], [u8; 4], u16, u16) {
        let client = [
            10,
            ((i >> 16) & 0xFF) as u8,
            ((i >> 8) & 0xFF) as u8,
            (i & 0xFF) as u8,
        ];
        let server = [172, 16, ((i >> 24) & 0x0F) as u8, 1];
        let cport = 1024 + (i % 60000) as u16;
        let sport = 8000 + ((i / 60000) % 1000) as u16;
        (client, server, cport, sport)
    }

    /// Build the `j`-th packet of stream `i` (a pure function).
    pub fn packet(&self, i: u64, j: u32, ts_ns: u64) -> Packet {
        let (client, server, cport, sport) = self.endpoints(i);
        let isn_c = (i as u32).wrapping_mul(2_654_435_761);
        let isn_s = isn_c ^ 0x5A5A_5A5A;
        let dp = self.data_packets_per_stream;
        let frame = if j == 0 {
            PacketBuilder::tcp_v4(client, server, cport, sport, isn_c, 0, TcpFlags::SYN, b"")
        } else if j == 1 {
            PacketBuilder::tcp_v4(
                server,
                client,
                sport,
                cport,
                isn_s,
                isn_c.wrapping_add(1),
                TcpFlags::SYN | TcpFlags::ACK,
                b"",
            )
        } else if j == 2 {
            PacketBuilder::tcp_v4(
                client,
                server,
                cport,
                sport,
                isn_c.wrapping_add(1),
                isn_s.wrapping_add(1),
                TcpFlags::ACK,
                b"",
            )
        } else if j < 3 + dp {
            let k = (j - 3) as u64;
            let payload = vec![b'A' + (k % 26) as u8; self.payload_per_packet];
            PacketBuilder::tcp_v4(
                client,
                server,
                cport,
                sport,
                isn_c
                    .wrapping_add(1)
                    .wrapping_add((k * self.payload_per_packet as u64) as u32),
                isn_s.wrapping_add(1),
                TcpFlags::ACK,
                &payload,
            )
        } else if j == 3 + dp {
            let sent = u64::from(dp) * self.payload_per_packet as u64;
            PacketBuilder::tcp_v4(
                client,
                server,
                cport,
                sport,
                isn_c.wrapping_add(1).wrapping_add(sent as u32),
                isn_s.wrapping_add(1),
                TcpFlags::FIN | TcpFlags::ACK,
                b"",
            )
        } else {
            let sent = u64::from(dp) * self.payload_per_packet as u64;
            PacketBuilder::tcp_v4(
                server,
                client,
                sport,
                cport,
                isn_s.wrapping_add(1),
                isn_c.wrapping_add(2).wrapping_add(sent as u32),
                TcpFlags::FIN | TcpFlags::ACK,
                b"",
            )
        };
        Packet::new(ts_ns, frame)
    }

    /// Iterate packets round-robin across all streams: all streams stay
    /// concurrently open until the end.
    pub fn iter(&self) -> ConcurrentIter<'_> {
        ConcurrentIter { gen: self, slot: 0 }
    }
}

/// Iterator over the multiplexed workload.
pub struct ConcurrentIter<'a> {
    gen: &'a ConcurrentStreams,
    slot: u64,
}

impl Iterator for ConcurrentIter<'_> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.slot >= self.gen.total_packets() {
            return None;
        }
        let i = self.slot % self.gen.streams;
        let j = (self.slot / self.gen.streams) as u32;
        let ts = self.slot * self.gen.wire_gap_ns;
        self.slot += 1;
        Some(self.gen.packet(i, j, ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn stream_count_is_exact() {
        let g = ConcurrentStreams::paper(37);
        let pkts: Vec<Packet> = g.iter().collect();
        assert_eq!(pkts.len() as u64, g.total_packets());
        let stats = TraceStats::from_packets(pkts.iter());
        assert_eq!(stats.tcp_flows, 37);
    }

    #[test]
    fn all_streams_open_before_any_closes() {
        let g = ConcurrentStreams::paper(10);
        let pkts: Vec<Packet> = g.iter().collect();
        // The first 10 packets are the 10 SYNs; FINs appear only in the
        // last two rounds.
        for p in &pkts[..10] {
            let parsed = scap_wire::parse_frame(&p.frame).unwrap();
            assert!(parsed.tcp.unwrap().flags.is_syn_only());
        }
        let fin_round_start = (10 * (g.packets_per_stream() as u64 - 2)) as usize;
        for p in &pkts[..fin_round_start] {
            let parsed = scap_wire::parse_frame(&p.frame).unwrap();
            assert!(!parsed.tcp.unwrap().flags.contains(scap_wire::TcpFlags::FIN));
        }
    }

    #[test]
    fn per_stream_sequence_numbers_are_contiguous() {
        let g = ConcurrentStreams::paper(3);
        let pkts: Vec<Packet> = g.iter().collect();
        // Collect stream 0's data packets and verify seq continuity.
        let mut seqs = Vec::new();
        for p in &pkts {
            let parsed = scap_wire::parse_frame(&p.frame).unwrap();
            let key = parsed.key.unwrap();
            if key.src_port() == 1024 && !parsed.payload().is_empty() {
                seqs.push(parsed.tcp.unwrap().seq);
            }
        }
        assert_eq!(seqs.len(), 100);
        for w in seqs.windows(2) {
            assert_eq!(w[1].wrapping_sub(w[0]), 1460);
        }
    }

    #[test]
    fn frames_parse_and_streams_distinct() {
        let g = ConcurrentStreams {
            streams: 100,
            data_packets_per_stream: 5,
            payload_per_packet: 100,
            wire_gap_ns: 1000,
        };
        let stats = TraceStats::from_packets(g.iter().collect::<Vec<_>>().iter());
        assert_eq!(stats.tcp_flows, 100);
        assert_eq!(stats.parse_errors, 0);
    }

    #[test]
    fn timestamps_increase_monotonically() {
        let g = ConcurrentStreams::paper(5);
        let pkts: Vec<Packet> = g.iter().collect();
        assert!(pkts.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }
}
