//! The M/M/1/N loss formula (paper eq. 1).

/// Loss probability of an M/M/1/N queue with offered load `rho = λ/μ`
/// and `n` slots: `P_full = (1-ρ)/(1-ρ^{N+1}) · ρ^N`, which by PASTA is
/// also the packet-loss probability.
///
/// The ρ = 1 case is the continuous limit `1/(N+1)`.
pub fn loss_probability(rho: f64, n: usize) -> f64 {
    assert!(rho >= 0.0, "offered load cannot be negative");
    if rho == 0.0 {
        return if n == 0 { 1.0 } else { 0.0 };
    }
    if (rho - 1.0).abs() < 1e-12 {
        return 1.0 / (n as f64 + 1.0);
    }
    let num = (1.0 - rho) * rho.powi(n as i32);
    let den = 1.0 - rho.powi(n as i32 + 1);
    num / den
}

/// Smallest `N` such that the loss probability drops below `target`.
/// Returns `None` when ρ ≥ 1 and the target is unreachable.
pub fn slots_for_target(rho: f64, target: f64) -> Option<usize> {
    assert!(target > 0.0 && target < 1.0);
    if rho >= 1.0 {
        // Loss tends to (ρ-1)/ρ... for ρ>1 it converges to 1-1/ρ > 0.
        let limit = if rho > 1.0 { 1.0 - 1.0 / rho } else { 0.0 };
        if target <= limit {
            return None;
        }
    }
    (0..100_000).find(|&n| loss_probability(rho, n) < target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_slots_always_lose() {
        assert_eq!(loss_probability(0.5, 0), 1.0);
        assert_eq!(loss_probability(1.0, 0), 1.0);
    }

    #[test]
    fn paper_figure_11_anchors() {
        // Fig. 11: ρ = 0.1 needs < 10 slots for ~1e-8; ρ = 0.5 a little
        // over 20; ρ = 0.9 about 150.
        assert!(loss_probability(0.1, 10) < 1e-8);
        assert!(loss_probability(0.5, 25) < 1e-7);
        assert!(loss_probability(0.9, 150) < 1e-7);
        assert!(loss_probability(0.9, 50) > 1e-4);
    }

    #[test]
    fn rho_one_limit() {
        assert!((loss_probability(1.0, 99) - 0.01).abs() < 1e-12);
        // Continuity near 1.
        let near = loss_probability(1.0 - 1e-9, 99);
        assert!((near - 0.01).abs() < 1e-6);
    }

    #[test]
    fn slots_for_target_finds_knee() {
        let n = slots_for_target(0.5, 1e-6).unwrap();
        assert!(loss_probability(0.5, n) < 1e-6);
        assert!(n == 0 || loss_probability(0.5, n - 1) >= 1e-6);
        // Overload: 50% loss unreachable when rho = 2 (limit is 0.5).
        assert_eq!(slots_for_target(2.0, 0.4), None);
        assert!(slots_for_target(2.0, 0.6).is_some());
    }

    proptest! {
        /// Loss decreases monotonically with N and increases with ρ.
        #[test]
        fn monotone(rho in 0.05f64..0.95, n in 1usize..200) {
            let p = loss_probability(rho, n);
            prop_assert!(p > 0.0 && p < 1.0);
            prop_assert!(loss_probability(rho, n + 1) <= p);
            prop_assert!(loss_probability(rho + 0.04, n) >= p);
        }
    }
}
