//! Trace I/O integration: a generated trace survives a pcap write/read
//! round trip byte-for-byte, and the capture pipeline produces identical
//! results from the original and the reloaded trace.

use scap::apps::FlowStatsApp;
use scap::{ScapConfig, ScapKernel, ScapSimStack};
use scap_bench::common::oracle_engine;
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::pcap::{write_file, PcapReader};
use scap_trace::stats::TraceStats;

#[test]
fn pcap_roundtrip_is_lossless() {
    let trace = CampusMix::new(CampusMixConfig::sized(13, 2 << 20)).collect_all();
    let mut buf = Vec::new();
    write_file(&mut buf, &trace).expect("write");
    let back = PcapReader::new(&buf[..])
        .expect("open")
        .read_all()
        .expect("read");
    assert_eq!(trace.len(), back.len());
    assert_eq!(trace, back);

    // Statistics agree exactly.
    let a = TraceStats::from_packets(trace.iter());
    let b = TraceStats::from_packets(back.iter());
    assert_eq!(a, b);
}

#[test]
fn capture_results_identical_from_file_replay() {
    let trace = CampusMix::new(CampusMixConfig::sized(29, 2 << 20)).collect_all();
    let mut buf = Vec::new();
    write_file(&mut buf, &trace).expect("write");
    let reloaded = PcapReader::new(&buf[..])
        .expect("open")
        .read_all()
        .expect("read");

    let run = |pkts: Vec<scap_trace::Packet>| {
        let mut stack = ScapSimStack::new(
            ScapKernel::new(ScapConfig {
                inactivity_timeout_ns: 500_000_000,
                ..ScapConfig::default()
            }),
            FlowStatsApp::default(),
        );
        let rep = oracle_engine().run(pkts, &mut stack);
        (
            rep.stats.streams_created,
            rep.stats.delivered_bytes,
            stack.app().exported,
            stack.app().exported_bytes,
        )
    };

    assert_eq!(run(trace), run(reloaded));
}
