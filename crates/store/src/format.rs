//! The on-disk format of the archive: checksummed segment frames and
//! sidecar index records, plus the tolerant scanners both the writer's
//! recovery path and the reader share.
//!
//! An archive directory holds:
//!
//! * `seg-NNNNNN.scapseg` — append-only payload segments. A 16-byte
//!   header (magic, version, segment id) followed by frames: each frame
//!   is a 24-byte header (magic, stream uid, direction, payload length,
//!   CRC-32 of the payload) and the reassembled payload bytes of one
//!   stream direction, written contiguously at seal time.
//! * `index.scapidx` — the sidecar index. A 16-byte header followed by
//!   records, each framed as (magic, body length, CRC-32 of body) + body.
//!   Bodies are either a full per-stream record (kind 0) or a tombstone
//!   (kind 1) marking a previously written stream as pruned.
//!
//! Everything is little-endian and append-only; durability comes from
//! ordering (payload frames are flushed before their index record), so a
//! torn tail in either file is detected by magic/length/CRC validation
//! and simply cut off. A frame whose index record never made it is an
//! *orphan*: readable garbage-collected space, never surfaced as data.

use scap::{StreamSnapshot, StreamUid};
use scap_flow::{DirStats, StreamErrors, StreamStatus};
use scap_wire::{Direction, FlowKey, IpAddrBytes, Transport};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::StoreError;

// The archive shares its low-level codec — CRC-32, the 16-byte file
// header, and the (magic, length, CRC) record framing — with the capture
// checkpoint format in `scap::checkpoint`. One codec, two file families.
pub use scap::checkpoint::{crc32, file_header, frame_record, FILE_HEADER_LEN, FORMAT_VERSION};

/// Segment-file magic ("SSEG").
pub const SEG_MAGIC: u32 = 0x5347_4553;
/// Index-file magic ("SIDX").
pub const IDX_MAGIC: u32 = 0x5844_4953;
/// Per-frame magic ("FRAM").
pub const FRAME_MAGIC: u32 = 0x4D41_5246;
/// Size of a frame header preceding each payload.
pub const FRAME_HEADER_LEN: usize = 24;
/// Sidecar index file name.
pub const INDEX_FILE: &str = "index.scapidx";

/// File name of segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:06}.scapseg")
}

/// Path of segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(segment_file_name(id))
}

/// Parse a segment id back out of a file name produced by
/// [`segment_file_name`].
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".scapseg")?;
    rest.parse().ok()
}

/// Where one direction of a stream's payload lives on disk. `len == 0`
/// means the direction delivered no bytes and no frame was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extent {
    /// Segment id holding the frame.
    pub segment: u64,
    /// Byte offset of the frame header within the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// One archived stream as the sidecar index describes it: everything a
/// query needs without touching payload segments.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRecord {
    /// Capture-wide stream id.
    pub uid: StreamUid,
    /// Canonical flow key.
    pub key: FlowKey,
    /// Direction of the first packet relative to `key`.
    pub first_dir: Direction,
    /// Lifecycle status at seal time.
    pub status: StreamStatus,
    /// Reassembly error flags.
    pub errors: StreamErrors,
    /// PPL priority the stream carried.
    pub priority: u8,
    /// Whether the per-stream cutoff truncated it.
    pub cutoff_exceeded: bool,
    /// First-packet timestamp (ns).
    pub first_ts_ns: u64,
    /// Last-packet timestamp (ns).
    pub last_ts_ns: u64,
    /// Chunks delivered over the stream's lifetime.
    pub chunks: u64,
    /// Per-direction wire/captured/discarded/dropped counters.
    pub dirs: [DirStats; 2],
    /// Per-direction payload locations.
    pub extents: [Extent; 2],
}

impl IndexRecord {
    /// Archived payload bytes across both directions.
    pub fn stored_bytes(&self) -> u64 {
        self.extents[0].len + self.extents[1].len
    }

    /// Build a record from a termination snapshot and the extents the
    /// writer just produced.
    pub fn from_snapshot(s: &StreamSnapshot, extents: [Extent; 2]) -> Self {
        IndexRecord {
            uid: s.uid,
            key: s.key,
            first_dir: s.first_dir,
            status: s.status,
            errors: s.errors,
            priority: s.priority,
            cutoff_exceeded: s.cutoff_exceeded,
            first_ts_ns: s.first_ts_ns,
            last_ts_ns: s.last_ts_ns,
            chunks: s.chunks,
            dirs: s.dirs,
            extents,
        }
    }
}

fn status_to_u8(s: StreamStatus) -> u8 {
    match s {
        StreamStatus::Active => 0,
        StreamStatus::ClosedFin => 1,
        StreamStatus::ClosedRst => 2,
        StreamStatus::ClosedTimeout => 3,
    }
}

fn status_from_u8(v: u8) -> Result<StreamStatus, StoreError> {
    Ok(match v {
        0 => StreamStatus::Active,
        1 => StreamStatus::ClosedFin,
        2 => StreamStatus::ClosedRst,
        3 => StreamStatus::ClosedTimeout,
        other => return Err(StoreError::Corrupt(format!("bad stream status {other}"))),
    })
}

fn put_addr(out: &mut Vec<u8>, a: IpAddrBytes) {
    match a {
        IpAddrBytes::V4(b) => {
            out.extend_from_slice(&b);
            out.extend_from_slice(&[0u8; 12]);
        }
        IpAddrBytes::V6(b) => out.extend_from_slice(&b),
    }
}

fn get_addr(b: &[u8], family: u8) -> Result<IpAddrBytes, StoreError> {
    Ok(match family {
        4 => IpAddrBytes::V4(b[..4].try_into().unwrap()),
        6 => IpAddrBytes::V6(b[..16].try_into().unwrap()),
        other => return Err(StoreError::Corrupt(format!("bad address family {other}"))),
    })
}

/// Encode a stream index-record body (kind byte included).
pub fn encode_stream_body(r: &IndexRecord) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    b.push(0u8); // kind: stream
    b.extend_from_slice(&r.uid.to_le_bytes());
    b.push(match r.key.src() {
        IpAddrBytes::V4(_) => 4,
        IpAddrBytes::V6(_) => 6,
    });
    put_addr(&mut b, r.key.src());
    put_addr(&mut b, r.key.dst());
    b.extend_from_slice(&r.key.src_port().to_le_bytes());
    b.extend_from_slice(&r.key.dst_port().to_le_bytes());
    b.push(r.key.transport().proto_number());
    b.push(r.first_dir.index() as u8);
    b.push(status_to_u8(r.status));
    b.push(r.errors.0);
    b.push(r.priority);
    b.push(u8::from(r.cutoff_exceeded));
    b.extend_from_slice(&r.first_ts_ns.to_le_bytes());
    b.extend_from_slice(&r.last_ts_ns.to_le_bytes());
    b.extend_from_slice(&r.chunks.to_le_bytes());
    for d in &r.dirs {
        for v in [
            d.total_pkts,
            d.total_bytes,
            d.captured_bytes,
            d.captured_pkts,
            d.discarded_pkts,
            d.discarded_bytes,
            d.dropped_pkts,
            d.dropped_bytes,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
    }
    for e in &r.extents {
        b.extend_from_slice(&e.segment.to_le_bytes());
        b.extend_from_slice(&e.offset.to_le_bytes());
        b.extend_from_slice(&e.len.to_le_bytes());
    }
    b
}

/// Encode a tombstone body for `uid` (kind byte included).
pub fn encode_tombstone_body(uid: StreamUid) -> Vec<u8> {
    let mut b = Vec::with_capacity(9);
    b.push(1u8); // kind: tombstone
    b.extend_from_slice(&uid.to_le_bytes());
    b
}

/// A decoded index-record body.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexEntry {
    /// A sealed stream.
    Stream(Box<IndexRecord>),
    /// A retention tombstone: the stream with this uid was pruned.
    Tombstone(StreamUid),
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.b.len() {
            return Err(StoreError::Corrupt("index record body too short".into()));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decode an index-record body previously produced by
/// [`encode_stream_body`] or [`encode_tombstone_body`].
pub fn decode_body(body: &[u8]) -> Result<IndexEntry, StoreError> {
    let mut c = Cursor { b: body, pos: 0 };
    match c.u8()? {
        1 => Ok(IndexEntry::Tombstone(c.u64()?)),
        0 => {
            let uid = c.u64()?;
            let family = c.u8()?;
            let src = get_addr(c.take(16)?, family)?;
            let dst = get_addr(c.take(16)?, family)?;
            let src_port = c.u16()?;
            let dst_port = c.u16()?;
            let transport = Transport::from(c.u8()?);
            let key = match (src, dst) {
                (IpAddrBytes::V4(s), IpAddrBytes::V4(d)) => {
                    FlowKey::new_v4(s, d, src_port, dst_port, transport)
                }
                (IpAddrBytes::V6(s), IpAddrBytes::V6(d)) => {
                    FlowKey::new_v6(s, d, src_port, dst_port, transport)
                }
                _ => unreachable!("families decoded together"),
            };
            let first_dir = if c.u8()? == 0 {
                Direction::Forward
            } else {
                Direction::Reverse
            };
            let status = status_from_u8(c.u8()?)?;
            let errors = StreamErrors(c.u8()?);
            let priority = c.u8()?;
            let cutoff_exceeded = c.u8()? != 0;
            let first_ts_ns = c.u64()?;
            let last_ts_ns = c.u64()?;
            let chunks = c.u64()?;
            let mut dirs = [DirStats::default(), DirStats::default()];
            for d in &mut dirs {
                d.total_pkts = c.u64()?;
                d.total_bytes = c.u64()?;
                d.captured_bytes = c.u64()?;
                d.captured_pkts = c.u64()?;
                d.discarded_pkts = c.u64()?;
                d.discarded_bytes = c.u64()?;
                d.dropped_pkts = c.u64()?;
                d.dropped_bytes = c.u64()?;
            }
            let mut extents = [Extent::default(); 2];
            for e in &mut extents {
                e.segment = c.u64()?;
                e.offset = c.u64()?;
                e.len = c.u64()?;
            }
            Ok(IndexEntry::Stream(Box::new(IndexRecord {
                uid,
                key,
                first_dir,
                status,
                errors,
                priority,
                cutoff_exceeded,
                first_ts_ns,
                last_ts_ns,
                chunks,
                dirs,
                extents,
            })))
        }
        other => Err(StoreError::Corrupt(format!("bad record kind {other}"))),
    }
}

/// Build the frame header preceding one direction's payload.
pub fn frame_header(uid: StreamUid, dir: Direction, payload: &[u8]) -> [u8; FRAME_HEADER_LEN] {
    let mut h = [0u8; FRAME_HEADER_LEN];
    h[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    h[4..12].copy_from_slice(&uid.to_le_bytes());
    h[12] = dir.index() as u8;
    h[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[20..24].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// One valid frame found by [`scan_segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Stream the payload belongs to.
    pub uid: StreamUid,
    /// Direction index (0/1).
    pub dir: u8,
    /// Byte offset of the frame header within the file.
    pub offset: u64,
    /// Payload length.
    pub len: u64,
}

/// Result of scanning one segment file.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentScan {
    /// Segment id from the header.
    pub id: u64,
    /// Every valid frame, in file order.
    pub frames: Vec<FrameInfo>,
    /// File offset where validity ends (end of the last valid frame).
    pub valid_len: u64,
    /// Bytes past `valid_len` — a torn tail (0 on a clean file).
    pub torn_bytes: u64,
}

/// Scan a segment file, validating every frame (magic, bounds, payload
/// CRC) and stopping at the first invalid byte: everything after is the
/// torn tail a crashed writer left behind.
pub fn scan_segment(path: &Path) -> Result<SegmentScan, StoreError> {
    let data = std::fs::read(path)?;
    if data.len() < FILE_HEADER_LEN {
        return Ok(SegmentScan {
            id: 0,
            frames: Vec::new(),
            valid_len: 0,
            torn_bytes: data.len() as u64,
        });
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if magic != SEG_MAGIC || version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "{}: bad segment header",
            path.display()
        )));
    }
    let id = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let mut frames = Vec::new();
    let mut pos = FILE_HEADER_LEN;
    loop {
        if pos + FRAME_HEADER_LEN > data.len() {
            break;
        }
        let h = &data[pos..pos + FRAME_HEADER_LEN];
        if u32::from_le_bytes(h[0..4].try_into().unwrap()) != FRAME_MAGIC {
            break;
        }
        let uid = u64::from_le_bytes(h[4..12].try_into().unwrap());
        let dir = h[12];
        let len = u32::from_le_bytes(h[16..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(h[20..24].try_into().unwrap());
        let start = pos + FRAME_HEADER_LEN;
        if dir > 1 || start + len > data.len() || crc32(&data[start..start + len]) != crc {
            break;
        }
        frames.push(FrameInfo {
            uid,
            dir,
            offset: pos as u64,
            len: len as u64,
        });
        pos = start + len;
    }
    Ok(SegmentScan {
        id,
        frames,
        valid_len: pos as u64,
        torn_bytes: (data.len() - pos) as u64,
    })
}

/// Result of scanning the sidecar index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexScan {
    /// Every valid entry, in file order (tombstones not yet applied).
    pub entries: Vec<IndexEntry>,
    /// File offset where validity ends.
    pub valid_len: u64,
    /// Bytes past `valid_len` — a torn tail (0 on a clean file).
    pub torn_bytes: u64,
}

/// Scan the sidecar index, validating each record frame and stopping at
/// the first invalid byte. Structural validation (header, record framing,
/// CRC) is the shared `scap::checkpoint` scanner; body decoding is the
/// archive's own, and a structurally valid frame whose body fails to
/// decode is treated as torn along with everything after it.
pub fn scan_index(path: &Path) -> Result<IndexScan, StoreError> {
    let data = std::fs::read(path)?;
    if data.len() < FILE_HEADER_LEN {
        return Ok(IndexScan {
            entries: Vec::new(),
            valid_len: 0,
            torn_bytes: data.len() as u64,
        });
    }
    let scan = scap::checkpoint::scan_records(&data, IDX_MAGIC)
        .map_err(|_| StoreError::Corrupt(format!("{}: bad index header", path.display())))?;
    let mut entries = Vec::new();
    let mut valid_len = scan.valid_len as u64;
    for r in &scan.records {
        match decode_body(&data[r.body.clone()]) {
            Ok(e) => entries.push(e),
            Err(_) => {
                valid_len = r.frame_start as u64;
                break;
            }
        }
    }
    Ok(IndexScan {
        entries,
        valid_len,
        torn_bytes: data.len() as u64 - valid_len,
    })
}

/// Read one direction's payload back from its extent, re-validating the
/// frame header and payload CRC.
pub fn read_extent(
    dir_path: &Path,
    uid: StreamUid,
    dir_idx: u8,
    e: &Extent,
) -> Result<Vec<u8>, StoreError> {
    if e.len == 0 {
        return Ok(Vec::new());
    }
    let path = segment_path(dir_path, e.segment);
    let mut f = std::fs::File::open(&path)?;
    f.seek(SeekFrom::Start(e.offset))?;
    let mut h = [0u8; FRAME_HEADER_LEN];
    f.read_exact(&mut h)?;
    let uid_got = u64::from_le_bytes(h[4..12].try_into().unwrap());
    let len = u32::from_le_bytes(h[16..20].try_into().unwrap()) as u64;
    let crc = u32::from_le_bytes(h[20..24].try_into().unwrap());
    if u32::from_le_bytes(h[0..4].try_into().unwrap()) != FRAME_MAGIC
        || uid_got != uid
        || h[12] != dir_idx
        || len != e.len
    {
        return Err(StoreError::Corrupt(format!(
            "{}: frame at {} does not match index record for stream {uid}",
            path.display(),
            e.offset
        )));
    }
    let mut payload = vec![0u8; len as usize];
    f.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(StoreError::Corrupt(format!(
            "{}: payload CRC mismatch for stream {uid}",
            path.display()
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn segment_file_names_round_trip() {
        assert_eq!(segment_file_name(7), "seg-000007.scapseg");
        assert_eq!(parse_segment_file_name("seg-000007.scapseg"), Some(7));
        assert_eq!(parse_segment_file_name("index.scapidx"), None);
    }

    fn sample_record() -> IndexRecord {
        let mut dirs = [DirStats::default(), DirStats::default()];
        dirs[0].total_pkts = 3;
        dirs[0].total_bytes = 400;
        dirs[0].captured_bytes = 390;
        dirs[1].discarded_bytes = 12;
        IndexRecord {
            uid: 42,
            key: FlowKey::new_v4([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80, Transport::Tcp),
            first_dir: Direction::Reverse,
            status: StreamStatus::ClosedFin,
            errors: StreamErrors(StreamErrors::SEQUENCE_GAP.0),
            priority: 2,
            cutoff_exceeded: true,
            first_ts_ns: 5,
            last_ts_ns: 99,
            chunks: 4,
            dirs,
            extents: [
                Extent {
                    segment: 1,
                    offset: 16,
                    len: 390,
                },
                Extent::default(),
            ],
        }
    }

    #[test]
    fn stream_body_round_trips() {
        let r = sample_record();
        match decode_body(&encode_stream_body(&r)).unwrap() {
            IndexEntry::Stream(back) => assert_eq!(*back, r),
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn v6_key_round_trips() {
        let mut r = sample_record();
        r.key = FlowKey::new_v6([1; 16], [2; 16], 5, 6, Transport::Udp);
        match decode_body(&encode_stream_body(&r)).unwrap() {
            IndexEntry::Stream(back) => assert_eq!(back.key, r.key),
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn tombstone_round_trips() {
        assert_eq!(
            decode_body(&encode_tombstone_body(7)).unwrap(),
            IndexEntry::Tombstone(7)
        );
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let mut b = encode_stream_body(&sample_record());
        b.truncate(b.len() - 1);
        assert!(decode_body(&b).is_err());
        assert!(decode_body(&[9]).is_err());
    }
}
