#![warn(missing_docs)]

//! # scap-flow
//!
//! Flow tracking: the `stream_t` equivalent ([`StreamRecord`]) and the
//! kernel-side flow table (§5.2 of the paper).
//!
//! Structure follows the paper:
//!
//! * a hash table with a **randomized hash function chosen at
//!   initialization** (resisting algorithmic-complexity attacks on the
//!   table) maps canonical 5-tuples to records;
//! * records are allocated from **pre-allocated pools that grow on
//!   demand**, so the number of concurrently tracked streams has no fixed
//!   limit — the property Fig. 5 demonstrates against Libnids/Snort,
//!   whose static tables cap out at one million flows;
//! * an **access list** (intrusive LRU, constant-time touch) keeps active
//!   streams sorted by last access so inactivity expiration scans only
//!   the stale tail, and so "evict the oldest stream" under memory
//!   pressure is O(1).

pub mod record;
pub mod table;

pub use record::{DirStats, StreamErrors, StreamId, StreamRecord, StreamStatus};
pub use table::{FlowTable, FlowTableConfig, Lookup};

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{FlowKey, Transport};

    #[test]
    fn crate_quickstart() {
        let mut t = FlowTable::new(FlowTableConfig::default(), 0xFEED);
        let key = FlowKey::new_v4([1, 1, 1, 1], [2, 2, 2, 2], 10, 20, Transport::Tcp);
        let l = t.lookup_or_insert(&key, 100).unwrap();
        assert!(l.created);
        let l2 = t.lookup_or_insert(&key.reversed(), 200).unwrap();
        assert!(!l2.created);
        assert_eq!(l.id, l2.id);
        assert_ne!(l.direction, l2.direction);
    }
}
