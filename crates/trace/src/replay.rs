//! Rate-controlled trace replay.
//!
//! The paper replays the same trace at 0.25–6 Gbit/s; what varies is the
//! packet timestamp spacing, not the content. [`RateReplay`] rescales the
//! inter-packet gaps of a trace so its aggregate rate equals a target
//! bit rate, preserving relative timing structure (bursts stay bursts).

use crate::Packet;

/// An iterator adaptor that rescales packet timestamps to a target rate.
///
/// Rescaling alone can create unphysical bursts: compressing a
/// low-capture-rate trace makes instantaneous flow rates exceed what any
/// link can carry. Real replay hardware cannot do that — frames
/// serialize on the wire. `RateReplay` therefore also enforces the
/// link's line rate (10 Gbit/s by default, the paper's testbed): each
/// frame's timestamp is pushed to at least the end of the previous
/// frame's transmission time.
pub struct RateReplay<I> {
    inner: I,
    scale_num: u128,
    scale_den: u128,
    first_ts: Option<u64>,
    /// Earliest time the link can emit the next frame.
    link_free_at: u64,
    /// Line rate in bits per second.
    line_rate_bps: f64,
}

impl<I> RateReplay<I>
where
    I: Iterator<Item = Packet>,
{
    /// Replay `inner` so that a trace whose natural rate is
    /// `natural_rate_bps` plays back at `target_rate_bps` over a
    /// 10 Gbit/s link.
    ///
    /// The natural rate comes from [`crate::TraceStats::mean_rate_bps`]
    /// or is known by construction for synthetic traces.
    pub fn new(inner: I, natural_rate_bps: f64, target_rate_bps: f64) -> Self {
        Self::with_line_rate(inner, natural_rate_bps, target_rate_bps, 10e9)
    }

    /// Replay over a link of the given line rate.
    pub fn with_line_rate(
        inner: I,
        natural_rate_bps: f64,
        target_rate_bps: f64,
        line_rate_bps: f64,
    ) -> Self {
        assert!(natural_rate_bps > 0.0 && target_rate_bps > 0.0);
        assert!(line_rate_bps >= target_rate_bps, "target exceeds line rate");
        // ts' = ts * natural / target, in fixed point.
        let scale_num = (natural_rate_bps * 1e6) as u128;
        let scale_den = (target_rate_bps * 1e6) as u128;
        RateReplay {
            inner,
            scale_num,
            scale_den: scale_den.max(1),
            first_ts: None,
            link_free_at: 0,
            line_rate_bps,
        }
    }
}

impl<I> Iterator for RateReplay<I>
where
    I: Iterator<Item = Packet>,
{
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        let mut p = self.inner.next()?;
        let base = *self.first_ts.get_or_insert(p.ts_ns);
        let rel = (p.ts_ns - base) as u128;
        let scaled = base + ((rel * self.scale_num) / self.scale_den) as u64;
        // Serialize on the link.
        let ts = scaled.max(self.link_free_at);
        let wire_ns = (p.len() as f64 * 8.0 / self.line_rate_bps * 1e9) as u64;
        self.link_free_at = ts + wire_ns.max(1);
        p.ts_ns = ts;
        Some(p)
    }
}

/// Compute the mean rate (bits/sec) of a packet slice, for feeding
/// [`RateReplay::new`].
pub fn natural_rate_bps(packets: &[Packet]) -> f64 {
    if packets.len() < 2 {
        return 0.0;
    }
    let bytes: u64 = packets.iter().map(|p| p.len() as u64).sum();
    let dur_ns = packets.last().unwrap().ts_ns - packets.first().unwrap().ts_ns;
    if dur_ns == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / (dur_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize, gap_ns: u64, size: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(1_000 + i as u64 * gap_ns, vec![0u8; size]))
            .collect()
    }

    #[test]
    fn doubling_rate_halves_duration() {
        let t = trace(100, 1_000_000, 1000);
        let natural = natural_rate_bps(&t);
        let replayed: Vec<Packet> =
            RateReplay::new(t.clone().into_iter(), natural, natural * 2.0).collect();
        let orig_dur = t.last().unwrap().ts_ns - t.first().unwrap().ts_ns;
        let new_dur = replayed.last().unwrap().ts_ns - replayed.first().unwrap().ts_ns;
        let ratio = orig_dur as f64 / new_dur as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn identity_rate_preserves_timestamps() {
        let t = trace(10, 500, 100);
        let natural = natural_rate_bps(&t);
        let replayed: Vec<Packet> =
            RateReplay::new(t.clone().into_iter(), natural, natural).collect();
        assert_eq!(t, replayed);
    }

    #[test]
    fn achieved_rate_matches_target() {
        let t = trace(1000, 2_000_000, 800);
        let natural = natural_rate_bps(&t);
        for target in [1e9, 2.5e9, 6e9] {
            let replayed: Vec<Packet> =
                RateReplay::new(t.clone().into_iter(), natural, target).collect();
            let achieved = natural_rate_bps(&replayed);
            assert!(
                (achieved - target).abs() / target < 0.01,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn ordering_preserved() {
        let t = trace(50, 123_456, 64);
        let replayed: Vec<Packet> = RateReplay::new(t.into_iter(), 1e9, 3.3e9).collect();
        assert!(replayed.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
