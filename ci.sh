#!/usr/bin/env bash
# CI gate: build, test, lint, format. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "== benches compile =="
cargo bench --no-run

echo "== telemetry + store smoke run =="
smoke_out=$(mktemp -d)
cargo run --release -p scap-bench --bin experiments -- \
    --exp telemetry store --scale smoke --out "$smoke_out" >/dev/null
for f in telemetry_counters.csv telemetry_series.csv telemetry_table.txt \
         telemetry_stages.csv store_archive.csv store_priorities.csv \
         BENCH_summary.json; do
    test -s "$smoke_out/$f" || { echo "missing $f"; exit 1; }
done
grep -q '"store"' "$smoke_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a store section"; exit 1; }
rm -rf "$smoke_out"

echo "== warm-restart chaos seed matrix =="
for seed in 11 23 47; do
    SCAP_CHAOS_SEED=$seed cargo test -q -p scap-bench --test chaos \
        kill_and_resume_storm_preserves_streams >/dev/null \
        || { echo "kill/resume storm failed with seed $seed"; exit 1; }
done

echo "== warm-restart recovery table =="
restart_out=$(mktemp -d)
cargo run --release -p scap-bench --bin experiments -- \
    --exp restart --scale smoke --out "$restart_out" >/dev/null
grep -q '"restart"' "$restart_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a restart section"; exit 1; }
test -s "$restart_out/restart_recovery.csv" \
    || { echo "missing restart_recovery.csv"; exit 1; }
rm -rf "$restart_out"

echo "== scapcat --supervise smoke =="
sup_out=$(mktemp -d)
cargo run --release -p scap-bench --bin scapcat -- --gen 4 "$sup_out/trace.pcap" >/dev/null
sup_log=$(cargo run --release -p scap-bench --bin scapcat -- \
    "$sup_out/trace.pcap" --supervise --kill-at 2500 \
    --checkpoint-every 500 --ckpt "$sup_out/scap.ckpt" 2>&1)
echo "$sup_log" | grep -q "resuming" \
    || { echo "supervisor never resumed: $sup_log"; exit 1; }
echo "$sup_log" | grep -q "supervised capture complete after 1 restart" \
    || { echo "supervisor did not complete after one restart: $sup_log"; exit 1; }
cargo run --release -p scap-bench --bin scapstore -- \
    verify "$sup_out/scap.ckpt" --repair >/dev/null \
    || { echo "checkpoint left by the supervisor failed verify"; exit 1; }

echo "== flight black box after the kill =="
test -s "$sup_out/scap.ckpt.flight" \
    || { echo "crash left no flight black box next to the checkpoint"; exit 1; }
bb_log=$(cargo run --release -p scap-bench --bin scapstore -- \
    verify "$sup_out/scap.ckpt.flight") \
    || { echo "flight black box failed to decode"; exit 1; }
echo "$bb_log" | grep -q "flight black box is clean" \
    || { echo "black box decode did not report clean: $bb_log"; exit 1; }
rm -rf "$sup_out"

echo "== flight reconciliation =="
flight_out=$(mktemp -d)
# The experiment asserts flight-vs-telemetry sums, the conservation
# identity, determinism, and the restart cross-check; any mismatch
# panics, so a zero exit *is* the reconciliation proof.
cargo run --release -p scap-bench --bin experiments -- \
    --exp flight --scale smoke --out "$flight_out" >/dev/null \
    || { echo "flight reconciliation failed"; exit 1; }
grep -q '"flight"' "$flight_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a flight section"; exit 1; }
cargo run --release -p scap-bench --bin scapstore -- \
    verify "$flight_out/flight_journal.bin" >/dev/null \
    || { echo "flight journal failed to decode"; exit 1; }
rm -rf "$flight_out"

echo "== scaptop smoke =="
top_log=$(cargo run --release -p scap-bench --bin scaptop -- \
    --gen 2 --interval 2000 --topk 5 --cutoff 16384) \
    || { echo "scaptop smoke run failed"; exit 1; }
echo "$top_log" | grep -q "capture complete" \
    || { echo "scaptop never completed: $top_log"; exit 1; }
echo "$top_log" | grep -q "top drop reasons" \
    || { echo "scaptop printed no drop attribution"; exit 1; }

echo "== scapstore smoke =="
store_out=$(mktemp -d)
cargo run --release -p scap-bench --bin scapcat -- --gen 2 "$store_out/trace.pcap" >/dev/null
cargo run --release -p scap-bench --bin scapstore -- \
    write "$store_out/archive" "$store_out/trace.pcap" --cutoff 16384 >/dev/null
q=$(cargo run --release -p scap-bench --bin scapstore -- \
    query "$store_out/archive" "tcp and port 80" | tail -1)
case "$q" in
    "0 stream(s) matched"|"") echo "scapstore query returned nothing: $q"; exit 1 ;;
esac
cargo run --release -p scap-bench --bin scapstore -- verify "$store_out/archive" >/dev/null \
    || { echo "scapstore verify failed on a fresh archive"; exit 1; }
rm -rf "$store_out"

echo "CI green."
