//! scapd — multi-tenant capture daemon over a filesystem control dir.
//!
//! N tenants attach with their own capture spec (BPF filter, cutoff,
//! priority, quota shares); scapd merges the union into one live
//! capture and demultiplexes events per tenant through the
//! [`TenantEngine`] slow-consumer ladder. Clients talk to the daemon
//! through plain files in the control directory, so the protocol needs
//! no sockets and is trivially scriptable from CI:
//!
//! ```text
//! attach-<name>.conf   client -> scapd   key=value spec (scapctl attach)
//! <name>.attached      scapd -> client   admission grant (id, queue cap)
//! <name>.rejected      scapd -> client   admission error text
//! <name>.spool         scapd -> client   delivery records, append-only
//! <name>.ack           client -> scapd   consumed spool offset (flow control)
//! detach-<name>        client -> scapd   hot-remove request
//! shutdown             client -> scapd   stop the capture early
//! scapd-status.tsv     scapd -> anyone   live per-tenant panel (scaptop --scapd)
//! scapd-status.json    scapd -> CI       final machine-readable status
//! scapd-done           scapd -> anyone   capture over; content "ok" or error
//! ```
//!
//! Flow control is a per-tenant ack window accounted in payload
//! bytes: the client writes the payload byte count it has consumed to
//! its `.ack` file, and scapd only spools a delivery while
//! `spooled_payload - acked_payload < window`. A consumer that stops
//! acking exhausts its window, its queue fills, and the ladder
//! (degrade -> drop-with-provenance -> disconnect) engages without
//! ever head-of-line-blocking the other tenants.
//!
//! ```text
//! scapd --dir /tmp/ctl --await-tenants 2 --gen 2 --seed 42
//! ```

use scap::tenant::{TenantEngine, TenantSpec, TenantState};
use scap::{EventKind, ScapConfig, ScapKernel};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::Packet;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("scapd: {msg}");
    std::process::exit(2);
}

/// Write `content` to `path` atomically (tmp file + rename) so readers
/// polling the control dir never observe a half-written file.
fn write_atomic(path: &Path, content: &str) {
    let tmp = path.with_extension("tmp-scapd");
    std::fs::write(&tmp, content)
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
}

/// Parse a `key=value` attach spec. Unknown keys are an error so a
/// typo'd quota line cannot silently attach with defaults.
fn parse_spec(name: &str, text: &str) -> Result<TenantSpec, String> {
    let mut spec = TenantSpec {
        name: name.to_string(),
        filter: None,
        cutoff: None,
        priority: 0,
        mem_share: 100,
        disk_share: 100,
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed line {line:?}"))?;
        let (k, v) = (k.trim(), v.trim());
        match k {
            "filter" => spec.filter = (!v.is_empty()).then(|| v.to_string()),
            "cutoff" => spec.cutoff = Some(v.parse().map_err(|_| format!("bad cutoff {v:?}"))?),
            "priority" => spec.priority = v.parse().map_err(|_| format!("bad priority {v:?}"))?,
            "mem_share" => {
                spec.mem_share = v.parse().map_err(|_| format!("bad mem_share {v:?}"))?
            }
            "disk_share" => {
                spec.disk_share = v.parse().map_err(|_| format!("bad disk_share {v:?}"))?
            }
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    Ok(spec)
}

/// Per-tenant spool bookkeeping: the append-only delivery file plus
/// how far the consumer has acked it.
struct Spool {
    path: PathBuf,
    /// Payload bytes represented by spooled `d` records.
    payload: u64,
}

impl Spool {
    fn open(dir: &Path, name: &str) -> Spool {
        let path = dir.join(format!("{name}.spool"));
        // Truncate any stale spool from a previous run of this name.
        std::fs::write(&path, b"").unwrap_or_else(|e| die(&format!("cannot create spool: {e}")));
        Spool { path, payload: 0 }
    }

    fn append(&mut self, records: &str, payload: u64) {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .unwrap_or_else(|e| die(&format!("cannot append spool: {e}")));
        f.write_all(records.as_bytes())
            .unwrap_or_else(|e| die(&format!("spool write failed: {e}")));
        self.payload += payload;
    }
}

fn read_ack(dir: &Path, name: &str) -> u64 {
    std::fs::read_to_string(dir.join(format!("{name}.ack")))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

struct Daemon {
    dir: PathBuf,
    engine: TenantEngine,
    base: ScapConfig,
    window: u64,
    /// Tenant names whose attach request has been processed (grant or
    /// reject), so a lingering conf file is not re-admitted.
    processed: HashSet<String>,
    spools: HashMap<u64, (String, Spool)>,
    /// Acked payload bytes per tenant id, cached from the `.ack`
    /// files so the per-packet drain pass does not hit the fs.
    acks: HashMap<u64, u64>,
    detached: Vec<(String, scap::TenantStats)>,
}

impl Daemon {
    /// Scan for new `attach-<name>.conf` files and run admission on
    /// each. With a live kernel the tenant table and merged config are
    /// hot-applied; before the capture starts `kernel` is `None`.
    fn process_attaches(&mut self, now_ns: u64, mut kernel: Option<&mut ScapKernel>) {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let fname = e.file_name().to_string_lossy().into_owned();
                if let Some(rest) = fname
                    .strip_prefix("attach-")
                    .and_then(|r| r.strip_suffix(".conf"))
                {
                    if !rest.is_empty() && !self.processed.contains(rest) {
                        names.push(rest.to_string());
                    }
                }
            }
        }
        names.sort(); // deterministic admission order within a scan
        for name in names {
            self.processed.insert(name.clone());
            let conf = self.dir.join(format!("attach-{name}.conf"));
            let text = std::fs::read_to_string(&conf).unwrap_or_default();
            let verdict = match parse_spec(&name, &text) {
                Err(e) => Err(e),
                Ok(spec) => self
                    .engine
                    .attach(spec, now_ns, kernel.as_deref_mut().map(|k| k.flight_mut()))
                    .map_err(|e| e.to_string()),
            };
            match verdict {
                Ok(id) => {
                    let cap = self.engine.tenant(id).map(|t| t.queue_cap()).unwrap_or(0);
                    self.spools
                        .insert(id, (name.clone(), Spool::open(&self.dir, &name)));
                    write_atomic(
                        &self.dir.join(format!("{name}.attached")),
                        &format!("id={id}\nqueue_cap={cap}\n"),
                    );
                    eprintln!("scapd: tenant {name} attached (id {id}, queue cap {cap} B)");
                    if let Some(k) = kernel.as_deref_mut() {
                        self.reconfigure(k);
                    }
                }
                Err(e) => {
                    write_atomic(
                        &self.dir.join(format!("{name}.rejected")),
                        &format!("{e}\n"),
                    );
                    eprintln!("scapd: tenant {name} rejected: {e}");
                }
            }
        }
    }

    /// Scan for `detach-<name>` markers and hot-remove those tenants.
    fn process_detaches(&mut self, now_ns: u64, kernel: &mut ScapKernel) {
        let names: Vec<String> = self
            .engine
            .tenants()
            .iter()
            .filter(|t| self.dir.join(format!("detach-{}", t.spec.name)).exists())
            .map(|t| t.spec.name.clone())
            .collect();
        for name in names {
            let id = self.engine.tenant_by_name(&name).map(|t| t.id);
            if let Some(id) = id {
                if let Some(stats) = self.engine.detach(id, now_ns, Some(kernel.flight_mut())) {
                    self.detached.push((name.clone(), stats));
                }
                self.spools.remove(&id);
                self.acks.remove(&id);
                self.processed.remove(&name); // the name may re-attach later
                let _ = std::fs::remove_file(self.dir.join(format!("detach-{name}")));
                let _ = std::fs::remove_file(self.dir.join(format!("attach-{name}.conf")));
                eprintln!("scapd: tenant {name} detached");
                self.reconfigure(kernel);
            }
        }
    }

    /// Push the tenant set's merged view into the live kernel: the
    /// checkpoint tenant table plus a validated hot config delta.
    fn reconfigure(&mut self, kernel: &mut ScapKernel) {
        kernel.set_tenant_table(self.engine.images());
        match self.engine.config_delta(self.base.clone()) {
            Ok(delta) => {
                if let Err(e) = kernel.try_apply_config(delta) {
                    die(&format!("merged config conflicts with live config: {e}"));
                }
            }
            Err(e) => die(&format!("merged config no longer compiles: {e}")),
        }
    }

    /// Refresh the cached acked-payload counters from the `.ack` files.
    fn refresh_acks(&mut self) {
        let pairs: Vec<(u64, String)> = self
            .spools
            .iter()
            .map(|(id, (name, _))| (*id, name.clone()))
            .collect();
        for (id, name) in pairs {
            self.acks.insert(id, read_ack(&self.dir, &name));
        }
    }

    /// Spool queued deliveries for every tenant whose ack window has
    /// room. A consumer that stops acking stalls only its own spool.
    fn drain_into_spools(&mut self) {
        let ids: Vec<u64> = self.spools.keys().copied().collect();
        for id in ids {
            let spooled = self.spools[&id].1.payload;
            let acked = self.acks.get(&id).copied().unwrap_or(0);
            let allowance = (acked + self.window).saturating_sub(spooled);
            if allowance == 0 {
                continue;
            }
            let deliveries = self.engine.drain(id, allowance);
            if deliveries.is_empty() {
                continue;
            }
            let mut records = String::new();
            let mut payload = 0u64;
            for d in &deliveries {
                match d.kind {
                    0 => records.push_str(&format!("c {}\n", d.uid)),
                    2 => records.push_str(&format!("t {}\n", d.uid)),
                    _ => {
                        let dir = d.dir.map(|x| x.index()).unwrap_or(0);
                        records.push_str(&format!("d {} {} {}\n", d.uid, dir, d.bytes));
                        payload += d.bytes;
                    }
                }
            }
            if let Some((_, sp)) = self.spools.get_mut(&id) {
                sp.append(&records, payload);
            }
        }
    }

    fn write_status(&self, now_ns: u64, fed: usize, total: usize, done: bool) {
        let mut out = format!(
            "# ts_ns={now_ns} fed={fed} total={total} done={}\n",
            u8::from(done)
        );
        out.push_str(
            "tenant\tid\tstate\tmatched_B\tdelivered_B\tdrained_B\tdropped_B\t\
             discarded_B\tqueue_B\tqueue_cap_B\theadroom_B\tstrikes\t\
             spooled_payload_B\tacked_payload_B\n",
        );
        for t in self.engine.tenants() {
            let (qb, _) = t.queue_depth();
            let spool = self
                .spools
                .get(&t.id)
                .map(|(_, sp)| sp.payload)
                .unwrap_or(0);
            let acked = self.acks.get(&t.id).copied().unwrap_or(0);
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                t.spec.name,
                t.id,
                state_name(t.state),
                t.stats.matched_bytes,
                t.stats.delivered_bytes,
                t.stats.drained_bytes,
                t.stats.dropped_bytes,
                t.stats.discarded_bytes,
                qb,
                t.queue_cap(),
                t.quota_headroom(),
                t.stats.strikes,
                spool,
                acked,
            ));
        }
        write_atomic(&self.dir.join("scapd-status.tsv"), &out);
    }

    /// Publish the OpenMetrics exposition as `metrics` in the control
    /// dir (atomic rename, so a scrape never sees a torn file).
    /// `scapctl metrics` reads and validates it. The kernel's pulse
    /// plane and the tenant engine's queue-residency plane merge into
    /// one histogram family — their stages are disjoint.
    fn write_metrics(&self, kernel: &ScapKernel, mode: &str) {
        let mut om = scap::telemetry::openmetrics::OpenMetrics::new();
        let labels = [("proc", "scapd"), ("mode", mode)];
        om.registry(&kernel.telemetry_snapshot(), &labels);
        let mut pulse = kernel.pulse_snapshot();
        pulse.merge(&self.engine.pulse_snapshot());
        om.pulse(&pulse, &labels);
        write_atomic(&self.dir.join("metrics"), &om.finish());
    }

    fn write_final_json(&self, packets: usize, kernel: &ScapKernel) {
        let mut tenants = Vec::new();
        for t in self.engine.tenants() {
            let payload = self
                .spools
                .get(&t.id)
                .map(|(_, sp)| sp.payload)
                .unwrap_or(0);
            tenants.push(format!(
                "{{\"name\": \"{}\", \"id\": {}, \"state\": \"{}\", \
                 \"matched_bytes\": {}, \"delivered_bytes\": {}, \"drained_bytes\": {}, \
                 \"dropped_bytes\": {}, \"discarded_bytes\": {}, \"strikes\": {}, \
                 \"spooled_payload_bytes\": {}, \"conserved\": {}}}",
                t.spec.name,
                t.id,
                state_name(t.state),
                t.stats.matched_bytes,
                t.stats.delivered_bytes,
                t.stats.drained_bytes,
                t.stats.dropped_bytes,
                t.stats.discarded_bytes,
                t.stats.strikes,
                payload,
                t.stats.conserved(),
            ));
        }
        for (name, s) in &self.detached {
            tenants.push(format!(
                "{{\"name\": \"{name}\", \"id\": null, \"state\": \"detached\", \
                 \"matched_bytes\": {}, \"delivered_bytes\": {}, \"drained_bytes\": {}, \
                 \"dropped_bytes\": {}, \"discarded_bytes\": {}, \"strikes\": {}, \
                 \"spooled_payload_bytes\": 0, \"conserved\": {}}}",
                s.matched_bytes,
                s.delivered_bytes,
                s.drained_bytes,
                s.dropped_bytes,
                s.discarded_bytes,
                s.strikes,
                s.conserved(),
            ));
        }
        // Telemetry snapshot: every nonzero counter/gauge, so
        // `scapctl status --json` sees the capture plane, not just the
        // tenant table.
        use scap::telemetry::{Gauge, Metric};
        let snap = kernel.telemetry_snapshot();
        let counters: Vec<String> = Metric::ALL
            .iter()
            .filter_map(|&m| {
                let v = snap.total(m);
                (v != 0).then(|| format!("\"{}\": {v}", m.name()))
            })
            .collect();
        let gauges: Vec<String> = Gauge::ALL
            .iter()
            .filter_map(|&g| {
                let v = snap.gauge_max(g);
                (v != 0).then(|| format!("\"{}\": {v}", g.name()))
            })
            .collect();
        let mut pulse = kernel.pulse_snapshot();
        pulse.merge(&self.engine.pulse_snapshot());
        let latency: Vec<String> = scap::telemetry::PulseStage::ALL
            .iter()
            .filter_map(|&st| {
                let (count, p50, p99, _) = pulse.summary(st);
                (count != 0).then(|| {
                    format!(
                        "{{\"stage\": \"{}\", \"count\": {count}, \"p50_ns\": {p50}, \
                         \"p99_ns\": {p99}}}",
                        st.name()
                    )
                })
            })
            .collect();
        let json = format!(
            "{{\n  \"packets\": {packets},\n  \"conserved\": {},\n  \"tenants\": [\n    {}\n  ],\n  \
             \"telemetry\": {{\"counters\": {{{}}}, \"gauges\": {{{}}}}},\n  \
             \"latency\": [{}]\n}}\n",
            self.engine.all_conserved(),
            tenants.join(",\n    "),
            counters.join(", "),
            gauges.join(", "),
            latency.join(", "),
        );
        write_atomic(&self.dir.join("scapd-status.json"), &json);
    }
}

fn state_name(s: TenantState) -> &'static str {
    match s {
        TenantState::Active => "active",
        TenantState::Degraded => "degraded",
        TenantState::Disconnected => "disconnected",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: scapd --dir DIR [--await-tenants N] [--gen MB] [--seed N] \
             [--budget BYTES] [--window BYTES] [--pace-us US] [--attach-wait-ms MS]"
        );
        std::process::exit(0);
    }
    let mut dir: Option<PathBuf> = None;
    let mut await_tenants: usize = 1;
    let mut gen_mb: u64 = 2;
    let mut seed: u64 = 42;
    let mut budget: u64 = 256 << 10;
    let mut window: u64 = 64 << 10;
    let mut pace_us: u64 = 300;
    let mut attach_wait_ms: u64 = 30_000;
    let numarg = |args: &[String], i: usize, name: &str| -> u64 {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{name} needs a number")))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--dir needs a path")),
                ));
            }
            "--await-tenants" => {
                i += 1;
                await_tenants = numarg(&args, i, "--await-tenants") as usize;
            }
            "--gen" => {
                i += 1;
                gen_mb = numarg(&args, i, "--gen");
            }
            "--seed" => {
                i += 1;
                seed = numarg(&args, i, "--seed");
            }
            "--budget" => {
                i += 1;
                budget = numarg(&args, i, "--budget");
            }
            "--window" => {
                i += 1;
                window = numarg(&args, i, "--window");
            }
            "--pace-us" => {
                i += 1;
                pace_us = numarg(&args, i, "--pace-us");
            }
            "--attach-wait-ms" => {
                i += 1;
                attach_wait_ms = numarg(&args, i, "--attach-wait-ms");
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let dir = dir.unwrap_or_else(|| die("--dir is required"));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    // A fresh run owns the dir: clear markers a previous run left.
    for stale in [
        "scapd-done",
        "scapd-status.tsv",
        "scapd-status.json",
        "metrics",
        "shutdown",
    ] {
        let _ = std::fs::remove_file(dir.join(stale));
    }

    let mut d = Daemon {
        dir,
        engine: TenantEngine::new(budget, 8),
        base: ScapConfig::default(),
        window,
        processed: HashSet::new(),
        spools: HashMap::new(),
        acks: HashMap::new(),
        detached: Vec::new(),
    };

    // Admission phase: wait for the requested number of tenants.
    eprintln!(
        "scapd: waiting for {await_tenants} tenant(s) in {}",
        d.dir.display()
    );
    let deadline = Instant::now() + Duration::from_millis(attach_wait_ms);
    while d.engine.tenants().len() < await_tenants {
        d.process_attaches(0, None);
        if d.engine.tenants().len() >= await_tenants {
            break;
        }
        if Instant::now() > deadline {
            write_atomic(&d.dir.join("scapd-done"), "error: attach wait timed out\n");
            die("timed out waiting for tenants to attach");
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let merged = d
        .engine
        .merged_config(d.base.clone())
        .unwrap_or_else(|e| die(&format!("merged config: {e}")));
    // The engine's tenant-queue pulse samples at the same quantile/cap
    // as the kernel plane, so the merged exposition is homogeneous.
    d.engine
        .configure_pulse(merged.pulse_exemplar_permille, merged.pulse_exemplar_cap);
    let mode = match merged.dispatch {
        scap::DispatchMode::Fastpath => "fastpath",
        _ => "classic",
    };
    let mut kernel = ScapKernel::new(merged);
    kernel.set_tenant_table(d.engine.images());

    let packets: Vec<Packet> =
        CampusMix::new(CampusMixConfig::sized(seed, gen_mb << 20)).collect_all();
    let total = packets.len();
    eprintln!(
        "scapd: capture starting — {} tenants, {} packets, budget {} B, window {} B",
        d.engine.tenants().len(),
        total,
        budget,
        window
    );

    let mut now = 0u64;
    for (idx, pkt) in packets.iter().enumerate() {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                kernel.note_delivery(&ev, now);
                d.engine.on_event(&ev, kernel.flight_mut());
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        d.drain_into_spools();
        if ((idx + 1) % 64) == 0 {
            d.refresh_acks();
            d.process_attaches(now, Some(&mut kernel));
            d.process_detaches(now, &mut kernel);
            if ((idx + 1) % 512) == 0 {
                d.write_status(now, idx + 1, total, false);
                d.write_metrics(&kernel, mode);
            }
            if d.dir.join("shutdown").exists() {
                eprintln!("scapd: shutdown requested at packet {}", idx + 1);
                break;
            }
            if pace_us > 0 {
                std::thread::sleep(Duration::from_micros(pace_us));
            }
        }
    }

    kernel.finish(now.saturating_add(1));
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            kernel.note_delivery(&ev, now.saturating_add(1));
            d.engine.on_event(&ev, kernel.flight_mut());
            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }

    // Grace period: let live consumers ack and drain the tail. A
    // stalled consumer's window stays exhausted and cannot hold the
    // daemon past the deadline.
    let grace = Instant::now() + Duration::from_millis(2_000);
    loop {
        d.refresh_acks();
        d.drain_into_spools();
        let backlog: u64 = d
            .engine
            .tenants()
            .iter()
            .filter(|t| t.state != TenantState::Disconnected)
            .map(|t| t.queue_depth().0)
            .sum();
        if backlog == 0 || Instant::now() > grace {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    d.write_status(now.saturating_add(1), total, total, true);
    d.write_metrics(&kernel, mode);
    d.write_final_json(total, &kernel);
    let conserved = d.engine.all_conserved();
    for t in d.engine.tenants() {
        eprintln!(
            "scapd: tenant {} [{}] matched {} B = delivered {} + dropped {} + discarded {}",
            t.spec.name,
            state_name(t.state),
            t.stats.matched_bytes,
            t.stats.delivered_bytes,
            t.stats.dropped_bytes,
            t.stats.discarded_bytes,
        );
    }
    if conserved {
        write_atomic(&d.dir.join("scapd-done"), "ok\n");
        eprintln!("scapd: capture complete, conservation holds");
    } else {
        write_atomic(&d.dir.join("scapd-done"), "error: conservation violated\n");
        die("per-tenant conservation identity violated");
    }
}
