#![warn(missing_docs)]

//! # scap — stream-oriented network traffic capture and analysis
//!
//! A from-scratch Rust reproduction of **Scap** (Papadogiannakis,
//! Polychronakis, Markatos — *Scap: Stream-Oriented Network Traffic
//! Capture and Analysis for High-Speed Networks*, IMC 2013).
//!
//! Scap elevates the transport-layer **stream** to the first-class object
//! of a capture framework: flow tracking and TCP reassembly run inside
//! the (emulated) kernel module, applications receive reassembled chunks
//! in stream-specific memory, uninteresting traffic is discarded as early
//! as possible — in the kernel or on the (emulated) NIC via flow-director
//! filters ("subzero copy") — and overload is absorbed by Prioritized
//! Packet Loss instead of random drops.
//!
//! ## Quickstart (§3.3.1 — flow statistics export)
//!
//! ```
//! use scap::{Scap, StreamCtx};
//!
//! // scap_create + scap_set_cutoff(0) + scap_dispatch_termination
//! let mut scap = Scap::builder()
//!     .cutoff(0)                      // headers only: all data discarded
//!     .try_build()
//!     .expect("valid configuration");
//! scap.dispatch_termination(|ctx: &StreamCtx<'_>| {
//!     println!(
//!         "{} -> {} bytes={} pkts={}",
//!         ctx.stream.key,
//!         ctx.stream.status_str(),
//!         ctx.stream.total_bytes(),
//!         ctx.stream.total_pkts()
//!     );
//! });
//!
//! // Capture from a (synthetic) trace instead of a live interface.
//! let trace = scap_trace::gen::CampusMix::new(
//!     scap_trace::gen::CampusMixConfig::sized(42, 1 << 20),
//! );
//! let stats = scap.start_capture(trace);
//! assert!(stats.stack.streams_created > 0);
//! ```
//!
//! ## Crate map
//!
//! * [`config`] — every knob of the paper's Table 1.
//! * [`kernel`] — the emulated kernel module (flow tracking, in-kernel
//!   reassembly, chunk memory, events, FDIR management, PPL).
//! * [`stack`] — the simulation driver ([`stack::ScapSimStack`]) that
//!   runs the same kernel under the discrete-time performance engine,
//!   plus the built-in application models used by the experiments.
//! * [`live`] — the threaded driver: per-core worker threads consuming
//!   event queues, as `scap_start_capture` does.
//! * [`sharing`] — multiple applications on one capture (§5.6): the
//!   kernel reassembles once under a generalized configuration and each
//!   application sees its own filtered, cutoff-limited view.
//! * [`event`] — events and the consistent per-event stream snapshot.

pub mod checkpoint;
pub mod config;
pub mod event;
pub mod governor;
pub mod kernel;
pub mod live;
pub mod shard;
pub mod sharing;
pub mod stack;
pub mod tenant;

pub use checkpoint::{CheckpointError, CheckpointImage, TenantImage};
pub use config::{
    ConfigDelta, ConfigError, CutoffPolicy, DispatchMode, PriorityPolicy, ScapConfig,
};
pub use event::{Event, EventKind, PacketRecord, StreamSnapshot, StreamUid};
pub use governor::{GovernorConfig, GovernorStats, OverloadGovernor};
pub use kernel::{ControlOp, ResilienceStats, ScapKernel, ScapStats};
pub use live::{
    mangle_packets, BuildError, CaptureError, EventSink, Scap, ScapBuilder, StatsHandler,
    StreamCtx, WorkerStatus,
};
pub use shard::{FleetConfig, FleetStats, ShardFleet, ShardStatus};
pub use sharing::{
    union_config, union_priorities, union_requirements, AppSlot, Requirement, SharedApp, SharedApps,
};
pub use stack::{apps, ScapSimStack, SimApp};
pub use tenant::{
    AdmissionError, Delivery, Tenant, TenantEngine, TenantSpec, TenantState, TenantStats,
};

// Re-export the vocabulary types applications see.
pub use scap_faults::{FaultPlan, ShardFault, ShardFaultKind};
/// The always-on flight recorder (per-core ring journals of typed
/// events with drop provenance), re-exported for applications and
/// tools.
pub use scap_flight as flight;
pub use scap_flight::{DropReason, FlightEvent, FlightKind, FlightLayer, FlightRecorder};
pub use scap_flow::{DirStats, StreamErrors, StreamStatus};
/// The programmable per-flow offload stage (rule types, action table,
/// stats), re-exported for applications installing `Mark`/`Sample`/
/// `Bypass`/`Drop` rules and tools reading the counters.
pub use scap_offload::{
    OffloadAction, OffloadError, OffloadRule, OffloadStats, OffloadTable, OffloadVerdict,
    DEFAULT_OFFLOAD_CAPACITY,
};
pub use scap_reassembly::{OverlapPolicy, ReassemblyMode};
/// The scale-out sharding primitives (symmetric partitioning, leases,
/// backoff, circuit breakers), re-exported for supervisors and tools.
pub use scap_shard::{Backoff, CircuitBreaker, Lease, ShardMap, ShardState};
/// The observability subsystem (metric registries, stage spans, gauge
/// time-series, exporters), re-exported for applications and tools.
pub use scap_telemetry as telemetry;
pub use scap_wire::{Direction, FlowKey, Transport};
