//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of proptest the workspace uses: the `proptest!`
//! macro (both `name in strategy` and `name: Type` parameters), the
//! `prop_assert*` / `prop_assume!` macros, `any::<T>()`, numeric range
//! strategies, tuple strategies, and `collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **Deterministic**: every test's input stream is seeded from its
//!   fully-qualified name, so failures reproduce without a regression
//!   file and CI runs are stable.
//! * **No shrinking**: a failing case reports the assertion directly;
//!   with fixed seeds the failing input is always regenerated.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, UniformSampled};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: UniformSampled> Strategy for core::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: UniformSampled> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    //! Type-driven generation (`any::<T>()` and `name: Type` parameters).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical whole-domain generation strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i32, i64, bool, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.random();
            }
            out
        }
    }

    /// Strategy adapter produced by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case scheduling for the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cases executed per property (fixed; no env override so runs are
    /// reproducible everywhere).
    pub const CASES: u32 = 64;

    /// Seed a generator from a test's fully-qualified name, so each
    /// property gets a distinct but stable input stream.
    pub fn rng_for(name: &str) -> StdRng {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use rand::rngs::StdRng as TestRng;
pub use rand::SeedableRng as TestSeedableRng;

// Re-export so `$crate::...` paths in the macros resolve from any crate.
#[doc(hidden)]
pub use rand as __rand;

/// Assert a condition inside a property (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current generated case when a precondition fails.
///
/// Expands to `continue` on the per-case loop, so it must appear at the
/// top level of the property body (true for every use in this workspace).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define deterministic property tests.
///
/// Supports the standard proptest surface used in this workspace:
/// `fn name(x in strategy, y: Type, ...) { body }`, doc comments, and
/// the `#[test]` attribute (which is forwarded to the generated fn).
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block $($rest:tt)*) => {
        $crate::__proptest_impl!($(#[$meta])* fn $name $body [$($params)*] []);
        $crate::proptest! { $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    // All parameters parsed: emit the test fn running CASES iterations.
    ($(#[$meta:meta])* fn $name:ident $body:block [] [$(($p:ident, $s:expr))*]) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..$crate::test_runner::CASES {
                let _ = __case;
                $(let $p = ($s).generate(&mut __rng);)*
                $body
            }
        }
    };
    // `name in strategy, rest...`
    ($(#[$meta:meta])* fn $name:ident $body:block
     [$p:ident in $s:expr, $($rest:tt)*] [$($acc:tt)*]) => {
        $crate::__proptest_impl!($(#[$meta])* fn $name $body [$($rest)*] [$($acc)* ($p, $s)]);
    };
    // `name in strategy` (final, no trailing comma)
    ($(#[$meta:meta])* fn $name:ident $body:block
     [$p:ident in $s:expr] [$($acc:tt)*]) => {
        $crate::__proptest_impl!($(#[$meta])* fn $name $body [] [$($acc)* ($p, $s)]);
    };
    // `name: Type, rest...`
    ($(#[$meta:meta])* fn $name:ident $body:block
     [$p:ident : $t:ty, $($rest:tt)*] [$($acc:tt)*]) => {
        $crate::__proptest_impl!($(#[$meta])* fn $name $body [$($rest)*]
            [$($acc)* ($p, $crate::arbitrary::any::<$t>())]);
    };
    // `name: Type` (final, no trailing comma)
    ($(#[$meta:meta])* fn $name:ident $body:block
     [$p:ident : $t:ty] [$($acc:tt)*]) => {
        $crate::__proptest_impl!($(#[$meta])* fn $name $body []
            [$($acc)* ($p, $crate::arbitrary::any::<$t>())]);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Mixed parameter styles all bind, with a trailing comma.
        #[test]
        fn mixed_params(
            v in crate::collection::vec(any::<u8>(), 0..10),
            pair in (0u8..3, 1usize..5),
            seed: u64,
            arr: [u8; 4],
            flag: bool,
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(pair.0 < 3 && pair.1 >= 1 && pair.1 < 5);
            let _ = (seed, arr, flag);
        }

        /// Single `in` parameter without trailing comma.
        #[test]
        fn single_in(x in 5u32..9) {
            prop_assert!((5..9).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        /// Typed parameters on one line, as the filter tests write them.
        #[test]
        fn inline_typed(a: [u8; 4], b: [u8; 16], p: u16, q in 0usize..4) {
            let _ = (a, b, p);
            prop_assume!(q != 3);
            prop_assert!(q < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(crate::arbitrary::any::<u8>(), 1..20);
        let mut r1 = crate::test_runner::rng_for("same::name");
        let mut r2 = crate::test_runner::rng_for("same::name");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
