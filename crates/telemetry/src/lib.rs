#![warn(missing_docs)]

//! # scap-telemetry
//!
//! A zero-dependency observability subsystem for the Scap reproduction:
//! the always-on instrumentation layer every other crate records into.
//!
//! * [`Registry`] — a sharded (per-core) metrics registry of monotonic
//!   counters, gauges, and log2-bucketed stage histograms. Metric
//!   identities are static enums ([`Metric`], [`Gauge`], [`Stage`]), so a
//!   hot-path record is an indexed add into a preallocated cell — never a
//!   hashmap lookup or an allocation. The cell type is generic:
//!   [`PlainRegistry`] (`Cell<u64>`) for the single-threaded-driven
//!   kernel/sim path, [`AtomicRegistry`] (`AtomicU64`, relaxed) for the
//!   live driver's worker threads.
//! * [`Hist64`] — a fixed 64-bucket log2 histogram; bucket boundaries are
//!   powers of two, so recording is a `leading_zeros` and one add.
//! * [`Sampler`] — a periodic gauge sampler writing bounded in-memory
//!   time-series rings, keyed on the *caller's* clock: virtual/trace time
//!   under simulation (deterministic per seed), wall-derived trace time
//!   live.
//! * [`SpanTimer`] — wall-clock stage timing for the live driver; the
//!   simulation records virtual cycles into the same stage histograms.
//! * [`export`] — hand-rolled JSON-lines / CSV / aligned-table exporters
//!   (plus a JSON-lines parser for round-trip verification). No serde.
//!
//! Everything is deterministic given deterministic inputs: snapshots are
//! plain data (`PartialEq`), iteration orders are the declaration orders
//! of the static enums, and nothing here reads the wall clock except
//! [`SpanTimer`], which only the live driver uses.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

pub mod export;
mod hist;
mod registry;
mod sampler;

pub use hist::{bucket_of, bucket_range, Hist64, HistSnapshot, BUCKETS};
pub use pulse::{cycles_to_ns, Exemplar, Pulse, PulseSnapshot, CORE_HZ};
pub use registry::{AtomicRegistry, PlainRegistry, Registry, ShardSnapshot, Snapshot};
pub use sampler::{SamplePoint, Sampler};

/// A counter/gauge cell: the one storage primitive the registry is
/// generic over. Implemented by `Cell<u64>` (plain, single-threaded
/// driver) and `AtomicU64` (relaxed, live worker threads).
pub trait MetricCell: Default {
    /// Add `v` (monotonic counters, histogram buckets).
    fn add(&self, v: u64);
    /// Overwrite with `v` (gauges).
    fn set(&self, v: u64);
    /// Read the current value.
    fn get(&self) -> u64;
}

impl MetricCell for Cell<u64> {
    #[inline]
    fn add(&self, v: u64) {
        self.set(self.get().wrapping_add(v));
    }
    #[inline]
    fn set(&self, v: u64) {
        Cell::set(self, v);
    }
    #[inline]
    fn get(&self) -> u64 {
        Cell::get(self)
    }
}

impl MetricCell for AtomicU64 {
    #[inline]
    fn add(&self, v: u64) {
        self.fetch_add(v, Ordering::Relaxed);
    }
    #[inline]
    fn set(&self, v: u64) {
        self.store(v, Ordering::Relaxed);
    }
    #[inline]
    fn get(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }
}

macro_rules! static_ids {
    ($(#[$meta:meta])* $name:ident {
        $($(#[$vmeta:meta])* $var:ident => $s:literal,)+
    }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vmeta])* $var,)+
        }

        impl $name {
            /// Number of variants (array dimension for registries).
            pub const COUNT: usize = [$($name::$var),+].len();
            /// All variants in declaration (and export) order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$var),+];

            /// Stable wire name used by every exporter.
            pub const fn name(self) -> &'static str {
                match self { $($name::$var => $s,)+ }
            }

            /// Reverse lookup by wire name.
            pub fn from_name(s: &str) -> Option<Self> {
                match s { $($s => Some($name::$var),)+ _ => None }
            }

            /// Index into a registry array.
            #[inline]
            pub const fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

static_ids! {
    /// Monotonic counters. Declaration order is the stable export order;
    /// indices are the registry array layout, so only append.
    Metric {
        /// Packets seen on the wire (pre-NIC-filter).
        WirePackets => "wire_packets",
        /// Bytes seen on the wire.
        WireBytes => "wire_bytes",
        /// Packets whose payload reached the application (stack exit 1).
        DeliveredPackets => "delivered_packets",
        /// Payload bytes copied into stream memory.
        DeliveredBytes => "delivered_bytes",
        /// Packets lost to overload (stack exit 2).
        DroppedPackets => "dropped_packets",
        /// Bytes lost to overload.
        DroppedBytes => "dropped_bytes",
        /// Packets intentionally not captured (stack exit 3).
        DiscardedPackets => "discarded_packets",
        /// Bytes intentionally not captured.
        DiscardedBytes => "discarded_bytes",
        /// Frames the NIC received from the wire.
        NicRxFrames => "nic_rx_frames",
        /// Bytes the NIC received from the wire.
        NicRxBytes => "nic_rx_bytes",
        /// Frames dropped in hardware by FDIR filters (subzero copy).
        NicFdirDropFrames => "nic_fdir_drop_frames",
        /// Frames steered by FDIR to an explicit queue.
        NicFdirSteeredFrames => "nic_fdir_steered_frames",
        /// Frames accepted into an RX descriptor ring.
        NicRingPushes => "nic_ring_pushes",
        /// Frames dropped because the target ring was full.
        NicRingFullDrops => "nic_ring_full_drops",
        /// FDIR programming operations (install/remove).
        NicFdirOps => "nic_fdir_ops",
        /// FDIR programming operations that failed (table full, busy).
        NicFdirOpFailures => "nic_fdir_op_failures",
        /// Flow-table hash probes in the kernel lookup path.
        KernelHashProbes => "kernel_hash_probes",
        /// Completed chunks placed into stream memory.
        KernelChunksPlaced => "kernel_chunks_placed",
        /// Payload bytes the kernel copied into chunk memory.
        KernelBytesCopied => "kernel_bytes_copied",
        /// Events enqueued onto per-core event queues.
        KernelEventsEnqueued => "kernel_events_enqueued",
        /// Events dropped because an event queue was at capacity.
        KernelEventsDropped => "kernel_events_dropped",
        /// Successful arena chunk allocations.
        ArenaAllocs => "arena_allocs",
        /// Arena chunk releases.
        ArenaReleases => "arena_releases",
        /// Failed arena allocations (memory pressure).
        ArenaAllocFailures => "arena_alloc_failures",
        /// PPL verdicts that accepted the packet.
        PplAccepts => "ppl_accepts",
        /// PPL verdicts dropped by a priority watermark.
        PplWatermarkDrops => "ppl_watermark_drops",
        /// PPL verdicts dropped by the overload cutoff.
        PplCutoffDrops => "ppl_cutoff_drops",
        /// Overload-governor level changes (up or down).
        GovernorTransitions => "governor_transitions",
        /// Events a worker thread pulled and dispatched.
        WorkerEventsHandled => "worker_events_handled",
        /// Streams sealed into the on-disk archive (`scap-store`).
        StoreStreamsArchived => "store_streams_archived",
        /// Payload bytes appended to archive segment files.
        StoreBytesWritten => "store_bytes_written",
        /// Archive segment files opened (initial + rotations).
        StoreSegmentsCreated => "store_segments_created",
        /// Archived streams pruned by the disk-budget retention policy.
        StoreStreamsPruned => "store_streams_pruned",
        /// Bytes reclaimed by archive compaction.
        StoreBytesReclaimed => "store_bytes_reclaimed",
        /// Torn-tail bytes dropped during archive recovery.
        StoreTornBytesRecovered => "store_torn_bytes_recovered",
        /// Bytes handed to tenant delivery queues (`scapd` demux).
        TenantDeliveredBytes => "tenant_delivered_bytes",
        /// Bytes dropped on full tenant queues (slow consumers).
        TenantDroppedBytes => "tenant_dropped_bytes",
        /// Bytes withheld from tenants by quota policy (degraded cutoff
        /// or disconnected tenant).
        TenantDiscardedBytes => "tenant_discarded_bytes",
        /// Tenants forcibly disconnected by the slow-consumer ladder.
        TenantDisconnects => "tenant_disconnects",
        /// Non-empty burst pulls on the poll-mode fast path.
        FastpathBursts => "fastpath_bursts",
        /// Packets dispatched through the poll-mode fast path.
        FastpathPackets => "fastpath_packets",
        /// Frames matched by any offload rule (all actions).
        NicOffloadHits => "nic_offload_hits",
        /// Frames dropped by offload `Drop` rules (subzero copy).
        NicOffloadDropFrames => "nic_offload_drop_frames",
        /// Frames shunted by offload `Bypass` rules.
        NicOffloadBypassFrames => "nic_offload_bypass_frames",
        /// Frames tagged by offload `Mark` rules.
        NicOffloadMarkFrames => "nic_offload_mark_frames",
        /// Frames dropped by offload `Sample` rules (non-kept 1-in-N).
        NicOffloadSampleDrops => "nic_offload_sample_drops",
        /// Offload rule add/remove operations.
        NicOffloadOps => "nic_offload_ops",
        /// Offload rule operations that failed.
        NicOffloadOpFailures => "nic_offload_op_failures",
        /// Offload rules evicted under table pressure.
        NicOffloadEvictions => "nic_offload_evictions",
        /// Cumulative backoff delay scheduled for FDIR install retries,
        /// in nanoseconds (with `ResilienceStats::fdir_retries` this
        /// exposes the exponential-backoff schedule's shape).
        FdirRetryBackoffNs => "fdir_retry_backoff_ns",
        /// FDIR install retries parked on the backoff queue.
        FdirRetriesQueued => "fdir_retries_queued",
    }
}

static_ids! {
    /// Point-in-time gauges, sampled into [`Sampler`] time series.
    Gauge {
        /// Worst RX descriptor-ring fill across queues, in permille.
        RingFillPermille => "ring_fill_permille",
        /// Stream-arena occupancy, in permille of the budget.
        ArenaUsedPermille => "arena_used_permille",
        /// Total queued events across all per-core event queues.
        EventBacklog => "event_backlog",
        /// Current overload-governor level (0–3).
        GovernorLevel => "governor_level",
        /// Perfect-match filters currently installed in the FDIR table.
        FdirFilters => "fdir_filters",
        /// Streams currently tracked across all flow tables.
        TrackedStreams => "tracked_streams",
        /// Sum of worker heartbeat counters (live) or delivered events
        /// (simulation) — a liveness signal.
        WorkerHeartbeats => "worker_heartbeats",
        /// Flow-table index occupancy, in permille (worst core).
        FlowLoadPermille => "flow_load_permille",
        /// Mean flow-table probe length this sample window, in
        /// hundredths of a cache-line group per lookup.
        FlowProbeCentigroups => "flow_probe_centigroups",
        /// Mean fast-path burst fill, in permille of the burst size.
        FastpathFillPermille => "fastpath_fill_permille",
        /// Offload rules currently installed.
        OffloadRules => "offload_rules",
        /// Offload-table occupancy, in permille of rule capacity.
        OffloadLoadPermille => "offload_load_permille",
    }
}

static_ids! {
    /// Packet-path stages timed by the span tracer. The simulation
    /// records virtual cycles; the live driver records wall nanoseconds.
    Stage {
        /// NIC admission: FDIR lookup + RSS dispatch + ring push.
        Nic => "nic",
        /// Kernel processing: flow lookup, reassembly, timers.
        Kernel => "kernel",
        /// Memory placement: payload copies into arena chunks.
        Memory => "memory",
        /// Event-queue handoff to the user side.
        EventQueue => "event_queue",
        /// Worker callback execution.
        Worker => "worker",
        /// Archive seal: segment append + index commit (`scap-store`).
        Store => "store",
        /// Warm restart: checkpoint decode + kernel state restore.
        Restart => "restart",
        /// Poll-mode fast path: burst pull + batched dispatch.
        Fastpath => "fastpath",
    }
}

static_ids! {
    /// Stages of the pulse latency plane (`scap-pulse`): each gets one
    /// log2 latency histogram plus a tail-sampled exemplar ring.
    /// Clock-difference stages record trace-clock deltas against the
    /// packet's NIC-ingress timestamp; processing stages record virtual
    /// nanoseconds from the deterministic per-op cost models in
    /// [`pulse::cost`].
    PulseStage {
        /// NIC admission verdict: filter + RSS + ring push cost.
        NicVerdict => "nic_verdict",
        /// Offload rule-table consult (and action on a hit).
        Offload => "offload",
        /// Flow-table lookup cost, scaled by probe length.
        FlowTable => "flow_table",
        /// NIC ingress → event enqueued on a per-core queue.
        KernelDispatch => "kernel_dispatch",
        /// Residency in a tenant delivery queue until drain.
        TenantQueue => "tenant_queue",
        /// NIC ingress → payload handed to the application.
        Delivery => "delivery",
        /// Archive seal: segment append + index commit.
        StoreSeal => "store_seal",
        /// Checkpoint encode + write, from the image size.
        Checkpoint => "checkpoint",
    }
}

// Declared after `static_ids!` so the modules can use the macro.
pub mod openmetrics;
pub mod pulse;

/// Wall-clock span timing for the live driver. The simulation never uses
/// this — it derives virtual-cycle spans from work receipts instead, so
/// simulated telemetry stays deterministic.
#[derive(Debug)]
pub struct SpanTimer(std::time::Instant);

impl SpanTimer {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        SpanTimer(std::time::Instant::now())
    }

    /// Nanoseconds elapsed since [`SpanTimer::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let e = self.0.elapsed();
        e.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(e.subsec_nanos()))
    }

    /// Stop and record the elapsed nanoseconds into a stage histogram.
    #[inline]
    pub fn finish<C: MetricCell>(self, reg: &Registry<C>, shard: usize, stage: Stage) -> u64 {
        let ns = self.elapsed_ns();
        reg.record_stage(shard, stage, ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_names_round_trip() {
        for m in Metric::ALL {
            assert_eq!(Metric::from_name(m.name()), Some(m));
        }
        for g in Gauge::ALL {
            assert_eq!(Gauge::from_name(g.name()), Some(g));
        }
        for s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Metric::from_name("no_such_metric"), None);
    }

    #[test]
    fn cells_add_set_get() {
        let c = Cell::new(0u64);
        MetricCell::add(&c, 3);
        MetricCell::add(&c, 4);
        assert_eq!(MetricCell::get(&c), 7);
        MetricCell::set(&c, 1);
        assert_eq!(MetricCell::get(&c), 1);

        let a = AtomicU64::new(0);
        a.add(3);
        a.add(4);
        assert_eq!(MetricCell::get(&a), 7);
        MetricCell::set(&a, 1);
        assert_eq!(MetricCell::get(&a), 1);
    }

    #[test]
    fn span_timer_measures_forward_time() {
        let t = SpanTimer::start();
        let reg: Registry<Cell<u64>> = Registry::new(1);
        let ns = t.finish(&reg, 0, Stage::Worker);
        assert_eq!(reg.snapshot().stage(Stage::Worker).count(), 1);
        let _ = ns; // any value is legal; monotonic clock only
    }
}
