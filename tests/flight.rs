//! Flight-recorder properties: event codec round-trips, corruption is
//! rejected (never mis-decoded), same-seed captures journal identically,
//! and a shrunken ring wraps without losing count of its own loss.
//!
//! The capture-driving tests use the same synchronous drive loop as
//! `tests/store_roundtrip.rs`: feed a seeded campus mix packet by
//! packet, poll every core, drain and release data events.

use proptest::prelude::*;
use scap::flight::{self, DropReason, FlightEvent, FlightKind, FlightLayer, FlightRecorder};
use scap::{EventKind, ScapConfig, ScapKernel};
use scap_faults::{FaultPlan, FlightFaultConfig};
use scap_trace::gen::{CampusMix, CampusMixConfig};

// ---------------------------------------------------------------------------
// Codec round-trip and corruption rejection
// ---------------------------------------------------------------------------

/// Any event with valid identity bytes (the vendored proptest has no
/// `prop_map`, so this is a hand-rolled strategy).
struct ArbEvent;

impl Strategy for ArbEvent {
    type Value = FlightEvent;
    fn generate(&self, rng: &mut proptest::TestRng) -> FlightEvent {
        use rand::Rng;
        FlightEvent {
            seq: rng.random(),
            ts_ns: rng.random(),
            uid: rng.random(),
            a: rng.random(),
            b: rng.random(),
            kind: FlightKind::from_idx(rng.random_range(0..FlightKind::COUNT as u8)).unwrap(),
            layer: FlightLayer::from_idx(rng.random_range(0..FlightLayer::COUNT as u8)).unwrap(),
            reason: DropReason::from_idx(rng.random_range(0..DropReason::COUNT as u8)).unwrap(),
            core: rng.random(),
        }
    }
}

fn arb_event() -> ArbEvent {
    ArbEvent
}

proptest! {
    /// encode → decode is the identity for every representable event.
    #[test]
    fn event_codec_round_trips(ev in arb_event()) {
        let back = FlightEvent::decode(&ev.encode()).unwrap();
        prop_assert_eq!(back, ev);
    }

    /// Unknown identity bytes are rejected, not coerced to something valid.
    #[test]
    fn event_decode_rejects_unknown_identities(
        ev in arb_event(),
        field in 0usize..3,
        raw in any::<u8>(),
    ) {
        let mut body = ev.encode();
        let (off, limit) = match field {
            0 => (40, FlightKind::COUNT as u8),
            1 => (41, FlightLayer::COUNT as u8),
            _ => (42, DropReason::COUNT as u8),
        };
        let bad = raw.saturating_add(limit).max(limit); // always out of range
        body[off] = bad;
        prop_assert!(FlightEvent::decode(&body).is_err());
    }

    /// A full journal survives encode → decode with every event,
    /// sequence-ordered, and per-core accounting intact.
    #[test]
    fn journal_round_trips(events in proptest::collection::vec(arb_event(), 0..64)) {
        let mut rec = FlightRecorder::new(2, 256);
        for ev in &events {
            rec.emit(ev.core as usize, *ev);
        }
        let j = flight::decode_journal(&rec.encode()).unwrap();
        prop_assert_eq!(j.ncores, 2);
        prop_assert_eq!(j.ring_cap, 256);
        prop_assert_eq!(j.torn_bytes, 0);
        prop_assert_eq!(j.total_recorded(), events.len() as u64);
        prop_assert_eq!(j.total_dropped(), 0);
        prop_assert_eq!(j.events.len(), events.len());
        // The recorder re-stamps seq (capture order) and core (clamped),
        // but the payload must come back untouched.
        for (got, want) in j.events.iter().zip(events.iter()) {
            prop_assert_eq!(got.ts_ns, want.ts_ns);
            prop_assert_eq!(got.uid, want.uid);
            prop_assert_eq!(got.a, want.a);
            prop_assert_eq!(got.b, want.b);
            prop_assert_eq!(got.kind, want.kind);
            prop_assert_eq!(got.layer, want.layer);
            prop_assert_eq!(got.reason, want.reason);
        }
    }

    /// A single flipped bit anywhere in the file never mis-decodes: the
    /// journal either fails outright (header/meta damage) or comes back
    /// as a strict prefix of the original events plus a torn tail — the
    /// CRC on every record frame catches the rest.
    #[test]
    fn journal_bit_flip_never_misdecodes(
        events in proptest::collection::vec(arb_event(), 1..32),
        bit_seed in any::<u64>(),
    ) {
        let mut rec = FlightRecorder::new(1, 256);
        for ev in &events {
            rec.emit(0, *ev);
        }
        let clean = rec.encode();
        let want = flight::decode_journal(&clean).unwrap().events;

        let mut bytes = clean.clone();
        let bit = (bit_seed % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(bytes != clean, "flipping a bit must change the file");
        match flight::decode_journal(&bytes) {
            Err(_) => {}
            Ok(j) => {
                prop_assert!(j.events.len() <= want.len());
                prop_assert_eq!(&j.events[..], &want[..j.events.len()],
                    "decoded events must be a strict prefix of the originals");
                prop_assert!(
                    j.events.len() == want.len() || j.torn_bytes > 0,
                    "lost events must show up as a torn tail"
                );
            }
        }
    }
}

/// Truncation at any point mid-file behaves like a crash mid-append:
/// decodable prefix plus reported torn bytes, never a panic.
#[test]
fn journal_tolerates_truncation() {
    let mut rec = FlightRecorder::new(1, 64);
    for i in 0..10u64 {
        rec.emit(
            0,
            FlightEvent::new(FlightKind::Drop, FlightLayer::Kernel, i * 100)
                .with_reason(DropReason::RingFull)
                .with_vals(1, 64),
        );
    }
    let clean = rec.encode();
    let full = flight::decode_journal(&clean).unwrap();
    assert_eq!(full.events.len(), 10);
    for cut in 0..clean.len() {
        match flight::decode_journal(&clean[..cut]) {
            Err(_) => {} // header or meta gone — fine
            Ok(j) => {
                assert!(j.events.len() <= 10);
                assert_eq!(&j.events[..], &full.events[..j.events.len()]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Capture-level properties (synchronous drive, seeded campus mix)
// ---------------------------------------------------------------------------

/// Drive a kernel synchronously over a seeded campus mix and return the
/// encoded flight journal.
fn drive(seed: u64, plan: Option<FaultPlan>) -> (ScapKernel, Vec<u8>) {
    let trace = CampusMix::new(CampusMixConfig::sized(seed, 512 << 10)).collect_all();
    let mut cfg = ScapConfig {
        inactivity_timeout_ns: 500_000_000,
        use_fdir: true,
        ..ScapConfig::default()
    };
    cfg.cutoff.default = Some(8 << 10);
    cfg.faults = plan;
    let mut kernel = ScapKernel::new(cfg);

    let mut now = 0;
    for pkt in &trace {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    }
    kernel.finish(now.saturating_add(1));
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }
    let journal = kernel.flight().encode();
    (kernel, journal)
}

/// Two same-seed sim runs produce byte-identical journals — the flight
/// recorder is keyed entirely on the trace's virtual clock.
#[test]
fn same_seed_journals_are_byte_identical() {
    let (_, a) = drive(21, None);
    let (_, b) = drive(21, None);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed flight journals differ");
    let j = flight::decode_journal(&a).unwrap();
    assert!(
        j.events.iter().any(|e| e.kind == FlightKind::Discard),
        "an fdir capture over a campus mix must discard something"
    );
    // Capture order is the decode order.
    assert!(j.events.windows(2).all(|w| w[0].seq < w[1].seq));
}

/// The `flight_overflow` injector shrinks every per-core ring so the
/// capture wraps; overwritten events must be *counted*, and the journal
/// meta must carry the loss.
#[test]
fn shrunken_ring_counts_overwritten_events() {
    const SMALL: usize = 16;
    let plan = FaultPlan {
        flight: FlightFaultConfig {
            shrink_ring_to: SMALL,
        },
        ..FaultPlan::new(22)
    };
    let (kernel, bytes) = drive(22, Some(plan));

    // The injector really did shrink the rings.
    assert_eq!(kernel.flight().ring_cap(), SMALL);

    // Baseline run without the fault: how many events this seed emits.
    let (baseline, baseline_bytes) = drive(22, None);
    let total = baseline.flight().total_recorded();
    assert!(
        total > SMALL as u64,
        "workload too small to wrap a {SMALL}-slot ring ({total} events)"
    );

    // Survivors + overwritten == everything ever emitted, per core and
    // in total; the shrunken run loses events but never the count.
    let j = flight::decode_journal(&bytes).unwrap();
    assert_eq!(kernel.flight().total_recorded(), total);
    assert!(j.total_dropped() > 0, "ring never wrapped");
    assert_eq!(
        j.events.len() as u64 + j.total_dropped(),
        j.total_recorded(),
        "overwritten events must be counted, not silently lost"
    );
    for core in 0..j.ncores {
        assert_eq!(
            kernel.flight().recorded(core),
            j.recorded[core],
            "per-core recorded count must survive the journal codec"
        );
        assert_eq!(kernel.flight().dropped(core), j.dropped[core]);
        assert!(kernel.flight().recorded(core) >= kernel.flight().dropped(core));
    }
    // Each surviving ring holds its newest `cap` events: the journal's
    // survivors are exactly the tail of the baseline's event stream,
    // per core.
    let base = flight::decode_journal(&baseline_bytes).unwrap();
    for core in 0..j.ncores {
        let all: Vec<_> = base
            .events
            .iter()
            .filter(|e| e.core == core as u8)
            .collect();
        let kept: Vec<_> = j.events.iter().filter(|e| e.core == core as u8).collect();
        let tail = &all[all.len() - kept.len()..];
        for (k, t) in kept.iter().zip(tail.iter()) {
            assert_eq!(k.ts_ns, t.ts_ns);
            assert_eq!(k.kind, t.kind);
            assert_eq!(k.uid, t.uid);
        }
    }
}
