//! Round-trip properties of the persistent stream archive (`scap-store`).
//!
//! A synchronous kernel drive over a seeded campus mix feeds a
//! [`StoreWriter`] the exact dispatch-path events, while the test keeps
//! its own copy of every delivered byte. Three properties are checked:
//!
//! 1. **Byte fidelity** — every stream read back from the archive is
//!    byte-identical to what the capture delivered (post-cutoff).
//! 2. **Query equivalence** — an index-only BPF query returns exactly the
//!    streams a live `scap-filter` match over the snapshots would.
//! 3. **Determinism** — the same seed produces a byte-identical archive
//!    (index file and all segment files).

use scap::{EventKind, ScapConfig, ScapKernel, StreamSnapshot};
use scap_filter::Filter;
use scap_store::{StoreConfig, StoreReader, StoreWriter};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "scap-store-roundtrip-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// What the capture actually delivered, per stream.
struct Truth {
    /// Reassembled payload per (uid, direction), placed at chunk offsets
    /// exactly as the writer places it.
    data: HashMap<(u64, usize), Vec<u8>>,
    /// Final snapshot per terminated stream.
    snaps: HashMap<u64, StreamSnapshot>,
}

/// Drive the kernel synchronously over a seeded campus mix, feeding the
/// archive writer and recording ground truth from the same events.
fn drive(seed: u64, dir: &Path) -> (Truth, scap_store::StoreStats) {
    let trace = CampusMix::new(CampusMixConfig::sized(seed, 512 << 10)).collect_all();
    let mut cfg = ScapConfig {
        inactivity_timeout_ns: 500_000_000,
        ..ScapConfig::default()
    };
    cfg.cutoff.default = Some(8 << 10);
    cfg.priorities
        .classes
        .push((Filter::new("port 80").unwrap(), 1));
    cfg.ppl.num_priorities = 2;
    let mut kernel = ScapKernel::new(cfg);
    let mut writer = StoreWriter::open(StoreConfig::new(dir)).unwrap();

    let mut truth = Truth {
        data: HashMap::new(),
        snaps: HashMap::new(),
    };
    let drain = |kernel: &mut ScapKernel, writer: &mut StoreWriter, truth: &mut Truth| {
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                writer.observe(&ev).unwrap();
                match ev.kind {
                    EventKind::Created | EventKind::Data { .. } => {}
                    EventKind::Terminated => {
                        truth.snaps.insert(ev.stream.uid, ev.stream.clone());
                    }
                }
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    let buf = truth.data.entry((ev.stream.uid, dir.index())).or_default();
                    let off = chunk.start_offset as usize;
                    let end = off + chunk.bytes().len();
                    if buf.len() < end {
                        buf.resize(end, 0);
                    }
                    buf[off..end].copy_from_slice(chunk.bytes());
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    };

    let mut now = 0;
    for pkt in &trace {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
        }
        drain(&mut kernel, &mut writer, &mut truth);
    }
    kernel.finish(now.saturating_add(1));
    drain(&mut kernel, &mut writer, &mut truth);
    let stats = writer.finish().unwrap();
    (truth, stats)
}

#[test]
fn archived_streams_are_byte_identical_to_delivery() {
    let dir = tmp_dir("fidelity");
    let (truth, stats) = drive(11, &dir);
    assert!(
        !truth.snaps.is_empty(),
        "workload produced no terminated streams"
    );
    assert_eq!(stats.streams_archived as usize, truth.snaps.len());
    assert_eq!(stats.write_errors, 0);

    let reader = StoreReader::open(&dir).unwrap();
    assert_eq!(reader.len(), truth.snaps.len());
    assert!(reader.verify().unwrap().is_clean());

    let mut delivered_bytes = 0u64;
    for (uid, snap) in &truth.snaps {
        let rec = reader.get(*uid).expect("terminated stream must be indexed");
        assert_eq!(rec.key, snap.key.canonical().0);
        assert_eq!(rec.priority, snap.priority);
        assert_eq!(rec.first_ts_ns, snap.first_ts_ns);
        assert_eq!(rec.last_ts_ns, snap.last_ts_ns);
        let back = reader.read_stream(*uid).unwrap();
        for (di, got) in back.iter().enumerate() {
            let want = truth
                .data
                .get(&(*uid, di))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            assert_eq!(
                got, &want,
                "uid {uid} dir {di}: archive bytes differ from delivery"
            );
            delivered_bytes += want.len() as u64;
        }
    }
    assert_eq!(stats.bytes_archived, delivered_bytes);
    assert!(delivered_bytes > 0, "cutoff capture delivered no payload");
}

#[test]
fn index_query_matches_live_filter_over_snapshots() {
    let dir = tmp_dir("query");
    let (truth, _stats) = drive(12, &dir);
    let reader = StoreReader::open(&dir).unwrap();

    for expr in [
        "tcp and port 80",
        "udp",
        "port 53",
        "tcp and portrange 1000-9999",
    ] {
        let f = Filter::new(expr).unwrap();
        let mut want: Vec<u64> = truth
            .snaps
            .values()
            .filter(|s| f.matches_key(&s.key) || f.matches_key(&s.key.reversed()))
            .map(|s| s.uid)
            .collect();
        want.sort_unstable();
        let mut got: Vec<u64> = reader.query(expr).unwrap().iter().map(|r| r.uid).collect();
        got.sort_unstable();
        assert_eq!(got, want, "query {expr:?} diverges from live filter");
    }
}

fn append_garbage(path: &Path, n: usize) {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
    f.write_all(&vec![0xA5u8; n]).unwrap();
}

/// Open-time recovery removes exactly the torn tail, once: a second
/// repair pass over the repaired archive is a no-op.
#[test]
fn archive_torn_tail_repair_is_idempotent() {
    let dir = tmp_dir("repair-idem");
    drive(14, &dir);

    // Tear both file families with garbage appended past the last valid
    // record/frame (a crash mid-append).
    const TORN: usize = 137;
    append_garbage(&dir.join(scap_store::INDEX_FILE), TORN);
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap() != scap_store::INDEX_FILE)
        .expect("archive has at least one segment file");
    append_garbage(&seg, TORN);

    // First reopen repairs exactly the torn bytes…
    let w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(w.stats().torn_tail_bytes_recovered, 2 * TORN as u64);
    drop(w);
    // …and a second repair pass finds nothing left to remove.
    let w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(w.stats().torn_tail_bytes_recovered, 0);
    drop(w);
    assert!(StoreReader::open(&dir)
        .unwrap()
        .verify()
        .unwrap()
        .is_clean());
}

/// Checkpoint files share the archive's frame format and its repair
/// contract: truncating the torn tail is exact and idempotent.
#[test]
fn checkpoint_repair_is_idempotent() {
    use scap::checkpoint;
    let dir = tmp_dir("ckpt-repair");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scap.ckpt");

    // A checkpoint taken mid-capture over a seeded campus mix.
    let trace =
        scap_trace::gen::CampusMix::new(scap_trace::gen::CampusMixConfig::sized(15, 128 << 10))
            .collect_all();
    let mut kernel = ScapKernel::new(ScapConfig::default());
    let mut now = 0;
    for pkt in &trace[..trace.len() / 2] {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for c in 0..kernel.ncores() {
            while kernel.kernel_poll(c, now).is_some() {}
            while let Some(ev) = kernel.next_event(c) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    }
    let bytes = kernel.checkpoint_bytes(now, 7);
    checkpoint::write_atomic(&path, &bytes).unwrap();
    append_garbage(&path, 91);

    let r1 = checkpoint::repair_file(&path).unwrap();
    assert_eq!(r1.torn_bytes_removed, 91);
    assert_eq!(checkpoint::read_image(&path).unwrap().seq, 7);
    let r2 = checkpoint::repair_file(&path).unwrap();
    assert_eq!(r2.torn_bytes_removed, 0, "second repair must be a no-op");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        bytes,
        "repair must restore the exact pre-crash bytes"
    );
}

#[test]
fn same_seed_produces_byte_identical_archive() {
    let da = tmp_dir("det-a");
    let db = tmp_dir("det-b");
    drive(13, &da);
    drive(13, &db);

    let mut names: Vec<String> = std::fs::read_dir(&da)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    let mut names_b: Vec<String> = std::fs::read_dir(&db)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names_b.sort();
    assert_eq!(names, names_b, "archive file sets differ");
    assert!(names.contains(&scap_store::INDEX_FILE.to_string()));
    for n in &names {
        let a = std::fs::read(da.join(n)).unwrap();
        let b = std::fs::read(db.join(n)).unwrap();
        assert_eq!(a, b, "file {n} differs between same-seed runs");
    }
}
