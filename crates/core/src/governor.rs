//! The overload governor: graceful degradation under sustained pressure.
//!
//! The paper's overload story (§2.2, §6.5) is built from independent
//! mechanisms — PPL watermarks, per-stream cutoffs, FDIR offload. The
//! governor composes them into an escalation ladder driven by a single
//! *pressure* signal (the worst of arena occupancy, RX-ring fill and
//! event-queue backlog):
//!
//! | level | effect                                                      |
//! |-------|-------------------------------------------------------------|
//! | 0     | configured behaviour                                        |
//! | 1     | PPL watermark tightening (`ppl_boost` added per level)      |
//! | 2     | + dynamic cutoff reduction (`cutoff_caps[0]`)               |
//! | 3     | + tighter cutoff cap and low-priority stream eviction       |
//!
//! Escalation is immediate (one tick above the enter threshold); recovery
//! is hysteretic — pressure must stay below `exit` for `calm_ticks`
//! consecutive ticks before the governor steps *one* level down, so a
//! brief lull does not bounce the system between policies.

/// Tunables for the escalation ladder.
#[derive(Debug, Clone, Copy)]
pub struct GovernorConfig {
    /// Pressure thresholds that enter levels 1, 2, 3.
    pub enter: [f64; 3],
    /// Pressure below which a tick counts as calm.
    pub exit: f64,
    /// Consecutive calm ticks required to step down one level.
    pub calm_ticks: u32,
    /// Minimum spacing between governor evaluations.
    pub tick_ns: u64,
    /// Dynamic cutoff caps applied at levels 2 and 3 (bytes).
    pub cutoff_caps: [u64; 2],
    /// Added to the PPL memory-fraction input per active level.
    pub ppl_boost: f64,
    /// Streams evicted per tick at level 3.
    pub evict_batch: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            enter: [0.70, 0.85, 0.95],
            exit: 0.55,
            calm_ticks: 3,
            tick_ns: 10_000_000, // 10 ms
            cutoff_caps: [256 * 1024, 64 * 1024],
            ppl_boost: 0.08,
            evict_batch: 8,
        }
    }
}

/// Counters the governor maintains about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Level changes (up or down).
    pub transitions: u64,
    /// Highest level reached.
    pub max_level: u8,
    /// Evaluations performed.
    pub ticks: u64,
}

/// The governor state machine.
#[derive(Debug)]
pub struct OverloadGovernor {
    cfg: GovernorConfig,
    level: u8,
    calm: u32,
    last_tick_ns: Option<u64>,
    stats: GovernorStats,
}

impl OverloadGovernor {
    /// A governor at level 0.
    pub fn new(cfg: GovernorConfig) -> Self {
        OverloadGovernor {
            cfg,
            level: 0,
            calm: 0,
            last_tick_ns: None,
            stats: GovernorStats::default(),
        }
    }

    /// Current degradation level (0 = configured behaviour).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Force the escalation level (warm restart: a resumed capture keeps
    /// the degradation posture it checkpointed with instead of starting
    /// relaxed and thrashing back up under sustained pressure).
    ///
    /// `now_ns` re-anchors the hysteresis clock at the restore point:
    /// the restored level is held for at least one full `tick_ns`
    /// window, so the first post-restart evaluation — taken against
    /// whatever transient pressure the refilling arena shows — cannot
    /// immediately re-escalate (or relax) the ladder.
    pub fn restore_level(&mut self, level: u8, now_ns: u64) {
        self.level = level.min(3);
        self.calm = 0;
        self.last_tick_ns = Some(now_ns);
        self.stats.max_level = self.stats.max_level.max(self.level);
    }

    /// Behaviour counters.
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Extra memory-pressure fraction the PPL verdict should assume.
    pub fn ppl_boost(&self) -> f64 {
        f64::from(self.level) * self.cfg.ppl_boost
    }

    /// The cutoff cap in force, if any (levels 2+).
    pub fn cutoff_cap(&self) -> Option<u64> {
        match self.level {
            0 | 1 => None,
            2 => Some(self.cfg.cutoff_caps[0]),
            _ => Some(self.cfg.cutoff_caps[1]),
        }
    }

    /// Number of low-priority streams to evict this tick (level 3 only).
    pub fn evict_quota(&self) -> usize {
        if self.level >= 3 {
            self.cfg.evict_batch
        } else {
            0
        }
    }

    /// Evaluate the ladder against the current pressure. Rate-limited to
    /// one evaluation per `tick_ns`; returns the level in force.
    pub fn tick(&mut self, now_ns: u64, pressure: f64) -> u8 {
        if let Some(last) = self.last_tick_ns {
            if now_ns.saturating_sub(last) < self.cfg.tick_ns {
                return self.level;
            }
        }
        self.last_tick_ns = Some(now_ns);
        self.stats.ticks += 1;

        // Highest level whose enter threshold the pressure meets.
        let mut target = 0u8;
        for (i, thr) in self.cfg.enter.iter().enumerate() {
            if pressure >= *thr {
                target = i as u8 + 1;
            }
        }

        if target > self.level {
            self.level = target;
            self.calm = 0;
            self.stats.transitions += 1;
            self.stats.max_level = self.stats.max_level.max(self.level);
        } else if self.level > 0 && pressure < self.cfg.exit {
            self.calm += 1;
            if self.calm >= self.cfg.calm_ticks {
                self.level -= 1;
                self.calm = 0;
                self.stats.transitions += 1;
            }
        } else {
            // Pressure between exit and the current band: hold steady.
            self.calm = 0;
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> OverloadGovernor {
        OverloadGovernor::new(GovernorConfig {
            tick_ns: 10,
            calm_ticks: 2,
            ..Default::default()
        })
    }

    #[test]
    fn escalates_immediately_and_recovers_with_hysteresis() {
        let mut g = gov();
        assert_eq!(g.tick(0, 0.2), 0);
        assert_eq!(g.tick(10, 0.90), 2); // jumps straight to the band
        assert_eq!(g.cutoff_cap(), Some(256 * 1024));
        assert_eq!(g.tick(20, 0.97), 3);
        assert_eq!(g.cutoff_cap(), Some(64 * 1024));
        assert!(g.evict_quota() > 0);
        // One calm tick is not enough...
        assert_eq!(g.tick(30, 0.10), 3);
        // ...two are, and recovery is one level at a time.
        assert_eq!(g.tick(40, 0.10), 2);
        assert_eq!(g.tick(50, 0.10), 2);
        assert_eq!(g.tick(60, 0.10), 1);
        assert_eq!(g.tick(70, 0.10), 1);
        assert_eq!(g.tick(80, 0.10), 0);
        let s = g.stats();
        assert_eq!(s.max_level, 3);
        assert_eq!(s.transitions, 5);
    }

    #[test]
    fn middle_band_holds_level_and_resets_calm() {
        let mut g = gov();
        g.tick(0, 0.75);
        assert_eq!(g.level(), 1);
        assert!(g.ppl_boost() > 0.0);
        // One calm tick, then pressure returns to the middle band: the
        // calm streak restarts.
        g.tick(10, 0.10);
        g.tick(20, 0.60);
        g.tick(30, 0.10);
        assert_eq!(g.level(), 1, "calm streak must restart");
        g.tick(40, 0.10);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn restore_re_anchors_the_hysteresis_clock() {
        let mut g = OverloadGovernor::new(GovernorConfig {
            tick_ns: 1_000,
            ..Default::default()
        });
        g.restore_level(1, 5_000);
        assert_eq!(g.level(), 1);
        // Inside the re-anchored window the level is frozen: a pressure
        // spike right after restart cannot re-escalate...
        assert_eq!(g.tick(5_100, 0.99), 1);
        // ...and a lull cannot start the calm countdown early.
        assert_eq!(g.tick(5_900, 0.0), 1);
        assert_eq!(g.stats().ticks, 0, "no evaluation inside the window");
        // Once a full tick window has elapsed, evaluation resumes.
        assert_eq!(g.tick(6_000, 0.99), 3);
    }

    #[test]
    fn evaluations_are_rate_limited() {
        let mut g = OverloadGovernor::new(GovernorConfig {
            tick_ns: 1_000,
            ..Default::default()
        });
        assert_eq!(g.tick(0, 0.99), 3);
        // Within the same tick window the level cannot change.
        assert_eq!(g.tick(1, 0.0), 3);
        assert_eq!(g.stats().ticks, 1);
    }
}
