#![warn(missing_docs)]

//! # scap-trace
//!
//! Traffic for the monitoring stacks: trace representation, libpcap-format
//! file I/O, a seeded synthetic *campus-mix* generator standing in for the
//! paper's 46 GB university trace, the adversarial *concurrent-streams*
//! workload of Fig. 5, and rate-controlled replay.
//!
//! The paper replays a one-hour trace (58,714,906 packets, 1,493,032
//! flows, > 46 GB, 95.4 % TCP) at 0.25–6 Gbit/s. The generator in
//! [`gen`] reproduces the aggregate properties every experiment actually
//! depends on — heavy-tailed flow sizes, high TCP byte share, ~840-byte
//! mean packet size, a configurable port-80 packet share — at any target
//! trace size, and [`replay`] rescales timestamps to any target bit rate.

pub mod amplify;
pub mod concurrent;
pub mod gen;
pub mod pcap;
pub mod replay;
pub mod stats;

pub use amplify::{Amplifier, AmplifyConfig};
pub use gen::{CampusMix, CampusMixConfig};
pub use replay::RateReplay;
pub use stats::TraceStats;

use std::sync::Arc;

/// A cheaply-clonable, immutable byte buffer (reference-counted).
///
/// Stands in for `bytes::Bytes` with the subset of behaviour the
/// workspace relies on: shared ownership, `Deref` to `[u8]`, and
/// equality by contents. Frames are immutable once captured, so the
/// slicing machinery of the real crate is unnecessary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)] // is_empty comes via Deref.
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.into())
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// One captured packet: a timestamp and an owned frame.
///
/// Frames are reference-counted ([`Bytes`]), so fanning a packet out to
/// several capture stacks (every comparison experiment does this) never
/// copies frame data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp in nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// The full L2 frame.
    pub frame: Bytes,
}

impl Packet {
    /// Construct from an owned frame buffer.
    pub fn new(ts_ns: u64, frame: Vec<u8>) -> Self {
        Packet {
            ts_ns,
            frame: Bytes::from(frame),
        }
    }

    /// Frame length in bytes (the wire length; nothing is truncated).
    pub fn len(&self) -> usize {
        self.frame.len()
    }

    /// True when the frame is empty (never produced by the generator).
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with a pcap magic number.
    BadMagic(u32),
    /// A record header is inconsistent (e.g. larger than the snap length).
    BadRecord(String),
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            TraceError::BadRecord(s) => write!(f, "bad pcap record: {s}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_clone_shares_frame_storage() {
        let p = Packet::new(1, vec![1, 2, 3]);
        let q = p.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(p.frame.as_ptr(), q.frame.as_ptr());
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
