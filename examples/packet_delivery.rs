//! Per-packet delivery alongside streams (§5.7 / §6.5.3).
//!
//! Most analysis wants reassembled streams, but some detections are
//! inherently packet-level — the paper's example is TCP ACK-splitting,
//! where a misbehaving receiver acknowledges a segment in many small
//! pieces to inflate the sender's congestion window. With
//! `need_packets`, Scap delivers per-packet records (timestamp, wire
//! length, payload location) with each chunk, so packet-level and
//! stream-level analysis share one capture pass.
//!
//! Run with: `cargo run --release --example packet_delivery`

use scap::{Scap, StreamCtx};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

fn main() {
    let traffic = CampusMix::new(CampusMixConfig::sized(5, 8 << 20));

    // Per-stream packet-size telemetry built from packet records.
    #[derive(Default, Clone)]
    struct Telemetry {
        packets: u64,
        tiny_packets: u64, // < 128 B wire length with payload
        payload_bytes: u64,
    }
    let telemetry: Arc<Mutex<HashMap<u64, Telemetry>>> = Arc::new(Mutex::new(HashMap::new()));

    let mut scap = Scap::builder()
        .memory(64 << 20)
        .need_packets(true)
        .worker_threads(2)
        .try_build()
        .expect("valid configuration");

    {
        let telemetry = telemetry.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            let mut t = telemetry.lock().unwrap();
            let e = t.entry(ctx.stream.uid).or_default();
            // scap_next_stream_packet(): walk the chunk's packets in
            // capture order, payload slices included.
            for (rec, payload) in ctx.packets() {
                e.packets += 1;
                e.payload_bytes += payload.map_or(0, |p| p.len() as u64);
                if rec.wire_len < 128 && rec.payload_len > 0 {
                    e.tiny_packets += 1;
                }
            }
        });
    }

    let stats = scap.start_capture(traffic);

    let t = telemetry.lock().unwrap();
    let total_pkts: u64 = t.values().map(|e| e.packets).sum();
    let tiny: u64 = t.values().map(|e| e.tiny_packets).sum();
    let bytes: u64 = t.values().map(|e| e.payload_bytes).sum();
    let suspicious = t
        .values()
        .filter(|e| e.packets >= 20 && e.tiny_packets * 2 > e.packets)
        .count();

    println!(
        "streams with packet records: {} | data packets seen: {} | payload bytes: {}",
        t.len(),
        total_pkts,
        bytes
    );
    println!(
        "tiny data packets (<128 B): {} ({:.1}%)",
        tiny,
        100.0 * tiny as f64 / total_pkts.max(1) as f64
    );
    println!("streams flagged as suspiciously tiny-packet-heavy: {suspicious}");
    println!(
        "capture totals: {} packets, {} chunks, {} streams",
        stats.stack.wire_packets, stats.chunks, stats.stack.streams_created
    );
}
