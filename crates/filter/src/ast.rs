//! Filter expression AST.

/// Endpoint qualifier on an address/port primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qual {
    /// `src host`, `src port`, ...
    Src,
    /// `dst host`, `dst port`, ...
    Dst,
    /// Unqualified: matches either endpoint.
    Either,
}

/// Protocol keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoKind {
    /// Any IPv4 packet.
    Ip,
    /// Any IPv6 packet.
    Ip6,
    /// TCP over IPv4 or IPv6.
    Tcp,
    /// UDP over IPv4 or IPv6.
    Udp,
    /// ICMP over IPv4.
    Icmp,
}

/// Atomic filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Protocol test (`tcp`, `udp`, `ip`, ...).
    Proto(ProtoKind),
    /// IPv4 host address test.
    Host(Qual, [u8; 4]),
    /// IPv4 network test with prefix length.
    Net(Qual, [u8; 4], u8),
    /// Port equality test.
    Port(Qual, u16),
    /// Inclusive port range test.
    PortRange(Qual, u16, u16),
    /// Frame length ≥ N bytes (`greater N`, tcpdump semantics).
    Greater(u32),
    /// Frame length ≤ N bytes (`less N`, tcpdump semantics).
    Less(u32),
    /// Matches everything (the empty filter).
    True,
}

/// A boolean combination of primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Atomic predicate.
    Prim(Primitive),
    /// Logical negation.
    Not(Box<Expr>),
    /// Short-circuit conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for `a and b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a or b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `not a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// Number of primitives in the expression (complexity metric used by
    /// the cost model when charging filter evaluation).
    pub fn size(&self) -> usize {
        match self {
            Expr::Prim(_) => 1,
            Expr::Not(e) => e.size(),
            Expr::And(a, b) | Expr::Or(a, b) => a.size() + b.size(),
        }
    }
}

/// The prefix mask for an IPv4 prefix length.
pub fn v4_mask(prefix: u8) -> u32 {
    match prefix {
        0 => 0,
        p if p >= 32 => u32::MAX,
        p => u32::MAX << (32 - p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_primitives() {
        let e = Expr::and(
            Expr::Prim(Primitive::Proto(ProtoKind::Tcp)),
            Expr::or(
                Expr::Prim(Primitive::Port(Qual::Either, 80)),
                Expr::not(Expr::Prim(Primitive::Port(Qual::Either, 443))),
            ),
        );
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn masks() {
        assert_eq!(v4_mask(0), 0);
        assert_eq!(v4_mask(8), 0xFF00_0000);
        assert_eq!(v4_mask(24), 0xFFFF_FF00);
        assert_eq!(v4_mask(32), 0xFFFF_FFFF);
        assert_eq!(v4_mask(33), 0xFFFF_FFFF);
    }
}
