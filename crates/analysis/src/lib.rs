#![warn(missing_docs)]

//! # scap-analysis
//!
//! The queueing analysis of the paper's §7: at what memory threshold does
//! Prioritized Packet Loss stop losing important packets?
//!
//! * [`mm1n`] — the M/M/1/N closed form (eq. 1): with high-priority
//!   arrivals Poisson(λ), exponential service μ, and `N` packet slots
//!   above the base threshold, the loss probability is
//!   `P = (1-ρ)/(1-ρ^{N+1}) · ρ^N` (by PASTA, the blocking probability).
//! * [`priority_chain`] — the 2N-state birth–death chain for three
//!   priority levels (eqs. 2–3): arrivals at rate λ₁+λ₂ below the
//!   medium watermark, λ₂ above it, service μ throughout.
//! * [`birth_death`] — a general birth–death stationary-distribution
//!   solver used to cross-check the closed forms.
//! * [`montecarlo`] — a discrete-event M/M/1/N simulator validating both
//!   against sampled behaviour.

pub mod birth_death;
pub mod mm1n;
pub mod montecarlo;
pub mod priority_chain;

pub use birth_death::stationary_distribution;
pub use mm1n::loss_probability as mm1n_loss;
pub use montecarlo::{simulate_mm1n, SimResult};
pub use priority_chain::{high_priority_loss, medium_priority_loss};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_chain_solver() {
        for &rho in &[0.1, 0.5, 0.9] {
            for &n in &[1usize, 5, 20, 50] {
                let closed = mm1n_loss(rho, n);
                // M/M/1/N as a birth-death chain: N+1 states, birth rho,
                // death 1; blocking probability = p_N.
                let births = vec![rho; n];
                let deaths = vec![1.0; n];
                let p = stationary_distribution(&births, &deaths);
                let diff = (closed - p[n]).abs();
                assert!(diff < 1e-12, "rho={rho} N={n}: {closed} vs {}", p[n]);
            }
        }
    }
}
