//! The kernel-side flow table: randomized hashing, growable record pools,
//! and the access-list LRU used for inactivity expiration and
//! memory-pressure eviction.

use crate::record::{StreamId, StreamRecord};
use scap_wire::{Direction, FlowKey};

/// Flow-table configuration.
#[derive(Debug, Clone)]
pub struct FlowTableConfig {
    /// Records pre-allocated at start (the paper pre-allocates pools and
    /// grows dynamically).
    pub initial_capacity: usize,
    /// Hard record limit. `None` = grow without bound (Scap behaviour);
    /// `Some(n)` = static limit (Libnids/Snort behaviour in Fig. 5).
    pub max_flows: Option<usize>,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            initial_capacity: 4096,
            max_flows: None,
        }
    }
}

/// Result of [`FlowTable::lookup_or_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Handle of the record.
    pub id: StreamId,
    /// True when this call created the record.
    pub created: bool,
    /// Direction of the queried key relative to the canonical key.
    pub direction: Direction,
}

/// Why an insert failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFull {
    /// The configured `max_flows` limit was reached (static-table
    /// baselines); the stream is lost.
    MaxFlows,
}

struct Slot {
    generation: u32,
    record: Option<StreamRecord>,
}

/// The flow table.
pub struct FlowTable {
    /// Open-chaining buckets of (cached hash, slot index).
    buckets: Vec<Vec<(u64, u32)>>,
    bucket_mask: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    len: usize,
    seed: u64,
    cfg: FlowTableConfig,
    /// Head (most recent) of the access list.
    lru_head: Option<u32>,
    /// Tail (least recent) of the access list.
    lru_tail: Option<u32>,
    /// Cumulative hash probes (cost-model input).
    pub probes: u64,
}

impl FlowTable {
    /// Create a table; `seed` randomizes the hash function (§5.2).
    pub fn new(cfg: FlowTableConfig, seed: u64) -> Self {
        let nbuckets = (cfg.initial_capacity.max(16)).next_power_of_two();
        FlowTable {
            buckets: vec![Vec::new(); nbuckets],
            bucket_mask: nbuckets as u64 - 1,
            slots: Vec::with_capacity(cfg.initial_capacity),
            free: Vec::new(),
            len: 0,
            seed,
            cfg,
            lru_head: None,
            lru_tail: None,
            probes: 0,
        }
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no streams are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn hash(&self, key: &FlowKey) -> u64 {
        key.sym_hash(self.seed)
    }

    /// Find an existing stream.
    pub fn lookup(&mut self, key: &FlowKey) -> Option<(StreamId, Direction)> {
        let (canon, dir) = key.canonical();
        let h = self.hash(&canon);
        let bucket = &self.buckets[(h & self.bucket_mask) as usize];
        for &(eh, slot) in bucket {
            self.probes += 1;
            if eh == h {
                if let Some(rec) = &self.slots[slot as usize].record {
                    if rec.key == canon {
                        return Some((rec.id, dir));
                    }
                }
            }
        }
        None
    }

    /// Find or create the stream for `key`. `now` stamps creation time.
    pub fn lookup_or_insert(&mut self, key: &FlowKey, now: u64) -> Result<Lookup, TableFull> {
        if let Some((id, direction)) = self.lookup(key) {
            return Ok(Lookup {
                id,
                created: false,
                direction,
            });
        }
        if let Some(max) = self.cfg.max_flows {
            if self.len >= max {
                return Err(TableFull::MaxFlows);
            }
        }
        let (canon, dir) = key.canonical();
        let h = self.hash(&canon);

        // Allocate a slot from the free list or grow the pool.
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    record: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation + 1;
        self.slots[slot as usize].generation = generation;
        let id = StreamId { slot, generation };
        self.slots[slot as usize].record = Some(StreamRecord::new(id, canon, dir, now));
        self.buckets[(h & self.bucket_mask) as usize].push((h, slot));
        self.len += 1;
        self.lru_push_front(slot);

        if self.len > self.buckets.len() * 4 {
            self.grow();
        }
        Ok(Lookup {
            id,
            created: true,
            direction: dir,
        })
    }

    fn grow(&mut self) {
        let new_n = self.buckets.len() * 2;
        let mut nb = vec![Vec::new(); new_n];
        let mask = new_n as u64 - 1;
        for bucket in self.buckets.drain(..) {
            for (h, slot) in bucket {
                nb[(h & mask) as usize].push((h, slot));
            }
        }
        self.buckets = nb;
        self.bucket_mask = mask;
    }

    /// Get a record by handle (None if the handle is stale).
    pub fn get(&self, id: StreamId) -> Option<&StreamRecord> {
        let s = self.slots.get(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.record.as_ref()
    }

    /// Mutable access by handle.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut StreamRecord> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.record.as_mut()
    }

    /// Record activity: stamp `last_ts_ns` and move to the front of the
    /// access list (constant time).
    pub fn touch(&mut self, id: StreamId, now: u64) {
        if self.get(id).is_none() {
            return;
        }
        let slot = id.slot;
        self.lru_unlink(slot);
        self.lru_push_front(slot);
        if let Some(rec) = self.get_mut(id) {
            rec.last_ts_ns = rec.last_ts_ns.max(now);
        }
    }

    /// Remove a stream from the table (after its termination event).
    pub fn remove(&mut self, id: StreamId) -> Option<StreamRecord> {
        let rec = self.get(id)?;
        let key = rec.key;
        let h = self.hash(&key);
        let slot = id.slot;
        let bucket = &mut self.buckets[(h & self.bucket_mask) as usize];
        bucket.retain(|&(_, s)| s != slot);
        self.lru_unlink(slot);
        self.len -= 1;
        self.free.push(slot);
        self.slots[slot as usize].record.take()
    }

    /// Expire streams whose `last_ts_ns` is older than `now - timeout_ns`,
    /// walking from the stale end of the access list. Expired records are
    /// removed and returned (for termination events). At most
    /// `max_per_call` are expired per call, bounding softirq work.
    pub fn expire_inactive(
        &mut self,
        now: u64,
        timeout_ns: u64,
        max_per_call: usize,
    ) -> Vec<StreamRecord> {
        let deadline = now.saturating_sub(timeout_ns);
        let mut out = Vec::new();
        while out.len() < max_per_call {
            let Some(tail) = self.lru_tail else { break };
            let rec = self.slots[tail as usize]
                .record
                .as_ref()
                .expect("lru tail points at live record");
            if rec.last_ts_ns >= deadline {
                break;
            }
            let id = rec.id;
            let mut rec = self.remove(id).expect("tail record removable");
            rec.status = crate::record::StreamStatus::ClosedTimeout;
            out.push(rec);
        }
        out
    }

    /// Evict the least-recently-active stream (memory pressure policy:
    /// "always store newer streams by removing the older ones", §6.4).
    pub fn evict_oldest(&mut self) -> Option<StreamRecord> {
        let tail = self.lru_tail?;
        let id = self.slots[tail as usize].record.as_ref()?.id;
        self.remove(id)
    }

    /// Iterate over all live records (diagnostics, final flush).
    pub fn iter(&self) -> impl Iterator<Item = &StreamRecord> {
        self.slots.iter().filter_map(|s| s.record.as_ref())
    }

    /// Drain every live record (end-of-capture flush), most recent first.
    pub fn drain_all(&mut self) -> Vec<StreamRecord> {
        let ids: Vec<StreamId> = self.iter().map(|r| r.id).collect();
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    // ---- intrusive access list ----

    fn lru_push_front(&mut self, slot: u32) {
        let old_head = self.lru_head;
        {
            let rec = self.slots[slot as usize].record.as_mut().unwrap();
            rec.lru_prev = None;
            rec.lru_next = old_head;
        }
        if let Some(h) = old_head {
            self.slots[h as usize].record.as_mut().unwrap().lru_prev = Some(slot);
        }
        self.lru_head = Some(slot);
        if self.lru_tail.is_none() {
            self.lru_tail = Some(slot);
        }
    }

    fn lru_unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let rec = self.slots[slot as usize].record.as_ref().unwrap();
            (rec.lru_prev, rec.lru_next)
        };
        match prev {
            Some(p) => self.slots[p as usize].record.as_mut().unwrap().lru_next = next,
            None => self.lru_head = next,
        }
        match next {
            Some(n) => self.slots[n as usize].record.as_mut().unwrap().lru_prev = prev,
            None => self.lru_tail = prev,
        }
        let rec = self.slots[slot as usize].record.as_mut().unwrap();
        rec.lru_prev = None;
        rec.lru_next = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scap_wire::Transport;

    fn key(i: u32) -> FlowKey {
        FlowKey::new_v4(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            [192, 168, 0, 1],
            1024 + (i % 60000) as u16,
            80,
            Transport::Tcp,
        )
    }

    fn table() -> FlowTable {
        FlowTable::new(FlowTableConfig::default(), 0xD00D)
    }

    #[test]
    fn insert_lookup_both_directions() {
        let mut t = table();
        let k = key(1);
        let l = t.lookup_or_insert(&k, 10).unwrap();
        assert!(l.created);
        let (id, dir) = t.lookup(&k.reversed()).unwrap();
        assert_eq!(id, l.id);
        assert_ne!(dir, l.direction);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let mut t = FlowTable::new(
            FlowTableConfig {
                initial_capacity: 16,
                max_flows: None,
            },
            7,
        );
        for i in 0..10_000 {
            t.lookup_or_insert(&key(i), u64::from(i)).unwrap();
        }
        assert_eq!(t.len(), 10_000);
        // Every flow still findable.
        for i in (0..10_000).step_by(997) {
            assert!(t.lookup(&key(i)).is_some());
        }
    }

    #[test]
    fn static_limit_rejects_like_libnids() {
        let mut t = FlowTable::new(
            FlowTableConfig {
                initial_capacity: 4,
                max_flows: Some(3),
            },
            7,
        );
        for i in 0..3 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        assert_eq!(t.lookup_or_insert(&key(99), 0), Err(TableFull::MaxFlows));
        // Existing flows still resolvable.
        assert!(!t.lookup_or_insert(&key(1), 0).unwrap().created);
    }

    #[test]
    fn stale_handles_do_not_resolve() {
        let mut t = table();
        let l = t.lookup_or_insert(&key(1), 0).unwrap();
        t.remove(l.id).unwrap();
        assert!(t.get(l.id).is_none());
        // Slot reuse bumps the generation.
        let l2 = t.lookup_or_insert(&key(2), 0).unwrap();
        assert_eq!(l2.id.slot, l.id.slot);
        assert_ne!(l2.id.generation, l.id.generation);
        assert!(t.get(l.id).is_none());
        assert!(t.get(l2.id).is_some());
    }

    #[test]
    fn expiration_removes_only_stale_tail() {
        let mut t = table();
        let a = t.lookup_or_insert(&key(1), 1_000).unwrap().id;
        let b = t.lookup_or_insert(&key(2), 2_000).unwrap().id;
        let c = t.lookup_or_insert(&key(3), 3_000).unwrap().id;
        // Touch a at t=5000 so it is fresh again.
        t.touch(a, 5_000);
        let expired = t.expire_inactive(6_000, 2_500, 64);
        let ids: Vec<StreamId> = expired.iter().map(|r| r.id).collect();
        assert!(ids.contains(&b));
        assert!(ids.contains(&c));
        assert!(!ids.contains(&a));
        assert!(expired
            .iter()
            .all(|r| r.status == crate::record::StreamStatus::ClosedTimeout));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiration_respects_batch_limit() {
        let mut t = table();
        for i in 0..100 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        let first = t.expire_inactive(1_000_000, 10, 30);
        assert_eq!(first.len(), 30);
        assert_eq!(t.len(), 70);
    }

    #[test]
    fn evict_oldest_follows_access_order() {
        let mut t = table();
        let a = t.lookup_or_insert(&key(1), 100).unwrap().id;
        let b = t.lookup_or_insert(&key(2), 200).unwrap().id;
        // b is newer, but touching a makes a the most recent.
        t.touch(a, 300);
        let evicted = t.evict_oldest().unwrap();
        assert_eq!(evicted.id, b);
        let evicted2 = t.evict_oldest().unwrap();
        assert_eq!(evicted2.id, a);
        assert!(t.evict_oldest().is_none());
    }

    #[test]
    fn drain_all_empties_table() {
        let mut t = table();
        for i in 0..50 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        let drained = t.drain_all();
        assert_eq!(drained.len(), 50);
        assert!(t.is_empty());
        assert!(t.lookup(&key(10)).is_none());
    }

    proptest! {
        /// Random interleavings of insert/remove/touch keep the table
        /// internally consistent (LRU list matches live set).
        #[test]
        fn random_ops_keep_invariants(ops in proptest::collection::vec((0u8..3, 0u32..50), 1..200)) {
            let mut t = table();
            let mut live: std::collections::HashMap<u32, StreamId> = Default::default();
            let mut now = 0u64;
            for (op, i) in ops {
                now += 1;
                match op {
                    0 => {
                        let l = t.lookup_or_insert(&key(i), now).unwrap();
                        live.insert(i, l.id);
                    }
                    1 => {
                        if let Some(id) = live.remove(&i) {
                            prop_assert!(t.remove(id).is_some());
                        }
                    }
                    _ => {
                        if let Some(id) = live.get(&i) {
                            t.touch(*id, now);
                        }
                    }
                }
                prop_assert_eq!(t.len(), live.len());
            }
            // Walk the LRU from head: must visit exactly `len` records.
            let visited = t.drain_all();
            prop_assert_eq!(visited.len(), live.len());
        }
    }
}
