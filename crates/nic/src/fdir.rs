//! Flow Director: hardware perfect-match filters.
//!
//! Models the 82599 FDIR unit as the paper uses it:
//!
//! * up to 8 K *perfect-match* filters on the directed 5-tuple;
//! * an optional **flexible 2-byte tuple** match — the paper programs it
//!   at the TCP data-offset/flags bytes so a filter can say "drop packets
//!   whose flag byte is exactly ACK" while letting FIN/RST through;
//! * drop or steer-to-queue actions;
//! * aggregate statistics only (the real card has no per-filter packet
//!   counters, which forces Scap's FIN/RST-based flow-size estimation).
//!
//! Filter insertion/removal on the real card completes "within no more
//! than 10 microseconds" (§2.1); the table tracks an operation count so
//! the cost model can charge it.

use scap_wire::{FlowKey, ParsedPacket, TcpFlags, TcpPacket};
use std::collections::HashMap;

/// The 82599's perfect-match filter capacity.
pub const PERFECT_FILTER_CAPACITY: usize = 8192;

/// Filter action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdirAction {
    /// Drop at the NIC; the packet never reaches host memory.
    Drop,
    /// Deliver to a specific RX queue (dynamic load balancing).
    ToQueue(usize),
}

/// The flexible 2-byte tuple match: compare 2 bytes at a fixed offset
/// within the first 64 bytes of the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlexMatch {
    /// Byte offset within the frame.
    pub offset: u16,
    /// Big-endian 16-bit value that must match exactly.
    pub value: u16,
}

/// A perfect-match filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdirFilter {
    /// Directed 5-tuple the filter matches.
    pub key: FlowKey,
    /// Optional flexible 2-byte constraint.
    pub flex: Option<FlexMatch>,
    /// What to do on match.
    pub action: FdirAction,
}

/// Frame offset of the TCP data-offset/flags pair, assuming Ethernet +
/// option-less IPv4 (the header layout the generator emits; the lookup
/// path recomputes the real offset from the parsed header).
const TCP_OFFSET_FLAGS_FRAME_OFF: u16 = 14 + 20 + 12;

impl FdirFilter {
    /// The paper's stream-cutoff drop filter: match this exact direction's
    /// 5-tuple and drop packets whose TCP flag byte is *exactly* `flags`
    /// (data-offset byte 0x50 = plain 20-byte header).
    pub fn drop_tcp_flags(key: FlowKey, flags: TcpFlags) -> Self {
        FdirFilter {
            key,
            flex: Some(FlexMatch {
                offset: TCP_OFFSET_FLAGS_FRAME_OFF,
                value: (0x50u16 << 8) | u16::from(flags.0),
            }),
            action: FdirAction::Drop,
        }
    }

    /// A steering filter redirecting a whole direction to a queue.
    pub fn steer(key: FlowKey, queue: usize) -> Self {
        FdirFilter {
            key,
            flex: None,
            action: FdirAction::ToQueue(queue),
        }
    }
}

/// Errors from filter-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdirError {
    /// The table is at capacity; the caller must evict first.
    TableFull,
    /// An identical filter (same key and flex) already exists.
    Duplicate,
    /// No such filter installed.
    NotFound,
    /// The programming interface transiently failed (the real card can
    /// report FDIRCMD completion errors under churn); the install may be
    /// retried later.
    Busy,
}

impl core::fmt::Display for FdirError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FdirError::TableFull => write!(f, "flow director table full"),
            FdirError::Duplicate => write!(f, "filter already installed"),
            FdirError::NotFound => write!(f, "filter not installed"),
            FdirError::Busy => write!(f, "filter programming transiently failed"),
        }
    }
}

impl std::error::Error for FdirError {}

/// The filter table.
#[derive(Debug)]
pub struct FdirTable {
    capacity: usize,
    /// Directed 5-tuple → filters on that tuple (usually 1–2).
    by_key: HashMap<FlowKey, Vec<(Option<FlexMatch>, FdirAction)>>,
    installed: usize,
    /// Counts of add/remove operations (cost-model input: ~10 µs each).
    pub ops: u64,
    /// Optional fault injector applied to every `add`.
    faults: Option<scap_faults::FdirInjector>,
    /// Installs rejected with [`FdirError::Busy`] (injected).
    pub transient_failures: u64,
    /// Installs that completed but took an injected latency spike.
    pub slow_installs: u64,
    /// Total injected install latency in nanoseconds.
    pub install_latency_ns: u64,
}

impl FdirTable {
    /// Empty table with the given filter capacity.
    pub fn new(capacity: usize) -> Self {
        FdirTable {
            capacity,
            by_key: HashMap::new(),
            installed: 0,
            ops: 0,
            faults: None,
            transient_failures: 0,
            slow_installs: 0,
            install_latency_ns: 0,
        }
    }

    /// Attach a fault injector; subsequent `add` calls may transiently
    /// fail with [`FdirError::Busy`] or record latency spikes.
    pub fn set_fault_injector(&mut self, inj: scap_faults::FdirInjector) {
        self.faults = Some(inj);
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.installed
    }

    /// True when no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.installed == 0
    }

    /// Remaining capacity.
    pub fn free(&self) -> usize {
        self.capacity - self.installed
    }

    /// Snapshot every installed filter (order unspecified; checkpoint
    /// serialization sorts by encoding for determinism).
    pub fn filters(&self) -> Vec<FdirFilter> {
        let mut out = Vec::with_capacity(self.installed);
        for (key, entries) in &self.by_key {
            for (flex, action) in entries {
                out.push(FdirFilter {
                    key: *key,
                    flex: *flex,
                    action: *action,
                });
            }
        }
        out
    }

    /// Install a filter.
    pub fn add(&mut self, filter: FdirFilter) -> Result<(), FdirError> {
        if let Some(inj) = self.faults.as_mut() {
            match inj.on_install() {
                scap_faults::FdirInstallFault::TransientFail => {
                    self.transient_failures += 1;
                    return Err(FdirError::Busy);
                }
                scap_faults::FdirInstallFault::Latency(ns) => {
                    self.slow_installs += 1;
                    self.install_latency_ns += ns;
                }
                scap_faults::FdirInstallFault::None => {}
            }
        }
        if self.installed >= self.capacity {
            return Err(FdirError::TableFull);
        }
        let entry = self.by_key.entry(filter.key).or_default();
        if entry.iter().any(|(flex, _)| *flex == filter.flex) {
            return Err(FdirError::Duplicate);
        }
        entry.push((filter.flex, filter.action));
        self.installed += 1;
        self.ops += 1;
        Ok(())
    }

    /// Remove one filter identified by key + flex.
    pub fn remove(&mut self, key: &FlowKey, flex: Option<FlexMatch>) -> Result<(), FdirError> {
        let Some(entry) = self.by_key.get_mut(key) else {
            return Err(FdirError::NotFound);
        };
        let before = entry.len();
        entry.retain(|(f, _)| *f != flex);
        let removed = before - entry.len();
        if entry.is_empty() {
            self.by_key.remove(key);
        }
        if removed == 0 {
            return Err(FdirError::NotFound);
        }
        self.installed -= removed;
        self.ops += 1;
        Ok(())
    }

    /// Remove every filter for a directed 5-tuple; returns how many.
    pub fn remove_all_for(&mut self, key: &FlowKey) -> usize {
        match self.by_key.remove(key) {
            Some(v) => {
                self.installed -= v.len();
                self.ops += 1;
                v.len()
            }
            None => 0,
        }
    }

    /// Hardware lookup for a frame: first matching filter wins.
    pub fn lookup(&self, parsed: &ParsedPacket<'_>) -> Option<FdirAction> {
        if self.installed == 0 {
            return None;
        }
        let key = parsed.key.as_ref()?;
        let filters = self.by_key.get(key)?;
        for (flex, action) in filters {
            match flex {
                None => return Some(*action),
                Some(fm) => {
                    if flex_matches(fm, parsed) {
                        return Some(*action);
                    }
                }
            }
        }
        None
    }
}

/// Evaluate the flexible 2-byte tuple against a frame.
///
/// The hardware compares 2 raw bytes at a configured offset. Real TCP
/// headers can have options (different data-offset), and the paper's trick
/// works precisely *because* the data-offset byte participates in the
/// match. We honour that by comparing against the actual bytes at the
/// TCP-header offset of this packet, wherever its IP header ends.
fn flex_matches(fm: &FlexMatch, parsed: &ParsedPacket<'_>) -> bool {
    // Fast path: the configured offset assumes option-less IPv4; if the
    // packet's actual TCP header sits elsewhere, compute the true offset.
    let frame = parsed.frame;
    if fm.offset == TCP_OFFSET_FLAGS_FRAME_OFF {
        if let Some(tcp_off) = tcp_header_offset(parsed) {
            let off = tcp_off + 12;
            if off + 2 <= frame.len() {
                let v = u16::from_be_bytes([frame[off], frame[off + 1]]);
                return v == fm.value;
            }
            return false;
        }
    }
    let off = fm.offset as usize;
    if off + 2 > frame.len() || off >= 64 {
        return false;
    }
    u16::from_be_bytes([frame[off], frame[off + 1]]) == fm.value
}

/// Offset of the TCP header within the frame, derived from the parse.
fn tcp_header_offset(parsed: &ParsedPacket<'_>) -> Option<usize> {
    if !parsed.is_tcp() {
        return None;
    }
    // payload_off points just past the TCP header; recover its start by
    // trying every legal IP header length (IPv4 with options: 20–60
    // bytes in 4-byte steps; IPv6 fixed 40) and checking consistency.
    let candidates = (20..=60).step_by(4);
    for ip_hdr in candidates {
        let start = 14 + ip_hdr;
        if start + TcpPacket::MIN_HEADER_LEN <= parsed.frame.len() {
            if let Ok(t) = TcpPacket::new_checked(&parsed.frame[start..]) {
                if start + t.header_len() == parsed.payload_off {
                    return Some(start);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{parse_frame, PacketBuilder, Transport};

    fn key() -> FlowKey {
        FlowKey::new_v4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80, Transport::Tcp)
    }

    #[test]
    fn add_remove_cycle() {
        let mut t = FdirTable::new(4);
        let f = FdirFilter::steer(key(), 1);
        t.add(f).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.add(f), Err(FdirError::Duplicate));
        t.remove(&key(), None).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.remove(&key(), None), Err(FdirError::NotFound));
        assert_eq!(t.ops, 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = FdirTable::new(2);
        t.add(FdirFilter::steer(key(), 0)).unwrap();
        t.add(FdirFilter::drop_tcp_flags(key(), TcpFlags::ACK))
            .unwrap();
        let extra = FlowKey::new_v4([9, 9, 9, 9], [8, 8, 8, 8], 1, 2, Transport::Tcp);
        assert_eq!(
            t.add(FdirFilter::steer(extra, 0)),
            Err(FdirError::TableFull)
        );
        assert_eq!(t.free(), 0);
    }

    #[test]
    fn remove_all_for_clears_both_paper_filters() {
        let mut t = FdirTable::new(16);
        t.add(FdirFilter::drop_tcp_flags(key(), TcpFlags::ACK))
            .unwrap();
        t.add(FdirFilter::drop_tcp_flags(
            key(),
            TcpFlags::ACK | TcpFlags::PSH,
        ))
        .unwrap();
        assert_eq!(t.remove_all_for(&key()), 2);
        assert!(t.is_empty());
        assert_eq!(t.remove_all_for(&key()), 0);
    }

    #[test]
    fn flex_match_distinguishes_flag_bytes() {
        let mut t = FdirTable::new(16);
        t.add(FdirFilter::drop_tcp_flags(key(), TcpFlags::ACK))
            .unwrap();

        let ack = PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000,
            80,
            5,
            6,
            TcpFlags::ACK,
            b"data",
        );
        let fin = PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000,
            80,
            5,
            6,
            TcpFlags::FIN | TcpFlags::ACK,
            b"",
        );
        assert_eq!(
            t.lookup(&parse_frame(&ack).unwrap()),
            Some(FdirAction::Drop)
        );
        assert_eq!(t.lookup(&parse_frame(&fin).unwrap()), None);
    }

    #[test]
    fn lookup_is_direction_sensitive() {
        let mut t = FdirTable::new(16);
        t.add(FdirFilter::drop_tcp_flags(key(), TcpFlags::ACK))
            .unwrap();
        let reverse = PacketBuilder::tcp_v4(
            [10, 0, 0, 2],
            [10, 0, 0, 1],
            80,
            1000,
            5,
            6,
            TcpFlags::ACK,
            b"resp",
        );
        assert_eq!(t.lookup(&parse_frame(&reverse).unwrap()), None);
    }

    #[test]
    fn injected_transient_failures_are_bounded() {
        let plan = scap_faults::FaultPlan {
            fdir: scap_faults::FdirFaultConfig {
                transient_fail_prob: 1.0,    // always fail...
                max_consecutive_failures: 3, // ...but never more than 3 in a row
                ..Default::default()
            },
            ..scap_faults::FaultPlan::new(42)
        };
        let mut t = FdirTable::new(16);
        t.set_fault_injector(plan.fdir_injector());
        let f = FdirFilter::steer(key(), 1);
        for _ in 0..3 {
            assert_eq!(t.add(f), Err(FdirError::Busy));
        }
        // The injector caps consecutive failures, so a bounded retry loop
        // always eventually succeeds.
        t.add(f).unwrap();
        assert_eq!(t.transient_failures, 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn keyless_frames_never_match() {
        let t = FdirTable::new(16);
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(t.lookup(&parse_frame(&arp).unwrap()), None);
    }

    use proptest::prelude::*;

    fn pkey(i: u8) -> FlowKey {
        FlowKey::new_v4(
            [10, 0, 0, i],
            [10, 0, 0, 200],
            1000 + u16::from(i),
            80,
            Transport::Tcp,
        )
    }

    fn pframe(i: u8, flags: TcpFlags) -> Vec<u8> {
        PacketBuilder::tcp_v4(
            [10, 0, 0, i],
            [10, 0, 0, 200],
            1000 + u16::from(i),
            80,
            5,
            6,
            flags,
            b"x",
        )
    }

    fn flags_of(v: u8) -> TcpFlags {
        match v {
            0 => TcpFlags::ACK,
            1 => TcpFlags::ACK | TcpFlags::PSH,
            2 => TcpFlags::FIN | TcpFlags::ACK,
            _ => TcpFlags::RST,
        }
    }

    proptest! {
        /// Precedence between an exact (no-flex) filter and a flex filter
        /// on the same directed 5-tuple is first-match in install order:
        /// an exact filter matches every frame on the tuple, so it shadows
        /// any flex filter installed after it, while a flex filter
        /// installed first only wins on frames whose flag byte matches.
        #[test]
        fn flex_vs_exact_precedence(
            flex_first in any::<bool>(),
            fv in 0u8..4,
            pv in 0u8..4,
            q in 0usize..8,
        ) {
            let mut t = FdirTable::new(8);
            let k = pkey(1);
            let flexf = FdirFilter::drop_tcp_flags(k, flags_of(fv));
            let exact = FdirFilter::steer(k, q);
            if flex_first {
                t.add(flexf).unwrap();
                t.add(exact).unwrap();
            } else {
                t.add(exact).unwrap();
                t.add(flexf).unwrap();
            }

            let parsedable = pframe(1, flags_of(pv));
            let parsed = parse_frame(&parsedable).unwrap();
            let expected = if flex_first && pv == fv {
                FdirAction::Drop
            } else {
                FdirAction::ToQueue(q)
            };
            prop_assert_eq!(t.lookup(&parsed), Some(expected));

            // A frame on a different tuple matches neither filter.
            let other = pframe(2, flags_of(pv));
            prop_assert_eq!(t.lookup(&parse_frame(&other).unwrap()), None);
        }

        /// The table agrees with an insertion-ordered reference model
        /// across add/remove/remove_all_for: Duplicate / TableFull /
        /// NotFound errors fire exactly when the model says (capacity is
        /// checked before duplicates, as in `add`), counts stay in sync,
        /// and `lookup` equals a first-match walk of the model for every
        /// (tuple, flag-byte) combination.
        #[test]
        fn matches_reference_model(
            ops in proptest::collection::vec((0u8..4, 0u8..5, 0u8..4, 0usize..4), 1..200)
        ) {
            const CAP: usize = 4;
            let mut t = FdirTable::new(CAP);
            // (key index, flex flag variant, action), in install order.
            let mut model: Vec<(u8, Option<u8>, FdirAction)> = Vec::new();
            for (op, ki, fv, q) in ops {
                match op {
                    0 => {
                        let r = t.add(FdirFilter::steer(pkey(ki), q));
                        if model.len() >= CAP {
                            prop_assert_eq!(r, Err(FdirError::TableFull));
                        } else if model.iter().any(|(k, f, _)| *k == ki && f.is_none()) {
                            prop_assert_eq!(r, Err(FdirError::Duplicate));
                        } else {
                            prop_assert_eq!(r, Ok(()));
                            model.push((ki, None, FdirAction::ToQueue(q)));
                        }
                    }
                    1 => {
                        let r = t.add(FdirFilter::drop_tcp_flags(pkey(ki), flags_of(fv)));
                        if model.len() >= CAP {
                            prop_assert_eq!(r, Err(FdirError::TableFull));
                        } else if model.iter().any(|(k, f, _)| *k == ki && *f == Some(fv)) {
                            prop_assert_eq!(r, Err(FdirError::Duplicate));
                        } else {
                            prop_assert_eq!(r, Ok(()));
                            model.push((ki, Some(fv), FdirAction::Drop));
                        }
                    }
                    2 => {
                        let (flex, mfv) = if q % 2 == 0 {
                            (None, None)
                        } else {
                            (
                                FdirFilter::drop_tcp_flags(pkey(ki), flags_of(fv)).flex,
                                Some(fv),
                            )
                        };
                        let r = t.remove(&pkey(ki), flex);
                        match model.iter().position(|(k, f, _)| *k == ki && *f == mfv) {
                            Some(pos) => {
                                prop_assert_eq!(r, Ok(()));
                                model.remove(pos);
                            }
                            None => prop_assert_eq!(r, Err(FdirError::NotFound)),
                        }
                    }
                    _ => {
                        let n = t.remove_all_for(&pkey(ki));
                        let before = model.len();
                        model.retain(|(k, _, _)| *k != ki);
                        prop_assert_eq!(n, before - model.len());
                    }
                }
                prop_assert_eq!(t.len(), model.len());
                prop_assert_eq!(t.free(), CAP - model.len());
            }

            for ki in 0..5u8 {
                for pv in 0..4u8 {
                    let frame = pframe(ki, flags_of(pv));
                    let parsed = parse_frame(&frame).unwrap();
                    let want = model.iter().find_map(|(k, f, a)| {
                        if *k != ki {
                            return None;
                        }
                        match f {
                            None => Some(*a),
                            Some(mfv) if *mfv == pv => Some(*a),
                            _ => None,
                        }
                    });
                    prop_assert_eq!(t.lookup(&parsed), want);
                }
            }
        }
    }
}
