#![warn(missing_docs)]

//! # scap-reassembly
//!
//! TCP stream reassembly (§2.3 and §5.2 of the paper): the engine that
//! turns raw segments into in-order byte streams, in two modes:
//!
//! * **Strict** (`SCAP_TCP_STRICT`) — segments are reassembled according
//!   to the robust-reassembly guidelines: out-of-order data is buffered
//!   until the hole fills, protecting against TCP-segmentation evasion.
//! * **Fast** (`SCAP_TCP_FAST`) — best-effort: retransmissions,
//!   reordering and overlaps are handled like strict mode, but a hole
//!   that does not fill within a small buffering tolerance is *skipped*
//!   so processing never stalls behind lost packets; the affected range
//!   is flagged so applications know the chunk had errors.
//!
//! Overlapping segments are resolved by a **target-based policy**
//! ([`OverlapPolicy`]) in the spirit of Shankar & Paxson's active mapping
//! and Snort's Stream5: different host stacks keep different bytes when
//! segments overlap, and a monitor must mimic the stack of the traffic's
//! real destination to avoid evasion. Policies are applied per
//! overlapping pair at byte granularity; `First`-family and
//! `Last`-family behaviour plus the BSD start-offset rule cover the
//! published policy matrix (see DESIGN.md for the mapping).
//!
//! The crate is pure: no I/O, no allocation beyond the out-of-order
//! buffer, and every delivery happens through a caller-supplied sink —
//! the Scap kernel module copies delivered bytes straight into
//! stream-specific chunks, which is the paper's single-copy claim.

pub mod conn;
pub mod dir;
pub mod segbuf;

pub use conn::{CloseKind, ConnCheckpoint, ConnPhase, SegOutcome, TcpConn};
pub use dir::{DirReassembler, DirState, ReasmConfig};
pub use segbuf::SegmentBuffer;

/// Reassembly mode (the `reassembly_mode` of `scap_create`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReassemblyMode {
    /// Buffer out-of-order data until holes fill (evasion-resistant).
    Strict,
    /// Best-effort: bounded buffering, holes are skipped and flagged.
    #[default]
    Fast,
}

/// Target-based overlap policy: which bytes win when segments overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapPolicy {
    /// Original data wins every overlap (Snort "first").
    #[default]
    First,
    /// New data wins every overlap (Snort "last").
    Last,
    /// New data wins only when the new segment begins before the
    /// existing one (the BSD trimming rule).
    Bsd,
    /// Windows targets keep original data.
    Windows,
    /// Solaris targets favour new data.
    Solaris,
    /// Linux targets follow the BSD-style rule.
    Linux,
}

impl OverlapPolicy {
    /// Resolve a pairwise overlap: does the *new* segment's data win
    /// against an existing segment starting at `old_start`, given the new
    /// segment starts at `new_start`?
    pub fn new_wins(&self, new_start: u64, old_start: u64) -> bool {
        match self {
            OverlapPolicy::First | OverlapPolicy::Windows => false,
            OverlapPolicy::Last | OverlapPolicy::Solaris => true,
            OverlapPolicy::Bsd | OverlapPolicy::Linux => new_start < old_start,
        }
    }
}

/// Error conditions surfaced to the stream record (`sd->error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReasmFlags(pub u8);

impl ReasmFlags {
    /// Data seen without a complete three-way handshake.
    pub const INCOMPLETE_HANDSHAKE: ReasmFlags = ReasmFlags(0x01);
    /// A sequence hole was skipped (fast mode).
    pub const SEQUENCE_GAP: ReasmFlags = ReasmFlags(0x02);
    /// Overlapping segments carried different bytes.
    pub const INCONSISTENT_OVERLAP: ReasmFlags = ReasmFlags(0x04);
    /// A segment was outside any plausible window and was dropped.
    pub const INVALID_SEQUENCE: ReasmFlags = ReasmFlags(0x08);
    /// Payload carried on a SYN was ignored.
    pub const DATA_ON_SYN: ReasmFlags = ReasmFlags(0x10);
    /// The out-of-order buffer overflowed (strict mode under attack).
    pub const BUFFER_OVERFLOW: ReasmFlags = ReasmFlags(0x20);

    /// Merge in other flags.
    pub fn set(&mut self, f: ReasmFlags) {
        self.0 |= f.0;
    }

    /// Test for all given flags.
    pub fn contains(&self, f: ReasmFlags) -> bool {
        self.0 & f.0 == f.0
    }

    /// True when nothing has been flagged.
    pub fn is_clean(&self) -> bool {
        self.0 == 0
    }
}

impl core::ops::BitOr for ReasmFlags {
    type Output = ReasmFlags;
    fn bitor(self, rhs: ReasmFlags) -> ReasmFlags {
        ReasmFlags(self.0 | rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_families() {
        assert!(!OverlapPolicy::First.new_wins(10, 5));
        assert!(!OverlapPolicy::Windows.new_wins(0, 5));
        assert!(OverlapPolicy::Last.new_wins(10, 5));
        assert!(OverlapPolicy::Solaris.new_wins(10, 5));
        assert!(OverlapPolicy::Bsd.new_wins(3, 5));
        assert!(!OverlapPolicy::Bsd.new_wins(5, 5));
        assert!(!OverlapPolicy::Linux.new_wins(7, 5));
    }

    #[test]
    fn flags_compose() {
        let mut f = ReasmFlags::default();
        assert!(f.is_clean());
        f.set(ReasmFlags::SEQUENCE_GAP | ReasmFlags::DATA_ON_SYN);
        assert!(f.contains(ReasmFlags::SEQUENCE_GAP));
        assert!(f.contains(ReasmFlags::DATA_ON_SYN));
        assert!(!f.contains(ReasmFlags::BUFFER_OVERFLOW));
    }
}
