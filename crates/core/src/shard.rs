//! Fault-tolerant scale-out sharding: the `ShardFleet` supervisor.
//!
//! A fleet partitions one capture across N independent shard engines
//! (each a full [`ScapKernel`] with its own flow table, arena, NIC
//! emulation, and flight recorder) using RSS-consistent symmetric
//! partitioning ([`scap_shard::ShardMap`]): both directions of a flow
//! land on the same shard for any shard count ≥ 1, so per-shard stream
//! reassembly never sees half a connection.
//!
//! The supervisor holds one heartbeat [`Lease`] per shard. A healthy
//! shard beats its lease on every packet it accepts; a wedged shard
//! (injected via [`ShardFaultKind::StallHeartbeat`]) stops beating
//! while offers keep arriving, and the lease deadline takes it down.
//! Dead or taken-down shards are respawned from their latest
//! checkpoint after an exponential backoff with deterministic jitter
//! ([`Backoff`]); a [`CircuitBreaker`] parks a shard that fails M
//! times inside a window, and the parked partition's loss is accounted
//! until the capture ends.
//!
//! **Fleet conservation.** Every packet offered to the fleet takes
//! exactly one exit: it is either fed to exactly one shard-kernel
//! incarnation (where the kernel's own identity
//! `wire == delivered + dropped + discarded` holds), or it is dropped
//! while the owning shard is down and counted — and journaled as one
//! aggregated `drop/shard/shard_down` flight event per blackout — so
//! the fleet-wide identity
//! `wire == Σ(delivered + dropped + discarded) + shard_down` holds
//! exactly, in packets and in wire bytes, and reconciles byte-exactly
//! against the union of per-incarnation flight journals plus the
//! supervisor's own journal.

use crate::checkpoint::CheckpointImage;
use crate::config::ScapConfig;
use crate::event::{Event, EventKind};
use crate::kernel::ScapKernel;
use scap_faults::{FaultPlan, ShardFault, ShardFaultKind};
use scap_flight::{FlightEvent, FlightKind, FlightLayer, FlightRecorder};
use scap_shard::{Backoff, CircuitBreaker, Lease, ShardMap, ShardState};
use scap_telemetry::PulseSnapshot;
use scap_trace::Packet;
use scap_wire::parse_frame;

pub use scap_flight::DropReason;

/// Configuration of a supervised shard fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shard engines (clamped to ≥ 1).
    pub nshards: usize,
    /// Partition hash seed (must stay stable across restarts for the
    /// partition to remain stable).
    pub partition_seed: u64,
    /// Per-shard kernel configuration (cloned into every shard).
    pub shard: ScapConfig,
    /// Heartbeat lease deadline: a shard with pending offers that has
    /// not made progress for this long is taken down.
    pub lease_timeout_ns: u64,
    /// First respawn backoff delay.
    pub backoff_base_ns: u64,
    /// Hard cap on any respawn delay (jitter included).
    pub backoff_cap_ns: u64,
    /// Failures inside [`FleetConfig::breaker_window_ns`] that park a
    /// shard for good.
    pub breaker_threshold: u32,
    /// Sliding failure window of the circuit breaker.
    pub breaker_window_ns: u64,
    /// Checkpoint cadence, in packets offered per shard.
    pub checkpoint_interval_pkts: u64,
    /// Packets a shard processes between poll/drain bursts.
    pub drive_burst: usize,
    /// Scheduled shard faults (and the seed deriving their jitter);
    /// `None` = quiet fleet.
    pub faults: Option<FaultPlan>,
    /// Supervisor flight-journal ring capacity (events per core; the
    /// supervisor journal is O(respawns) and must not wrap for exact
    /// reconciliation).
    pub flight_ring_cap: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nshards: 4,
            partition_seed: 0x5ca9_5eed,
            shard: ScapConfig::default(),
            lease_timeout_ns: 2_000_000,
            backoff_base_ns: 500_000,
            backoff_cap_ns: 8_000_000,
            breaker_threshold: 4,
            breaker_window_ns: 200_000_000,
            checkpoint_interval_pkts: 512,
            drive_burst: 256,
            faults: None,
            flight_ring_cap: 1 << 12,
        }
    }
}

/// Retired-incarnation accumulator: the end-of-life statistics of every
/// kernel incarnation a shard has been through, summed.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncarnationTotals {
    /// Wire packets accepted by retired incarnations.
    pub wire_packets: u64,
    /// Wire bytes accepted by retired incarnations.
    pub wire_bytes: u64,
    /// Delivered packets across retired incarnations.
    pub delivered_packets: u64,
    /// Overload-dropped packets across retired incarnations.
    pub dropped_packets: u64,
    /// Deliberately discarded packets across retired incarnations.
    pub discarded_packets: u64,
    /// Payload bytes delivered across retired incarnations.
    pub delivered_bytes: u64,
    /// Overload-dropped bytes across retired incarnations.
    pub dropped_bytes: u64,
    /// Deliberately discarded bytes across retired incarnations.
    pub discarded_bytes: u64,
    /// Streams created across retired incarnations.
    pub streams_created: u64,
    /// Blackout resume-gap bytes accumulated across restores.
    pub resume_gap_bytes: u64,
    /// Streams restored from checkpoints across restores.
    pub resumed_streams: u64,
    /// Checkpoints written across incarnations.
    pub checkpoints_written: u64,
}

impl IncarnationTotals {
    fn absorb(&mut self, s: &crate::kernel::ScapStats) {
        self.wire_packets += s.stack.wire_packets;
        self.wire_bytes += s.stack.wire_bytes;
        self.delivered_packets += s.stack.delivered_packets;
        self.dropped_packets += s.stack.dropped_packets;
        self.discarded_packets += s.stack.discarded_packets;
        self.delivered_bytes += s.stack.delivered_bytes;
        self.dropped_bytes += s.stack.dropped_bytes;
        self.discarded_bytes += s.stack.discarded_bytes;
        self.streams_created += s.stack.streams_created;
        self.resume_gap_bytes += s.resilience.resume_gap_bytes;
        self.resumed_streams += s.resilience.resumed_streams;
        self.checkpoints_written += s.resilience.checkpoints_written;
    }
}

/// One supervised shard: the live kernel (when up), its lease, its
/// fault schedule, its checkpoints, and its lifetime accounting.
struct ShardSlot {
    kernel: Option<ScapKernel>,
    state: ShardState,
    lease: Lease,
    breaker: CircuitBreaker,
    /// Scheduled faults, sorted by firing ordinal; `next_fault` indexes
    /// the first not-yet-fired entry.
    faults: Vec<ShardFault>,
    next_fault: usize,
    /// Packets offered to this shard's partition (counted across
    /// incarnations and blackouts — the fault-schedule ordinal).
    offered_pkts: u64,
    offered_bytes: u64,
    /// Packets fed to the live kernel since the last poll burst.
    pending_burst: usize,
    /// Virtual time the current heartbeat stall ends (0 = not stalled).
    stall_until_ns: u64,
    /// Rotated checkpoint images: `[latest, previous]`.
    ckpt_latest: Option<Vec<u8>>,
    ckpt_previous: Option<Vec<u8>>,
    ckpt_seq: u64,
    last_ckpt_at_pkts: u64,
    /// When the shard may be respawned (Respawning state only).
    respawn_at_ns: u64,
    /// When the current blackout began (stall begin or kill time).
    blackout_started_ns: u64,
    /// Down-drops inside the current blackout (flushed into one
    /// aggregated flight event when the blackout closes).
    cur_down_pkts: u64,
    cur_down_bytes: u64,
    /// Lifetime down-drop attribution for this partition.
    down_pkts: u64,
    down_bytes: u64,
    /// Lifetime counters surfaced in [`ShardStatus`].
    kills: u64,
    lease_expiries: u64,
    respawns: u64,
    ckpt_fallbacks: u64,
    cold_starts: u64,
    max_blackout_ns: u64,
    retired: IncarnationTotals,
    /// Encoded flight journals of retired incarnations.
    journals: Vec<Vec<u8>>,
    /// Merged pulse plane of retired incarnations (latency histograms
    /// and surviving exemplars ride across respawns like the counters).
    retired_pulse: PulseSnapshot,
}

/// A point-in-time status row for one shard (the `scaptop --shards`
/// panel and the soak experiment's per-shard figure).
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Lifecycle state.
    pub state: ShardState,
    /// Lease age at the time of the snapshot.
    pub lease_age_ns: u64,
    /// Packets offered to this partition so far.
    pub offered_pkts: u64,
    /// Wire bytes offered to this partition so far.
    pub offered_bytes: u64,
    /// Streams currently tracked by the live kernel (0 while down).
    pub tracked_streams: u64,
    /// Times this shard was killed (crash or lease takedown).
    pub kills: u64,
    /// Lease-deadline takedowns among those kills.
    pub lease_expiries: u64,
    /// Successful respawns.
    pub respawns: u64,
    /// Respawns that fell back to the previous checkpoint image.
    pub ckpt_fallbacks: u64,
    /// Respawns that cold-started (no usable checkpoint).
    pub cold_starts: u64,
    /// Packets dropped while this partition was down.
    pub down_pkts: u64,
    /// Wire bytes dropped while this partition was down.
    pub down_bytes: u64,
    /// Longest blackout endured so far.
    pub max_blackout_ns: u64,
    /// Failures currently inside the breaker window.
    pub breaker_failures: u32,
}

/// Fleet-wide aggregated statistics (conservation inputs included).
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetStats {
    /// Packets offered to the fleet.
    pub wire_packets: u64,
    /// Wire bytes offered to the fleet.
    pub wire_bytes: u64,
    /// Σ delivered packets over every incarnation of every shard.
    pub delivered_packets: u64,
    /// Σ overload-dropped packets over every incarnation.
    pub dropped_packets: u64,
    /// Σ deliberately discarded packets over every incarnation.
    pub discarded_packets: u64,
    /// Σ payload bytes delivered.
    pub delivered_bytes: u64,
    /// Σ wire bytes accepted by shard kernels.
    pub shard_wire_bytes: u64,
    /// Σ overload-dropped bytes.
    pub dropped_bytes: u64,
    /// Σ deliberately discarded bytes.
    pub discarded_bytes: u64,
    /// Packets dropped while their partition was down.
    pub shard_down_packets: u64,
    /// Wire bytes dropped while their partition was down.
    pub shard_down_bytes: u64,
    /// Σ streams created.
    pub streams_created: u64,
    /// Σ blackout resume-gap bytes across all restores.
    pub resume_gap_bytes: u64,
    /// Σ streams restored from checkpoints.
    pub resumed_streams: u64,
    /// Σ checkpoints written.
    pub checkpoints_written: u64,
    /// Total shard kills (crashes + lease takedowns).
    pub kills: u64,
    /// Lease-deadline takedowns among those.
    pub lease_expiries: u64,
    /// Successful respawns.
    pub respawns: u64,
    /// Respawns served from the previous image after corruption.
    pub ckpt_fallbacks: u64,
    /// Respawns with no usable checkpoint at all.
    pub cold_starts: u64,
    /// Shards parked by their circuit breaker.
    pub parked: u64,
    /// Longest blackout endured by any shard.
    pub max_blackout_ns: u64,
}

impl FleetStats {
    /// The fleet-wide packet conservation identity:
    /// `wire == Σ(delivered + dropped + discarded) + shard_down`.
    pub fn packets_conserved(&self) -> bool {
        self.wire_packets
            == self.delivered_packets
                + self.dropped_packets
                + self.discarded_packets
                + self.shard_down_packets
    }

    /// The fleet-wide wire-byte conservation identity: every offered
    /// byte was either accepted by some shard incarnation or dropped
    /// while its partition was down.
    pub fn bytes_conserved(&self) -> bool {
        self.wire_bytes == self.shard_wire_bytes + self.shard_down_bytes
    }
}

/// A supervised multi-shard capture fleet. See the module docs for the
/// model; see [`ShardFleet::offer`] for the per-packet contract.
pub struct ShardFleet {
    cfg: FleetConfig,
    map: ShardMap,
    backoff: Backoff,
    slots: Vec<ShardSlot>,
    /// The supervisor's own flight journal: spawn/kill/respawn/park
    /// lifecycle plus one aggregated `drop/shard/shard_down` event per
    /// blackout.
    flight: FlightRecorder,
    wire_packets: u64,
    wire_bytes: u64,
    now_ns: u64,
    finished: bool,
}

impl ShardFleet {
    /// Spawn a fleet: N cold shard kernels, leases anchored at t=0.
    pub fn new(cfg: FleetConfig) -> Self {
        let nshards = cfg.nshards.max(1);
        let seed = cfg.faults.as_ref().map_or(cfg.partition_seed, |f| f.seed);
        let map = ShardMap::new(nshards, cfg.partition_seed);
        let backoff = Backoff::new(cfg.backoff_base_ns, cfg.backoff_cap_ns, seed);
        let mut flight = FlightRecorder::new(1, cfg.flight_ring_cap);
        let mut slots = Vec::with_capacity(nshards);
        for shard in 0..nshards {
            let faults = cfg
                .faults
                .as_ref()
                .map_or_else(Vec::new, |f| f.shard_faults(shard));
            // Shard kernels keep their own fault layers quiet: the fleet
            // schedule drives failure, and per-kernel layers would make
            // incarnation journals depend on respawn timing.
            let kernel = ScapKernel::new(cfg.shard.clone());
            flight.emit(
                0,
                FlightEvent::new(FlightKind::ShardSpawned, FlightLayer::Shard, 0)
                    .with_vals(shard as u64, 1),
            );
            slots.push(ShardSlot {
                kernel: Some(kernel),
                state: ShardState::Up,
                lease: Lease::new(cfg.lease_timeout_ns, 0),
                breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_window_ns),
                faults,
                next_fault: 0,
                offered_pkts: 0,
                offered_bytes: 0,
                pending_burst: 0,
                stall_until_ns: 0,
                ckpt_latest: None,
                ckpt_previous: None,
                ckpt_seq: 0,
                last_ckpt_at_pkts: 0,
                respawn_at_ns: 0,
                blackout_started_ns: 0,
                cur_down_pkts: 0,
                cur_down_bytes: 0,
                down_pkts: 0,
                down_bytes: 0,
                kills: 0,
                lease_expiries: 0,
                respawns: 0,
                ckpt_fallbacks: 0,
                cold_starts: 0,
                max_blackout_ns: 0,
                retired: IncarnationTotals::default(),
                journals: Vec::new(),
                retired_pulse: PulseSnapshot::default(),
            });
        }
        ShardFleet {
            cfg,
            map,
            backoff,
            slots,
            flight,
            wire_packets: 0,
            wire_bytes: 0,
            now_ns: 0,
            finished: false,
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.slots.len()
    }

    /// The shard owning a flow key (both directions map identically).
    pub fn shard_of(&self, key: &scap_wire::FlowKey) -> usize {
        self.map.shard_of(key)
    }

    /// Offer one packet to the fleet, dropping completed-stream events
    /// on the floor. See [`ShardFleet::offer_with`].
    pub fn offer(&mut self, pkt: &Packet) {
        self.offer_with(pkt, &mut |_, _| {});
    }

    /// Offer one packet to the fleet. The packet is routed to its
    /// partition's shard; a live shard accepts it (beating its lease),
    /// a down or wedged shard's packet is dropped and attributed to
    /// `drop/shard/shard_down`. Kernel events produced while driving
    /// the shard are handed to `sink(shard, &event)` before their data
    /// chunks are recycled.
    pub fn offer_with(&mut self, pkt: &Packet, sink: &mut dyn FnMut(usize, &Event)) {
        let now = pkt.ts_ns.max(self.now_ns);
        self.tick_with(now, sink);
        // Non-IP / unparseable frames have no flow key; they ride on
        // shard 0 so every frame has exactly one deterministic owner.
        let shard = parse_frame(&pkt.frame)
            .ok()
            .and_then(|p| p.key)
            .map_or(0, |k| self.map.shard_of(&k));
        let bytes = pkt.frame.len() as u64;
        self.wire_packets += 1;
        self.wire_bytes += bytes;
        {
            let slot = &mut self.slots[shard];
            slot.offered_pkts += 1;
            slot.offered_bytes += bytes;
        }

        // Fire scheduled faults at their shard-local ordinal; the
        // triggering packet sees the post-fault shard.
        loop {
            let slot = &self.slots[shard];
            let due = slot
                .faults
                .get(slot.next_fault)
                .filter(|f| f.at_packet <= slot.offered_pkts)
                .copied();
            let Some(f) = due else { break };
            self.slots[shard].next_fault += 1;
            self.apply_fault(shard, f.kind, now, sink);
        }

        let slot = &mut self.slots[shard];
        let stalled = slot.stall_until_ns > now;
        if slot.state != ShardState::Up || stalled {
            // Partition down (or wedged): account the loss now, journal
            // it in aggregate when the blackout closes.
            slot.lease.offered();
            slot.cur_down_pkts += 1;
            slot.cur_down_bytes += bytes;
            slot.down_pkts += 1;
            slot.down_bytes += bytes;
            return;
        }
        let kernel = slot.kernel.as_mut().expect("up shard has a kernel");
        kernel.nic_receive(pkt);
        slot.lease.beat(now);
        slot.pending_burst += 1;
        if slot.pending_burst >= self.cfg.drive_burst {
            self.drive(shard, now, sink);
        }
        let slot = &mut self.slots[shard];
        if slot.offered_pkts - slot.last_ckpt_at_pkts >= self.cfg.checkpoint_interval_pkts {
            self.drive(shard, now, sink);
            self.checkpoint(shard, now);
        }
    }

    /// Advance supervisor time: expire leases (taking wedged shards
    /// down) and respawn shards whose backoff has elapsed.
    pub fn tick(&mut self, now_ns: u64) {
        self.tick_with(now_ns, &mut |_, _| {});
    }

    fn tick_with(&mut self, now_ns: u64, sink: &mut dyn FnMut(usize, &Event)) {
        self.now_ns = self.now_ns.max(now_ns);
        let now = self.now_ns;
        for shard in 0..self.slots.len() {
            let slot = &mut self.slots[shard];
            match slot.state {
                ShardState::Up => {
                    if slot.stall_until_ns > 0 && slot.lease.expired(now) {
                        // Deadline detection: the wedged shard stopped
                        // beating while offers piled up.
                        slot.lease_expiries += 1;
                        let age = slot.lease.age(now);
                        self.flight.emit(
                            0,
                            FlightEvent::new(
                                FlightKind::ShardLeaseExpired,
                                FlightLayer::Shard,
                                now,
                            )
                            .with_vals(shard as u64, age),
                        );
                        self.kill(shard, now, sink);
                    }
                }
                ShardState::Respawning => {
                    if now >= self.slots[shard].respawn_at_ns {
                        self.respawn(shard, now);
                    }
                }
                ShardState::Parked => {}
            }
        }
    }

    /// Drain one shard's poll/timer/event backlog into `sink`.
    fn drive(&mut self, shard: usize, now: u64, sink: &mut dyn FnMut(usize, &Event)) {
        let slot = &mut self.slots[shard];
        let Some(kernel) = slot.kernel.as_mut() else {
            return;
        };
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                kernel.note_delivery(&ev, now);
                sink(shard, &ev);
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        slot.pending_burst = 0;
        slot.lease.beat(now);
    }

    /// Write (and rotate) one periodic checkpoint for a live shard.
    fn checkpoint(&mut self, shard: usize, now: u64) {
        let slot = &mut self.slots[shard];
        let Some(kernel) = slot.kernel.as_mut() else {
            return;
        };
        slot.ckpt_seq += 1;
        let bytes = kernel.checkpoint_bytes(now, slot.ckpt_seq);
        slot.ckpt_previous = slot.ckpt_latest.take();
        slot.ckpt_latest = Some(bytes);
        slot.last_ckpt_at_pkts = slot.offered_pkts;
    }

    fn apply_fault(
        &mut self,
        shard: usize,
        kind: ShardFaultKind,
        now: u64,
        sink: &mut dyn FnMut(usize, &Event),
    ) {
        match kind {
            ShardFaultKind::Kill => {
                if self.slots[shard].state == ShardState::Up {
                    self.kill(shard, now, sink);
                }
            }
            ShardFaultKind::StallHeartbeat(ns) => {
                let slot = &mut self.slots[shard];
                if slot.state == ShardState::Up && slot.stall_until_ns <= now {
                    slot.stall_until_ns = now.saturating_add(ns);
                    // The stall opens a blackout window even though the
                    // kernel object survives: its partition stops making
                    // progress right now.
                    slot.blackout_started_ns = now;
                }
            }
            ShardFaultKind::CorruptCheckpoint => {
                let slot = &mut self.slots[shard];
                if let Some(img) = slot.ckpt_latest.as_mut() {
                    // Flip bytes mid-image: the framing survives, the
                    // CRC check on decode does not.
                    let mid = img.len() / 2;
                    for b in img.iter_mut().skip(mid).take(8) {
                        *b ^= 0xFF;
                    }
                }
            }
        }
    }

    /// Take a shard down: post-mortem the kernel (so every accepted
    /// packet is classified and the incarnation's own conservation
    /// identity holds), harvest its statistics and journal, and either
    /// schedule a respawn or park the shard if the breaker trips.
    /// Post-mortem events are *not* delivered to the sink — a crashed
    /// shard's unflushed events are lost, exactly as in a real crash —
    /// but they stay classified in the incarnation's counters.
    fn kill(&mut self, shard: usize, now: u64, _sink: &mut dyn FnMut(usize, &Event)) {
        let slot = &mut self.slots[shard];
        let Some(mut kernel) = slot.kernel.take() else {
            return;
        };
        kernel.finish(now);
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        slot.retired.absorb(&kernel.stats());
        slot.journals.push(kernel.flight().encode());
        slot.retired_pulse.merge(&kernel.pulse_snapshot());
        slot.kills += 1;
        if slot.stall_until_ns <= now {
            // Clean crash: the blackout starts now. (A stall-induced
            // takedown keeps its earlier stall-begin anchor.)
            slot.blackout_started_ns = now;
        }
        slot.stall_until_ns = 0;
        let tripped = slot.breaker.record_failure(now);
        if tripped {
            slot.state = ShardState::Parked;
            let fails = u64::from(slot.breaker.failures_in_window());
            self.flight.emit(
                0,
                FlightEvent::new(FlightKind::BreakerTripped, FlightLayer::Shard, now)
                    .with_vals(shard as u64, fails),
            );
            self.flight.emit(
                0,
                FlightEvent::new(FlightKind::ShardParked, FlightLayer::Shard, now)
                    .with_vals(shard as u64, fails),
            );
        } else {
            slot.state = ShardState::Respawning;
            let attempt = slot.breaker.failures_in_window().saturating_sub(1);
            let delay = self.backoff.delay_ns(attempt, shard as u64);
            slot.respawn_at_ns = now.saturating_add(delay);
            self.flight.emit(
                0,
                FlightEvent::new(FlightKind::ShardKilled, FlightLayer::Shard, now)
                    .with_vals(shard as u64, delay),
            );
        }
    }

    /// Close the current blackout window: journal its down-drops as one
    /// aggregated `drop/shard/shard_down` event (packet and byte exact).
    fn close_blackout(&mut self, shard: usize, now: u64) -> u64 {
        let slot = &mut self.slots[shard];
        let blackout = now.saturating_sub(slot.blackout_started_ns);
        slot.max_blackout_ns = slot.max_blackout_ns.max(blackout);
        if slot.cur_down_pkts > 0 {
            let (p, b) = (slot.cur_down_pkts, slot.cur_down_bytes);
            slot.cur_down_pkts = 0;
            slot.cur_down_bytes = 0;
            self.flight.emit(
                0,
                FlightEvent::new(FlightKind::Drop, FlightLayer::Shard, now)
                    .with_reason(DropReason::ShardDown)
                    .with_uid(shard as u64)
                    .with_vals(p, b),
            );
        }
        blackout
    }

    /// Respawn a shard from its newest decodable checkpoint, falling
    /// back to the previous image on corruption and cold-starting when
    /// no image survives.
    fn respawn(&mut self, shard: usize, now: u64) {
        let mut fallback = false;
        let mut cold = false;
        let had_latest = self.slots[shard].ckpt_latest.is_some();
        let mut kernel = match self.slots[shard]
            .ckpt_latest
            .as_deref()
            .map(CheckpointImage::decode)
        {
            Some(Ok(img)) => ScapKernel::from_image(img, None).ok(),
            _ => None,
        };
        if kernel.is_none() {
            if had_latest {
                let has_prev = self.slots[shard].ckpt_previous.is_some();
                self.flight.emit(
                    0,
                    FlightEvent::new(FlightKind::ShardCheckpointCorrupt, FlightLayer::Shard, now)
                        .with_vals(shard as u64, u64::from(has_prev)),
                );
            }
            kernel = match self.slots[shard]
                .ckpt_previous
                .as_deref()
                .map(CheckpointImage::decode)
            {
                Some(Ok(img)) => {
                    fallback = true;
                    ScapKernel::from_image(img, None).ok()
                }
                _ => None,
            };
        }
        let kernel = kernel.unwrap_or_else(|| {
            cold = true;
            ScapKernel::new(self.cfg.shard.clone())
        });
        let blackout = self.close_blackout(shard, now);
        let slot = &mut self.slots[shard];
        slot.kernel = Some(kernel);
        slot.state = ShardState::Up;
        slot.lease = Lease::new(self.cfg.lease_timeout_ns, now);
        slot.pending_burst = 0;
        slot.respawns += 1;
        slot.ckpt_fallbacks += u64::from(fallback);
        slot.cold_starts += u64::from(cold);
        if fallback {
            // The corrupt image is useless for any later respawn: drop
            // it so the next incident restarts from the good lineage.
            slot.ckpt_latest = slot.ckpt_previous.take();
        }
        self.flight.emit(
            0,
            FlightEvent::new(FlightKind::ShardRespawned, FlightLayer::Shard, now)
                .with_vals(shard as u64, blackout),
        );
    }

    /// End of capture: respawn-or-park pending shards' accounting, then
    /// finish every live kernel and harvest its final statistics.
    /// Idempotent; call before reading [`ShardFleet::fleet_stats`].
    pub fn finish_with(&mut self, now_ns: u64, sink: &mut dyn FnMut(usize, &Event)) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.now_ns = self.now_ns.max(now_ns);
        let now = self.now_ns;
        for shard in 0..self.slots.len() {
            let slot = &mut self.slots[shard];
            match slot.state {
                ShardState::Up => {
                    if slot.stall_until_ns > now {
                        // The capture ends while the shard is wedged:
                        // close its stall blackout first, then let the
                        // surviving kernel account its backlog.
                        slot.stall_until_ns = 0;
                        self.close_blackout(shard, now);
                    }
                    self.drive(shard, now, sink);
                    let slot = &mut self.slots[shard];
                    if let Some(kernel) = slot.kernel.as_mut() {
                        kernel.finish(now);
                    }
                    self.drive(shard, now, sink);
                    let slot = &mut self.slots[shard];
                    if let Some(kernel) = slot.kernel.take() {
                        slot.retired.absorb(&kernel.stats());
                        slot.journals.push(kernel.flight().encode());
                        slot.retired_pulse.merge(&kernel.pulse_snapshot());
                    }
                }
                ShardState::Respawning | ShardState::Parked => {
                    // The partition stayed dark to the end; its loss is
                    // already counted, journal the tail window.
                    self.close_blackout(shard, now);
                }
            }
        }
    }

    /// [`ShardFleet::finish_with`] without an event sink.
    pub fn finish(&mut self, now_ns: u64) {
        self.finish_with(now_ns, &mut |_, _| {});
    }

    /// Aggregated fleet statistics. Exact only after
    /// [`ShardFleet::finish`] (live kernels are snapshotted mid-run).
    pub fn fleet_stats(&self) -> FleetStats {
        let mut f = FleetStats {
            wire_packets: self.wire_packets,
            wire_bytes: self.wire_bytes,
            ..FleetStats::default()
        };
        for slot in &self.slots {
            let mut t = slot.retired;
            if let Some(kernel) = slot.kernel.as_ref() {
                t.absorb(&kernel.stats());
            }
            f.delivered_packets += t.delivered_packets;
            f.dropped_packets += t.dropped_packets;
            f.discarded_packets += t.discarded_packets;
            f.delivered_bytes += t.delivered_bytes;
            f.shard_wire_bytes += t.wire_bytes;
            f.dropped_bytes += t.dropped_bytes;
            f.discarded_bytes += t.discarded_bytes;
            f.streams_created += t.streams_created;
            f.resume_gap_bytes += t.resume_gap_bytes;
            f.resumed_streams += t.resumed_streams;
            f.checkpoints_written += t.checkpoints_written;
            f.shard_down_packets += slot.down_pkts;
            f.shard_down_bytes += slot.down_bytes;
            f.kills += slot.kills;
            f.lease_expiries += slot.lease_expiries;
            f.respawns += slot.respawns;
            f.ckpt_fallbacks += slot.ckpt_fallbacks;
            f.cold_starts += slot.cold_starts;
            f.parked += u64::from(slot.state == ShardState::Parked);
            f.max_blackout_ns = f.max_blackout_ns.max(slot.max_blackout_ns);
        }
        f
    }

    /// One shard's merged pulse plane: retired incarnations plus the
    /// live kernel (when up). Exemplars are re-filtered against the
    /// merged tail, so the invariant `delay ≥ threshold` survives the
    /// respawn history.
    pub fn shard_pulse(&self, shard: usize) -> PulseSnapshot {
        let slot = &self.slots[shard];
        let mut p = slot.retired_pulse.clone();
        if let Some(kernel) = slot.kernel.as_ref() {
            p.merge(&kernel.pulse_snapshot());
        }
        p
    }

    /// The fleet-wide pulse plane: every shard's histograms merged in
    /// shard order (merge is commutative and associative, so the order
    /// is presentational only).
    pub fn fleet_pulse(&self) -> PulseSnapshot {
        let mut p = PulseSnapshot::default();
        for shard in 0..self.slots.len() {
            p.merge(&self.shard_pulse(shard));
        }
        p
    }

    /// Per-shard status rows.
    pub fn status(&self) -> Vec<ShardStatus> {
        self.slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| ShardStatus {
                shard,
                state: slot.state,
                lease_age_ns: slot.lease.age(self.now_ns),
                offered_pkts: slot.offered_pkts,
                offered_bytes: slot.offered_bytes,
                tracked_streams: slot.kernel.as_ref().map_or(0, |k| {
                    (0..k.ncores()).map(|c| k.tracked_streams(c) as u64).sum()
                }),
                kills: slot.kills,
                lease_expiries: slot.lease_expiries,
                respawns: slot.respawns,
                ckpt_fallbacks: slot.ckpt_fallbacks,
                cold_starts: slot.cold_starts,
                down_pkts: slot.down_pkts,
                down_bytes: slot.down_bytes,
                max_blackout_ns: slot.max_blackout_ns,
                breaker_failures: slot.breaker.failures_in_window(),
            })
            .collect()
    }

    /// Every flight journal of the fleet: one encoded journal per
    /// retired kernel incarnation (in shard order, then age order),
    /// plus the supervisor's own journal last. After
    /// [`ShardFleet::finish`] this is the complete loss record: decoded
    /// and aggregated, the `drop/shard/shard_down` bytes equal
    /// [`FleetStats::shard_down_bytes`] exactly.
    pub fn journals(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend(slot.journals.iter().cloned());
            if let Some(kernel) = slot.kernel.as_ref() {
                out.push(kernel.flight().encode());
            }
        }
        out.push(self.flight.encode());
        out
    }

    /// The supervisor's own flight recorder (lifecycle + blackout
    /// drops).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Current virtual time of the supervisor.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_trace::{CampusMix, CampusMixConfig};

    fn small_cfg(nshards: usize, faults: Option<FaultPlan>) -> FleetConfig {
        let shard = ScapConfig {
            memory_bytes: 32 << 20,
            cores: 2,
            inactivity_timeout_ns: u64::MAX / 2,
            ..ScapConfig::default()
        };
        FleetConfig {
            nshards,
            shard,
            checkpoint_interval_pkts: 256,
            faults,
            ..FleetConfig::default()
        }
    }

    fn run_fleet(cfg: FleetConfig, trace_bytes: u64) -> ShardFleet {
        let mut fleet = ShardFleet::new(cfg);
        let mut last = 0;
        for p in CampusMix::new(CampusMixConfig::sized(7, trace_bytes)) {
            last = p.ts_ns;
            fleet.offer(&p);
        }
        fleet.finish(last + 1);
        fleet
    }

    #[test]
    fn quiet_fleet_conserves_exactly() {
        let fleet = run_fleet(small_cfg(4, None), 2 << 20);
        let f = fleet.fleet_stats();
        assert!(f.wire_packets > 0);
        assert_eq!(f.kills, 0);
        assert_eq!(f.shard_down_packets, 0);
        assert!(f.packets_conserved(), "{f:?}");
        assert!(f.bytes_conserved(), "{f:?}");
    }

    #[test]
    fn storm_fleet_respawns_and_conserves() {
        let fleet = run_fleet(small_cfg(4, Some(FaultPlan::shard_storm(11, 4))), 4 << 20);
        let f = fleet.fleet_stats();
        assert!(f.kills > 0, "the storm must kill at least one shard");
        assert!(
            f.respawns + f.parked > 0,
            "every kill must resolve to a respawn or a park"
        );
        assert!(f.packets_conserved(), "{f:?}");
        assert!(f.bytes_conserved(), "{f:?}");
        // Journal reconciliation: ShardDown drops in the supervisor
        // journal must equal the counters byte-exactly.
        let mut jp = 0u64;
        let mut jb = 0u64;
        for j in fleet.journals() {
            let journal = scap_flight::decode_journal(&j).expect("journal decodes");
            for ev in &journal.events {
                if ev.kind == FlightKind::Drop && ev.reason == DropReason::ShardDown {
                    jp += ev.a;
                    jb += ev.b;
                }
            }
        }
        assert_eq!(jp, f.shard_down_packets, "journal packet attribution");
        assert_eq!(jb, f.shard_down_bytes, "journal byte attribution");
    }

    #[test]
    fn checkpoint_corruption_falls_back_to_previous_image() {
        let faults = FaultPlan {
            seed: 3,
            shards: vec![
                ShardFault {
                    shard: 0,
                    at_packet: 700,
                    kind: ShardFaultKind::CorruptCheckpoint,
                },
                ShardFault {
                    shard: 0,
                    at_packet: 720,
                    kind: ShardFaultKind::Kill,
                },
            ],
            ..Default::default()
        };
        let fleet = run_fleet(small_cfg(1, Some(faults)), 2 << 20);
        let f = fleet.fleet_stats();
        assert_eq!(f.kills, 1);
        assert!(
            f.ckpt_fallbacks + f.cold_starts >= 1,
            "a corrupt latest image must force a fallback or cold start: {f:?}"
        );
        assert!(f.packets_conserved(), "{f:?}");
        assert!(f.bytes_conserved(), "{f:?}");
    }

    #[test]
    fn breaker_parks_a_flapping_shard() {
        let faults = FaultPlan {
            seed: 5,
            shards: (0..6)
                .map(|i| ShardFault {
                    shard: 0,
                    at_packet: 200 + i * 10,
                    kind: ShardFaultKind::Kill,
                })
                .collect(),
            ..Default::default()
        };
        let mut cfg = small_cfg(2, Some(faults));
        cfg.breaker_threshold = 3;
        // Instant respawns so kills can cluster inside the window.
        cfg.backoff_base_ns = 1;
        cfg.backoff_cap_ns = 2;
        let fleet = run_fleet(cfg, 2 << 20);
        let f = fleet.fleet_stats();
        assert_eq!(f.parked, 1, "{f:?}");
        assert!(f.shard_down_packets > 0);
        assert!(f.packets_conserved(), "{f:?}");
        assert!(f.bytes_conserved(), "{f:?}");
        let status = fleet.status();
        assert_eq!(status[0].state, ShardState::Parked);
        assert_eq!(status[1].state, ShardState::Up);
    }
}
