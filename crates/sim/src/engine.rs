//! The discrete-time engine: batches a replayed trace into ticks, hands
//! each batch to the capture stack under per-core cycle budgets, and
//! aggregates the paper's metrics (drop rate, application CPU
//! utilization, software-interrupt load).

use crate::budgets::CoreBudgets;
use crate::cost::CostModel;
use scap_trace::Packet;

/// Common statistics every capture stack reports.
///
/// The distinction between *dropped* (lost to overload — rings full,
/// memory exhausted, PPL) and *discarded* (deliberately not kept —
/// cutoffs, filters, duplicates) mirrors the paper's per-stream counters
/// and matters for every figure: discards are a feature, drops are loss.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StackStats {
    /// Packets offered by the wire.
    pub wire_packets: u64,
    /// Bytes offered by the wire.
    pub wire_bytes: u64,
    /// Packets lost to overload (all causes).
    pub dropped_packets: u64,
    /// Bytes lost to overload.
    pub dropped_bytes: u64,
    /// Packets discarded on purpose before user level (NIC filters,
    /// kernel cutoff, duplicates).
    pub discarded_packets: u64,
    /// Bytes discarded on purpose.
    pub discarded_bytes: u64,
    /// Packets dropped at the NIC by FDIR (subset of `discarded_packets`
    /// for Scap-with-FDIR; they never reached main memory).
    pub nic_filtered_packets: u64,
    /// Payload bytes delivered to the application.
    pub delivered_bytes: u64,
    /// Packets that completed stream processing (neither dropped nor
    /// discarded). Stacks that maintain it satisfy the conservation
    /// identity `wire = delivered + dropped + discarded`; stacks that
    /// don't leave it 0.
    pub delivered_packets: u64,
    /// Streams observed (created).
    pub streams_created: u64,
    /// Streams lost: never tracked (table full / SYN dropped) or evicted.
    pub streams_lost: u64,
    /// Streams that terminated and were reported to the application.
    pub streams_reported: u64,
    /// Pattern matches found (when the workload matches patterns).
    pub matches: u64,
    /// Events delivered to user callbacks.
    pub events_delivered: u64,
}

impl StackStats {
    /// Packet drop percentage (the paper's headline metric).
    pub fn drop_percent(&self) -> f64 {
        if self.wire_packets == 0 {
            0.0
        } else {
            100.0 * self.dropped_packets as f64 / self.wire_packets as f64
        }
    }

    /// Lost-stream percentage.
    pub fn stream_loss_percent(&self) -> f64 {
        let total = self.streams_created + self.streams_lost;
        if total == 0 {
            0.0
        } else {
            100.0 * self.streams_lost as f64 / total as f64
        }
    }
}

/// A capture stack under simulation.
pub trait CaptureStack {
    /// Process all packets whose timestamps fall in the current tick.
    ///
    /// The stack stages its own pipeline internally: NIC admission
    /// (hardware — not budgeted), kernel/softirq work (budgeted with
    /// priority), then user work (budgeted with what remains).
    fn tick(&mut self, now_ns: u64, packets: &[Packet], budgets: &mut CoreBudgets);

    /// The trace has ended: flush internal state so final stream/match
    /// accounting is complete. Runs unbudgeted.
    fn finish(&mut self, now_ns: u64);

    /// Current statistics.
    fn stats(&self) -> StackStats;
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Simulated cores (the paper's sensor has 8).
    pub ncores: usize,
    /// Tick length in simulated nanoseconds.
    pub tick_ns: u64,
    /// The cost table.
    pub model: CostModel,
    /// Post-trace drain ticks (backlog gets budget to empty out).
    pub drain_ticks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ncores: 8,
            tick_ns: 1_000_000,
            model: CostModel::default(),
            drain_ticks: 500,
        }
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Final stack statistics.
    pub stats: StackStats,
    /// Mean busy fraction per core attributable to kernel (softirq) work,
    /// over the traced interval.
    pub kernel_busy: Vec<f64>,
    /// Mean busy fraction per core attributable to user work.
    pub user_busy: Vec<f64>,
    /// Simulated trace duration in seconds.
    pub duration_secs: f64,
}

impl EngineReport {
    /// The paper's "software interrupt load": kernel cycles as a
    /// percentage of total capacity across all cores.
    pub fn softirq_percent(&self) -> f64 {
        (100.0 * self.kernel_busy.iter().sum::<f64>() / self.kernel_busy.len() as f64).min(100.0)
    }

    /// The paper's "CPU utilization" of the monitoring application:
    /// the busiest core's user share (single-worker experiments pin the
    /// application to one core).
    pub fn user_cpu_percent(&self) -> f64 {
        (100.0 * self.user_busy.iter().cloned().fold(0.0, f64::max)).min(100.0)
    }

    /// Mean user utilization across the cores actually used.
    pub fn user_cpu_percent_mean_active(&self) -> f64 {
        let active: Vec<f64> = self
            .user_busy
            .iter()
            .cloned()
            .filter(|u| *u > 0.001)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            100.0 * active.iter().sum::<f64>() / active.len() as f64
        }
    }
}

/// The discrete-time engine.
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Build an engine.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg }
    }

    /// Run a packet stream through a stack.
    pub fn run(
        &self,
        packets: impl IntoIterator<Item = Packet>,
        stack: &mut dyn CaptureStack,
    ) -> EngineReport {
        let tick_ns = self.cfg.tick_ns;
        let mut budgets = CoreBudgets::new(self.cfg.model, self.cfg.ncores, tick_ns);
        let mut kernel_cycles = vec![0.0; self.cfg.ncores];
        let mut user_cycles = vec![0.0; self.cfg.ncores];
        let mut ticks: u64 = 0;

        let mut batch: Vec<Packet> = Vec::new();
        let mut tick_end: Option<u64> = None;
        let mut now = 0u64;

        let flush_tick = |batch: &mut Vec<Packet>,
                          now: u64,
                          budgets: &mut CoreBudgets,
                          kernel_cycles: &mut Vec<f64>,
                          user_cycles: &mut Vec<f64>,
                          ticks: &mut u64,
                          stack: &mut dyn CaptureStack| {
            stack.tick(now, batch, budgets);
            batch.clear();
            for (core, (k, u)) in budgets.next_tick().into_iter().enumerate() {
                kernel_cycles[core] += k;
                user_cycles[core] += u;
            }
            *ticks += 1;
        };

        for p in packets {
            let end = *tick_end.get_or_insert_with(|| (p.ts_ns / tick_ns + 1) * tick_ns);
            if p.ts_ns >= end {
                // Close the current tick and any empty ticks in between.
                now = end;
                flush_tick(
                    &mut batch,
                    now,
                    &mut budgets,
                    &mut kernel_cycles,
                    &mut user_cycles,
                    &mut ticks,
                    stack,
                );
                let mut e = end + tick_ns;
                while p.ts_ns >= e {
                    now = e;
                    flush_tick(
                        &mut batch,
                        now,
                        &mut budgets,
                        &mut kernel_cycles,
                        &mut user_cycles,
                        &mut ticks,
                        stack,
                    );
                    e += tick_ns;
                }
                tick_end = Some(e);
            }
            batch.push(p);
        }
        if !batch.is_empty() || tick_end.is_some() {
            now = tick_end.unwrap_or(tick_ns);
            flush_tick(
                &mut batch,
                now,
                &mut budgets,
                &mut kernel_cycles,
                &mut user_cycles,
                &mut ticks,
                stack,
            );
        }

        let traced_ticks = ticks.max(1);

        // Drain: backlog keeps getting budget, but usage is not counted
        // toward the traced-interval averages.
        for _ in 0..self.cfg.drain_ticks {
            now += tick_ns;
            stack.tick(now, &[], &mut budgets);
            budgets.next_tick();
        }
        stack.finish(now);

        let denom = budgets.tick_cycles() * traced_ticks as f64;
        EngineReport {
            stats: stack.stats(),
            kernel_busy: kernel_cycles.iter().map(|c| c / denom).collect(),
            user_busy: user_cycles.iter().map(|c| c / denom).collect(),
            duration_secs: (traced_ticks * tick_ns) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Work;

    /// A toy stack: every packet costs fixed kernel work on core 0 and is
    /// dropped if the core is out of budget.
    struct ToyStack {
        stats: StackStats,
        backlog: u64,
    }

    impl CaptureStack for ToyStack {
        fn tick(&mut self, _now: u64, packets: &[Packet], budgets: &mut CoreBudgets) {
            for p in packets {
                self.stats.wire_packets += 1;
                self.stats.wire_bytes += p.len() as u64;
                self.backlog += 1;
            }
            while self.backlog > 0 && budgets.can_run(0) {
                budgets.charge_kernel(
                    0,
                    &Work {
                        k_packets: 1,
                        k_bytes_copied: 100_000, // deliberately expensive
                        ..Default::default()
                    },
                );
                self.backlog -= 1;
                self.stats.delivered_bytes += 100;
            }
            // Bounded backlog: what cannot queue is dropped.
            let cap = 50;
            if self.backlog > cap {
                self.stats.dropped_packets += self.backlog - cap;
                self.backlog = cap;
            }
        }

        fn finish(&mut self, _now: u64) {}

        fn stats(&self) -> StackStats {
            self.stats
        }
    }

    fn trace(n: usize, gap_ns: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i as u64 * gap_ns, vec![0u8; 100]))
            .collect()
    }

    #[test]
    fn overload_produces_drops_underload_does_not() {
        let cfg = EngineConfig {
            ncores: 1,
            tick_ns: 1_000_000,
            model: CostModel::default(),
            drain_ticks: 100,
        };
        // Each packet costs ~100_600 cycles; one core does ~2e6/ms
        // => ~19 pkt/ms capacity.
        let slow = Engine::new(cfg).run(
            trace(100, 100_000), // 10 pkt/ms
            &mut ToyStack {
                stats: StackStats::default(),
                backlog: 0,
            },
        );
        assert_eq!(slow.stats.dropped_packets, 0);
        assert!(slow.kernel_busy[0] > 0.3 && slow.kernel_busy[0] <= 1.0);

        let fast = Engine::new(cfg).run(
            trace(2000, 10_000), // 100 pkt/ms >> capacity
            &mut ToyStack {
                stats: StackStats::default(),
                backlog: 0,
            },
        );
        assert!(
            fast.stats.dropped_packets > 500,
            "drops {}",
            fast.stats.dropped_packets
        );
        assert!(fast.kernel_busy[0] > 0.9);
    }

    #[test]
    fn empty_trace_reports_cleanly() {
        let r = Engine::new(EngineConfig::default()).run(
            Vec::new(),
            &mut ToyStack {
                stats: StackStats::default(),
                backlog: 0,
            },
        );
        assert_eq!(r.stats.wire_packets, 0);
        assert_eq!(r.stats.drop_percent(), 0.0);
    }

    #[test]
    fn stats_percentages() {
        let s = StackStats {
            wire_packets: 200,
            dropped_packets: 50,
            streams_created: 30,
            streams_lost: 10,
            ..Default::default()
        };
        assert_eq!(s.drop_percent(), 25.0);
        assert_eq!(s.stream_loss_percent(), 25.0);
    }

    #[test]
    fn ticks_with_gaps_are_simulated() {
        // Packets 5 ms apart: the engine must tick through empty windows.
        let pkts = vec![
            Packet::new(0, vec![0u8; 10]),
            Packet::new(5_000_000, vec![0u8; 10]),
        ];
        let r = Engine::new(EngineConfig {
            ncores: 1,
            ..Default::default()
        })
        .run(
            pkts,
            &mut ToyStack {
                stats: StackStats::default(),
                backlog: 0,
            },
        );
        assert_eq!(r.stats.wire_packets, 2);
        assert!(r.duration_secs >= 0.005);
    }
}
