//! The PF_PACKET-style shared ring buffer.
//!
//! The kernel side appends whole captured frames (truncated to the snap
//! length); the user side consumes them in order. Capacity is a byte
//! budget (the paper configures 512 MB): when the application falls
//! behind and the ring fills, arriving packets are dropped by the kernel
//! — the baselines' overload behaviour in every figure.
//!
//! Each stored frame records a *ring address* (a synthetic, cyclic
//! offset) so the cache model can observe the access pattern: frames are
//! written at monotonically advancing addresses and read later, after
//! the backlog — the "random locations all over main memory" effect of
//! §6.5.2.

use scap_trace::Packet;
use std::collections::VecDeque;

/// One frame stored in the ring.
#[derive(Debug)]
pub struct RingSlot {
    /// The captured (possibly snap-length-truncated) frame.
    pub packet: Packet,
    /// Bytes actually stored (min(snaplen, frame length)).
    pub captured: usize,
    /// Synthetic address of the slot, for the cache model.
    pub addr: u64,
}

/// The ring.
#[derive(Debug)]
pub struct PacketRing {
    slots: VecDeque<RingSlot>,
    capacity_bytes: usize,
    used_bytes: usize,
    write_cursor: u64,
    base_addr: u64,
    /// Frames accepted.
    pub enqueued: u64,
    /// Frames dropped (ring full).
    pub dropped: u64,
    /// High-water mark of occupancy in bytes.
    pub max_used: usize,
}

impl PacketRing {
    /// A ring with the given byte budget.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0);
        PacketRing {
            slots: VecDeque::new(),
            capacity_bytes,
            used_bytes: 0,
            write_cursor: 0,
            base_addr: 0x4000_0000,
            enqueued: 0,
            dropped: 0,
            max_used: 0,
        }
    }

    /// Occupancy in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Kernel side: store a frame (truncated to `snaplen`). Returns the
    /// stored slot's address and captured length, or `None` if the ring
    /// was full and the frame was dropped.
    pub fn push(&mut self, packet: &Packet, snaplen: usize) -> Option<(u64, usize)> {
        let captured = packet.len().min(snaplen);
        // Per-slot overhead mimics tpacket frame headers (32 bytes).
        let need = captured + 32;
        if self.used_bytes + need > self.capacity_bytes {
            self.dropped += 1;
            return None;
        }
        // Address advances cyclically through the mapped area.
        let addr = self.base_addr + (self.write_cursor % self.capacity_bytes as u64);
        self.write_cursor += need as u64;
        self.used_bytes += need;
        self.max_used = self.max_used.max(self.used_bytes);
        self.enqueued += 1;
        self.slots.push_back(RingSlot {
            packet: packet.clone(),
            captured,
            addr,
        });
        Some((addr, captured))
    }

    /// User side: consume the oldest frame.
    pub fn pop(&mut self) -> Option<RingSlot> {
        let slot = self.slots.pop_front()?;
        self.used_bytes -= slot.captured + 32;
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(n: usize) -> Packet {
        Packet::new(0, vec![0u8; n])
    }

    #[test]
    fn fifo_with_byte_budget() {
        let mut r = PacketRing::new(1000);
        assert!(r.push(&pkt(400), 65535).is_some());
        assert!(r.push(&pkt(400), 65535).is_some());
        // 2*(400+32) = 864; a third 400-byte frame exceeds 1000.
        assert!(r.push(&pkt(400), 65535).is_none());
        assert_eq!(r.dropped, 1);
        let s = r.pop().unwrap();
        assert_eq!(s.captured, 400);
        assert!(r.push(&pkt(400), 65535).is_some());
        assert_eq!(r.enqueued, 3);
    }

    #[test]
    fn snaplen_truncates_accounting() {
        let mut r = PacketRing::new(10_000);
        let (_, cap) = r.push(&pkt(1500), 96).unwrap();
        assert_eq!(cap, 96);
        assert_eq!(r.used_bytes(), 96 + 32);
        // The stored packet still carries the full frame (analysis code
        // may parse headers within the snap length only).
        assert_eq!(r.pop().unwrap().packet.len(), 1500);
    }

    #[test]
    fn addresses_advance_and_wrap() {
        let mut r = PacketRing::new(1024);
        let (a1, _) = r.push(&pkt(100), 65535).unwrap();
        r.pop();
        let (a2, _) = r.push(&pkt(100), 65535).unwrap();
        assert!(a2 > a1);
        r.pop();
        // Push enough to wrap the cyclic cursor.
        for _ in 0..20 {
            if r.push(&pkt(100), 65535).is_some() {
                r.pop();
            }
        }
        let (a3, _) = r.push(&pkt(100), 65535).unwrap();
        assert!(a3 >= 0x4000_0000);
        assert!(a3 < 0x4000_0000 + 1024);
    }
}
