//! Classic-BPF bytecode: instructions, verifier, and interpreter.
//!
//! The instruction set is the cBPF subset that libpcap-generated filters
//! use, with one documented deviation: jump offsets are `u32` instead of
//! `u8`, so large compiled filters don't need trampolines. Semantics match
//! the kernel interpreter:
//!
//! * loads are packet-relative and bounds-checked; an out-of-bounds load
//!   terminates the program with return value 0 (no match);
//! * `ret k` returns `k` — nonzero means "accept" (snap length in real
//!   BPF, boolean here);
//! * the `ldx msh` instruction computes `4 * (pkt[k] & 0x0f)`, the IPv4
//!   header-length idiom.
//!
//! A verifier checks the program before it can run: jumps must land in
//! bounds and strictly forward (so termination is structural), and every
//! path must end in a `ret`.

/// A classic-BPF instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `A = u32(pkt[k..k+4])` (big-endian).
    LdAbsW(u32),
    /// `A = u16(pkt[k..k+2])`.
    LdAbsH(u32),
    /// `A = pkt[k]`.
    LdAbsB(u32),
    /// `A = u32(pkt[X+k..])`.
    LdIndW(u32),
    /// `A = u16(pkt[X+k..])`.
    LdIndH(u32),
    /// `A = pkt[X+k]`.
    LdIndB(u32),
    /// `A = k`.
    LdImm(u32),
    /// `A = frame length`.
    LdLen,
    /// `X = k`.
    LdxImm(u32),
    /// `X = 4 * (pkt[k] & 0x0f)` — IPv4 header length.
    LdxMsh(u32),
    /// `X = A`.
    Tax,
    /// `A = X`.
    Txa,
    /// `A &= k`.
    AluAnd(u32),
    /// `A |= k`.
    AluOr(u32),
    /// `A >>= k`.
    AluRsh(u32),
    /// `A <<= k`.
    AluLsh(u32),
    /// `A += k`.
    AluAdd(u32),
    /// Unconditional relative jump.
    Ja(u32),
    /// If `A == k` jump `jt` else `jf` (relative to next instruction).
    Jeq(u32, u32, u32),
    /// If `A > k` (unsigned) jump `jt` else `jf`.
    Jgt(u32, u32, u32),
    /// If `A >= k` (unsigned) jump `jt` else `jf`.
    Jge(u32, u32, u32),
    /// If `A & k != 0` jump `jt` else `jf`.
    Jset(u32, u32, u32),
    /// Return constant `k`.
    RetK(u32),
    /// Return `A`.
    RetA,
}

/// A verified BPF program, ready to run over frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpfProgram {
    instrs: Vec<Instr>,
}

/// Why verification rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program has no instructions.
    Empty,
    /// A jump target is past the end of the program.
    JumpOutOfBounds {
        /// Index of the offending instruction.
        at: usize,
    },
    /// The final instruction can fall through past the end.
    FallsOffEnd,
    /// Program exceeds the maximum allowed length.
    TooLong(usize),
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty program"),
            VerifyError::JumpOutOfBounds { at } => {
                write!(f, "jump out of bounds at instruction {at}")
            }
            VerifyError::FallsOffEnd => write!(f, "execution can fall off program end"),
            VerifyError::TooLong(n) => write!(f, "program too long ({n} instructions)"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Maximum program length (same spirit as the kernel's BPF_MAXINSNS).
pub const MAX_INSNS: usize = 4096;

impl BpfProgram {
    /// Verify and wrap an instruction sequence.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, VerifyError> {
        if instrs.is_empty() {
            return Err(VerifyError::Empty);
        }
        if instrs.len() > MAX_INSNS {
            return Err(VerifyError::TooLong(instrs.len()));
        }
        let n = instrs.len();
        for (i, ins) in instrs.iter().enumerate() {
            // A jump of `d` from instruction i lands at i + 1 + d; every
            // landing point must be a real instruction.
            let lands = |d: u32| i + 1 + (d as usize) < n;
            match *ins {
                Instr::Ja(d) => {
                    if !lands(d) {
                        return Err(VerifyError::JumpOutOfBounds { at: i });
                    }
                }
                Instr::Jeq(_, jt, jf)
                | Instr::Jgt(_, jt, jf)
                | Instr::Jge(_, jt, jf)
                | Instr::Jset(_, jt, jf) => {
                    if !lands(jt) || !lands(jf) {
                        return Err(VerifyError::JumpOutOfBounds { at: i });
                    }
                }
                Instr::RetK(_) | Instr::RetA => {}
                _ => {
                    // Straight-line instruction: must have a successor.
                    if i + 1 >= n {
                        return Err(VerifyError::FallsOffEnd);
                    }
                }
            }
        }
        Ok(BpfProgram { instrs })
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions (cost-model input).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program is empty (never: verification forbids it).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Execute over a frame. Returns the program's return value
    /// (0 = no match). Execution is bounded by the forward-jump
    /// verification, so this always terminates.
    pub fn run(&self, pkt: &[u8]) -> u32 {
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut pc: usize = 0;
        // The verifier guarantees pc stays in bounds and only moves
        // forward across jumps; the loop is bounded by program length.
        loop {
            let ins = self.instrs[pc];
            pc += 1;
            match ins {
                Instr::LdAbsW(k) => match load_w(pkt, k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Instr::LdAbsH(k) => match load_h(pkt, k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Instr::LdAbsB(k) => match pkt.get(k as usize) {
                    Some(v) => a = u32::from(*v),
                    None => return 0,
                },
                Instr::LdIndW(k) => match load_w(pkt, x as usize + k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Instr::LdIndH(k) => match load_h(pkt, x as usize + k as usize) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Instr::LdIndB(k) => match pkt.get(x as usize + k as usize) {
                    Some(v) => a = u32::from(*v),
                    None => return 0,
                },
                Instr::LdImm(k) => a = k,
                Instr::LdLen => a = pkt.len() as u32,
                Instr::LdxImm(k) => x = k,
                Instr::LdxMsh(k) => match pkt.get(k as usize) {
                    Some(v) => x = 4 * u32::from(*v & 0x0F),
                    None => return 0,
                },
                Instr::Tax => x = a,
                Instr::Txa => a = x,
                Instr::AluAnd(k) => a &= k,
                Instr::AluOr(k) => a |= k,
                Instr::AluRsh(k) => a = a.wrapping_shr(k),
                Instr::AluLsh(k) => a = a.wrapping_shl(k),
                Instr::AluAdd(k) => a = a.wrapping_add(k),
                Instr::Ja(d) => pc += d as usize,
                Instr::Jeq(k, jt, jf) => pc += if a == k { jt } else { jf } as usize,
                Instr::Jgt(k, jt, jf) => pc += if a > k { jt } else { jf } as usize,
                Instr::Jge(k, jt, jf) => pc += if a >= k { jt } else { jf } as usize,
                Instr::Jset(k, jt, jf) => pc += if a & k != 0 { jt } else { jf } as usize,
                Instr::RetK(k) => return k,
                Instr::RetA => return a,
            }
        }
    }
}

fn load_w(pkt: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let b = pkt.get(off..end)?;
    Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn load_h(pkt: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(2)?;
    let b = pkt.get(off..end)?;
    Some(u32::from(u16::from_be_bytes([b[0], b[1]])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_k_returns_constant() {
        let p = BpfProgram::new(vec![Instr::RetK(7)]).unwrap();
        assert_eq!(p.run(&[]), 7);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(BpfProgram::new(vec![]).unwrap_err(), VerifyError::Empty);
    }

    #[test]
    fn falls_off_end_rejected() {
        assert_eq!(
            BpfProgram::new(vec![Instr::LdImm(1)]).unwrap_err(),
            VerifyError::FallsOffEnd
        );
    }

    #[test]
    fn jump_out_of_bounds_rejected() {
        let err = BpfProgram::new(vec![Instr::Jeq(0, 5, 0), Instr::RetK(0)]).unwrap_err();
        assert_eq!(err, VerifyError::JumpOutOfBounds { at: 0 });
    }

    #[test]
    fn out_of_bounds_load_returns_zero() {
        let p = BpfProgram::new(vec![Instr::LdAbsW(100), Instr::RetK(1)]).unwrap();
        assert_eq!(p.run(&[0u8; 10]), 0);
    }

    #[test]
    fn ethertype_check_runs() {
        // ldh [12]; jeq 0x0800 ? ret 1 : ret 0
        let p = BpfProgram::new(vec![
            Instr::LdAbsH(12),
            Instr::Jeq(0x0800, 0, 1),
            Instr::RetK(1),
            Instr::RetK(0),
        ])
        .unwrap();
        let mut frame = vec![0u8; 14];
        frame[12] = 0x08;
        assert_eq!(p.run(&frame), 1);
        frame[12] = 0x86;
        frame[13] = 0xDD;
        assert_eq!(p.run(&frame), 0);
    }

    #[test]
    fn ldx_msh_computes_header_len() {
        // ldx msh[14]; txa; ret a  -> returns 4*(pkt[14]&0xf)
        let p = BpfProgram::new(vec![Instr::LdxMsh(14), Instr::Txa, Instr::RetA]).unwrap();
        let mut frame = vec![0u8; 20];
        frame[14] = 0x45;
        assert_eq!(p.run(&frame), 20);
        frame[14] = 0x47;
        assert_eq!(p.run(&frame), 28);
    }

    #[test]
    fn jset_tests_bits() {
        let p = BpfProgram::new(vec![
            Instr::LdAbsB(0),
            Instr::Jset(0x10, 0, 1),
            Instr::RetK(1),
            Instr::RetK(0),
        ])
        .unwrap();
        assert_eq!(p.run(&[0x10]), 1);
        assert_eq!(p.run(&[0x01]), 0);
    }

    #[test]
    fn alu_ops() {
        let p = BpfProgram::new(vec![
            Instr::LdImm(0xF0),
            Instr::AluAnd(0x3C),
            Instr::AluOr(0x01),
            Instr::AluLsh(1),
            Instr::AluRsh(1),
            Instr::AluAdd(2),
            Instr::RetA,
        ])
        .unwrap();
        assert_eq!(p.run(&[]), ((0xF0 & 0x3C) | 0x01) + 2);
    }

    #[test]
    fn too_long_rejected() {
        let mut v = vec![Instr::LdImm(0); MAX_INSNS];
        v.push(Instr::RetK(0));
        assert!(matches!(
            BpfProgram::new(v).unwrap_err(),
            VerifyError::TooLong(_)
        ));
    }
}
